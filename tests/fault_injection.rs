//! Fault injection: the pipeline must degrade *structurally*, never by
//! panicking, hanging or silently mis-loading, when
//!
//! * on-disk artefacts are truncated, bit-flipped or version-bumped,
//! * interfaces change underneath already-compiled genexts,
//! * the source program diverges under specialisation (static recursion
//!   on an unbounded counter), under both exhaustion policies: a
//!   structured budget error, or the generalising fallback that demotes
//!   the offending call to a fully-dynamic residual call,
//! * the `mspecd` daemon is fed a chaos matrix of malformed frames,
//!   truncated frames, mid-request disconnects, panicking requests and
//!   budget-exhausting requests — and must answer every *subsequent*
//!   request correctly, never dying or stalling.

use mspec_cogen::files::{cogen_module, load_bti, load_gx, CogenError};
use mspec_cogen::link_dir;
use mspec_core::{
    EngineOptions, OnExhaustion, Pipeline, PipelineError, SpecArg, SpecBudget,
};
use mspec_genext::SpecError;
use mspec_lang::eval::Value;
use mspec_lang::parser::parse_program;
use mspec_lang::resolve::resolve;
use mspec_testkit::corrupt::{bump_version, flip_random_bit, truncate_file};
use mspec_testkit::TestRng;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mspec-fault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Cogens a two-module tree (B imports A) into `dir`; returns the
/// artefact paths `(A.bti, B.gx)`.
fn cogen_tree(dir: &PathBuf) -> (PathBuf, PathBuf) {
    let rp = resolve(
        parse_program(
            "module A where\nf x = x + 1\nmodule B where\nimport A\ng y = f y * 2\n",
        )
        .unwrap(),
    )
    .unwrap();
    let a = rp.program().module("A").unwrap().clone();
    let b = rp.program().module("B").unwrap().clone();
    let out_a = cogen_module(&a, dir, &BTreeSet::new()).unwrap();
    let out_b = cogen_module(&b, dir, &BTreeSet::new()).unwrap();
    (out_a.bti, out_b.gx)
}

#[test]
fn truncated_artefacts_give_structured_errors() {
    let dir = tmpdir("truncate");
    let (bti, gx) = cogen_tree(&dir);
    let gx_clean = fs::read(&gx).unwrap();
    let bti_clean = fs::read(&bti).unwrap();
    // Cut at a spread of points: empty file, mid-header, just after
    // the header, mid-payload, one byte short of complete.
    let cuts = |len: usize| [0, 1, 10, len / 3, len / 2, len - 1];
    for keep in cuts(gx_clean.len()) {
        fs::write(&gx, &gx_clean).unwrap();
        truncate_file(&gx, keep);
        match load_gx(&gx) {
            Err(CogenError::Format(_)) => {}
            other => panic!("gx truncated to {keep} bytes: expected Format error, got {other:?}"),
        }
    }
    for keep in cuts(bti_clean.len()) {
        fs::write(&bti, &bti_clean).unwrap();
        truncate_file(&bti, keep);
        match load_bti(&bti) {
            Err(CogenError::Format(_)) => {}
            other => panic!("bti truncated to {keep} bytes: expected Format error, got {other:?}"),
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn random_bit_flips_never_load() {
    let dir = tmpdir("bitflip");
    let (bti, gx) = cogen_tree(&dir);
    let gx_clean = fs::read(&gx).unwrap();
    let bti_clean = fs::read(&bti).unwrap();
    let mut rng = TestRng::seed_from_u64(0xFA117);
    for round in 0..64 {
        fs::write(&gx, &gx_clean).unwrap();
        let (off, mask) = flip_random_bit(&gx, &mut rng);
        assert!(
            load_gx(&gx).is_err(),
            "round {round}: gx with bit {mask:#04x} flipped at byte {off} loaded cleanly"
        );
        fs::write(&bti, &bti_clean).unwrap();
        let (off, mask) = flip_random_bit(&bti, &mut rng);
        assert!(
            load_bti(&bti).is_err(),
            "round {round}: bti with bit {mask:#04x} flipped at byte {off} loaded cleanly"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_bumped_artefacts_are_rejected() {
    let dir = tmpdir("version");
    let (bti, gx) = cogen_tree(&dir);
    bump_version(&gx);
    let err = load_gx(&gx).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");
    bump_version(&bti);
    let err = load_bti(&bti).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

/// Re-cogen an import with a different interface behind the linker's
/// back: the downstream `.gx` must be rejected as stale, not linked
/// into an inconsistent program.
#[test]
fn link_rejects_gx_built_against_old_interface() {
    let dir = tmpdir("stale");
    cogen_tree(&dir);
    let rp = resolve(parse_program("module A where\nf x = x + 1\nh z = z\n").unwrap()).unwrap();
    let a2 = rp.program().modules[0].clone();
    cogen_module(&a2, &dir, &BTreeSet::new()).unwrap();
    match link_dir(&dir) {
        Err(CogenError::StaleInterface { module, import }) => {
            assert_eq!(module.as_str(), "B");
            assert_eq!(import.as_str(), "A");
        }
        other => panic!("expected StaleInterface, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A diverging static recursion (`loop n = loop (n + 1)`) under the
/// default policy: a structured budget error naming the offending
/// function and the request chain — never a hang.
#[test]
fn divergence_under_error_policy_names_the_culprit() {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(divergence_error_policy_body)
        .unwrap()
        .join()
        .unwrap();
}

fn divergence_error_policy_body() {
    let p = Pipeline::from_source("module M where\nloop n = loop (n + 1)\nmain x = loop 0 + x\n")
        .unwrap();
    let err = p
        .specialise_opts(
            "M",
            "main",
            vec![SpecArg::Dynamic],
            EngineOptions {
                budget: SpecBudget::with_steps(5_000),
                on_exhaustion: OnExhaustion::Error,
                ..EngineOptions::default()
            },
        )
        .unwrap_err();
    match err {
        PipelineError::Spec(SpecError::BudgetExhausted { witness, chain, .. }) => {
            assert_eq!(witness.to_string(), "M.loop");
            assert!(
                chain.iter().any(|q| q.to_string() == "M.loop"),
                "chain should show the cycle: {chain:?}"
            );
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
}

/// The same diverging program under the generalising fallback:
/// specialisation *succeeds*, the offending call is demoted to a
/// fully-dynamic residual call, and the residual is byte-stable.
#[test]
fn divergence_under_generalise_policy_terminates() {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(divergence_generalise_policy_body)
        .unwrap()
        .join()
        .unwrap();
}

fn divergence_generalise_policy_body() {
    let p = Pipeline::from_source("module M where\nloop n = loop (n + 1)\nmain x = loop 0 + x\n")
        .unwrap();
    let opts = || EngineOptions {
        budget: SpecBudget::with_steps(5_000),
        on_exhaustion: OnExhaustion::Generalise,
        ..EngineOptions::default()
    };
    let s1 = p.specialise_opts("M", "main", vec![SpecArg::Dynamic], opts()).unwrap();
    assert!(s1.stats.generalised >= 1, "{:?}", s1.stats);
    // The divergence is still in the *residual* (it is in the source
    // program's semantics), but specialisation itself terminated and
    // produced a self-contained recursive definition.
    let src = s1.source();
    assert!(src.contains("loop"), "{src}");
    // Byte-stable: an identical second run yields the identical text.
    let s2 = p.specialise_opts("M", "main", vec![SpecArg::Dynamic], opts()).unwrap();
    assert_eq!(src, s2.source());
}

/// Unbounded polyvariance (static counter chasing a dynamic bound)
/// under the generalising fallback: the engine stops minting variants,
/// demotes the counter to dynamic, and the residual stays semantically
/// equivalent to the source program.
#[test]
fn polyvariance_fallback_residual_is_semantically_correct() {
    let p = Pipeline::from_source(
        "module M where\nsumto a b = if b <= a then 0 else a + sumto (a + 1) b\nmain n = sumto 0 n\n",
    )
    .unwrap();
    let opts = || EngineOptions {
        budget: SpecBudget { max_specialisations: 4, ..SpecBudget::default() },
        on_exhaustion: OnExhaustion::Generalise,
        ..EngineOptions::default()
    };
    let s1 = p.specialise_opts("M", "main", vec![SpecArg::Dynamic], opts()).unwrap();
    assert!(s1.stats.generalised >= 1, "{:?}", s1.stats);
    // Source oracle: sumto 0 n for a few n.
    for n in [0u64, 1, 5, 9] {
        let expect = p.run_source("M", "main", vec![Value::nat(n)]).unwrap();
        assert_eq!(s1.run(vec![Value::nat(n)]).unwrap(), expect, "n = {n}");
    }
    // Byte-stable across runs.
    let s2 = p.specialise_opts("M", "main", vec![SpecArg::Dynamic], opts()).unwrap();
    assert_eq!(s1.source(), s2.source());
}

/// When budgets are *not* hit, the fallback policy is invisible: the
/// residual is byte-identical to the default engine's.
#[test]
fn generalise_policy_is_inert_when_budgets_are_not_hit() {
    let p = Pipeline::from_source(
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
    )
    .unwrap();
    let args = || vec![SpecArg::Static(Value::nat(5)), SpecArg::Dynamic];
    let default = p.specialise("Power", "power", args()).unwrap();
    let fallback = p
        .specialise_opts(
            "Power",
            "power",
            args(),
            EngineOptions { on_exhaustion: OnExhaustion::Generalise, ..EngineOptions::default() },
        )
        .unwrap();
    assert_eq!(default.source(), fallback.source());
    assert_eq!(fallback.stats.generalised, 0);
}

/// A panic injected inside one module's build (the debug-build
/// `MSPEC_FAULT_PANIC_MODULE` hook) must be isolated identically at
/// every thread count: the same module reported panicked, the same
/// dependents skipped, the same independents built — one structured
/// [`PipelineError::Build`] report regardless of scheduling.
#[test]
fn injected_panic_yields_identical_reports_at_every_thread_count() {
    use mspec_core::BuildMode;
    use std::num::NonZeroUsize;
    // `PanicLeaf` is unique to this test: the hook matches by module
    // name, so concurrently running tests are unaffected.
    const SRC: &str = "module PanicLeaf where\n\
        p1 x = x + 1\n\
        module Solo where\n\
        solo x = x * 2\n\
        module Down where\n\
        import PanicLeaf\n\
        d x = p1 x\n";
    std::env::set_var("MSPEC_FAULT_PANIC_MODULE", "PanicLeaf");
    let build = |mode: BuildMode| {
        Pipeline::from_source_timed(SRC, &BTreeSet::new(), mode)
            .map(|_| ())
            .expect_err("the injected panic must fail the build")
    };
    let baseline = build(BuildMode::Sequential);
    let PipelineError::Build(report) = &baseline else {
        panic!("expected a structured build report, got {baseline:?}");
    };
    let text = report.to_string();
    assert!(text.contains("injected fault in PanicLeaf"), "{text}");
    assert!(text.contains("Down"), "dependent must be reported: {text}");
    for t in [1usize, 2, 8] {
        let got = build(BuildMode::Threads(NonZeroUsize::new(t).unwrap()));
        assert_eq!(baseline, got, "build report differs at {t} thread(s)");
    }
    std::env::remove_var("MSPEC_FAULT_PANIC_MODULE");
}

/// Persistent residual cache under corruption: torn, truncated,
/// bit-flipped or version-bumped entries are *misses* — never served,
/// never fatal — and the next store rewrites the slot.
#[test]
fn disk_cache_corruption_is_a_miss_never_fatal() {
    use mspec_cache::{spec_key, CacheEntry, DiskCache};
    use mspec_genext::{OnExhaustion, SpecStats, Strategy};

    let dir = tmpdir("cache-corrupt");
    let cache = DiskCache::open(&dir).unwrap();
    let key = spec_key(
        "src:deadbeef",
        "M.f",
        "S:3,D",
        None,
        None,
        OnExhaustion::Error,
        Strategy::BreadthFirst,
    );
    let entry = CacheEntry {
        key: key.clone(),
        entry: "M.f_3".into(),
        residual: "module M where\nf_3 x = x + 3\n".into(),
        stats: SpecStats::default(),
    };
    let path = cache.put(&entry).unwrap();
    assert_eq!(cache.get(&key), Some(entry.clone()));

    let clean = fs::read(&path).unwrap();
    // Torn writes: truncations at a spread of depths.
    for keep in [0, 1, 10, clean.len() / 3, clean.len() / 2, clean.len() - 1] {
        fs::write(&path, &clean).unwrap();
        truncate_file(&path, keep);
        assert!(cache.get(&key).is_none(), "truncated to {keep} bytes: must miss");
    }
    // Bit flips anywhere in the entry: the checksummed framing catches
    // every one of them.
    let mut rng = TestRng::seed_from_u64(0xCAC4E);
    for round in 0..64 {
        fs::write(&path, &clean).unwrap();
        let (off, mask) = flip_random_bit(&path, &mut rng);
        assert!(
            cache.get(&key).is_none(),
            "round {round}: entry with bit {mask:#04x} flipped at byte {off} was served"
        );
    }
    // A future format version is a miss too, not an error.
    fs::write(&path, &clean).unwrap();
    bump_version(&path);
    assert!(cache.get(&key).is_none());
    // The next store repairs the slot, whatever garbage sits there.
    fs::write(&path, b"torn to shreds").unwrap();
    cache.put(&entry).unwrap();
    assert_eq!(cache.get(&key), Some(entry));
    let _ = fs::remove_dir_all(&dir);
}

/// The atomic-write path under a kill mid-write: a writer that dies
/// before its rename leaves only a private temp file — never a partial
/// artefact at the final path, never a file a directory scan picks up —
/// and concurrent writers racing one path always leave some writer's
/// *complete* output.
#[test]
fn kill_mid_write_never_exposes_partial_artefacts() {
    use mspec_cogen::atomic_write;
    use mspec_cogen::files::encode_artefact;

    let dir = tmpdir("kill-mid-write");
    let target = dir.join("M.gx");
    // The exact on-disk state a killed writer leaves behind: its temp
    // file holding a partial payload, the rename never reached.
    let stale_tmp = dir.join(".M.gx.tmp-9999-0");
    fs::write(&stale_tmp, "#mspec-artefact v2 gx fnv:dead").unwrap();
    assert!(!target.exists(), "a kill mid-write must not expose a partial artefact");
    // Temp names are invisible to artefact scans: a real module tree
    // cogens and links cleanly around the dropping.
    cogen_tree(&dir);
    assert!(link_dir(&dir).is_ok(), "stale temp files must not break linking");

    // Concurrent writers racing the same final path (distinct temp
    // names, atomic renames): every read observes one writer's
    // complete output, never a torn interleaving.
    let payloads: Vec<String> = (0..4)
        .map(|i| encode_artefact("gx", &format!("payload-{i}-{}", "x".repeat(4096))))
        .collect();
    std::thread::scope(|s| {
        let target = &target;
        for p in &payloads {
            s.spawn(move || {
                for _ in 0..50 {
                    atomic_write(target, p).unwrap();
                }
            });
        }
        let payloads = &payloads;
        s.spawn(move || {
            for _ in 0..200 {
                if let Ok(text) = fs::read_to_string(target) {
                    assert!(
                        payloads.contains(&text),
                        "torn read: {} bytes observed",
                        text.len()
                    );
                }
            }
        });
    });
    // Every writer cleaned up after itself: the only temp left is the
    // simulated-kill one.
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp-") && *n != ".M.gx.tmp-9999-0")
        .collect();
    assert!(leftovers.is_empty(), "temp droppings: {leftovers:?}");
    let _ = fs::remove_dir_all(&dir);
}

/// Daemon chaos matrix: one long-lived server, one abuse sequence.
/// Malformed JSONL, non-UTF-8 bytes, a frame truncated by a mid-request
/// disconnect, a panicking request and a budget-exhausting request are
/// thrown at it in order; after each fault the *next* well-formed
/// request on a fresh or surviving connection must be answered
/// correctly.
#[test]
fn daemon_survives_the_chaos_matrix() {
    use mspec_serve::{
        ErrorClass, Request, RequestKind, Response, ResponseBody, ServeConfig, Server, SpecRequest,
    };
    use mspec_lang::{FromJson, ToJson};
    use mspec_telemetry::Recorder;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    const POWER: &str =
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

    struct Conn {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }
    impl Conn {
        fn open(port: u16) -> Conn {
            let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
            stream.set_nodelay(true).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Conn { stream, reader }
        }
        fn send_raw(&mut self, bytes: &[u8]) {
            self.stream.write_all(bytes).unwrap();
            self.stream.flush().unwrap();
        }
        fn read_response(&mut self) -> Response {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            Response::from_json_str(line.trim_end()).unwrap()
        }
        fn roundtrip(&mut self, req: &Request) -> Response {
            self.send_raw(format!("{}\n", req.to_json_compact()).as_bytes());
            self.read_response()
        }
    }

    let spec_req = |id: u64, n: u64| Request {
        id,
        kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", &format!("S:{n},D"))),
    };
    let assert_spec_ok = |resp: Response, id: u64| {
        assert_eq!(resp.id, id);
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
    };
    let assert_error = |resp: Response, class: ErrorClass| {
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, class);
        e
    };

    let server = Server::new(
        ServeConfig {
            chaos: true,
            workers: 2,
            // Keep the contained panic's crash dump out of the crate
            // directory (the default crash dir is the cwd).
            crash_dir: Some(std::env::temp_dir().to_string_lossy().into_owned()),
            ..ServeConfig::default()
        },
        Recorder::disabled(),
    );
    let handle = server.start_tcp().unwrap();
    let port = handle.port;

    let mut c = Conn::open(port);

    // 1. Not JSON at all → typed bad-request, connection survives.
    c.send_raw(b"%% total garbage %%\n");
    assert_error(c.read_response(), ErrorClass::BadRequest);
    assert_spec_ok(c.roundtrip(&spec_req(1, 2)), 1);

    // 2. Non-UTF-8 bytes → typed bad-request, frame resync at newline.
    c.send_raw(&[0xFF, 0xFE, 0x80, b'\n']);
    assert_error(c.read_response(), ErrorClass::BadRequest);
    assert_spec_ok(c.roundtrip(&spec_req(2, 3)), 2);

    // 3. Structurally valid JSON, nonsense request — id echoed back.
    c.send_raw(b"{\"id\":42,\"kind\":\"teleport\"}\n");
    let resp = c.read_response();
    assert_eq!(resp.id, 42);
    assert_error(resp, ErrorClass::BadRequest);

    // 4. A newline-free byte flood past the frame cap: the server must
    // discard it with bounded memory (never buffering the whole line),
    // answer a typed error once the line ends, and keep serving.
    let flood = vec![b'z'; mspec_serve::proto::MAX_FRAME_BYTES + 64 * 1024];
    c.send_raw(&flood);
    c.send_raw(b"\n");
    assert_error(c.read_response(), ErrorClass::BadRequest);
    assert_spec_ok(c.roundtrip(&spec_req(4, 6)), 4);

    // 5. Truncated frame + mid-request disconnect: half a JSON object,
    // no newline, then the socket dies. The server must just drop it.
    let mut half = Conn::open(port);
    half.send_raw(b"{\"id\":5,\"kind\":\"spec\",\"prog");
    drop(half);

    // 6. Mid-request disconnect *after* admission: a request is queued,
    // then the client vanishes before the reply can be written.
    let mut gone = Conn::open(port);
    gone.send_raw(format!("{}\n", spec_req(6, 9).to_json_compact()).as_bytes());
    drop(gone);

    // 7. A panicking request is contained into a typed internal error.
    let resp = c.roundtrip(&Request { id: 7, kind: RequestKind::Fault });
    let e = assert_error(resp, ErrorClass::Internal);
    assert!(e.retryable, "panics are retryable: the server is still up");

    // 8. A budget-exhausting request gets a structured budget error
    // carrying the partial-progress stats — not a hang, not a death.
    let resp = c.roundtrip(&Request {
        id: 8,
        kind: RequestKind::Spec(SpecRequest {
            fuel: Some(300),
            ..SpecRequest::inline(POWER, "Power.power", "S:40,D")
        }),
    });
    let e = assert_error(resp, ErrorClass::Budget);
    assert!(!e.retryable, "budget exhaustion is terminal for this request");
    assert!(e.stats.is_some(), "budget replies carry partial stats");

    // After the whole matrix: the surviving connection still works...
    assert_spec_ok(c.roundtrip(&spec_req(9, 4)), 9);
    // ...and so does a brand-new one.
    let mut fresh = Conn::open(port);
    assert_spec_ok(fresh.roundtrip(&spec_req(10, 5)), 10);

    server.shutdown();
    handle.join();
    let stats = server.stats();
    assert_eq!(stats.panics, 1, "{stats:?}");
    assert!(stats.bad_frames >= 3, "{stats:?}");
}

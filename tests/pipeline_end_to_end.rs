//! End-to-end pipeline coverage beyond the paper's worked examples:
//! a first-Futamura-projection interpreter workload, multi-module list
//! libraries, strategy equivalence, baseline agreement, and the file
//! emission round trip.

use mspec_core::{EngineOptions, Pipeline, SpecArg, SpecBudget, Strategy};
use mspec_lang::eval::Value;
use mspec_mix::{mix_specialise, MixOptions};

/// A tiny expression interpreter written in the object language, over
/// programs encoded as prefix lists of naturals:
/// `0 n` literal, `1` the input variable, `2 e1 e2` addition,
/// `3 e1 e2` multiplication.
const INTERP: &str = "module ListLib where\n\
    drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
    module Interp where\n\
    import ListLib\n\
    size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))\n\
    run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x\n";

/// Encodes (x + 3) * (x * x).
fn sample_program() -> Value {
    Value::list(
        [3u64, 2, 1, 0, 3, 3, 1, 1]
            .into_iter()
            .map(Value::nat)
            .collect(),
    )
}

/// First Futamura projection: specialising the interpreter to a static
/// program compiles it — the residual is straight-line arithmetic with
/// no trace of the interpreter.
#[test]
fn futamura_interpreter_specialisation() {
    let p = Pipeline::from_source(INTERP).unwrap();
    let s = p
        .specialise(
            "Interp",
            "run",
            vec![SpecArg::Static(sample_program()), SpecArg::Dynamic],
        )
        .unwrap();
    let src = s.source();
    // Fully unfolded: one residual definition, no list operations left.
    assert_eq!(s.stats.specialisations, 1, "{src}");
    assert!(!src.contains("head"), "{src}");
    assert!(!src.contains("drop"), "{src}");
    assert!(src.contains('*'), "{src}");
    // (x+3)*(x*x) at x = 4: 7 * 16.
    assert_eq!(s.run(vec![Value::nat(4)]).unwrap(), Value::nat(112));
    assert_eq!(s.run(vec![Value::nat(1)]).unwrap(), Value::nat(4));
}

/// The interpreter agrees with direct interpretation on dynamic programs
/// too (second input static instead).
#[test]
fn interpreter_source_oracle() {
    let p = Pipeline::from_source(INTERP).unwrap();
    let direct = p
        .run_source("Interp", "run", vec![sample_program(), Value::nat(4)])
        .unwrap();
    assert_eq!(direct, Value::nat(112));
}

/// A multi-module list library with a polymorphic `map`/`sum` pipeline.
const LISTS: &str = "module Lib where\n\
    map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n\
    sum xs = if null xs then 0 else head xs + sum (tail xs)\n\
    upto n = if n == 0 then [] else n : upto (n - 1)\n\
    module App where\n\
    import Lib\n\
    sumsquares n = sum (map (\\x -> x * x) (upto n))\n\
    weighted w xs = sum (map (\\x -> x * w) xs)\n";

#[test]
fn static_pipeline_computes_at_spec_time() {
    let p = Pipeline::from_source(LISTS).unwrap();
    // Everything static: the residual is a constant.
    let s = p
        .specialise("App", "sumsquares", vec![SpecArg::Static(Value::nat(4))])
        .unwrap();
    let src = s.source();
    assert!(src.contains("30"), "{src}"); // 16+9+4+1
    assert_eq!(s.run(vec![]).unwrap(), Value::nat(30));
}

#[test]
fn dynamic_weight_static_spine() {
    let p = Pipeline::from_source(LISTS).unwrap();
    let s = p
        .specialise(
            "App",
            "weighted",
            vec![SpecArg::Dynamic, SpecArg::StaticSpine(3)],
        )
        .unwrap();
    let src = s.source();
    // The spine unfolds: no residual recursion.
    assert!(!src.contains("sum_"), "{src}");
    assert!(!src.contains("map_"), "{src}");
    let got = s
        .run(vec![Value::nat(2), Value::nat(1), Value::nat(2), Value::nat(3)])
        .unwrap();
    assert_eq!(got, Value::nat(12));
}

#[test]
fn fully_dynamic_lists_residualise_recursions() {
    let p = Pipeline::from_source(LISTS).unwrap();
    let s = p
        .specialise("App", "weighted", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    let src = s.source();
    assert!(src.contains("map_") || src.contains("sum_"), "{src}");
    let xs = Value::list(vec![Value::nat(1), Value::nat(2), Value::nat(3)]);
    assert_eq!(s.run(vec![Value::nat(2), xs]).unwrap(), Value::nat(12));
}

/// Breadth-first and depth-first produce semantically identical residual
/// programs (the paper: "Both techniques lead to equivalent residual
/// programs"), with the expected space profile difference.
#[test]
fn breadth_first_and_depth_first_agree() {
    let forced = [mspec_lang::QualName::new("Power", "power")]
        .into_iter()
        .collect();
    let p = Pipeline::from_source_with(
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
        &forced,
    )
    .unwrap();
    let args = || vec![SpecArg::Static(Value::nat(12)), SpecArg::Dynamic];
    let bf = p
        .specialise_opts(
            "Power",
            "power",
            args(),
            EngineOptions { strategy: Strategy::BreadthFirst, ..EngineOptions::default() },
        )
        .unwrap();
    let df = p
        .specialise_opts(
            "Power",
            "power",
            args(),
            EngineOptions { strategy: Strategy::DepthFirst, ..EngineOptions::default() },
        )
        .unwrap();
    assert_eq!(bf.stats.specialisations, df.stats.specialisations);
    for x in [1u64, 2, 3] {
        assert_eq!(
            bf.run(vec![Value::nat(x)]).unwrap(),
            df.run(vec![Value::nat(x)]).unwrap()
        );
    }
    // The space claim (§5): breadth-first keeps ONE specialisation open;
    // depth-first suspends a chain as deep as the request graph.
    assert_eq!(bf.stats.peak_open, 1);
    assert!(df.stats.peak_open >= 11, "depth {}", df.stats.peak_open);
    // Breadth-first pays with a pending list instead.
    assert!(bf.stats.peak_pending >= 1);
}

/// The monolithic mix baseline produces semantically equivalent residual
/// programs (they are *structured* differently: one module).
#[test]
fn mix_and_genext_agree_semantically() {
    let src = "module Power where\n\
               power n x = if n == 1 then x else x * power (n - 1) x\n\
               module Main where\n\
               import Power\n\
               main a b = power 3 a + power b 2\n";
    let p = Pipeline::from_source(src).unwrap();
    let spec = p
        .specialise("Main", "main", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    let mix = mix_specialise(
        src,
        "Main",
        "main",
        vec![SpecArg::Dynamic, SpecArg::Dynamic],
        MixOptions::default(),
    )
    .unwrap();
    let mix_resolved = mspec_lang::resolve::resolve(mix.residual.program.clone()).unwrap();
    for (a, b) in [(2u64, 3u64), (5, 1), (0, 4)] {
        let want = p
            .run_source("Main", "main", vec![Value::nat(a), Value::nat(b)])
            .unwrap();
        assert_eq!(spec.run(vec![Value::nat(a), Value::nat(b)]).unwrap(), want);
        let mut ev = mspec_lang::eval::Evaluator::new(&mix_resolved);
        assert_eq!(
            ev.call(&mix.residual.entry, vec![Value::nat(a), Value::nat(b)])
                .unwrap(),
            want
        );
    }
    // Structure differs: genext output follows the module structure,
    // mix's is monolithic.
    assert!(spec.residual.program.modules.len() > 1);
    assert_eq!(mix.residual.program.modules.len(), 1);
}

/// Residual programs survive the two-pass file emission and parse back
/// to the same behaviour.
#[test]
fn residual_file_emission_roundtrip() {
    let forced = [
        mspec_lang::QualName::new("Power", "power"),
        mspec_lang::QualName::new("Twice", "twice"),
        mspec_lang::QualName::new("Main", "main"),
    ]
    .into_iter()
    .collect();
    let p =
        Pipeline::from_program_with(mspec_lang::builder::paper_section5_program(), &forced)
            .unwrap();
    let s = p.specialise("Main", "main", vec![SpecArg::Dynamic]).unwrap();

    let dir = std::env::temp_dir().join(format!("mspec-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let files = mspec_core::write_residual(&dir, &s.residual).unwrap();
    assert_eq!(files.len(), 3);

    // Read every file back, parse, resolve, run.
    let mut text = String::new();
    for f in &files {
        text.push_str(&std::fs::read_to_string(f).unwrap());
        text.push('\n');
    }
    let reparsed = mspec_lang::parser::parse_program(&text).unwrap();
    let resolved = mspec_lang::resolve::resolve(reparsed).unwrap();
    let mut ev = mspec_lang::eval::Evaluator::new(&resolved);
    let got = ev.call(&s.residual.entry, vec![Value::nat(2)]).unwrap();
    assert_eq!(got, Value::nat(512));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Specialisation-time errors surface cleanly: a program that diverges
/// on its static data exhausts fuel instead of hanging.
#[test]
fn divergent_static_computation_exhausts_fuel() {
    // Unfolding 10k calls deep needs more stack than the default debug
    // test thread provides.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let p = Pipeline::from_source(
                "module M where\nloop n = loop (n + 1)\nmain x = loop 0 + x\n",
            )
            .unwrap();
            let err = p
                .specialise_opts(
                    "M",
                    "main",
                    vec![SpecArg::Dynamic],
                    EngineOptions {
                        budget: SpecBudget::with_steps(10_000),
                        ..EngineOptions::default()
                    },
                )
                .unwrap_err();
            assert!(err.to_string().contains("fuel"), "{err}");
        })
        .unwrap()
        .join()
        .unwrap();
}

/// Unbounded polyvariance — a static counter growing towards a dynamic
/// bound — is caught by the specialisation limit instead of exhausting
/// memory (the known hazard of offline polyvariant specialisation).
#[test]
fn unbounded_polyvariance_is_caught() {
    let p = Pipeline::from_source(
        "module M where\nupto a b = if b <= a then [] else a : upto (a + 1) b\nmain n = upto 1 n\n",
    )
    .unwrap();
    let err = p
        .specialise_opts(
            "M",
            "main",
            vec![SpecArg::Dynamic],
            EngineOptions {
                budget: SpecBudget { max_specialisations: 500, ..SpecBudget::default() },
                ..EngineOptions::default()
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("polyvariance"), "{err}");
}

/// Static errors in the static computation are detected at
/// specialisation time (running the source would fail the same way).
#[test]
fn static_division_by_zero_is_caught() {
    let p = Pipeline::from_source("module M where\nmain x = 1 / 0 + x\n").unwrap();
    let err = p.specialise("M", "main", vec![SpecArg::Dynamic]).unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

/// Residual programs are themselves valid pipeline inputs — the residual
/// of a residual is consistent (idempotence of full dynamisation).
#[test]
fn residual_programs_re_enter_the_pipeline() {
    let p = Pipeline::from_source(
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
    )
    .unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Static(Value::nat(4)), SpecArg::Dynamic])
        .unwrap();
    let p2 = Pipeline::from_program(s.residual.program.clone()).unwrap();
    let s2 = p2
        .specialise(
            s.residual.entry.module.as_str(),
            s.residual.entry.name.as_str(),
            vec![SpecArg::Dynamic],
        )
        .unwrap();
    assert_eq!(s2.run(vec![Value::nat(3)]).unwrap(), Value::nat(81));
}

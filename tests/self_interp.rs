//! The paper's §8 planned application, in miniature: an interpreter for
//! a (first-order, unary) functional language, written in the object
//! language across modules, specialised with respect to a static encoded
//! program — the first Futamura projection over *recursive* programs.
//!
//! Encoded expressions are prefix lists of naturals:
//!
//! ```text
//! 0 n        literal n
//! 1 i        variable (de Bruijn index into the environment)
//! 2 e1 e2    addition            3 e1 e2    multiplication
//! 7 e1 e2    (saturating) subtraction
//! 4 c t e    if c == 0 then t else e
//! 5 j e      call function j on e (functions are unary)
//! 6 e1 e2    let: evaluate e1, push, evaluate e2
//! ```
//!
//! Recursion in the *encoded* program becomes memoised residual
//! recursion: each (body, environment-skeleton) pair is specialised at
//! most once, so specialisation terminates even though the interpreter
//! recursion is driven entirely by static data. The interpreter itself
//! residualises naturally: its `ifz` case tests a dynamic value, making
//! `eval` non-unfoldable by the paper's rule.

use mspec_core::{Pipeline, SpecArg};
use mspec_lang::eval::Value;

const SELF_INTERP: &str = "module ListLib where\n\
    drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
    nth n xs = if n == 0 then head xs else nth (n - 1) (tail xs)\n\
    module SelfInterp where\n\
    import ListLib\n\
    size p = if head p <= 1 then 2 else if head p == 5 then 2 + size (drop 2 p) else if head p == 4 then let s1 = size (tail p) in let s2 = size (drop s1 (tail p)) in 1 + s1 + s2 + size (drop (s1 + s2) (tail p)) else let s1 = size (tail p) in 1 + s1 + size (drop s1 (tail p))\n\
    eval fns p env = if head p == 0 then head (tail p) else if head p == 1 then nth (head (tail p)) env else if head p == 2 then eval fns (tail p) env + eval fns (drop (size (tail p)) (tail p)) env else if head p == 3 then eval fns (tail p) env * eval fns (drop (size (tail p)) (tail p)) env else if head p == 7 then eval fns (tail p) env - eval fns (drop (size (tail p)) (tail p)) env else if head p == 4 then (if eval fns (tail p) env == 0 then eval fns (drop (size (tail p)) (tail p)) env else eval fns (drop (size (tail p) + size (drop (size (tail p)) (tail p))) (tail p)) env) else if head p == 5 then eval fns (nth (head (tail p)) fns) (eval fns (drop 2 p) env : []) else eval fns (drop (size (tail p)) (tail p)) (eval fns (tail p) env : env)\n";

/// Builders for encoded programs.
mod enc {
    pub fn lit(n: u64) -> Vec<u64> {
        vec![0, n]
    }
    pub fn var(i: u64) -> Vec<u64> {
        vec![1, i]
    }
    fn bin(op: u64, a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        let mut v = vec![op];
        v.extend(a);
        v.extend(b);
        v
    }
    pub fn add(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        bin(2, a, b)
    }
    pub fn mul(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        bin(3, a, b)
    }
    pub fn sub(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        bin(7, a, b)
    }
    pub fn ifz(c: Vec<u64>, t: Vec<u64>, e: Vec<u64>) -> Vec<u64> {
        let mut v = vec![4];
        v.extend(c);
        v.extend(t);
        v.extend(e);
        v
    }
    pub fn call(j: u64, a: Vec<u64>) -> Vec<u64> {
        let mut v = vec![5, j];
        v.extend(a);
        v
    }
    pub fn let_(rhs: Vec<u64>, body: Vec<u64>) -> Vec<u64> {
        bin(6, rhs, body)
    }
}

fn to_value(body: &[u64]) -> Value {
    Value::list(body.iter().copied().map(Value::nat).collect())
}

fn fn_table(bodies: &[Vec<u64>]) -> Value {
    Value::list(bodies.iter().map(|b| to_value(b)).collect())
}

/// Specialises the interpreter to `bodies`, entering at function 0 with
/// one dynamic argument, and checks it against `reference` on `inputs`.
fn compile_and_check(bodies: &[Vec<u64>], reference: impl Fn(u64) -> u64, inputs: &[u64]) {
    let pipeline = Pipeline::from_source(SELF_INTERP).unwrap();
    let spec = pipeline
        .specialise(
            "SelfInterp",
            "eval",
            vec![
                SpecArg::Static(fn_table(bodies)),
                SpecArg::Static(to_value(&bodies[0])),
                SpecArg::StaticSpine(1),
            ],
        )
        .unwrap();
    let src = spec.source();
    // The interpreter is gone: no opcode dispatch, no list scanning of
    // the encoded program survives into the residual.
    assert!(!src.contains("size"), "interpreter left in residual:\n{src}");
    assert!(!src.contains("drop"), "interpreter left in residual:\n{src}");
    for &x in inputs {
        let got = spec.run(vec![Value::nat(x)]).unwrap();
        assert_eq!(got, Value::nat(reference(x)), "at input {x}\n{src}");
    }
}

#[test]
fn compiles_straight_line_arithmetic() {
    // f0(x) = (x + 3) * x
    let body = enc::mul(enc::add(enc::var(0), enc::lit(3)), enc::var(0));
    compile_and_check(&[body], |x| (x + 3) * x, &[0, 1, 4, 10]);
}

#[test]
fn compiles_recursive_factorial() {
    // f0(x) = if x == 0 then 1 else x * f0(x - 1)
    let body = enc::ifz(
        enc::var(0),
        enc::lit(1),
        enc::mul(enc::var(0), enc::call(0, enc::sub(enc::var(0), enc::lit(1)))),
    );
    compile_and_check(&[body], |x| (1..=x).product::<u64>().max(1), &[0, 1, 5, 8]);
}

#[test]
fn compiles_mutually_recursive_functions() {
    // f0(x) = if x == 0 then 1 else f1(x - 1)     (even?)
    // f1(x) = if x == 0 then 0 else f0(x - 1)     (odd?)
    let even = enc::ifz(
        enc::var(0),
        enc::lit(1),
        enc::call(1, enc::sub(enc::var(0), enc::lit(1))),
    );
    let odd = enc::ifz(
        enc::var(0),
        enc::lit(0),
        enc::call(0, enc::sub(enc::var(0), enc::lit(1))),
    );
    compile_and_check(&[even, odd], |x| u64::from(x % 2 == 0), &[0, 1, 2, 7, 10]);
}

#[test]
fn compiles_lets_and_nested_scopes() {
    // f0(x) = let y = x + 1 in let z = y * y in z - x
    let body = enc::let_(
        enc::add(enc::var(0), enc::lit(1)),
        enc::let_(
            enc::mul(enc::var(0), enc::var(0)),
            enc::sub(enc::var(0), enc::var(2)),
        ),
    );
    compile_and_check(&[body], |x| (x + 1) * (x + 1) - x, &[0, 3, 9]);
}

#[test]
fn interpreting_dynamically_still_works() {
    // Sanity: the interpreter itself is a correct interpreter when run
    // directly (no specialisation).
    let pipeline = Pipeline::from_source(SELF_INTERP).unwrap();
    let body = enc::mul(enc::var(0), enc::var(0));
    let got = pipeline
        .run_source(
            "SelfInterp",
            "eval",
            vec![
                fn_table(std::slice::from_ref(&body)),
                to_value(&body),
                Value::list(vec![Value::nat(7)]),
            ],
        )
        .unwrap();
    assert_eq!(got, Value::nat(49));
}

#[test]
fn residual_is_recursive_for_recursive_programs() {
    // The compiled factorial must contain a residual self-recursive
    // function (not an unrolled loop): finitely many specialisations.
    let body = enc::ifz(
        enc::var(0),
        enc::lit(1),
        enc::mul(enc::var(0), enc::call(0, enc::sub(enc::var(0), enc::lit(1)))),
    );
    let pipeline = Pipeline::from_source(SELF_INTERP).unwrap();
    let spec = pipeline
        .specialise(
            "SelfInterp",
            "eval",
            vec![
                SpecArg::Static(fn_table(std::slice::from_ref(&body))),
                SpecArg::Static(to_value(&body)),
                SpecArg::StaticSpine(1),
            ],
        )
        .unwrap();
    // Memoisation closed the loop: specialisation terminated with a
    // bounded number of residual definitions and at least one memo hit.
    assert!(spec.stats.memo_hits >= 1, "{:?}", spec.stats);
    assert!(spec.stats.specialisations < 50, "{:?}", spec.stats);
}

//! Property tests: specialisation preserves semantics.
//!
//! For randomly generated well-typed, *total* modular programs (see
//! `mspec-testkit`), any entry function, any division and any inputs:
//!
//!   run(residual, dynamic-inputs) == run(source, all-inputs)
//!
//! and the same holds for the mix baseline, for both engine strategies,
//! and for residual programs re-entered into the interpreter after a
//! pretty-print/parse round trip.

use mspec_core::{EngineOptions, Pipeline, SpecArg, Strategy};
use mspec_lang::eval::{Evaluator, Value};
use mspec_lang::resolve::resolve;
use mspec_mix::{mix_specialise_program, MixOptions};
use mspec_testkit::random::{random_program, random_value, GTy, GenConfig};
use mspec_testkit::TestRng;

/// One generated test case: entry function, its division, all inputs
/// (for the oracle) and the dynamic subset (for the residual program).
type Case = (mspec_lang::QualName, Vec<SpecArg>, Vec<Value>, Vec<Value>);

/// Builds a test case for one generated program, skipping functions with
/// closure parameters.
fn pick_case(g: &mspec_testkit::random::GeneratedProgram, rng: &mut TestRng) -> Option<Case> {
    let candidates: Vec<_> = g
        .functions
        .iter()
        .filter(|(_, params)| params.iter().all(|t| *t != GTy::FunNat))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let (entry, params) = candidates[rng.gen_range(0..candidates.len())].clone();
    let mut spec_args = Vec::new();
    let mut all_args = Vec::new();
    let mut dyn_args = Vec::new();
    for t in params {
        let v = random_value(t, rng)?;
        all_args.push(v.clone());
        if rng.gen_bool(0.5) {
            spec_args.push(SpecArg::Static(v));
        } else {
            spec_args.push(SpecArg::Dynamic);
            dyn_args.push(all_args.last().unwrap().clone());
        }
    }
    Some((entry, spec_args, all_args, dyn_args))
}

fn run_case(seed: u64, case_seed: u64) {
    let g = random_program(&GenConfig {
        modules: 3,
        defs_per_module: 3,
        max_depth: 4,
        seed,
    });
    let mut rng = TestRng::seed_from_u64(case_seed);
    let Some((entry, spec_args, all_args, dyn_args)) = pick_case(&g, &mut rng) else {
        return;
    };

    // Oracle: run the source program.
    let resolved = resolve(g.program.clone()).unwrap();
    let mut ev = Evaluator::new(&resolved);
    let expected = ev.call(&entry, all_args.clone()).unwrap();

    // Genext pipeline, both strategies.
    let pipeline = Pipeline::from_program(g.program.clone())
        .unwrap_or_else(|e| panic!("pipeline failed on seed {seed}: {e}\n{}", mspec_lang::pretty::pretty_program(&g.program)));
    for strategy in [Strategy::BreadthFirst, Strategy::DepthFirst] {
        let s = pipeline
            .specialise_opts(
                entry.module.as_str(),
                entry.name.as_str(),
                spec_args.clone(),
                EngineOptions { strategy, ..EngineOptions::default() },
            )
            .unwrap_or_else(|e| {
                panic!(
                    "specialise failed (seed {seed}, {strategy:?}): {e}\n{}",
                    mspec_lang::pretty::pretty_program(&g.program)
                )
            });
        let got = s.run(dyn_args.clone()).unwrap_or_else(|e| {
            panic!(
                "residual run failed (seed {seed}): {e}\nresidual:\n{}",
                s.source()
            )
        });
        prop_assert_eq_like(&got, &expected, seed, &s.source());

        // Pretty-print / parse round trip of the residual program.
        let text = s.source();
        let reparsed = mspec_lang::parser::parse_program(&text)
            .unwrap_or_else(|e| panic!("residual unparseable (seed {seed}): {e}\n{text}"));
        let rr = resolve(reparsed).unwrap();
        let mut ev2 = Evaluator::new(&rr);
        let got2 = ev2.call(&s.residual.entry, dyn_args.clone()).unwrap();
        prop_assert_eq_like(&got2, &expected, seed, &text);
    }

    // Mix baseline, polyvariant and monovariant.
    for polyvariant in [true, false] {
        let out = mix_specialise_program(
            g.program.clone(),
            entry.module.as_str(),
            entry.name.as_str(),
            spec_args.clone(),
            MixOptions { polyvariant, ..MixOptions::default() },
        )
        .unwrap_or_else(|e| panic!("mix failed (seed {seed}, poly={polyvariant}): {e}"));
        let rr = resolve(out.residual.program.clone()).unwrap();
        let mut ev3 = Evaluator::new(&rr);
        let got3 = ev3
            .call(&out.residual.entry, dyn_args.clone())
            .unwrap_or_else(|e|

                panic!(
                    "mix residual run failed (seed {seed}, poly={polyvariant}): {e}\n{}",
                    mspec_lang::pretty::pretty_program(&out.residual.program)
                ));
        prop_assert_eq_like(&got3, &expected, seed, "mix");
    }
}

fn prop_assert_eq_like(got: &Value, expected: &Value, seed: u64, context: &str) {
    assert_eq!(got, expected, "seed {seed}; context:\n{context}");
}

/// The headline property across programs, divisions and strategies:
/// 48 randomised cases drawn from a fixed-seed stream.
#[test]
fn specialisation_preserves_semantics() {
    let mut rng = TestRng::seed_from_u64(0xE901);
    for _ in 0..48 {
        let seed = rng.gen_range(0..5_000u64);
        let case_seed = rng.gen_range(0..1_000u64);
        run_case(seed, case_seed);
    }
}

/// A deterministic sweep across many seeds (fast, no shrinking) to keep
/// coverage high even when proptest's random sampling is unlucky.
#[test]
fn seed_sweep() {
    for seed in 0..40 {
        run_case(seed, seed.wrapping_mul(7919));
    }
}

//! Observability integration tests: traces are deterministic modulo
//! timestamps, the power example's event log matches a golden file,
//! emitted logs pass `telemetry::validate`, and `telemetry::explain`
//! reconstructs the request chain of residual functions.
//!
//! Determinism tests build under [`BuildMode::Sequential`]: span ids and
//! spec seqs come from monotone counters, but parallel level builds
//! interleave the *order* in which threads append events.

use std::collections::BTreeSet;

use mspec_core::telemetry::{self, EventKind, Snapshot};
use mspec_core::{BuildMode, EngineOptions, Pipeline, Recorder, SpecArg};
use mspec_lang::eval::Value;
use mspec_lang::parser::parse_program;
use mspec_lang::QualName;
use mspec_testkit::{
    library_program, random_program, scrub_timestamps, GenConfig, LibraryShape,
};

const POWER: &str =
    "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

/// The interpreter workload from `examples/programs/interp.mspec` /
/// `pipeline_end_to_end.rs`: prefix-encoded expressions over naturals.
const INTERP: &str = "module ListLib where\n\
    drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
    module Interp where\n\
    import ListLib\n\
    size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))\n\
    run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x\n";

/// Encodes (x + 3) * (x * x).
fn sample_program() -> Value {
    Value::list(
        [3u64, 2, 1, 0, 3, 3, 1, 1]
            .into_iter()
            .map(Value::nat)
            .collect(),
    )
}

/// One fully traced sequential run: pipeline build + specialisation,
/// with `Power.power` forced residual so the event log contains the
/// polyvariant Entry → Residualise → MemoHit chain.
fn traced_power_run() -> Snapshot {
    let rec = Recorder::enabled();
    let forced: BTreeSet<QualName> = [QualName::new("Power", "power")].into();
    let program = parse_program(POWER).unwrap();
    let (p, _times) =
        Pipeline::from_program_traced(program, &forced, BuildMode::Sequential, &rec).unwrap();
    let s = p
        .specialise_traced(
            "Power",
            "power",
            vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic],
            EngineOptions::default(),
            &rec,
        )
        .unwrap();
    assert_eq!(s.run(vec![Value::nat(2)]).unwrap(), Value::nat(8));
    rec.snapshot()
}

#[test]
fn traced_jsonl_is_deterministic_modulo_timestamps() {
    let a = scrub_timestamps(&traced_power_run().to_jsonl());
    let b = scrub_timestamps(&traced_power_run().to_jsonl());
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// A fixed-seed `TestRng` workload traces identically across runs —
/// the generator is deterministic per seed and sequential builds order
/// events deterministically.
#[test]
fn random_program_trace_is_deterministic() {
    let run = || {
        let rec = Recorder::enabled();
        let generated = random_program(&GenConfig { seed: 7, ..GenConfig::default() });
        Pipeline::from_program_traced(
            generated.program,
            &BTreeSet::new(),
            BuildMode::Sequential,
            &rec,
        )
        .unwrap();
        scrub_timestamps(&rec.snapshot().to_jsonl())
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// Full build + specialise of a synthetic multi-module library is
/// trace-deterministic too (this is the workload the scaling benches
/// use, so its trace stability matters most).
#[test]
fn library_trace_is_deterministic() {
    let shape = LibraryShape {
        modules: 2,
        fns_per_module: 3,
        used_fns: 2,
        exponent: 4,
        cross_module: true,
    };
    let run = || {
        let rec = Recorder::enabled();
        let (program, entry) = library_program(&shape);
        let (p, _) =
            Pipeline::from_program_traced(program, &BTreeSet::new(), BuildMode::Sequential, &rec)
                .unwrap();
        p.specialise_traced(
            entry.module.as_str(),
            entry.name.as_str(),
            vec![SpecArg::Dynamic],
            EngineOptions::default(),
            &rec,
        )
        .unwrap();
        scrub_timestamps(&rec.snapshot().to_jsonl())
    };
    assert_eq!(run(), run());
}

/// Both work-stealing layers report scheduler telemetry: a threaded
/// pipeline build and a threaded specialisation each emit `sched.tasks`
/// (one per unit of work) and a `sched.steals` counter.
#[test]
fn threaded_runs_emit_scheduler_counters() {
    let shape = LibraryShape {
        modules: 4,
        fns_per_module: 4,
        used_fns: 3,
        exponent: 5,
        cross_module: true,
    };
    let (program, entry) = library_program(&shape);
    let n_modules = program.modules.len() as u64;
    let threads = std::num::NonZeroUsize::new(4).unwrap();

    let rec = Recorder::enabled();
    let (p, _) =
        Pipeline::from_program_traced(program, &BTreeSet::new(), BuildMode::Threads(threads), &rec)
            .unwrap();
    let build_counters = rec.snapshot().counters;
    let count = |snap: &[(String, u64)], key: &str| {
        snap.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    };
    let tasks = count(&build_counters, "sched.tasks").expect("build sched.tasks counter");
    assert_eq!(tasks, n_modules, "one scheduler task per module");
    assert!(count(&build_counters, "sched.steals").is_some(), "build sched.steals counter");

    let rec = Recorder::enabled();
    let s = p
        .specialise_threaded(
            entry.module.as_str(),
            entry.name.as_str(),
            vec![SpecArg::Dynamic],
            EngineOptions::default(),
            threads,
            &rec,
        )
        .unwrap();
    let spec_counters = rec.snapshot().counters;
    let tasks = count(&spec_counters, "sched.tasks").expect("spec sched.tasks counter");
    assert!(
        tasks >= s.stats.specialisations as u64,
        "every residual def is a scheduler task ({tasks} tasks, {} defs)",
        s.stats.specialisations
    );
    assert!(count(&spec_counters, "sched.steals").is_some(), "spec sched.steals counter");
}

/// The power example's scrubbed event log matches the checked-in golden
/// file byte for byte. Regenerate with
/// `MSPEC_BLESS=1 cargo test -p mspec-core --test telemetry_trace`.
#[test]
fn golden_power_event_log() {
    let got = scrub_timestamps(&traced_power_run().to_jsonl());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/events_power.jsonl");
    if std::env::var_os("MSPEC_BLESS").is_some() {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap();
    assert_eq!(got, want, "golden event log drifted; bless with MSPEC_BLESS=1");
}

/// Every pipeline phase shows up as a span, and the spec engine records
/// one decision event per request.
#[test]
fn trace_covers_every_phase() {
    let snap = traced_power_run();
    let span_names: BTreeSet<&str> = snap
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SpanBegin { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for phase in [
        "resolve",
        "build",
        "build-module",
        "typecheck",
        "bta",
        "cogen",
        "link",
        "specialise",
    ] {
        assert!(span_names.contains(phase), "missing span {phase:?} in {span_names:?}");
    }
    let specs = snap
        .events
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::Spec(_)))
        .count();
    // Forced power 3: entry + two residual requests, plus memo traffic.
    assert!(specs >= 3, "only {specs} spec events");
}

/// Both emitted formats pass the schema checker; corrupt input does not.
#[test]
fn emitted_logs_pass_validation() {
    let snap = traced_power_run();

    let jsonl = snap.to_jsonl();
    let report = telemetry::validate(&jsonl).unwrap();
    assert_eq!(report.format, "jsonl");
    assert!(report.spec_events >= 3, "{report:?}");
    assert!(report.spans > 0);

    let chrome = snap.to_chrome().write_compact();
    let report = telemetry::validate(&chrome).unwrap();
    assert_eq!(report.format, "chrome");
    assert!(report.events > 0);

    assert!(telemetry::validate("{\"ev\":\"nonsense\"}\n").is_err());
    assert!(telemetry::validate("not json at all").is_err());
}

/// The JSONL emitter round-trips: parsing its own output and re-emitting
/// reproduces the text (modulo nothing — timestamps survive the trip).
#[test]
fn jsonl_round_trips_through_parse() {
    let jsonl = traced_power_run().to_jsonl();
    let reparsed = Snapshot::parse_jsonl(&jsonl).unwrap();
    assert_eq!(reparsed.to_jsonl(), jsonl);
}

/// `explain` reconstructs the forced power chain from a parsed log:
/// three residual versions, each requested from its parent.
#[test]
fn explain_reconstructs_power_chain() {
    let jsonl = traced_power_run().to_jsonl();
    let snap = Snapshot::parse_jsonl(&jsonl).unwrap();
    let text = telemetry::explain(&snap, "power").unwrap();
    assert!(text.contains("residual version(s)"), "{text}");
    assert!(text.contains("requested from:"), "{text}");
    assert!(text.contains("<session entry>"), "{text}");
    // The deepest residual's chain walks back through its ancestors.
    assert!(text.contains(" <- "), "{text}");
}

/// `explain` on the interpreter example: the entry is residualised once
/// (the first Futamura projection), while the library's `drop` is fully
/// unfolded at static call sites and reported as such.
#[test]
fn explain_interpreter_example() {
    let rec = Recorder::enabled();
    let program = parse_program(INTERP).unwrap();
    let (p, _) =
        Pipeline::from_program_traced(program, &BTreeSet::new(), BuildMode::Sequential, &rec)
            .unwrap();
    p.specialise_traced(
        "Interp",
        "run",
        vec![SpecArg::Static(sample_program()), SpecArg::Dynamic],
        EngineOptions::default(),
        &rec,
    )
    .unwrap();
    let snap = Snapshot::parse_jsonl(&rec.snapshot().to_jsonl()).unwrap();

    let run = telemetry::explain(&snap, "run").unwrap();
    assert!(run.contains("1 residual version(s)"), "{run}");
    assert!(run.contains("<session entry>"), "{run}");

    let drop = telemetry::explain(&snap, "drop").unwrap();
    assert!(drop.contains("no residual versions"), "{drop}");
    assert!(drop.contains("unfolded"), "{drop}");

    assert!(telemetry::explain(&snap, "no_such_fn").is_none());
}

/// A disabled recorder threaded through the whole pipeline records
/// nothing and emits empty documents.
#[test]
fn disabled_recorder_emits_nothing() {
    let rec = Recorder::disabled();
    let program = parse_program(POWER).unwrap();
    let (p, _) =
        Pipeline::from_program_traced(program, &BTreeSet::new(), BuildMode::Sequential, &rec)
            .unwrap();
    p.specialise_traced(
        "Power",
        "power",
        vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic],
        EngineOptions::default(),
        &rec,
    )
    .unwrap();
    let snap = rec.snapshot();
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.hists.is_empty());
    assert!(snap.to_jsonl().is_empty());
}

//! Targeted tests for the binding-time coercion machinery: lifting
//! static data to code, eta-expanding static closures into residual
//! lambdas, and the "boxing" rule that keeps polymorphic positions sound
//! for partially static data.

use mspec_core::{Pipeline, SpecArg};
use mspec_lang::eval::Value;

/// A static closure flowing into a dynamic context (both branches of a
/// residual conditional) is eta-expanded into a residual lambda.
#[test]
fn closures_eta_expand_into_residual_lambdas() {
    let p = Pipeline::from_source(
        "module M where\n\
         main b y = (if b == 0 then \\x -> x + 1 else \\x -> x * 2) @ y\n",
    )
    .unwrap();
    let s = p
        .specialise("M", "main", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    let src = s.source();
    assert!(src.contains('\\'), "expected residual lambdas:\n{src}");
    assert_eq!(
        s.run(vec![Value::nat(0), Value::nat(10)]).unwrap(),
        Value::nat(11)
    );
    assert_eq!(
        s.run(vec![Value::nat(1), Value::nat(10)]).unwrap(),
        Value::nat(20)
    );
}

/// Static data lifted into a dynamic context becomes literal code,
/// including whole lists.
#[test]
fn static_lists_lift_to_cons_literals() {
    let p = Pipeline::from_source(
        "module M where\n\
         sum xs = if null xs then 0 else head xs + sum (tail xs)\n\
         main b = sum (if b == 0 then 1 : 2 : [] else 3 : [])\n",
    )
    .unwrap();
    let s = p.specialise("M", "main", vec![SpecArg::Dynamic]).unwrap();
    let src = s.source();
    // The two static lists appear as list literals in the residual if.
    assert!(src.contains("1 : 2 : []"), "{src}");
    assert_eq!(s.run(vec![Value::nat(0)]).unwrap(), Value::nat(3));
    assert_eq!(s.run(vec![Value::nat(7)]).unwrap(), Value::nat(3));
}

/// Partially static data flowing through a *polymorphic* function forces
/// the polymorphic position dynamic (the boxing rule) — conservative,
/// but semantics must be preserved.
#[test]
fn partially_static_data_through_polymorphic_id_is_sound() {
    let p = Pipeline::from_source(
        "module L where\n\
         id2 x = x\n\
         module B where\n\
         import L\n\
         h zs = head (id2 zs) + 1\n",
    )
    .unwrap();
    // zs: static spine (2 elements), dynamic elements.
    let s = p.specialise("B", "h", vec![SpecArg::StaticSpine(2)]).unwrap();
    let got = s.run(vec![Value::nat(41), Value::nat(0)]).unwrap();
    assert_eq!(got, Value::nat(42));
}

/// The same list used monomorphically keeps its partially static
/// precision: the spine unfolds, only elements stay dynamic.
#[test]
fn partially_static_data_stays_precise_monomorphically() {
    let p = Pipeline::from_source(
        "module M where\n\
         sum xs = if null xs then 0 else head xs + sum (tail xs)\n\
         h zs = sum zs\n",
    )
    .unwrap();
    let s = p.specialise("M", "h", vec![SpecArg::StaticSpine(3)]).unwrap();
    let src = s.source();
    // Fully unfolded: no residual sum, just zs0 + (zs1 + (zs2 + 0)).
    assert!(!src.contains("sum_"), "{src}");
    assert!(src.contains("zs0"), "{src}");
    let got = s
        .run(vec![Value::nat(1), Value::nat(2), Value::nat(3)])
        .unwrap();
    assert_eq!(got, Value::nat(6));
}

/// Dynamic-spine lists force their elements dynamic (well-formedness):
/// a static element inside a dynamic list is lifted, not lost.
#[test]
fn static_elements_survive_inside_dynamic_lists() {
    let p = Pipeline::from_source(
        "module M where\n\
         main zs = 100 : zs\n",
    )
    .unwrap();
    let s = p.specialise("M", "main", vec![SpecArg::Dynamic]).unwrap();
    let src = s.source();
    assert!(src.contains("100"), "{src}");
    let got = s.run(vec![Value::list(vec![Value::nat(1)])]).unwrap();
    assert_eq!(got, Value::list(vec![Value::nat(100), Value::nat(1)]));
}

/// Coercion of booleans and comparison results across binding times.
#[test]
fn boolean_coercions() {
    let p = Pipeline::from_source(
        "module M where\n\
         main y = if true && 1 < 2 then y else y + 1\n",
    )
    .unwrap();
    let s = p.specialise("M", "main", vec![SpecArg::Dynamic]).unwrap();
    // The static condition decides at specialisation time.
    assert_eq!(s.source().trim(), "module M where\nmain y = y");
    assert_eq!(s.run(vec![Value::nat(9)]).unwrap(), Value::nat(9));
}

/// A static closure captured inside a static list, passed through a
/// residual function, keeps working (free functions of closures travel
/// with the skeleton).
#[test]
fn closures_inside_static_structures() {
    let p = Pipeline::from_source(
        "module M where\n\
         applyall fs x = if null fs then x else applyall (tail fs) ((head fs) @ x)\n\
         main y = applyall ((\\a -> a + 1) : (\\b -> b * 2) : []) y\n",
    )
    .unwrap();
    let s = p.specialise("M", "main", vec![SpecArg::Dynamic]).unwrap();
    let src = s.source();
    // The function list is static: applyall unfolds completely.
    assert!(!src.contains("applyall_"), "{src}");
    assert_eq!(s.run(vec![Value::nat(5)]).unwrap(), Value::nat(12));
}

/// The compiled residual runner agrees with the reference interpreter on
/// residual programs (spot check; the property suite covers breadth).
#[test]
fn run_compiled_agrees_with_run() {
    let p = Pipeline::from_source(
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
    )
    .unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Dynamic, SpecArg::Static(Value::nat(3))])
        .unwrap();
    let slow = s.run(vec![Value::nat(6)]).unwrap();
    let (fast, steps) = s.run_compiled(vec![Value::nat(6)]).unwrap();
    assert_eq!(slow, fast);
    assert!(steps > 0);
}

//! PR6 determinism matrix: the threaded specialisation engine must
//! produce *byte-identical* residual programs — and identical stats and
//! provenance — at every thread count, for every workload.
//!
//! The threaded engine evaluates bodies concurrently under placeholder
//! names and replays memo claims sequentially on the driver thread, so
//! canonical residual names, placement, gensym suffixes, provenance
//! order and event gauges are all assigned in breadth-first order
//! regardless of which worker got there first. These tests are the
//! oracle for that contract.

use std::collections::BTreeSet;
use std::num::NonZeroUsize;

use mspec_core::{EngineOptions, Pipeline, PipelineError, Recorder, SpecArg, Specialised};
use mspec_genext::{BudgetResource, SpecBudget, SpecError};
use mspec_lang::eval::Value;
use mspec_lang::QualName;
use mspec_testkit::{library_program, LibraryShape};

const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

/// The interpreter workload (E3): prefix-encoded expressions over
/// naturals, specialised to the program `(x + 3) * (x * x)`.
const INTERP: &str = "module ListLib where\n\
    drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
    module Interp where\n\
    import ListLib\n\
    size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))\n\
    run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x\n";

/// Encodes (x + 3) * (x * x).
fn sample_program() -> Value {
    Value::list([3u64, 2, 1, 0, 3, 3, 1, 1].into_iter().map(Value::nat).collect())
}

/// A skewed frontier: one deep forced-residual chain (`walk 40`) next to
/// a fan of short chains whose tails the deep chain later *rejoins*
/// through the shared memo table (walk 9, 8, … are claimed first by the
/// short chains, then memo-hit by the long one — cross-round,
/// cross-worker memo traffic).
const SKEWED: &str = "module Deep where\n\
    walk n x = if n == 1 then x else x + walk (n - 1) x\n\
    module Main where\n\
    import Deep\n\
    main x = walk 40 x + (walk 3 (x + 1) + (walk 4 (x + 2) + (walk 5 (x + 3) + (walk 6 (x + 4) + (walk 7 (x + 5) + (walk 8 (x + 6) + walk 9 (x + 7)))))))\n";

/// Specialises sequentially, then at each matrix thread count, and
/// asserts byte-identical source plus identical stats and provenance.
fn assert_matrix(
    p: &Pipeline,
    module: &str,
    name: &str,
    args: &[SpecArg],
    options: EngineOptions,
) -> Specialised {
    let seq = p
        .specialise_opts(module, name, args.to_vec(), options)
        .unwrap_or_else(|e| panic!("sequential {module}.{name} failed: {e}"));
    for t in THREAD_MATRIX {
        let par = p
            .specialise_threaded(
                module,
                name,
                args.to_vec(),
                options,
                nz(t),
                &Recorder::disabled(),
            )
            .unwrap_or_else(|e| panic!("threaded({t}) {module}.{name} failed: {e}"));
        assert_eq!(
            seq.source(),
            par.source(),
            "residual source differs from sequential at {t} thread(s)"
        );
        assert_eq!(seq.stats, par.stats, "stats differ at {t} thread(s)");
        assert_eq!(seq.provenance, par.provenance, "provenance differs at {t} thread(s)");
    }
    seq
}

/// E3: the interpreter, first Futamura projection. The residual program
/// must be byte-identical at 1, 2 and 8 threads and still compute
/// (x + 3) * (x * x).
#[test]
fn interp_matrix_is_byte_identical() {
    let p = Pipeline::from_source(INTERP).unwrap();
    let args = [SpecArg::Static(sample_program()), SpecArg::Dynamic];
    let s = assert_matrix(&p, "Interp", "run", &args, EngineOptions::default());
    // (4 + 3) * (4 * 4) = 112.
    assert_eq!(s.run(vec![Value::nat(4)]).unwrap(), Value::nat(112));
}

/// E5: the synthetic multi-module library the scaling benches use.
#[test]
fn library_matrix_is_byte_identical() {
    let shape = LibraryShape {
        modules: 5,
        fns_per_module: 6,
        used_fns: 5,
        exponent: 9,
        cross_module: true,
    };
    let (program, entry) = library_program(&shape);
    let p = Pipeline::from_program(program).unwrap();
    let s = assert_matrix(
        &p,
        entry.module.as_str(),
        entry.name.as_str(),
        &[SpecArg::Dynamic],
        EngineOptions::default(),
    );
    assert!(s.stats.specialisations >= 1);
}

/// The skewed forced-residual graph: a 40-deep chain races a fan of
/// short ones for the shared memo table. Polyvariant residualisation at
/// its most race-prone — still byte-identical.
#[test]
fn skewed_forced_residual_matrix_is_byte_identical() {
    let forced: BTreeSet<QualName> = [QualName::new("Deep", "walk")].into();
    let p = Pipeline::from_source_with(SKEWED, &forced).unwrap();
    let s = assert_matrix(&p, "Main", "main", &[SpecArg::Dynamic], EngineOptions::default());
    // 40 distinct static arguments for walk, plus the entry.
    assert!(
        s.stats.specialisations > 40,
        "expected >40 residual defs, got {}",
        s.stats.specialisations
    );
    // walk k x == k*x with walk 1 x == x ... check the whole sum at x=1:
    // 40 + (3+1·3 ... ) — just compare against the source evaluator.
    let direct = mspec_core::run_source(SKEWED, "Main", "main", vec![Value::nat(1)]).unwrap();
    assert_eq!(s.run(vec![Value::nat(1)]).unwrap(), direct);
}

/// A `max_specialisations` breach is attributed during the sequential
/// replay of claims in breadth-first order, so the structured error is
/// identical at every thread count — same witness, same chain.
#[test]
fn specialisation_budget_breach_is_deterministic_at_every_thread_count() {
    let forced: BTreeSet<QualName> = [QualName::new("Deep", "walk")].into();
    let p = Pipeline::from_source_with(SKEWED, &forced).unwrap();
    let options = EngineOptions {
        budget: SpecBudget { max_specialisations: 5, ..SpecBudget::default() },
        ..EngineOptions::default()
    };
    let seq = p
        .specialise_opts("Main", "main", vec![SpecArg::Dynamic], options)
        .unwrap_err();
    assert!(matches!(
        seq,
        PipelineError::Spec(SpecError::BudgetExhausted {
            resource: BudgetResource::Specialisations,
            ..
        })
    ));
    for t in THREAD_MATRIX {
        let par = p
            .specialise_threaded(
                "Main",
                "main",
                vec![SpecArg::Dynamic],
                options,
                nz(t),
                &Recorder::disabled(),
            )
            .unwrap_err();
        assert_eq!(seq, par, "budget error differs at {t} thread(s)");
    }
}

/// At one thread the engine admits steps in exactly the sequential
/// order, so even *fuel* breaches — inherently racy at higher thread
/// counts — match the sequential error exactly.
#[test]
fn fuel_breach_matches_sequential_at_one_thread() {
    let p = Pipeline::from_source(INTERP).unwrap();
    let args = vec![SpecArg::Static(sample_program()), SpecArg::Dynamic];
    let options = EngineOptions {
        budget: SpecBudget::with_steps(120),
        ..EngineOptions::default()
    };
    let seq = p
        .specialise_opts("Interp", "run", args.clone(), options)
        .unwrap_err();
    assert!(matches!(
        seq,
        PipelineError::Spec(SpecError::BudgetExhausted { resource: BudgetResource::Steps, .. })
    ));
    let par = p
        .specialise_threaded("Interp", "run", args, options, nz(1), &Recorder::disabled())
        .unwrap_err();
    assert_eq!(seq, par, "threads=1 fuel breach must replicate the sequential error");
}

/// Options outside the concurrent engine's supported envelope (a
/// generalising exhaustion policy) fall back to the sequential engine
/// in-process and still agree with `specialise_opts`.
#[test]
fn unsupported_options_fall_back_to_sequential() {
    use mspec_genext::OnExhaustion;
    let p = Pipeline::from_source(INTERP).unwrap();
    let args = vec![SpecArg::Static(sample_program()), SpecArg::Dynamic];
    let options = EngineOptions {
        budget: SpecBudget::with_steps(400),
        on_exhaustion: OnExhaustion::Generalise,
        ..EngineOptions::default()
    };
    let seq = p
        .specialise_opts("Interp", "run", args.clone(), options)
        .unwrap();
    let par = p
        .specialise_threaded("Interp", "run", args, options, nz(4), &Recorder::disabled())
        .unwrap();
    assert_eq!(seq.source(), par.source());
    assert_eq!(seq.stats, par.stats);
}

/// The traced spec-event stream (decision events only) is identical
/// between the sequential and threaded engines: placeholders never leak
/// into events, gauges (fuel left, pending depth, specs left) are
/// reconstructed in breadth-first order, and seq numbers line up.
#[test]
fn traced_spec_events_match_sequential() {
    let spec_lines = |rec: &Recorder| -> Vec<String> {
        mspec_testkit::scrub_timestamps(&rec.snapshot().to_jsonl())
            .lines()
            .filter(|l| l.contains("\"ev\":\"spec\""))
            .map(str::to_string)
            .collect()
    };

    let forced: BTreeSet<QualName> = [QualName::new("Deep", "walk")].into();
    let p = Pipeline::from_source_with(SKEWED, &forced).unwrap();

    let seq_rec = Recorder::enabled();
    p.specialise_traced("Main", "main", vec![SpecArg::Dynamic], EngineOptions::default(), &seq_rec)
        .unwrap();
    let seq_events = spec_lines(&seq_rec);
    assert!(!seq_events.is_empty());

    for t in [2usize, 8] {
        let par_rec = Recorder::enabled();
        p.specialise_threaded(
            "Main",
            "main",
            vec![SpecArg::Dynamic],
            EngineOptions::default(),
            nz(t),
            &par_rec,
        )
        .unwrap();
        assert_eq!(seq_events, spec_lines(&par_rec), "spec events differ at {t} thread(s)");
    }
}

//! The paper's headline workflow (§4): modules are analysed and
//! converted to generating extensions one at a time, through interface
//! files; specialising a program needs only `.gx` files — never library
//! source.

use mspec_cogen::files::{cogen_module, load_gx};
use mspec_core::{Pipeline, SpecArg};
use mspec_genext::{Engine, EngineOptions, GenProgram};
use mspec_lang::eval::Value;
use mspec_lang::parser::parse_program;
use mspec_lang::resolve::resolve;
use mspec_lang::QualName;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

const SRC: &str = "module Power where\n\
    power n x = if n == 1 then x else x * power (n - 1) x\n\
    module Twice where\n\
    twice f x = f @ (f @ x)\n\
    module Main where\n\
    import Power\n\
    import Twice\n\
    main y = twice (\\x -> Power.power 3 x) y\n";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mspec-sep-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Module-by-module cogen through `.bti` files, then linking `.gx` files
/// alone reproduces exactly what the whole-program pipeline produces.
#[test]
fn separate_cogen_matches_whole_program_pipeline() {
    let dir = tmpdir("match");
    let resolved = resolve(parse_program(SRC).unwrap()).unwrap();

    // Phase 1: per-module cogen in dependency order — as a build system
    // would run it, writing interface and genext files.
    for name in resolved.graph().topo_order() {
        let module = resolved.program().module(name.as_str()).unwrap();
        cogen_module(module, &dir, &BTreeSet::new()).unwrap();
    }

    // Phase 2: SOURCE IS GONE. Link the .gx files and specialise.
    let gx_modules = ["Power", "Twice", "Main"]
        .iter()
        .map(|m| load_gx(dir.join(format!("{m}.gx"))).unwrap())
        .collect();
    let linked = GenProgram::link(gx_modules).unwrap();
    let mut engine = Engine::new(&linked, EngineOptions::default());
    let residual = engine
        .specialise(&QualName::new("Main", "main"), vec![SpecArg::Dynamic])
        .unwrap();

    // Whole-program pipeline for comparison.
    let pipeline = Pipeline::from_source(SRC).unwrap();
    let spec = pipeline
        .specialise("Main", "main", vec![SpecArg::Dynamic])
        .unwrap();
    assert_eq!(
        mspec_lang::pretty::pretty_program(&residual.program),
        spec.source()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Library genexts are reusable across programs: one `.gx` of the
/// library serves two different client programs, and the clients are
/// processed with NO library source whatsoever — resolution uses the
/// `.sig` files, analysis the `.bti` files, linking the `.gx` files.
#[test]
fn library_genext_reused_by_two_programs() {
    let dir = tmpdir("reuse");
    let lib_src = "module Power where\n\
                   power n x = if n == 1 then x else x * power (n - 1) x\n";
    let lib = resolve(parse_program(lib_src).unwrap()).unwrap();
    cogen_module(lib.program().module("Power").unwrap(), &dir, &BTreeSet::new()).unwrap();
    drop(lib); // the library source is gone from here on

    for (client_src, expect) in [
        (
            "module Main where\nimport Power\nmain y = power 3 y\n",
            Value::nat(8),
        ),
        (
            "module Main where\nimport Power\nmain y = power 5 y + 1\n",
            Value::nat(33),
        ),
    ] {
        mspec_cogen::files::cogen_source(client_src, &dir, &BTreeSet::new()).unwrap();
        let linked = GenProgram::link(vec![
            load_gx(dir.join("Power.gx")).unwrap(),
            load_gx(dir.join("Main.gx")).unwrap(),
        ])
        .unwrap();
        let mut engine = Engine::new(&linked, EngineOptions::default());
        let residual = engine
            .specialise(&QualName::new("Main", "main"), vec![SpecArg::Dynamic])
            .unwrap();
        let rp = resolve(residual.program.clone()).unwrap();
        let mut ev = mspec_lang::eval::Evaluator::new(&rp);
        assert_eq!(ev.call(&residual.entry, vec![Value::nat(2)]).unwrap(), expect);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The `.sig` sidecars make even *resolution* source-free: a client of a
/// transitive import chain resolves from signature stubs alone.
#[test]
fn sig_files_resolve_transitive_clients() {
    let dir = tmpdir("sig");
    let libs = "module A where\nbase x = x + 1\nmodule B where\nimport A\nuse y = base y * 2\n";
    let resolved = resolve(parse_program(libs).unwrap()).unwrap();
    for name in resolved.graph().topo_order() {
        cogen_module(resolved.program().module(name.as_str()).unwrap(), &dir, &BTreeSet::new())
            .unwrap();
    }
    drop(resolved);
    // The client imports B only; B's stub pulls in A's stub transitively.
    let out = mspec_cogen::files::cogen_source(
        "module Main where\nimport B\nmain y = use y\n",
        &dir,
        &BTreeSet::new(),
    )
    .unwrap();
    assert!(out.sig.exists());
    let linked = GenProgram::link(vec![
        load_gx(dir.join("A.gx")).unwrap(),
        load_gx(dir.join("B.gx")).unwrap(),
        load_gx(dir.join("Main.gx")).unwrap(),
    ])
    .unwrap();
    let mut engine = Engine::new(&linked, EngineOptions::default());
    let residual = engine
        .specialise(&QualName::new("Main", "main"), vec![SpecArg::Dynamic])
        .unwrap();
    let rp = resolve(residual.program.clone()).unwrap();
    let mut ev = mspec_lang::eval::Evaluator::new(&rp);
    assert_eq!(
        ev.call(&residual.entry, vec![Value::nat(4)]).unwrap(),
        Value::nat(10)
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The `.bti` interface file of a module contains exactly its qualified
/// binding-time schemes, and analysing a client against the file gives
/// the same result as whole-program analysis.
#[test]
fn interface_files_carry_qualified_schemes() {
    let dir = tmpdir("bti");
    let resolved = resolve(parse_program(SRC).unwrap()).unwrap();
    for name in resolved.graph().topo_order() {
        let module = resolved.program().module(name.as_str()).unwrap();
        cogen_module(module, &dir, &BTreeSet::new()).unwrap();
    }
    let iface = mspec_cogen::files::load_bti(dir.join("Power.bti")).unwrap();
    let sig = iface.get(&mspec_lang::Ident::new("power")).unwrap();
    assert_eq!(sig.vars, 2);
    assert_eq!(sig.unfold.to_string(), "t0");
    let _ = fs::remove_dir_all(&dir);
}

/// Genext files honestly round-trip: load + link + run equals
/// compile-in-memory + run, at the binary level of residual programs.
#[test]
fn gx_files_are_faithful() {
    let dir = tmpdir("faithful");
    fs::create_dir_all(&dir).unwrap();
    let resolved = resolve(parse_program(SRC).unwrap()).unwrap();
    let ann = mspec_bta::analyse::analyse_program(&resolved).unwrap();
    for m in &ann.modules {
        let gx = mspec_cogen::compile::compile_module(m);
        mspec_cogen::files::store_gx(dir.join(format!("{}.gx", m.name)), &gx).unwrap();
        let back = load_gx(dir.join(format!("{}.gx", m.name))).unwrap();
        assert_eq!(gx, back);
    }
    let _ = fs::remove_dir_all(&dir);
}

//! The low-memory streaming mode: residual definitions flow to a sink
//! the moment they are constructed, and the two-pass file emission
//! writes headers from the engine's accumulated import map.

use mspec_cogen::compile::compile_program;
use mspec_genext::emit::{FileSink, ModuleSink, NullSink};
use mspec_genext::{Engine, EngineOptions, SpecArg};
use mspec_lang::ast::{Def, ModName};
use mspec_lang::eval::Value;
use mspec_lang::QualName;
use std::collections::BTreeSet;

fn engine_input() -> mspec_genext::GenProgram {
    let src = "module Power where\n\
               power n x = if n == 1 then x else x * power (n - 1) x\n\
               module Main where\n\
               import Power\n\
               main y = power y 2 + y\n";
    let rp = mspec_lang::resolve::resolve(mspec_lang::parser::parse_program(src).unwrap())
        .unwrap();
    let ann = mspec_bta::analyse::analyse_program(&rp).unwrap();
    compile_program(&ann).unwrap()
}

/// A sink that records arrival order.
#[derive(Default)]
struct OrderSink {
    seen: Vec<(ModName, String)>,
}

impl ModuleSink for OrderSink {
    fn emit(&mut self, module: &ModName, def: &Def) -> Result<(), mspec_genext::SpecError> {
        self.seen.push((*module, def.name.to_string()));
        Ok(())
    }
}

#[test]
fn definitions_stream_in_construction_order() {
    let gp = engine_input();
    let mut engine = Engine::new(&gp, EngineOptions::default());
    let mut sink = OrderSink::default();
    let entry = engine
        .specialise_streaming(
            &QualName::new("Main", "main"),
            vec![SpecArg::Dynamic],
            &mut sink,
        )
        .unwrap();
    assert_eq!(entry, QualName::new("Main", "main"));
    // Breadth-first: the entry body finishes first, then power's variant.
    assert_eq!(sink.seen[0].1, "main");
    assert!(sink.seen.iter().any(|(m, d)| m.as_str() == "Power" && d == "power_1"));
    // Imports were accumulated for the second pass.
    let imports = engine.residual_imports();
    assert!(imports[&ModName::new("Main")].contains(&ModName::new("Power")));
}

#[test]
fn file_sink_streams_and_finishes_from_engine_imports() {
    let dir = std::env::temp_dir().join(format!("mspec-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gp = engine_input();
    let mut engine = Engine::new(&gp, EngineOptions::default());
    let mut sink = FileSink::new(&dir).unwrap();
    let entry = engine
        .specialise_streaming(
            &QualName::new("Main", "main"),
            vec![SpecArg::Dynamic],
            &mut sink,
        )
        .unwrap();
    let files = sink.finish(engine.residual_imports()).unwrap();
    assert_eq!(files.len(), 2);
    // Concatenate, parse, run.
    let mut text = String::new();
    for f in &files {
        text.push_str(&std::fs::read_to_string(f).unwrap());
    }
    let rp = mspec_lang::resolve::resolve(mspec_lang::parser::parse_program(&text).unwrap())
        .unwrap();
    let mut ev = mspec_lang::eval::Evaluator::new(&rp);
    // main y = power y 2 + y = 2^y + y
    assert_eq!(ev.call(&entry, vec![Value::nat(5)]).unwrap(), Value::nat(37));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn null_sink_measures_pure_specialisation() {
    let gp = engine_input();
    let mut engine = Engine::new(&gp, EngineOptions::default());
    let mut sink = NullSink;
    engine
        .specialise_streaming(
            &QualName::new("Main", "main"),
            vec![SpecArg::Dynamic],
            &mut sink,
        )
        .unwrap();
    assert!(engine.stats().specialisations >= 2);
    assert_eq!(engine.provenance().len(), engine.stats().specialisations);
}

#[test]
fn forced_residual_streams_every_chain_element() {
    let src = "module Power where\n\
               power n x = if n == 1 then x else x * power (n - 1) x\n";
    let rp = mspec_lang::resolve::resolve(mspec_lang::parser::parse_program(src).unwrap())
        .unwrap();
    let forced: BTreeSet<QualName> = [QualName::new("Power", "power")].into();
    let ann = mspec_bta::analyse::analyse_program_with(&rp, &forced).unwrap();
    let gp = compile_program(&ann).unwrap();
    let mut engine = Engine::new(&gp, EngineOptions::default());
    let mut sink = OrderSink::default();
    engine
        .specialise_streaming(
            &QualName::new("Power", "power"),
            vec![SpecArg::Static(Value::nat(5)), SpecArg::Dynamic],
            &mut sink,
        )
        .unwrap();
    // Five residual definitions (n = 5, 4, 3, 2, 1), streamed in
    // breadth-first request order.
    assert_eq!(sink.seen.len(), 5);
    assert_eq!(sink.seen[0].1, "power");
    assert_eq!(sink.seen[1].1, "power_1");
    assert_eq!(sink.seen[4].1, "power_4");
}

//! Differential tests: the bytecode VM against the tree evaluator.
//!
//! The tree evaluator (`mspec_lang::eval`) is the semantic ground truth;
//! the VM (`mspec_lang::vm`) is the default fast path. For hundreds of
//! randomly generated well-typed, total modular programs — and for the
//! residual programs specialisation produces from them, including the
//! generalising-fallback residuals the budget machinery emits — the two
//! must agree on:
//!
//!   * the result value,
//!   * the error class (division by zero, empty list, fuel exhaustion),
//!   * the exact fuel boundary: a budget that admits a run on one engine
//!     admits it on the other, and one unit less starves both.
//!
//! The single *intended* divergence is host-resource behaviour: the tree
//! evaluator raises `EvalError::DepthExceeded` on deeply nested data,
//! the explicit-stack VM does not. Two golden disassembly snapshots pin
//! the compiled form of the E-series workloads (`power`, `interp`).

use mspec_core::{EngineOptions, OnExhaustion, Pipeline, SpecArg, SpecBudget};
use mspec_lang::bytecode::compile;
use mspec_lang::eval::{with_big_stack, EvalError, Evaluator, Value, DEFAULT_FUEL};
use mspec_lang::fuse::fuse;
use mspec_lang::parser::parse_program;
use mspec_lang::resolve::{resolve, ResolvedProgram};
use mspec_lang::vm::{Runner, Vm};
use mspec_lang::QualName;
use mspec_testkit::random::{random_program, random_value, GTy, GenConfig};
use mspec_testkit::TestRng;

/// Runs `entry` on both engines with the given fuel and asserts the
/// outcomes are identical (value or error class).
fn assert_agree(
    rp: &ResolvedProgram,
    entry: &QualName,
    args: &[Value],
    fuel: u64,
    context: &str,
) -> Result<Value, EvalError> {
    let tree = Runner::Tree.run(rp, entry, args.to_vec(), fuel);
    let vm = Runner::Vm.run(rp, entry, args.to_vec(), fuel);
    assert_eq!(tree, vm, "tree and VM disagree on {entry} ({context})");
    tree
}

/// Picks a random entry with first-order parameters plus matching random
/// argument values.
fn pick_entry(
    g: &mspec_testkit::random::GeneratedProgram,
    rng: &mut TestRng,
) -> Option<(QualName, Vec<Value>)> {
    let candidates: Vec<_> = g
        .functions
        .iter()
        .filter(|(_, params)| params.iter().all(|t| *t != GTy::FunNat))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let (entry, params) = candidates[rng.gen_range(0..candidates.len())].clone();
    let mut args = Vec::new();
    for t in params {
        args.push(random_value(t, rng)?);
    }
    Some((entry, args))
}

/// ≥200 random programs: source semantics agree tree-vs-VM.
#[test]
fn random_programs_agree() {
    let mut rng = TestRng::seed_from_u64(0xB1C0DE);
    let mut compared = 0usize;
    let mut seed = 0u64;
    while compared < 200 {
        let g = random_program(&GenConfig {
            modules: 3,
            defs_per_module: 3,
            max_depth: 4,
            seed,
        });
        seed += 1;
        let Some((entry, args)) = pick_entry(&g, &mut rng) else {
            continue;
        };
        let rp = resolve(g.program.clone()).unwrap();
        let r = assert_agree(&rp, &entry, &args, DEFAULT_FUEL, &format!("seed {}", seed - 1));
        assert!(r.is_ok(), "testkit programs are total, got {r:?}");
        compared += 1;
    }
    assert!(compared >= 200);
}

/// Random programs, specialised: the residual program agrees tree-vs-VM
/// on the dynamic arguments, and both match the source oracle.
#[test]
fn random_residuals_agree() {
    let mut rng = TestRng::seed_from_u64(0xD1FF);
    let mut compared = 0usize;
    let mut seed = 10_000u64;
    while compared < 40 {
        let g = random_program(&GenConfig {
            modules: 3,
            defs_per_module: 3,
            max_depth: 4,
            seed,
        });
        seed += 1;
        let Some((entry, args)) = pick_entry(&g, &mut rng) else {
            continue;
        };
        let mut spec_args = Vec::new();
        let mut dyn_args = Vec::new();
        for v in &args {
            if rng.gen_bool(0.5) {
                spec_args.push(SpecArg::Static(v.clone()));
            } else {
                spec_args.push(SpecArg::Dynamic);
                dyn_args.push(v.clone());
            }
        }

        let rp = resolve(g.program.clone()).unwrap();
        let expected = Evaluator::new(&rp).call(&entry, args.clone()).unwrap();

        let pipeline = Pipeline::from_program(g.program.clone()).unwrap();
        let s = pipeline
            .specialise(entry.module.as_str(), entry.name.as_str(), spec_args)
            .unwrap_or_else(|e| panic!("specialise failed on seed {}: {e}", seed - 1));
        let rrp = resolve(s.residual.program.clone()).unwrap();
        let got = assert_agree(
            &rrp,
            &s.residual.entry,
            &dyn_args,
            DEFAULT_FUEL,
            &format!("residual, seed {}", seed - 1),
        )
        .unwrap();
        assert_eq!(got, expected, "residual diverges from oracle on seed {}", seed - 1);
        compared += 1;
    }
}

/// The exact fuel boundary is shared: if the tree evaluator completes a
/// run in S charges, fuel S succeeds and fuel S − 1 exhausts — on both
/// engines.
#[test]
fn fuel_boundary_is_shared() {
    let rp = resolve(
        parse_program(
            "module Power where\n\
             power n x = if n == 1 then x else x * power (n - 1) x\n",
        )
        .unwrap(),
    )
    .unwrap();
    let entry = QualName::new("Power", "power");
    let args = vec![Value::nat(10), Value::nat(2)];

    let mut ev = Evaluator::with_fuel(&rp, DEFAULT_FUEL);
    ev.call(&entry, args.clone()).unwrap();
    let spent = DEFAULT_FUEL - ev.fuel_left();
    assert!(spent > 0);

    let at = assert_agree(&rp, &entry, &args, spent, "fuel = spent");
    assert_eq!(at, Ok(Value::nat(1024)));
    let under = assert_agree(&rp, &entry, &args, spent - 1, "fuel = spent - 1");
    assert_eq!(under, Err(EvalError::FuelExhausted));
}

/// Runtime error classes carry across engines: division by zero and
/// `head`/`tail` of the empty list raise the same structured error.
#[test]
fn error_classes_agree() {
    let rp = resolve(
        parse_program(
            "module M where\n\
             crash x = x / 0\n\
             behead xs = head xs\n\
             detail xs = tail xs\n",
        )
        .unwrap(),
    )
    .unwrap();
    let div = assert_agree(&rp, &QualName::new("M", "crash"), &[Value::nat(7)], DEFAULT_FUEL, "div");
    assert_eq!(div, Err(EvalError::DivByZero));
    let hd = assert_agree(&rp, &QualName::new("M", "behead"), &[Value::Nil], DEFAULT_FUEL, "head");
    assert_eq!(hd, Err(EvalError::EmptyList("head")));
    let tl = assert_agree(&rp, &QualName::new("M", "detail"), &[Value::Nil], DEFAULT_FUEL, "tail");
    assert_eq!(tl, Err(EvalError::EmptyList("tail")));
}

/// A diverging source program exhausts fuel identically on both engines.
/// Fuel is kept well below the tree evaluator's depth limit so the only
/// possible outcome on either side is `FuelExhausted`.
#[test]
fn divergence_exhausts_fuel_on_both() {
    // The tree run nests one host frame per unfolded call, so it needs a
    // big stack in debug builds; the VM run would not.
    with_big_stack(|| {
        let rp = resolve(
            parse_program(
                "module Loop where\nspin n x = if n == 0 then x else spin (n + 1) (x + 1)\n",
            )
            .unwrap(),
        )
        .unwrap();
        let r = assert_agree(
            &rp,
            &QualName::new("Loop", "spin"),
            &[Value::nat(1), Value::nat(0)],
            10_000,
            "divergence",
        );
        assert_eq!(r, Err(EvalError::FuelExhausted));
    });
}

/// Generalising-fallback residuals (budget hit, demoted dynamic calls)
/// behave identically under both runners: the step-budget fallback for a
/// diverging loop still diverges (fuel exhaustion on both), and the
/// polyvariance-capped `sumto` fallback computes the oracle's values.
#[test]
fn generalising_fallback_residuals_agree() {
    // The diverging residual's tree run nests host frames until fuel
    // runs out, so the whole comparison runs on a big stack.
    with_big_stack(generalising_fallback_residuals_body);
}

fn generalising_fallback_residuals_body() {
    // Step budget hit: the residual keeps a dynamic `loop` call chain.
    let p = Pipeline::from_source(
        "module M where\nloop n = loop (n + 1)\nmain x = loop 0 + x\n",
    )
    .unwrap();
    let s = p
        .specialise_opts(
            "M",
            "main",
            vec![SpecArg::Dynamic],
            EngineOptions {
                budget: SpecBudget::with_steps(5_000),
                on_exhaustion: OnExhaustion::Generalise,
                ..EngineOptions::default()
            },
        )
        .unwrap();
    let rrp = resolve(s.residual.program.clone()).unwrap();
    let r = assert_agree(
        &rrp,
        &s.residual.entry,
        &[Value::nat(1)],
        10_000,
        "generalised loop residual",
    );
    assert_eq!(r, Err(EvalError::FuelExhausted));

    // Polyvariance cap hit: the residual re-generalises `sumto` but must
    // still agree with the source oracle — on both engines.
    let p = Pipeline::from_source(
        "module M where\nsumto a b = if b <= a then 0 else a + sumto (a + 1) b\nmain n = sumto 0 n\n",
    )
    .unwrap();
    let s = p
        .specialise_opts(
            "M",
            "main",
            vec![SpecArg::Dynamic],
            EngineOptions {
                budget: SpecBudget { max_specialisations: 4, ..SpecBudget::default() },
                on_exhaustion: OnExhaustion::Generalise,
                ..EngineOptions::default()
            },
        )
        .unwrap();
    let rrp = resolve(s.residual.program.clone()).unwrap();
    for n in [0u64, 1, 5, 20] {
        let got = assert_agree(
            &rrp,
            &s.residual.entry,
            &[Value::nat(n)],
            DEFAULT_FUEL,
            &format!("generalised sumto residual, n = {n}"),
        )
        .unwrap();
        let expected = (0..n).sum::<u64>();
        assert_eq!(got, Value::nat(expected));
    }
}

/// The intended divergence: on deeply right-nested data the tree
/// evaluator raises the structured `DepthExceeded`, while the
/// explicit-stack VM completes the fold.
#[test]
fn deep_lists_are_vm_territory() {
    // `eval::Value`'s derived drop still recurses along the input spine,
    // so the deep input value itself must live on a big host stack.
    with_big_stack(|| {
        let rp = resolve(
            parse_program(
                "module M where\nsum xs = if null xs then 0 else head xs + sum (tail xs)\n",
            )
            .unwrap(),
        )
        .unwrap();
        let entry = QualName::new("M", "sum");
        let n = 50_000u64;
        let xs = Value::list((0..n).map(|_| Value::nat(1)).collect());

        let mut ev = Evaluator::with_limits(&rp, DEFAULT_FUEL, 5_000);
        assert_eq!(ev.call(&entry, vec![xs.clone()]), Err(EvalError::DepthExceeded));

        let bc = compile(&rp).unwrap();
        let got = Vm::with_fuel(&bc, DEFAULT_FUEL).call(&entry, vec![xs]).unwrap();
        assert_eq!(got, Value::nat(n));
    });
}

/// Runs `entry` on the unfused and superinstruction-fused VM with the
/// same fuel and asserts the outcomes, the full [`mspec_lang::VmStats`]
/// and the remaining fuel are identical. Returns the outcome and the
/// fuel spent.
fn assert_fuse_identical(
    rp: &ResolvedProgram,
    entry: &QualName,
    args: &[Value],
    fuel: u64,
    context: &str,
) -> (Result<Value, EvalError>, u64) {
    let bc = compile(rp).unwrap();
    let (fused, _) = fuse(&bc);
    let mut plain = Vm::with_fuel(&bc, fuel);
    let a = plain.call(entry, args.to_vec());
    let mut opt = Vm::with_fuel(&fused, fuel);
    let b = opt.call(entry, args.to_vec());
    assert_eq!(a, b, "fused VM diverges on {entry} ({context})");
    assert_eq!(plain.stats(), opt.stats(), "VmStats diverge on {entry} ({context})");
    assert_eq!(plain.fuel_left(), opt.fuel_left(), "fuel diverges on {entry} ({context})");
    (a, fuel - plain.fuel_left())
}

/// Probes the exact fuel boundary of a terminating run under fusion: at
/// `spent` both tiers succeed, at `spent - 1` both exhaust — and each
/// probe re-checks stats equality.
fn assert_fuse_boundary(rp: &ResolvedProgram, entry: &QualName, args: &[Value], context: &str) {
    let (outcome, spent) =
        assert_fuse_identical(rp, entry, args, DEFAULT_FUEL, &format!("{context}, full fuel"));
    assert!(outcome.is_ok(), "{context}: expected a terminating run, got {outcome:?}");
    assert!(spent > 0);
    let (at, _) =
        assert_fuse_identical(rp, entry, args, spent, &format!("{context}, fuel = spent"));
    assert_eq!(at, outcome);
    let (under, _) =
        assert_fuse_identical(rp, entry, args, spent - 1, &format!("{context}, fuel = spent - 1"));
    assert_eq!(under, Err(EvalError::FuelExhausted), "{context}");
}

/// ≥200 random programs: the fused VM is value-, stats- and
/// budget-breach-identical to the unfused VM, probed at the exact fuel
/// boundary of every run.
#[test]
fn fused_random_programs_agree() {
    let mut rng = TestRng::seed_from_u64(0xF05E);
    let mut compared = 0usize;
    let mut seed = 20_000u64;
    while compared < 200 {
        let g = random_program(&GenConfig {
            modules: 3,
            defs_per_module: 3,
            max_depth: 4,
            seed,
        });
        seed += 1;
        let Some((entry, args)) = pick_entry(&g, &mut rng) else {
            continue;
        };
        let rp = resolve(g.program.clone()).unwrap();
        assert_fuse_boundary(&rp, &entry, &args, &format!("seed {}", seed - 1));
        compared += 1;
    }
    assert!(compared >= 200);
}

/// Fused runtime errors match unfused ones exactly (class and fuel).
#[test]
fn fused_error_classes_agree() {
    let rp = resolve(
        parse_program(
            "module M where\n\
             crash x = x / 0\n\
             behead xs = head xs\n",
        )
        .unwrap(),
    )
    .unwrap();
    let (div, _) = assert_fuse_identical(
        &rp,
        &QualName::new("M", "crash"),
        &[Value::nat(7)],
        DEFAULT_FUEL,
        "div",
    );
    assert_eq!(div, Err(EvalError::DivByZero));
    let (hd, _) = assert_fuse_identical(
        &rp,
        &QualName::new("M", "behead"),
        &[Value::Nil],
        DEFAULT_FUEL,
        "head",
    );
    assert_eq!(hd, Err(EvalError::EmptyList("head")));
}

/// The E3 `power` residual (static exponent, dynamic base): fused and
/// unfused execution agree on values, stats and the fuel boundary, and
/// fusion actually fires on the residual's multiply chain.
#[test]
fn fused_e3_power_residual_agrees() {
    let p = Pipeline::from_source(
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
    )
    .unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Static(Value::nat(16)), SpecArg::Dynamic])
        .unwrap();
    let rrp = resolve(s.residual.program.clone()).unwrap();
    let (_, fstats) = fuse(&compile(&rrp).unwrap());
    assert!(fstats.total() > 0, "fusion should fire on the residual multiply chain");
    for x in [0u64, 1, 2, 3] {
        let (got, _) = assert_fuse_identical(
            &rrp,
            &s.residual.entry,
            &[Value::nat(x)],
            DEFAULT_FUEL,
            &format!("power residual, x = {x}"),
        );
        assert_eq!(got, Ok(Value::nat(x.pow(16))));
    }
    assert_fuse_boundary(&rrp, &s.residual.entry, &[Value::nat(2)], "power residual boundary");
}

/// The E5 first-Futamura residual (interpreter specialised to a static
/// program): fused and unfused execution agree on values, stats and the
/// fuel boundary.
#[test]
fn fused_e5_interp_residual_agrees() {
    let p = Pipeline::from_source(
        "module ListLib where\n\
         drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
         module Interp where\n\
         import ListLib\n\
         size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))\n\
         run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x\n",
    )
    .unwrap();
    // (x + 2) * x: mul ─ add ─ var, const 2 ─ var, list-encoded.
    let prog = Value::list(
        [3u64, 2, 1, 0, 2, 1].into_iter().map(Value::nat).collect(),
    );
    let s = p
        .specialise("Interp", "run", vec![SpecArg::Static(prog), SpecArg::Dynamic])
        .unwrap();
    let rrp = resolve(s.residual.program.clone()).unwrap();
    for x in [0u64, 1, 5, 11] {
        let (got, _) = assert_fuse_identical(
            &rrp,
            &s.residual.entry,
            &[Value::nat(x)],
            DEFAULT_FUEL,
            &format!("interp residual, x = {x}"),
        );
        assert_eq!(got, Ok(Value::nat((x + 2) * x)));
    }
    assert_fuse_boundary(&rrp, &s.residual.entry, &[Value::nat(5)], "interp residual boundary");
}

/// Golden disassembly for the E-series `power` workload: the compiled
/// form is deterministic and pinned byte-for-byte.
#[test]
fn golden_bytecode_power() {
    let rp = resolve(
        parse_program(
            "module Power where\n\
             power n x = if n == 1 then x else x * power (n - 1) x\n",
        )
        .unwrap(),
    )
    .unwrap();
    let bc = compile(&rp).unwrap();
    assert_eq!(bc.disassemble(), include_str!("golden/bytecode_power.txt"));
}

/// Golden disassembly for the E-series `interp` workload (the first
/// Futamura projection's interpreter, two modules with an import).
#[test]
fn golden_bytecode_interp() {
    let rp = resolve(
        parse_program(
            "module ListLib where\n\
             drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
             module Interp where\n\
             import ListLib\n\
             size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))\n\
             run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x\n",
        )
        .unwrap(),
    )
    .unwrap();
    let bc = compile(&rp).unwrap();
    assert_eq!(bc.disassemble(), include_str!("golden/bytecode_interp.txt"));
}

/// Golden disassembly of the *fused* `power` workload: pins which
/// windows the superinstruction pass selects and how jump targets are
/// rewritten after stream compaction.
#[test]
fn golden_bytecode_power_fused() {
    let rp = resolve(
        parse_program(
            "module Power where\n\
             power n x = if n == 1 then x else x * power (n - 1) x\n",
        )
        .unwrap(),
    )
    .unwrap();
    let (fused, stats) = fuse(&compile(&rp).unwrap());
    assert!(stats.total() > 0);
    assert_eq!(fused.disassemble(), include_str!("golden/bytecode_power_fused.txt"));
}

/// Golden disassembly of the *fused* `interp` workload.
#[test]
fn golden_bytecode_interp_fused() {
    let rp = resolve(
        parse_program(
            "module ListLib where\n\
             drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
             module Interp where\n\
             import ListLib\n\
             size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))\n\
             run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x\n",
        )
        .unwrap(),
    )
    .unwrap();
    let (fused, stats) = fuse(&compile(&rp).unwrap());
    assert!(stats.total() > 0);
    assert_eq!(fused.disassemble(), include_str!("golden/bytecode_interp_fused.txt"));
}

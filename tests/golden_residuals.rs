//! Golden residual-program tests for PR 1's engine rewrite.
//!
//! The interned-symbol engine must be observationally identical to the
//! string engine it replaced: residual programs are compared *byte for
//! byte* against pretty-printed snapshots captured before the rewrite
//! (`tests/golden/*.txt`), under both cost models. A drift in naming,
//! ordering, placement or layout fails these tests even when the
//! residual program still computes the right values.

use mspec_core::{CostModel, EngineOptions, Pipeline, SpecArg, Specialised};
use mspec_lang::builder;
use mspec_lang::eval::Value;
use mspec_lang::QualName;
use std::collections::BTreeSet;

const POWER: &str =
    "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

/// Specialises under both cost models, asserts the residual sources are
/// byte-identical to each other, and returns the interned-model result.
fn spec_both_models(
    pipeline: &Pipeline,
    module: &str,
    name: &str,
    args: Vec<SpecArg>,
) -> Specialised {
    let run = |cost_model| {
        pipeline
            .specialise_opts(
                module,
                name,
                args.clone(),
                EngineOptions { cost_model, ..EngineOptions::default() },
            )
            .unwrap()
    };
    let interned = run(CostModel::Interned);
    let legacy = run(CostModel::Legacy);
    assert_eq!(
        interned.source(),
        legacy.source(),
        "cost models must not change residual code"
    );
    interned
}

/// §2 `power {S,D}` with n = 3: fully unfolds to the cube expression.
#[test]
fn golden_power_s3_unfolded() {
    let p = Pipeline::from_source(POWER).unwrap();
    let s = spec_both_models(
        &p,
        "Power",
        "power",
        vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic],
    );
    assert_eq!(s.source(), include_str!("golden/power_s3.txt"));
}

/// §2/§5 `power` forced non-unfoldable: the polyvariant chain
/// power → power_1 → power_2, with deterministic residual names.
#[test]
fn golden_power_s3_forced_chain() {
    let forced: BTreeSet<QualName> = [QualName::new("Power", "power")].into();
    let p = Pipeline::from_source_with(POWER, &forced).unwrap();
    let s = spec_both_models(
        &p,
        "Power",
        "power",
        vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic],
    );
    assert_eq!(s.source(), include_str!("golden/power_s3_forced.txt"));
}

/// §5's Power/Twice/Main worked example, all definitions forced
/// residual: placement, import synthesis and naming all frozen byte for
/// byte.
#[test]
fn golden_section5_placement() {
    let forced: BTreeSet<QualName> = [
        QualName::new("Power", "power"),
        QualName::new("Twice", "twice"),
        QualName::new("Main", "main"),
    ]
    .into();
    let p = Pipeline::from_program_with(builder::paper_section5_program(), &forced).unwrap();
    let s = spec_both_models(&p, "Main", "main", vec![SpecArg::Dynamic]);
    assert_eq!(s.source(), include_str!("golden/section5_placement.txt"));
}

/// Memo counters under repeated `{D,S}` requests: two call sites ask
/// for the same specialisation of `power`, whose body re-requests
/// itself recursively. The first request misses and creates the
/// residual; the self-recursive probe and the second call site's probe
/// both hit. Counters must agree across cost models — `Legacy` adds
/// cost, never behaviour.
#[test]
fn memo_counters_for_repeated_requests() {
    let src = "module Power where\n\
               power n x = if n == 1 then x else x * power (n - 1) x\n\
               module Main where\n\
               import Power\n\
               main n = Power.power n 2 + Power.power n 2\n";
    let p = Pipeline::from_source(src).unwrap();
    for cost_model in [CostModel::Interned, CostModel::Legacy] {
        let s = p
            .specialise_opts(
                "Main",
                "main",
                vec![SpecArg::Dynamic],
                EngineOptions { cost_model, ..EngineOptions::default() },
            )
            .unwrap();
        assert_eq!(s.stats.memo_probes, 3, "{cost_model:?}");
        assert_eq!(s.stats.memo_hits, 2, "{cost_model:?}");
        // One residual function materialised despite three requests.
        let power = s.residual.program.module("Power").unwrap();
        assert_eq!(power.defs.len(), 1);
        assert_eq!(s.run(vec![Value::nat(5)]).unwrap(), Value::nat(64));
    }
}

/// A fresh session over the same pipeline starts with fresh counters —
/// stats are per-request, not accumulated in the pipeline.
#[test]
fn memo_counters_reset_per_session() {
    let p = Pipeline::from_source(POWER).unwrap();
    let args = || vec![SpecArg::Dynamic, SpecArg::Static(Value::nat(2))];
    let first = p.specialise("Power", "power", args()).unwrap();
    let second = p.specialise("Power", "power", args()).unwrap();
    assert_eq!(first.stats.memo_probes, second.stats.memo_probes);
    assert_eq!(first.stats.memo_hits, second.stats.memo_hits);
    assert!(first.stats.memo_hits >= 1, "self-recursion must hit the memo");
}

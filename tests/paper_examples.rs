//! Experiment E1: the paper's worked examples, end to end.
//!
//! Section 2 and Figure 3 fix the expected behaviour of `power`'s
//! generating extension; §5 fixes the behaviour of the higher-order
//! `map` example. These tests pin all of it through the full pipeline.

use mspec_core::{Pipeline, SpecArg};
use mspec_lang::builder;
use mspec_lang::eval::Value;
use mspec_lang::QualName;

const POWER: &str =
    "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

/// §2: `power₃ x = x × (x × x)` — the static exponent unfolds completely.
#[test]
fn power_s_d_gives_cube_code() {
    let p = Pipeline::from_source(POWER).unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic])
        .unwrap();
    let src = s.source();
    assert!(src.contains("x * (x * x)"), "{src}");
    // Exactly one residual definition: everything was unfolded.
    assert_eq!(s.stats.specialisations, 1);
    for (input, expected) in [(2u64, 8u64), (3, 27), (10, 1000)] {
        assert_eq!(s.run(vec![Value::nat(input)]).unwrap(), Value::nat(expected));
    }
}

/// §2: `power {D S} n 2` — dynamic exponent, static base. The definition
/// is residualised (the conditional is dynamic) and recursion becomes a
/// residual self-call with the base inlined.
#[test]
fn power_d_s_residualises_with_inlined_base() {
    let p = Pipeline::from_source(POWER).unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Dynamic, SpecArg::Static(Value::nat(2))])
        .unwrap();
    let src = s.source();
    // The static base 2 is inlined into the residual body.
    assert!(src.contains("then 2") || src.contains("2 *") || src.contains("* 2"), "{src}");
    // x is gone: the residual entry takes only n.
    let entry_def = s
        .residual
        .program
        .def(&s.residual.entry)
        .expect("entry def exists");
    assert_eq!(entry_def.params.len(), 1);
    for (n, expected) in [(1u64, 2u64), (5, 32), (10, 1024)] {
        assert_eq!(s.run(vec![Value::nat(n)]).unwrap(), Value::nat(expected));
    }
}

/// §2's polyvariant chain: with `power` forced non-unfoldable (as in the
/// §5 figure), specialising to n=3 yields the chain power₃ → power₂ →
/// power₁.
#[test]
fn forced_residual_power_builds_polyvariant_chain() {
    let forced = [QualName::new("Power", "power")].into_iter().collect();
    let p = Pipeline::from_source_with(POWER, &forced).unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic])
        .unwrap();
    let src = s.source();
    // Three specialisations of power (n=3, 2, 1) as in the paper:
    //   power3 x = x * power2 x ; power2 x = x * power1 x ; power1 x = x
    // (here the entry keeps the plain name: power, power_1, power_2).
    assert_eq!(s.stats.specialisations, 3, "{src}");
    assert!(src.contains("power x = x * power_1 x"), "{src}");
    assert!(src.contains("power_1 x = x * power_2 x"), "{src}");
    assert!(src.contains("power_2 x = x"), "{src}");
    assert_eq!(s.run(vec![Value::nat(2)]).unwrap(), Value::nat(8));
}

/// §4.1: the inferred qualified binding-time scheme of `power` is the
/// paper's principal type: forall t,u. t -> u -> t|u with unfold t.
#[test]
fn power_signature_is_papers_principal_type() {
    let p = Pipeline::from_source(POWER).unwrap();
    let sig = p
        .annotated()
        .signature(&QualName::new("Power", "power"))
        .unwrap();
    assert_eq!(sig.vars, 2);
    assert!(sig.constraints.is_empty());
    assert_eq!(sig.unfold.to_string(), "t0");
    assert_eq!(sig.ret.top().to_string(), "t0 | t1");
}

/// §5's higher-order example: `map (\x -> g x + z) zs` with dynamic `z`
/// and `zs`. The static closure's dynamic captured value becomes an
/// extra formal of the residual map — `map_g z ys` in the paper.
#[test]
fn map_with_capturing_closure_matches_paper() {
    let p = Pipeline::from_program(builder::paper_map_program()).unwrap();
    let s = p
        .specialise("B", "h", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    let src = s.source();
    // There is a residual specialisation of map taking z as a parameter.
    let map_def = s
        .residual
        .program
        .modules
        .iter()
        .flat_map(|m| &m.defs)
        .find(|d| d.name.as_str().starts_with("map_"))
        .unwrap_or_else(|| panic!("no residual map in:\n{src}"));
    assert_eq!(map_def.params.len(), 2, "z and xs: {src}");
    assert!(map_def.params.iter().any(|p| p.as_str() == "z"), "{src}");
    // The closure was unfolded into the residual map: no lambdas remain.
    assert!(!src.contains('\\'), "no residual lambdas expected:\n{src}");
    // Semantics: h z zs = map (\x -> g x + z) zs with g x = x + 1.
    let zs = Value::list(vec![Value::nat(1), Value::nat(2), Value::nat(3)]);
    let got = s.run(vec![Value::nat(10), zs]).unwrap();
    assert_eq!(
        got,
        Value::list(vec![Value::nat(12), Value::nat(13), Value::nat(14)])
    );
}

/// The same map program with a *static spine* list: the spine unfolds
/// away entirely, leaving straight-line code over the elements.
#[test]
fn map_with_static_spine_unfolds_completely() {
    let p = Pipeline::from_program(builder::paper_map_program()).unwrap();
    let s = p
        .specialise("B", "h", vec![SpecArg::Dynamic, SpecArg::StaticSpine(3)])
        .unwrap();
    let src = s.source();
    // No residual map function: the recursion was static.
    assert!(
        !src.contains("map_"),
        "spine-static map should fully unfold:\n{src}"
    );
    let got = s
        .run(vec![
            Value::nat(10),
            Value::nat(1),
            Value::nat(2),
            Value::nat(3),
        ])
        .unwrap();
    assert_eq!(
        got,
        Value::list(vec![Value::nat(12), Value::nat(13), Value::nat(14)])
    );
}

/// Figure 2/§4.1: the annotated `power` definition printed in the
/// paper's notation.
#[test]
fn annotated_power_renders_in_paper_notation() {
    let p = Pipeline::from_source(POWER).unwrap();
    let d = p.annotated().def(&QualName::new("Power", "power")).unwrap();
    let shown = d.to_string();
    assert!(shown.contains("power {t0 t1} n x =^{t0}"), "{shown}");
    assert!(shown.contains("if^{t0}"), "{shown}");
    assert!(shown.contains("*^{t0 | t1}"), "{shown}");
}

/// §2: different static data gives different residual programs from the
/// same generating extension.
#[test]
fn different_static_inputs_give_different_residuals() {
    let p = Pipeline::from_source(POWER).unwrap();
    let s3 = p
        .specialise("Power", "power", vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic])
        .unwrap();
    let s5 = p
        .specialise("Power", "power", vec![SpecArg::Static(Value::nat(5)), SpecArg::Dynamic])
        .unwrap();
    assert_ne!(s3.source(), s5.source());
    assert_eq!(s5.run(vec![Value::nat(2)]).unwrap(), Value::nat(32));
}

/// §8: with completely dynamic arguments the residual program behaves
/// exactly like the source (the genext "reveals" the function).
#[test]
fn fully_dynamic_reconstructs_source_behaviour() {
    let p = Pipeline::from_source(POWER).unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    for (n, x) in [(1u64, 7u64), (3, 2), (6, 3)] {
        let direct = p
            .run_source("Power", "power", vec![Value::nat(n), Value::nat(x)])
            .unwrap();
        assert_eq!(s.run(vec![Value::nat(n), Value::nat(x)]).unwrap(), direct);
    }
}

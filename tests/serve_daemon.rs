//! End-to-end tests for `mspecd`, the specialisation daemon:
//!
//! * deadlines cancel a running request with *partial-progress* stats
//!   while a concurrent cheap request on another connection completes
//!   unaffected;
//! * residuals produced through the daemon are byte-identical to the
//!   batch `mspec spec` CLI output (same pipeline, same pretty-printer);
//! * the cross-request memo is shared between connections.

use mspec_serve::{
    ErrorClass, Request, RequestKind, Response, ResponseBody, ServeConfig, Server, SpecRequest,
};
use mspec_lang::{FromJson, ToJson};
use mspec_telemetry::Recorder;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::Command;

const POWER: &str = "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

/// Unbounded polyvariance: the static counter grows under dynamic
/// control forever, iteratively — only a budget or deadline stops it.
const POLY: &str = "module Loop where\ncount n b = if b == 0 then n else count (n + 1) (b - 1)\n";

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(port: u16) -> Conn {
        let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    fn roundtrip(&mut self, req: &Request) -> Response {
        self.stream.write_all(format!("{}\n", req.to_json_compact()).as_bytes()).unwrap();
        self.stream.flush().unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        Response::from_json_str(line.trim_end()).unwrap()
    }
}

fn start(mut cfg: ServeConfig) -> (Server, mspec_serve::TcpHandle) {
    // Crash dumps default to the cwd; tests that trip the panic path
    // must never litter the crate directory.
    if cfg.crash_dir.is_none() {
        cfg.crash_dir = Some(std::env::temp_dir().to_string_lossy().into_owned());
    }
    let server = Server::new(cfg, Recorder::disabled());
    let handle = server.start_tcp().unwrap();
    (server, handle)
}

/// Satellite: a fuel-heavy request under a short deadline returns a
/// structured `deadline` error carrying partial-progress stats, while a
/// concurrent cheap request on a second connection completes normally.
#[test]
fn deadline_exceeded_reports_partial_progress_and_peers_complete() {
    let (server, handle) = start(ServeConfig { workers: 2, ..ServeConfig::default() });
    let port = handle.port;

    let heavy = std::thread::spawn(move || {
        let mut c = Conn::open(port);
        c.roundtrip(&Request {
            id: 1,
            kind: RequestKind::Spec(SpecRequest {
                deadline_ms: Some(60),
                fuel: Some(1_000_000_000),
                max_spec: Some(usize::MAX),
                ..SpecRequest::inline(POLY, "Loop.count", "S:0,D")
            }),
        })
    });

    // While the heavy request burns its deadline, a cheap one on a
    // fresh connection must go through the second worker untouched.
    let mut c = Conn::open(port);
    let cheap = c.roundtrip(&Request {
        id: 2,
        kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:4,D")),
    });
    let ResponseBody::Spec { residual, .. } = cheap.body else {
        panic!("cheap request should complete: {cheap:?}");
    };
    assert!(residual.contains("x * (x * (x * x))"), "{residual}");

    let heavy = heavy.join().unwrap();
    assert_eq!(heavy.id, 1);
    let ResponseBody::Error(e) = heavy.body else {
        panic!("heavy request should hit its deadline: {heavy:?}");
    };
    assert_eq!(e.class, ErrorClass::Deadline);
    assert!(!e.retryable, "deadline errors are terminal for this request");
    let stats = e.stats.expect("deadline reply must carry partial-progress stats");
    assert!(stats.steps > 0, "partial progress should show steps: {stats:?}");

    server.shutdown();
    handle.join();
    assert!(server.stats().deadline_expired >= 1);
}

/// Acceptance: a residual produced via the daemon (spawned over stdio
/// by `mspec client --spawn`) is byte-identical to `mspec spec` output.
#[test]
fn daemon_residuals_are_byte_identical_to_cli() {
    let exe = env!("CARGO_BIN_EXE_mspec");
    let dir = std::env::temp_dir().join(format!("mspec-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("power.mspec");
    std::fs::write(&file, POWER).unwrap();

    let batch = Command::new(exe)
        .args(["spec", file.to_str().unwrap(), "--entry", "Power.power", "--args", "S:6,D"])
        .output()
        .unwrap();
    assert!(batch.status.success(), "{}", String::from_utf8_lossy(&batch.stderr));

    let served = Command::new(exe)
        .args([
            "client",
            "spec",
            file.to_str().unwrap(),
            "--entry",
            "Power.power",
            "--args",
            "S:6,D",
            "--spawn",
        ])
        .output()
        .unwrap();
    assert!(served.status.success(), "{}", String::from_utf8_lossy(&served.stderr));

    assert!(!batch.stdout.is_empty());
    assert_eq!(
        batch.stdout, served.stdout,
        "daemon residual must be byte-identical to the CLI's:\n--- cli ---\n{}\n--- daemon ---\n{}",
        String::from_utf8_lossy(&batch.stdout),
        String::from_utf8_lossy(&served.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resident state: the memo of finished specialisations is shared
/// across connections — the second identical request is a memo hit.
#[test]
fn memo_is_shared_across_connections() {
    let (server, handle) = start(ServeConfig::default());
    let req = || Request {
        id: 7,
        kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:5,D")),
    };

    let mut first = Conn::open(handle.port);
    let r1 = first.roundtrip(&req());
    let ResponseBody::Spec { residual: res1, memo_hit: hit1, .. } = r1.body else {
        panic!("{r1:?}");
    };
    assert!(!hit1);
    drop(first);

    let mut second = Conn::open(handle.port);
    let r2 = second.roundtrip(&req());
    let ResponseBody::Spec { residual: res2, memo_hit: hit2, .. } = r2.body else {
        panic!("{r2:?}");
    };
    assert!(hit2, "second identical request should hit the resident memo");
    assert_eq!(res1, res2);

    server.shutdown();
    handle.join();
}

/// One fully traced daemon run: a single connection issues two spec
/// requests against a one-worker server, so conn ids, request ids,
/// thread ids and event order are all deterministic. Only the event
/// stream is kept (counter and hist lines aggregate wall-clock
/// timings), with timestamps scrubbed.
fn traced_daemon_event_log() -> String {
    let rec = Recorder::enabled();
    let cfg = ServeConfig { workers: 1, ..ServeConfig::default() };
    let server = Server::new(cfg, rec.clone());
    let handle = server.start_tcp().unwrap();
    let mut c = Conn::open(handle.port);
    for (id, spec) in [(1u64, "S:3,D"), (2, "S:4,D")] {
        let resp = c.roundtrip(&Request {
            id,
            kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", spec)),
        });
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
    }
    drop(c);
    server.shutdown();
    handle.join();
    let events: String = mspec_testkit::scrub_timestamps(&rec.snapshot().to_jsonl())
        .lines()
        .filter(|l| !l.contains("\"ev\":\"counter\"") && !l.contains("\"ev\":\"hist\""))
        .map(|l| format!("{l}\n"))
        .collect();
    events
}

/// Satellite: the daemon's scrubbed per-request event stream matches a
/// checked-in golden file byte for byte — every admitted request's
/// events carry its `req`/`conn` tags. Regenerate with
/// `MSPEC_BLESS=1 cargo test -p mspec-core --test serve_daemon`.
#[test]
fn golden_daemon_trace_is_req_tagged() {
    let got = traced_daemon_event_log();
    let rid1 = mspec_serve::request_trace_id(1, 1);
    let rid2 = mspec_serve::request_trace_id(1, 2);
    assert!(got.contains(&format!("\"req\":{rid1},\"conn\":1")), "{got}");
    assert!(got.contains(&format!("\"req\":{rid2},\"conn\":1")), "{got}");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/events_daemon.jsonl");
    if std::env::var_os("MSPEC_BLESS").is_some() {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap();
    assert_eq!(got, want, "golden daemon trace drifted; bless with MSPEC_BLESS=1");
}

/// Satellite: the daemon's metrics exposition surface — family names,
/// types, help text, label sets and sample ordering — matches a golden
/// file with every sample value scrubbed to 0 (the values are live;
/// the *schema* is the contract scrape configs depend on). Regenerate
/// with `MSPEC_BLESS=1 cargo test -p mspec-core --test serve_daemon`.
#[test]
fn golden_metrics_exposition_schema() {
    let (server, handle) = start(ServeConfig::default());
    let mut c = Conn::open(handle.port);
    for id in [1u64, 2] {
        // Same spec twice: the second is a memo hit, so both cache and
        // latency families have data.
        let resp = c.roundtrip(&Request {
            id,
            kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:6,D")),
        });
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
    }
    // Latency is observed after the reply is sent; retry until both
    // observations landed so the quantile lines are present.
    let mut text = String::new();
    for id in 3u64..40 {
        let resp = c.roundtrip(&Request { id, kind: RequestKind::Metrics });
        let ResponseBody::Metrics { text: t } = resp.body else { panic!("{resp:?}") };
        text = t;
        if text.contains("mspecd_latency_us_count 2\n") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    server.shutdown();
    handle.join();

    let scrubbed: String = text
        .lines()
        .map(|l| {
            if l.starts_with('#') {
                format!("{l}\n")
            } else {
                let (name, _value) = l.rsplit_once(' ').expect("sample line");
                format!("{name} 0\n")
            }
        })
        .collect();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/metrics_exposition.txt");
    if std::env::var_os("MSPEC_BLESS").is_some() {
        std::fs::write(&path, &scrubbed).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap();
    assert_eq!(scrubbed, want, "metrics exposition schema drifted; bless with MSPEC_BLESS=1");
}

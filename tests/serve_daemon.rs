//! End-to-end tests for `mspecd`, the specialisation daemon:
//!
//! * deadlines cancel a running request with *partial-progress* stats
//!   while a concurrent cheap request on another connection completes
//!   unaffected;
//! * residuals produced through the daemon are byte-identical to the
//!   batch `mspec spec` CLI output (same pipeline, same pretty-printer);
//! * the cross-request memo is shared between connections.

use mspec_serve::{
    ErrorClass, Request, RequestKind, Response, ResponseBody, ServeConfig, Server, SpecRequest,
};
use mspec_lang::{FromJson, ToJson};
use mspec_telemetry::Recorder;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::Command;

const POWER: &str = "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

/// Unbounded polyvariance: the static counter grows under dynamic
/// control forever, iteratively — only a budget or deadline stops it.
const POLY: &str = "module Loop where\ncount n b = if b == 0 then n else count (n + 1) (b - 1)\n";

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(port: u16) -> Conn {
        let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    fn roundtrip(&mut self, req: &Request) -> Response {
        self.stream.write_all(format!("{}\n", req.to_json_compact()).as_bytes()).unwrap();
        self.stream.flush().unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        Response::from_json_str(line.trim_end()).unwrap()
    }
}

fn start(cfg: ServeConfig) -> (Server, mspec_serve::TcpHandle) {
    let server = Server::new(cfg, Recorder::disabled());
    let handle = server.start_tcp().unwrap();
    (server, handle)
}

/// Satellite: a fuel-heavy request under a short deadline returns a
/// structured `deadline` error carrying partial-progress stats, while a
/// concurrent cheap request on a second connection completes normally.
#[test]
fn deadline_exceeded_reports_partial_progress_and_peers_complete() {
    let (server, handle) = start(ServeConfig { workers: 2, ..ServeConfig::default() });
    let port = handle.port;

    let heavy = std::thread::spawn(move || {
        let mut c = Conn::open(port);
        c.roundtrip(&Request {
            id: 1,
            kind: RequestKind::Spec(SpecRequest {
                deadline_ms: Some(60),
                fuel: Some(1_000_000_000),
                max_spec: Some(usize::MAX),
                ..SpecRequest::inline(POLY, "Loop.count", "S:0,D")
            }),
        })
    });

    // While the heavy request burns its deadline, a cheap one on a
    // fresh connection must go through the second worker untouched.
    let mut c = Conn::open(port);
    let cheap = c.roundtrip(&Request {
        id: 2,
        kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:4,D")),
    });
    let ResponseBody::Spec { residual, .. } = cheap.body else {
        panic!("cheap request should complete: {cheap:?}");
    };
    assert!(residual.contains("x * (x * (x * x))"), "{residual}");

    let heavy = heavy.join().unwrap();
    assert_eq!(heavy.id, 1);
    let ResponseBody::Error(e) = heavy.body else {
        panic!("heavy request should hit its deadline: {heavy:?}");
    };
    assert_eq!(e.class, ErrorClass::Deadline);
    assert!(!e.retryable, "deadline errors are terminal for this request");
    let stats = e.stats.expect("deadline reply must carry partial-progress stats");
    assert!(stats.steps > 0, "partial progress should show steps: {stats:?}");

    server.shutdown();
    handle.join();
    assert!(server.stats().deadline_expired >= 1);
}

/// Acceptance: a residual produced via the daemon (spawned over stdio
/// by `mspec client --spawn`) is byte-identical to `mspec spec` output.
#[test]
fn daemon_residuals_are_byte_identical_to_cli() {
    let exe = env!("CARGO_BIN_EXE_mspec");
    let dir = std::env::temp_dir().join(format!("mspec-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("power.mspec");
    std::fs::write(&file, POWER).unwrap();

    let batch = Command::new(exe)
        .args(["spec", file.to_str().unwrap(), "--entry", "Power.power", "--args", "S:6,D"])
        .output()
        .unwrap();
    assert!(batch.status.success(), "{}", String::from_utf8_lossy(&batch.stderr));

    let served = Command::new(exe)
        .args([
            "client",
            "spec",
            file.to_str().unwrap(),
            "--entry",
            "Power.power",
            "--args",
            "S:6,D",
            "--spawn",
        ])
        .output()
        .unwrap();
    assert!(served.status.success(), "{}", String::from_utf8_lossy(&served.stderr));

    assert!(!batch.stdout.is_empty());
    assert_eq!(
        batch.stdout, served.stdout,
        "daemon residual must be byte-identical to the CLI's:\n--- cli ---\n{}\n--- daemon ---\n{}",
        String::from_utf8_lossy(&batch.stdout),
        String::from_utf8_lossy(&served.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resident state: the memo of finished specialisations is shared
/// across connections — the second identical request is a memo hit.
#[test]
fn memo_is_shared_across_connections() {
    let (server, handle) = start(ServeConfig::default());
    let req = || Request {
        id: 7,
        kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:5,D")),
    };

    let mut first = Conn::open(handle.port);
    let r1 = first.roundtrip(&req());
    let ResponseBody::Spec { residual: res1, memo_hit: hit1, .. } = r1.body else {
        panic!("{r1:?}");
    };
    assert!(!hit1);
    drop(first);

    let mut second = Conn::open(handle.port);
    let r2 = second.roundtrip(&req());
    let ResponseBody::Spec { residual: res2, memo_hit: hit2, .. } = r2.body else {
        panic!("{r2:?}");
    };
    assert!(hit2, "second identical request should hit the resident memo");
    assert_eq!(res1, res2);

    server.shutdown();
    handle.join();
}

//! Experiment E6: residual-module placement (§5).
//!
//! The paper gives three placement scenarios with exact expected
//! outcomes; these tests reproduce each, plus the structural guarantees
//! (no empty modules, acyclic residual imports).

use mspec_core::{Pipeline, SpecArg};
use mspec_lang::builder;
use mspec_lang::eval::Value;
use mspec_lang::modgraph::ModGraph;
use mspec_lang::QualName;
use std::collections::BTreeSet;

/// §5's main worked example: Power/Twice/Main with all definitions
/// hand-annotated non-unfoldable. Expected residual structure (verbatim
/// from the paper):
///
/// ```text
/// module Power where  power3 x = x * power2 x ; power2 ; power1
/// module PowerTwice where import Power ; twicepower x = power3 (power3 x)
/// module Main where import PowerTwice ; main x = twicepower x
/// ```
#[test]
fn section5_power_twice_main_structure() {
    let forced: BTreeSet<QualName> = [
        QualName::new("Power", "power"),
        QualName::new("Twice", "twice"),
        QualName::new("Main", "main"),
    ]
    .into();
    let p = Pipeline::from_program_with(builder::paper_section5_program(), &forced).unwrap();
    let s = p.specialise("Main", "main", vec![SpecArg::Dynamic]).unwrap();

    assert_eq!(s.module_names(), vec!["Main", "Power", "PowerTwice"]);

    let power = s.residual.program.module("Power").unwrap();
    assert_eq!(power.defs.len(), 3, "power3, power2, power1");
    assert!(power.imports.is_empty());

    let pt = s.residual.program.module("PowerTwice").unwrap();
    assert_eq!(pt.defs.len(), 1);
    assert_eq!(pt.imports, vec![mspec_lang::ModName::new("Power")]);
    // twicepower x = power3 (power3 x)
    let body = mspec_lang::pretty::pretty_def(&pt.defs[0], Some(&pt.name));
    assert!(body.contains("Power.power_1 (Power.power_1"), "{body}");

    let main = s.residual.program.module("Main").unwrap();
    assert_eq!(main.defs.len(), 1);
    assert_eq!(main.imports, vec![mspec_lang::ModName::new("PowerTwice")]);

    // And it computes y^9.
    assert_eq!(s.run(vec![Value::nat(2)]).unwrap(), Value::nat(512));
}

/// §5: `map` (module A) specialised to a closure over `g` (module B,
/// which imports A) — the specialisation moves into B.
#[test]
fn map_specialisation_moves_into_importing_module() {
    let p = Pipeline::from_program(builder::paper_map_program()).unwrap();
    let s = p
        .specialise("B", "h", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    // All residual code lives in B; module A is EMPTY and not emitted.
    assert_eq!(s.module_names(), vec!["B"]);
    let b = s.residual.program.module("B").unwrap();
    assert!(b.defs.iter().any(|d| d.name.as_str().starts_with("map_")));
}

/// §5: `g` imported from a third module C unrelated to A — the
/// specialisation of map needs a *combination module* AC, importable
/// from both callers B and D without creating cycles.
#[test]
fn unrelated_modules_get_combination_module() {
    let src = "module A where\n\
               map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n\
               module C where\n\
               g x = x + 1\n\
               module B where\n\
               import A\n\
               import C\n\
               hb z zs = map (\\x -> g x + z) zs\n\
               module D where\n\
               import A\n\
               import C\n\
               hd zs = map (\\x -> g x) zs\n\
               module Top where\n\
               import B\n\
               import D\n\
               main z zs = hb z zs : hd zs : []\n";
    let p = Pipeline::from_source(src).unwrap();
    let s = p
        .specialise("Top", "main", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    let names = s.module_names();
    assert!(names.contains(&"AC".to_string()), "{names:?}\n{}", s.source());
    // Both map specialisations (different closures) live in AC.
    let ac = s.residual.program.module("AC").unwrap();
    assert_eq!(
        ac.defs.iter().filter(|d| d.name.as_str().starts_with("map_")).count(),
        2,
        "{}",
        s.source()
    );
    // Semantics preserved.
    let zs = Value::list(vec![Value::nat(5)]);
    let got = s.run(vec![Value::nat(100), zs]).unwrap();
    let items = got.as_list().unwrap();
    assert_eq!(items[0], Value::list(vec![Value::nat(106)]));
    assert_eq!(items[1], Value::list(vec![Value::nat(6)]));
}

/// §5: the same combination set is reused — a second call from another
/// module does NOT duplicate the specialisation.
#[test]
fn combination_specialisations_are_shared_not_duplicated() {
    let src = "module A where\n\
               map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n\
               module C where\n\
               g x = x + 1\n\
               module B where\n\
               import A\n\
               import C\n\
               hb zs = map (\\x -> g x) zs\n\
               module D where\n\
               import A\n\
               import C\n\
               hd zs = map (\\x -> g x) zs\n\
               module Top where\n\
               import B\n\
               import D\n\
               main zs = hb zs : hd zs : []\n";
    let p = Pipeline::from_source(src).unwrap();
    let s = p.specialise("Top", "main", vec![SpecArg::Dynamic]).unwrap();
    // hb and hd use the *same* lambda shape but from different modules —
    // they are different closure sites, so two specialisations exist;
    // the only memo hits are each residual map's self-recursive call.
    assert_eq!(s.stats.memo_hits, 2);
    let map_specs: usize = s
        .residual
        .program
        .modules
        .iter()
        .flat_map(|m| &m.defs)
        .filter(|d| d.name.as_str().starts_with("map_"))
        .count();
    assert_eq!(map_specs, 2);
    // Re-using the identical call twice in one body shares:
    // Two textually equal lambdas are *different* closure sites and get
    // their own specialisations; binding the lambda once shares it.
    let src2 = "module A where\n\
                map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n\
                module B where\n\
                import A\n\
                h zs ws = let f = \\x -> x + 1 in map f zs : map f ws : []\n";
    let p2 = Pipeline::from_source(src2).unwrap();
    let s2 = p2
        .specialise("B", "h", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    // Same lambda site, same static parts: ONE specialisation; the
    // second call site and the self-recursion both hit the memo table.
    assert_eq!(s2.stats.memo_hits, 2, "{}", s2.source());

    let map_specs: usize = s2
        .residual
        .program
        .modules
        .iter()
        .flat_map(|m| &m.defs)
        .filter(|d| d.name.as_str().starts_with("map_"))
        .count();
    assert_eq!(map_specs, 1, "{}", s2.source());
}

/// §5: empty residual modules are never emitted.
#[test]
fn empty_modules_are_not_emitted() {
    // Twice's specialisations all unfold; module Twice must not appear.
    let p = Pipeline::from_program(builder::paper_section5_program()).unwrap();
    let s = p.specialise("Main", "main", vec![SpecArg::Dynamic]).unwrap();
    // Everything unfolds into main here (no forced residuals), so only
    // Main remains.
    assert_eq!(s.module_names(), vec!["Main"]);
    assert_eq!(s.run(vec![Value::nat(2)]).unwrap(), Value::nat(512));
}

/// The generated import graph is acyclic and resolvable for every
/// placement scenario above.
#[test]
fn residual_programs_resolve_with_acyclic_imports() {
    let forced: BTreeSet<QualName> = [
        QualName::new("Power", "power"),
        QualName::new("Twice", "twice"),
        QualName::new("Main", "main"),
    ]
    .into();
    let p = Pipeline::from_program_with(builder::paper_section5_program(), &forced).unwrap();
    let s = p.specialise("Main", "main", vec![SpecArg::Dynamic]).unwrap();
    let resolved = mspec_lang::resolve::resolve(s.residual.program.clone()).unwrap();
    assert!(ModGraph::new(resolved.program()).is_ok());
}

/// Provenance: every residual definition records its source function and
/// binding-time mask (the paper's power3/power2/power1 ↔ power n=3,2,1
/// relationship, made inspectable).
#[test]
fn provenance_records_source_and_mask() {
    let forced: BTreeSet<QualName> = [QualName::new("Power", "power")].into();
    let p = Pipeline::from_source_with(
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
        &forced,
    )
    .unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic])
        .unwrap();
    assert_eq!(s.provenance.len(), 3);
    for pr in &s.provenance {
        assert_eq!(pr.source, QualName::new("Power", "power"));
        assert_eq!(pr.mask.render(pr.vars), "{S,D}");
        assert_eq!(pr.formals, 1);
        assert!(s.residual.program.def(&pr.residual).is_some());
    }
    let report = s.provenance_report();
    assert!(report.contains("Power.power_1 <- Power.power {S,D}"), "{report}");
}

/// Placement happens at first-request time, before bodies exist: a
/// recursive residual function is placed exactly once and self-calls
/// stay in-module.
#[test]
fn recursive_residuals_stay_in_their_module() {
    let p = Pipeline::from_source(
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
    )
    .unwrap();
    let s = p
        .specialise("Power", "power", vec![SpecArg::Dynamic, SpecArg::Dynamic])
        .unwrap();
    assert_eq!(s.module_names(), vec!["Power"]);
    let m = s.residual.program.module("Power").unwrap();
    assert!(m.imports.is_empty());
}

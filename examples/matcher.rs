//! The classic partial-evaluation showcase: specialising a naive string
//! matcher with respect to a static pattern yields a hard-coded matcher
//! (the Consel–Danvy "KMP by partial evaluation" exercise, run through
//! the module-sensitive pipeline).
//!
//! Strings are lists of naturals (character codes). The matcher lives in
//! a library module; the pattern is the static input.
//!
//! Run with: `cargo run -p mspec-core --example matcher`

use mspec_core::{Pipeline, PipelineError, SpecArg};
use mspec_lang::eval::{with_big_stack, Value};

const MATCHER: &str = "module Match where\n\
    prefix p t = if null p then true else if null t then false else if head p == head t then prefix (tail p) (tail t) else false\n\
    find p t = if null t then false else if prefix p t then true else find p (tail t)\n\
    module App where\n\
    import Match\n\
    search t = find (1 : 2 : 1 : []) t\n";

fn string(cs: &[u64]) -> Value {
    Value::list(cs.iter().copied().map(Value::nat).collect())
}

fn main() {
    with_big_stack(|| run().unwrap());
}

fn run() -> Result<(), PipelineError> {
    let pipeline = Pipeline::from_source(MATCHER)?;

    // The pattern [1,2,1] is baked into App.search; the text is dynamic.
    let spec = pipeline.specialise("App", "search", vec![SpecArg::Dynamic])?;
    println!("== matcher specialised to the pattern [1,2,1] ==");
    println!("{}", spec.source());

    for (text, expect) in [
        (&[3u64, 1, 2, 1, 4][..], true),
        (&[1, 2, 2, 1][..], false),
        (&[1, 2, 1][..], true),
        (&[][..], false),
    ] {
        let got = spec.run(vec![string(text)])?;
        println!("search {text:?} = {got} (expected {expect})");
        assert_eq!(got, Value::bool_(expect));
    }

    // Residual quality: steps per query, specialised vs unspecialised.
    let (_, fast_steps) = spec.run_compiled(vec![string(&[3, 1, 2, 1, 4])])?;
    println!("\ncompiled-evaluator steps per query (pattern [1,2,1], text len 5): {fast_steps}");
    Ok(())
}

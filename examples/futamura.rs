//! The first Futamura projection, module-sensitively.
//!
//! An interpreter for a tiny expression language is written in the
//! object language (across two modules). Specialising the interpreter
//! with respect to a *static program* compiles that program: the
//! residual code is straight-line arithmetic with no interpretive
//! overhead left.
//!
//! Run with: `cargo run -p mspec-core --example futamura`

use mspec_core::{Pipeline, PipelineError, SpecArg};
use mspec_lang::eval::{with_big_stack, Value};

/// The interpreter. Programs are prefix-encoded lists of naturals:
/// `0 n` = literal n, `1` = the input variable,
/// `2 e1 e2` = addition, `3 e1 e2` = multiplication.
const INTERP: &str = "module ListLib where\n\
    drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)\n\
    module Interp where\n\
    import ListLib\n\
    size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))\n\
    run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x\n";

/// Abstract syntax for building encoded programs comfortably.
enum E {
    Lit(u64),
    Var,
    Add(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

impl E {
    fn encode(&self, out: &mut Vec<Value>) {
        match self {
            E::Lit(n) => {
                out.push(Value::nat(0));
                out.push(Value::nat(*n));
            }
            E::Var => out.push(Value::nat(1)),
            E::Add(a, b) => {
                out.push(Value::nat(2));
                a.encode(out);
                b.encode(out);
            }
            E::Mul(a, b) => {
                out.push(Value::nat(3));
                a.encode(out);
                b.encode(out);
            }
        }
    }

    fn to_value(&self) -> Value {
        let mut out = Vec::new();
        self.encode(&mut out);
        Value::list(out)
    }
}

fn lit(n: u64) -> E {
    E::Lit(n)
}
fn var() -> E {
    E::Var
}
fn add(a: E, b: E) -> E {
    E::Add(Box::new(a), Box::new(b))
}
fn mul(a: E, b: E) -> E {
    E::Mul(Box::new(a), Box::new(b))
}

fn main() {
    with_big_stack(|| run().unwrap());
}

fn run() -> Result<(), PipelineError> {
    let pipeline = Pipeline::from_source(INTERP)?;

    let programs: Vec<(&str, E)> = vec![
        ("(x + 3) * (x * x)", mul(add(var(), lit(3)), mul(var(), var()))),
        ("x * x * x * x", mul(var(), mul(var(), mul(var(), var())))),
        ("5 * x + 7", add(mul(lit(5), var()), lit(7))),
    ];

    for (desc, prog) in programs {
        let spec = pipeline.specialise(
            "Interp",
            "run",
            vec![SpecArg::Static(prog.to_value()), SpecArg::Dynamic],
        )?;
        println!("== compiling {desc} ==");
        println!("{}", spec.source());
        let at4 = spec.run(vec![Value::nat(4)])?;
        println!("value at x=4: {at4}");
        println!(
            "(interpreter steps avoided per run: the residual does pure arithmetic)\n"
        );
    }
    Ok(())
}

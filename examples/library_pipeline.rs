//! A list library used by an application, specialised module-sensitively,
//! with the residual-module placement of §5 on display — including a
//! combination module — and the two-pass file emission.
//!
//! Run with: `cargo run -p mspec-core --example library_pipeline`

use mspec_core::{write_residual, Pipeline, PipelineError, SpecArg};
use mspec_lang::eval::{with_big_stack, Value};

const PROGRAM: &str = "module Lists where\n\
    map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n\
    sum xs = if null xs then 0 else head xs + sum (tail xs)\n\
    module Nums where\n\
    scale k x = k * x\n\
    module App where\n\
    import Lists\n\
    import Nums\n\
    weighted w xs = sum (map (\\x -> scale w x) xs)\n";

fn main() {
    with_big_stack(|| run().unwrap());
}

fn run() -> Result<(), PipelineError> {
    let pipeline = Pipeline::from_source(PROGRAM)?;

    // Dynamic weight, dynamic list: map and sum are specialised to the
    // closure (which captures the dynamic w) and placed per §5.
    let spec = pipeline.specialise(
        "App",
        "weighted",
        vec![SpecArg::Dynamic, SpecArg::Dynamic],
    )?;
    println!("== residual program (dynamic list) ==\n{}", spec.source());
    println!("residual modules: {:?}", spec.module_names());

    let xs = Value::list(vec![Value::nat(1), Value::nat(2), Value::nat(3)]);
    println!(
        "weighted 10 [1,2,3] = {}\n",
        spec.run(vec![Value::nat(10), xs])?
    );

    // Partially static: spine of length 4 known, elements dynamic — all
    // recursion unfolds away.
    let flat = pipeline.specialise(
        "App",
        "weighted",
        vec![SpecArg::Dynamic, SpecArg::StaticSpine(4)],
    )?;
    println!("== residual program (static spine, 4 elements) ==\n{}", flat.source());
    println!(
        "weighted 2 <1,2,3,4> = {}\n",
        flat.run(vec![
            Value::nat(2),
            Value::nat(1),
            Value::nat(2),
            Value::nat(3),
            Value::nat(4)
        ])?
    );

    // Two-pass file emission (§5): bodies to temporaries, then headers.
    let dir = std::env::temp_dir().join("mspec-library-pipeline");
    let files = write_residual(&dir, &spec.residual)?;
    println!("emitted residual modules:");
    for f in &files {
        println!("  {}", f.display());
    }
    Ok(())
}

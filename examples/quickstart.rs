//! Quickstart: the paper's `power` example end to end.
//!
//! Run with: `cargo run -p mspec-core --example quickstart`

use mspec_core::{Pipeline, PipelineError, SpecArg};
use mspec_lang::eval::{with_big_stack, Value};
use mspec_lang::QualName;

const POWER: &str = "module Power where\n\
    power n x = if n == 1 then x else x * power (n - 1) x\n";

fn main() {
    with_big_stack(|| run().unwrap());
}

fn run() -> Result<(), PipelineError> {
    // One call prepares everything: parse, resolve, Hindley-Milner
    // typecheck, polymorphic binding-time analysis, cogen, link.
    let pipeline = Pipeline::from_source(POWER)?;

    println!("== source ==\n{POWER}");

    // The inferred types and binding-time scheme (paper §4.1).
    let q = QualName::new("Power", "power");
    println!("HM type:   {}", pipeline.types().scheme(&q).unwrap());
    println!("BT scheme: {}", pipeline.annotated().signature(&q).unwrap());
    println!(
        "annotated: {}\n",
        pipeline.annotated().def(&q).unwrap()
    );

    // Specialise with n = 3 static, x dynamic (paper §2: power_3).
    let cube = pipeline.specialise(
        "Power",
        "power",
        vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic],
    )?;
    println!("== power {{S,D}} with n = 3 ==\n{}", cube.source());
    println!("power_3(5) = {}\n", cube.run(vec![Value::nat(5)])?);

    // Specialise with n dynamic, x = 2 static (paper §2: power {D,S}).
    let base2 = pipeline.specialise(
        "Power",
        "power",
        vec![SpecArg::Dynamic, SpecArg::Static(Value::nat(2))],
    )?;
    println!("== power {{D,S}} with x = 2 ==\n{}", base2.source());
    println!("2^10 = {}\n", base2.run(vec![Value::nat(10)])?);

    // The engine counters back up the paper's cost story.
    println!(
        "stats: {} specialisations, {} unfolds, {} steps",
        base2.stats.specialisations, base2.stats.unfolds, base2.stats.steps
    );
    Ok(())
}

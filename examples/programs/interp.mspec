module ListLib where

drop n xs = if n == 0 then xs else drop (n - 1) (tail xs)

module Interp where
import ListLib

size p = if head p == 0 then 2 else if head p == 1 then 1 else 1 + size (tail p) + size (drop (size (tail p)) (tail p))
run p x = if head p == 0 then head (tail p) else if head p == 1 then x else if head p == 2 then run (tail p) x + run (drop (size (tail p)) (tail p)) x else run (tail p) x * run (drop (size (tail p)) (tail p)) x

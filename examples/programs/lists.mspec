module Lists where

map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)
sum xs = if null xs then 0 else head xs + sum (tail xs)
upto n = if n == 0 then [] else n : upto (n - 1)

module App where
import Lists

sumsquares n = sum (map (\x -> x * x) (upto n))
weighted w xs = sum (map (\x -> x * w) xs)

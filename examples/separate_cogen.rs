//! The build-system workflow of §4: each module is analysed and
//! converted to its generating extension ONCE (producing `.bti` and
//! `.gx` files); programs are then specialised by linking `.gx` files —
//! the library source is never consulted again.
//!
//! Run with: `cargo run -p mspec-core --example separate_cogen`

use mspec_cogen::files::{cogen_module, load_gx};
use mspec_genext::{Engine, EngineOptions, GenProgram, SpecArg};
use mspec_lang::eval::{with_big_stack, Value};
use mspec_lang::parser::parse_program;
use mspec_lang::resolve::resolve;
use mspec_lang::QualName;
use std::collections::BTreeSet;

const LIBRARY: &str = "module Power where\n\
    power n x = if n == 1 then x else x * power (n - 1) x\n\
    module Twice where\n\
    twice f x = f @ (f @ x)\n";

const CLIENT: &str = "module Main where\n\
    import Power\n\
    import Twice\n\
    main y = twice (\\x -> Power.power 3 x) y\n";

fn main() {
    with_big_stack(|| run().unwrap());
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("mspec-separate-cogen");
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Library vendor side: cogen once, ship .bti + .gx ------------
    let lib = resolve(parse_program(LIBRARY)?)?;
    for name in lib.graph().topo_order() {
        let module = lib.program().module(name.as_str()).unwrap();
        let out = cogen_module(module, &dir, &BTreeSet::new())?;
        println!("cogen {name}: wrote {} and {}", out.bti.display(), out.gx.display());
    }

    // ---- Application side: cogen the client against interfaces -------
    let whole = format!("{LIBRARY}{CLIENT}");
    let resolved = resolve(parse_program(&whole)?)?;
    let client = resolved.program().module("Main").unwrap();
    let out = cogen_module(client, &dir, &BTreeSet::new())?;
    println!("cogen Main: wrote {}", out.gx.display());

    // ---- Specialisation time: LINK .gx FILES ONLY --------------------
    // (Imagine the library source deleted; only dir/*.gx remain.)
    let linked = GenProgram::link(vec![
        load_gx(dir.join("Power.gx"))?,
        load_gx(dir.join("Twice.gx"))?,
        load_gx(dir.join("Main.gx"))?,
    ])?;
    let mut engine = Engine::new(&linked, EngineOptions::default());
    let residual = engine.specialise(&QualName::new("Main", "main"), vec![SpecArg::Dynamic])?;

    println!("\n== residual program ==");
    println!("{}", mspec_lang::pretty::pretty_program(&residual.program));

    let rp = resolve(residual.program.clone())?;
    let mut ev = mspec_lang::eval::Evaluator::new(&rp);
    println!("main(2) = {}", ev.call(&residual.entry, vec![Value::nat(2)])?);
    println!(
        "stats: {} specialisations, {} memo hits",
        engine.stats().specialisations,
        engine.stats().memo_hits
    );
    Ok(())
}

//! Algorithm-W-style inference over modules.
//!
//! A module is inferred using only the [`TypeInterface`]s of its imports.
//! Within a module, definitions are grouped into strongly connected
//! components of the local call graph; each SCC is inferred monomorphically
//! (supporting mutual recursion) and generalised afterwards, so earlier
//! definitions are available polymorphically to later ones — the usual
//! Haskell-like behaviour.

use crate::error::TypeError;
use crate::interface::TypeInterface;
use crate::ty::{FnScheme, Subst, TyVar, TyVarGen, Type};
use crate::unify::unify;
use mspec_lang::ast::{Expr, Ident, ModName, Module, PrimOp, QualName};
use mspec_lang::resolve::ResolvedProgram;
use std::collections::BTreeMap;

/// The inferred type schemes of every function in a program.
#[derive(Debug, Clone, Default)]
pub struct ProgramTypes {
    schemes: BTreeMap<QualName, FnScheme>,
}

impl ProgramTypes {
    /// Looks up a function's scheme.
    pub fn scheme(&self, q: &QualName) -> Option<&FnScheme> {
        self.schemes.get(q)
    }

    /// Iterates over all `(function, scheme)` pairs deterministically.
    pub fn iter(&self) -> impl Iterator<Item = (&QualName, &FnScheme)> {
        self.schemes.iter()
    }

    /// Records a function's scheme (used by drivers that infer modules
    /// out-of-line, e.g. the level-parallel pipeline build).
    pub fn insert(&mut self, q: QualName, scheme: FnScheme) {
        self.schemes.insert(q, scheme);
    }

    /// Number of typed functions.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// `true` if no functions were typed.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }
}

/// Infers types for a whole resolved program, module by module in
/// dependency order.
///
/// # Errors
///
/// Any [`TypeError`] found in any module.
pub fn infer_program(rp: &ResolvedProgram) -> Result<ProgramTypes, TypeError> {
    let mut interfaces: BTreeMap<ModName, TypeInterface> = BTreeMap::new();
    let mut out = ProgramTypes::default();
    for mod_name in rp.graph().topo_order() {
        let module = rp
            .program()
            .module(mod_name.as_str())
            .expect("topo order lists only program modules");
        let iface = infer_module(module, &interfaces)?;
        for (name, scheme) in iface.iter() {
            out.schemes.insert(
                QualName { module: *mod_name, name: *name },
                scheme.clone(),
            );
        }
        interfaces.insert(*mod_name, iface);
    }
    Ok(out)
}

/// Infers the types of one module given the interfaces of its imports.
///
/// This is the separate-analysis entry point: the import *sources* are
/// not consulted, exactly as the paper requires.
///
/// # Errors
///
/// Any [`TypeError`] found in the module.
pub fn infer_module(
    module: &Module,
    imports: &BTreeMap<ModName, TypeInterface>,
) -> Result<TypeInterface, TypeError> {
    let mut done = TypeInterface::new();
    for scc in local_sccs(module) {
        infer_scc(module, &scc, imports, &mut done)?;
    }
    Ok(done)
}

/// [`infer_module`] under a telemetry span (`typecheck`, detail = the
/// module name), counting definitions inferred.
///
/// # Errors
///
/// Any [`TypeError`] found in the module.
pub fn infer_module_traced(
    module: &Module,
    imports: &BTreeMap<ModName, TypeInterface>,
    rec: &mspec_telemetry::Recorder,
) -> Result<TypeInterface, TypeError> {
    let _span = rec.span_with("typecheck", module.name.as_str());
    rec.count("types.defs_inferred", module.defs.len() as u64);
    infer_module(module, imports)
}

/// Strongly connected components of the module-local call graph, in
/// dependency order (callees before callers).
fn local_sccs(module: &Module) -> Vec<Vec<usize>> {
    let n = module.defs.len();
    let index_of: BTreeMap<&Ident, usize> =
        module.defs.iter().enumerate().map(|(i, d)| (&d.name, i)).collect();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, d) in module.defs.iter().enumerate() {
        for q in d.body.called_functions() {
            if q.module == module.name {
                if let Some(&j) = index_of.get(&q.name) {
                    if !edges[i].contains(&j) {
                        edges[i].push(j);
                    }
                }
            }
        }
    }
    tarjan(n, &edges)
}

/// Tarjan's SCC algorithm; returns components in reverse topological
/// order of the condensation, i.e. callees first.
fn tarjan(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'e> {
        edges: &'e [Vec<usize>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        counter: u32,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(v: usize, st: &mut State<'_>) {
        st.index[v] = Some(st.counter);
        st.low[v] = st.counter;
        st.counter += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in &st.edges[v] {
            match st.index[w] {
                None => {
                    strongconnect(w, st);
                    st.low[v] = st.low[v].min(st.low[w]);
                }
                Some(wi) if st.on_stack[w] => {
                    st.low[v] = st.low[v].min(wi);
                }
                _ => {}
            }
        }
        if Some(st.low[v]) == st.index[v] {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().expect("tarjan stack underflow");
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let mut st = State {
        edges,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        counter: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strongconnect(v, &mut st);
        }
    }
    st.out
}

/// A monomorphic placeholder signature for a definition in the SCC being
/// inferred.
#[derive(Debug, Clone)]
struct Placeholder {
    params: Vec<Type>,
    ret: Type,
}

struct Inferencer<'a> {
    module: &'a Module,
    imports: &'a BTreeMap<ModName, TypeInterface>,
    done: &'a TypeInterface,
    placeholders: BTreeMap<Ident, Placeholder>,
    gen: TyVarGen,
    subst: Subst,
    context: String,
}

fn infer_scc(
    module: &Module,
    scc: &[usize],
    imports: &BTreeMap<ModName, TypeInterface>,
    done: &mut TypeInterface,
) -> Result<(), TypeError> {
    let mut inf = Inferencer {
        module,
        imports,
        done,
        placeholders: BTreeMap::new(),
        gen: TyVarGen::new(),
        subst: Subst::empty(),
        context: String::new(),
    };
    for &i in scc {
        let d = &module.defs[i];
        let params = d.params.iter().map(|_| inf.gen.fresh_ty()).collect();
        let ret = inf.gen.fresh_ty();
        inf.placeholders.insert(d.name, Placeholder { params, ret });
    }
    for &i in scc {
        let d = &module.defs[i];
        inf.context = format!("{}.{}", module.name, d.name);
        let ph = inf.placeholders[&d.name].clone();
        let mut locals: Vec<(Ident, Type)> = Vec::new();
        for (p, t) in d.params.iter().zip(&ph.params) {
            locals.push((*p, t.clone()));
        }
        let body_ty = inf.infer(&d.body, &mut locals)?;
        inf.unify(&body_ty, &ph.ret)?;
    }
    // Generalise: top-level definitions are closed, so every remaining
    // free variable is quantifiable.
    let mut generalised: Vec<(Ident, FnScheme)> = Vec::new();
    for &i in scc {
        let d = &module.defs[i];
        let ph = &inf.placeholders[&d.name];
        let params: Vec<Type> = ph.params.iter().map(|t| inf.subst.apply(t)).collect();
        let ret = inf.subst.apply(&ph.ret);
        let mut vars: Vec<TyVar> = Vec::new();
        for t in params.iter().chain(std::iter::once(&ret)) {
            for v in t.free_vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        generalised.push((d.name, FnScheme { vars, params, ret }));
    }
    drop(inf);
    for (name, scheme) in generalised {
        done.insert(name, scheme);
    }
    Ok(())
}

impl Inferencer<'_> {
    fn unify(&mut self, a: &Type, b: &Type) -> Result<(), TypeError> {
        let a = self.subst.apply(a);
        let b = self.subst.apply(b);
        let s = unify(&a, &b, &self.context)?;
        self.subst = s.compose(&self.subst);
        Ok(())
    }

    fn instantiate(&mut self, scheme: &FnScheme) -> (Vec<Type>, Type) {
        let sub = Subst::parallel(
            scheme.vars.iter().map(|v| (*v, self.gen.fresh_ty())),
        );
        (
            scheme.params.iter().map(|p| sub.apply(p)).collect(),
            sub.apply(&scheme.ret),
        )
    }

    fn fn_signature(&mut self, q: &QualName) -> Result<(Vec<Type>, Type), TypeError> {
        if q.module == self.module.name {
            if let Some(ph) = self.placeholders.get(&q.name) {
                return Ok((ph.params.clone(), ph.ret.clone()));
            }
            if let Some(s) = self.done.get(&q.name) {
                let s = s.clone();
                return Ok(self.instantiate(&s));
            }
        } else if let Some(iface) = self.imports.get(&q.module) {
            if let Some(s) = iface.get(&q.name) {
                let s = s.clone();
                return Ok(self.instantiate(&s));
            }
        }
        Err(TypeError::UnknownFunction(*q))
    }

    fn infer(&mut self, e: &Expr, locals: &mut Vec<(Ident, Type)>) -> Result<Type, TypeError> {
        match e {
            Expr::Nat(_) => Ok(Type::Nat),
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Nil => Ok(Type::list(self.gen.fresh_ty())),
            Expr::Var(x) => locals
                .iter()
                .rev()
                .find(|(n, _)| n == x)
                .map(|(_, t)| t.clone())
                .ok_or(TypeError::UnboundVariable {
                    module: self.module.name,
                    name: *x,
                }),
            Expr::Prim(op, args) => self.infer_prim(*op, args, locals),
            Expr::If(c, t, f) => {
                let ct = self.infer(c, locals)?;
                self.unify(&ct, &Type::Bool)?;
                let tt = self.infer(t, locals)?;
                let ft = self.infer(f, locals)?;
                self.unify(&tt, &ft)?;
                Ok(self.subst.apply(&tt))
            }
            Expr::Call(target, args) => {
                let q = target.qualified();
                let (params, ret) = self.fn_signature(&q)?;
                debug_assert_eq!(params.len(), args.len(), "resolution checked arity");
                for (a, p) in args.iter().zip(&params) {
                    let at = self.infer(a, locals)?;
                    self.unify(&at, p)?;
                }
                Ok(self.subst.apply(&ret))
            }
            Expr::Lam(x, body) => {
                let pt = self.gen.fresh_ty();
                locals.push((*x, pt.clone()));
                let bt = self.infer(body, locals)?;
                locals.pop();
                Ok(Type::fun(self.subst.apply(&pt), bt))
            }
            Expr::App(f, a) => {
                let ft = self.infer(f, locals)?;
                let at = self.infer(a, locals)?;
                let rt = self.gen.fresh_ty();
                self.unify(&ft, &Type::fun(at, rt.clone()))?;
                Ok(self.subst.apply(&rt))
            }
            Expr::Let(x, rhs, body) => {
                // `let` is monomorphic here: the specialiser always
                // unfolds lets, and the paper's language has no `let` at
                // all, so Hindley–Milner let-generalisation is not needed.
                let rt = self.infer(rhs, locals)?;
                locals.push((*x, rt));
                let bt = self.infer(body, locals)?;
                locals.pop();
                Ok(bt)
            }
        }
    }

    fn infer_prim(
        &mut self,
        op: PrimOp,
        args: &[Expr],
        locals: &mut Vec<(Ident, Type)>,
    ) -> Result<Type, TypeError> {
        use PrimOp::*;
        let tys: Vec<Type> = args
            .iter()
            .map(|a| self.infer(a, locals))
            .collect::<Result<_, _>>()?;
        match op {
            Add | Sub | Mul | Div => {
                self.unify(&tys[0], &Type::Nat)?;
                self.unify(&tys[1], &Type::Nat)?;
                Ok(Type::Nat)
            }
            Eq | Lt | Leq => {
                self.unify(&tys[0], &Type::Nat)?;
                self.unify(&tys[1], &Type::Nat)?;
                Ok(Type::Bool)
            }
            And | Or => {
                self.unify(&tys[0], &Type::Bool)?;
                self.unify(&tys[1], &Type::Bool)?;
                Ok(Type::Bool)
            }
            Not => {
                self.unify(&tys[0], &Type::Bool)?;
                Ok(Type::Bool)
            }
            Cons => {
                let elem = self.gen.fresh_ty();
                self.unify(&tys[0], &elem)?;
                self.unify(&tys[1], &Type::list(elem.clone()))?;
                Ok(self.subst.apply(&Type::list(elem)))
            }
            Head => {
                let elem = self.gen.fresh_ty();
                self.unify(&tys[0], &Type::list(elem.clone()))?;
                Ok(self.subst.apply(&elem))
            }
            Tail => {
                let elem = self.gen.fresh_ty();
                self.unify(&tys[0], &Type::list(elem.clone()))?;
                Ok(self.subst.apply(&Type::list(elem)))
            }
            Null => {
                let elem = self.gen.fresh_ty();
                self.unify(&tys[0], &Type::list(elem))?;
                Ok(Type::Bool)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::parser::parse_program;
    use mspec_lang::resolve::resolve;

    fn types_of(src: &str) -> Result<ProgramTypes, TypeError> {
        let rp = resolve(parse_program(src).unwrap()).unwrap();
        infer_program(&rp)
    }

    fn scheme_str(src: &str, module: &str, name: &str) -> String {
        types_of(src)
            .unwrap()
            .scheme(&QualName::new(module, name))
            .unwrap()
            .to_string()
    }

    #[test]
    fn power_is_nat_nat_nat() {
        assert_eq!(
            scheme_str(
                "module P where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
                "P",
                "power"
            ),
            "Nat -> Nat -> Nat"
        );
    }

    #[test]
    fn map_is_polymorphic() {
        assert_eq!(
            scheme_str(
                "module A where\nmap f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n",
                "A",
                "map"
            ),
            "forall t0 t1. (t0 -> t1) -> [t0] -> [t1]"
        );
    }

    #[test]
    fn identity_lambda_infers() {
        assert_eq!(
            scheme_str("module A where\napply f x = f @ x\n", "A", "apply"),
            "forall t0 t1. (t0 -> t1) -> t0 -> t1"
        );
    }

    #[test]
    fn twice_requires_endofunction() {
        assert_eq!(
            scheme_str("module A where\ntwice f x = f @ (f @ x)\n", "A", "twice"),
            "forall t0. (t0 -> t0) -> t0 -> t0"
        );
    }

    #[test]
    fn polymorphic_reuse_at_two_types() {
        // map used at Nat and at list-of-Nat element types.
        let src = "module A where\n\
                   map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n\
                   use ys zss = head (map (\\x -> x + 1) ys) : head (map (\\zs -> tail zs) zss)\n";
        assert_eq!(scheme_str(src, "A", "use"), "[Nat] -> [[Nat]] -> [Nat]");
    }

    #[test]
    fn mutual_recursion_in_one_module() {
        let src = "module A where\n\
                   even n = if n == 0 then true else odd (n - 1)\n\
                   odd n = if n == 0 then false else even (n - 1)\n";
        assert_eq!(scheme_str(src, "A", "even"), "Nat -> Bool");
        assert_eq!(scheme_str(src, "A", "odd"), "Nat -> Bool");
    }

    #[test]
    fn cross_module_polymorphism_via_interface() {
        let src = "module Lib where\n\
                   map f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n\
                   module App where\n\
                   import Lib\n\
                   incs ys = map (\\x -> x + 1) ys\n\
                   nots bs = map (\\b -> not b) bs\n";
        assert_eq!(scheme_str(src, "App", "incs"), "[Nat] -> [Nat]");
        assert_eq!(scheme_str(src, "App", "nots"), "[Bool] -> [Bool]");
    }

    #[test]
    fn condition_must_be_boolean() {
        let err = types_of("module A where\nf x = if x then 1 else 2\n").unwrap();
        // x gets unified with Bool — that is fine; the error case:
        let err2 = types_of("module A where\nf x = if 1 then 1 else 2\n");
        assert!(matches!(err2, Err(TypeError::Mismatch { .. })), "{err2:?}");
        let _ = err;
    }

    #[test]
    fn branches_must_agree() {
        let r = types_of("module A where\nf b = if b then 1 else true\n");
        assert!(matches!(r, Err(TypeError::Mismatch { .. })), "{r:?}");
    }

    #[test]
    fn arithmetic_on_bools_fails() {
        let r = types_of("module A where\nf b = b + 1\nmain x = f (x == 0)\n");
        assert!(r.is_err());
    }

    #[test]
    fn occurs_check_on_self_application() {
        let r = types_of("module A where\nf g = g @ g\n");
        assert!(matches!(r, Err(TypeError::Occurs { .. })), "{r:?}");
    }

    #[test]
    fn heterogeneous_list_fails() {
        let r = types_of("module A where\nf = 1 : true : []\n");
        assert!(matches!(r, Err(TypeError::Mismatch { .. })), "{r:?}");
    }

    #[test]
    fn zero_arity_function_scheme() {
        assert_eq!(scheme_str("module A where\nc = 1 : []\n", "A", "c"), "[Nat]");
    }

    #[test]
    fn let_is_monomorphic_but_usable() {
        assert_eq!(
            scheme_str("module A where\nf y = let g = \\x -> x + y in g @ 1 + g @ 2\n", "A", "f"),
            "Nat -> Nat"
        );
    }

    #[test]
    fn paper_section5_program_types() {
        let rp = resolve(mspec_lang::builder::paper_section5_program()).unwrap();
        let tys = infer_program(&rp).unwrap();
        assert_eq!(
            tys.scheme(&QualName::new("Main", "main")).unwrap().to_string(),
            "Nat -> Nat"
        );
        assert_eq!(
            tys.scheme(&QualName::new("Twice", "twice")).unwrap().to_string(),
            "forall t0. (t0 -> t0) -> t0 -> t0"
        );
        assert_eq!(tys.len(), 3);
        assert!(!tys.is_empty());
    }

    #[test]
    fn separate_module_inference_matches_whole_program() {
        let src = "module Lib where\n\
                   compose f g x = f @ (g @ x)\n\
                   module App where\n\
                   import Lib\n\
                   h y = compose (\\a -> a + 1) (\\b -> b * 2) y\n";
        let rp = resolve(parse_program(src).unwrap()).unwrap();
        let whole = infer_program(&rp).unwrap();

        // Now do it module by module through interfaces only.
        let lib = rp.program().module("Lib").unwrap();
        let lib_iface = infer_module(lib, &BTreeMap::new()).unwrap();
        let mut imports = BTreeMap::new();
        imports.insert(ModName::new("Lib"), lib_iface);
        let app = rp.program().module("App").unwrap();
        let app_iface = infer_module(app, &imports).unwrap();

        assert_eq!(
            whole.scheme(&QualName::new("App", "h")).unwrap(),
            app_iface.get(&Ident::new("h")).unwrap()
        );
    }

    #[test]
    fn unknown_import_function_reports_cleanly() {
        let module = mspec_lang::parser::parse_module(
            "module App where\nimport Lib\nh y = Lib.missing y\n",
        )
        .unwrap();
        // Resolution would normally reject this; calling infer_module
        // directly with an empty interface exercises the error path.
        let mut imports = BTreeMap::new();
        imports.insert(ModName::new("Lib"), TypeInterface::new());
        let r = infer_module(&module, &imports);
        assert!(matches!(r, Err(TypeError::UnknownFunction(_))), "{r:?}");
    }

    #[test]
    fn instantiation_does_not_alias_scheme_variables() {
        // Regression: a 3-variable scheme instantiated when the local
        // variable counter already overlapped the scheme's canonical
        // variables used to alias two parameters.
        let src = "module M1 where\n\
                   pick3 p0 p1 p2 = p0\n\
                   module M2 where\n\
                   import M1\n\
                   f p0 = p0 + M1.pick3 1 [] true\n";
        assert_eq!(scheme_str(src, "M2", "f"), "Nat -> Nat");
    }

    #[test]
    fn deep_local_dependency_chain_generalises_each_step() {
        let src = "module A where\n\
                   id x = x\n\
                   pair x ys = id x : id ys\n";
        // pair uses id at two different instantiations within one body —
        // works because id is in an earlier SCC and thus polymorphic.
        // Note: `id x : id ys` forces elem/list agreement.
        assert_eq!(scheme_str(src, "A", "pair"), "forall t0. t0 -> [t0] -> [t0]");
    }
}

//! Type-error reporting.

use crate::ty::Type;
use mspec_lang::{Ident, ModName, QualName};
use std::error::Error;
use std::fmt;

/// An error found during type inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two types that should be equal are not.
    Mismatch {
        /// The type required by the context.
        expected: Type,
        /// The type actually found.
        found: Type,
        /// Where the mismatch happened (module and function).
        context: String,
    },
    /// The occurs check failed: unification would build an infinite type.
    Occurs {
        /// Rendered form of the offending variable.
        var: String,
        /// The type it would have to contain itself in.
        ty: Type,
        /// Where the failure happened.
        context: String,
    },
    /// A call to a function with no known type (missing interface).
    UnknownFunction(QualName),
    /// A variable without a binding (resolution normally prevents this).
    UnboundVariable {
        /// The module being checked.
        module: ModName,
        /// The unbound name.
        name: Ident,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch { expected, found, context } => {
                write!(f, "type mismatch in {context}: expected {expected}, found {found}")
            }
            TypeError::Occurs { var, ty, context } => {
                write!(f, "cannot construct infinite type {var} = {ty} in {context}")
            }
            TypeError::UnknownFunction(q) => write!(f, "no type known for function {q}"),
            TypeError::UnboundVariable { module, name } => {
                write!(f, "unbound variable `{name}` while typing module {module}")
            }
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_display() {
        let e = TypeError::Mismatch {
            expected: Type::Nat,
            found: Type::Bool,
            context: "A.f".into(),
        };
        let s = e.to_string();
        assert!(s.contains("expected Nat"), "{s}");
        assert!(s.contains("found Bool"), "{s}");
        assert!(s.contains("A.f"), "{s}");
    }

    #[test]
    fn occurs_display() {
        let e = TypeError::Occurs {
            var: "t0".into(),
            ty: Type::list(Type::Var(crate::ty::TyVar(0))),
            context: "A.f".into(),
        };
        assert!(e.to_string().contains("infinite type"));
    }

    #[test]
    fn implements_error() {
        fn takes<E: Error>(_: E) {}
        takes(TypeError::UnknownFunction(QualName::new("A", "f")));
    }
}

//! Hindley–Milner type inference for the mspec object language.
//!
//! The paper's language is "polymorphically typed, using the standard
//! Hindley-Milner type system" (§3). This crate implements that system:
//!
//! * [`ty`] — types, type variables, schemes and substitutions,
//! * [`unify`] — unification with occurs check,
//! * [`infer`] — Algorithm-W-style inference over modules; definitions
//!   within a module are grouped into strongly connected components of
//!   the call graph so that mutual recursion is supported while earlier
//!   definitions can still be used polymorphically,
//! * [`interface`] — per-module type interface files, so that a module is
//!   checked using only the *interfaces* of its imports (the same
//!   mechanism the paper uses for binding-time interfaces).
//!
//! # Example
//!
//! ```
//! use mspec_lang::parser::parse_program;
//! use mspec_lang::resolve::resolve;
//! use mspec_types::infer::infer_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rp = resolve(parse_program(
//!     "module A where\nmap f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n",
//! )?)?;
//! let types = infer_program(&rp)?;
//! let scheme = types.scheme(&mspec_lang::QualName::new("A", "map")).unwrap();
//! assert_eq!(scheme.to_string(), "forall t0 t1. (t0 -> t1) -> [t0] -> [t1]");
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod infer;
pub mod interface;
pub mod ty;
pub mod unify;

pub use error::TypeError;
pub use infer::{infer_module, infer_module_traced, infer_program, ProgramTypes};
pub use interface::TypeInterface;
pub use ty::{FnScheme, Subst, TyVar, Type};

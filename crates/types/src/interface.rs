//! Per-module type interface files.
//!
//! Mirrors the paper's interface-file mechanism: when a module is
//! analysed, the (canonicalised) type schemes of its definitions are
//! written to an interface; modules that import it are analysed from the
//! interface alone, never from its source.

use crate::ty::FnScheme;
use mspec_lang::{FromJson, Ident, Json, JsonError, ToJson};
use std::collections::BTreeMap;

/// The type interface of one module: each exported function's scheme.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeInterface {
    schemes: BTreeMap<Ident, FnScheme>,
}

impl TypeInterface {
    /// An empty interface.
    pub fn new() -> TypeInterface {
        TypeInterface::default()
    }

    /// Records a function's scheme (canonicalising it first).
    pub fn insert(&mut self, name: Ident, scheme: FnScheme) {
        self.schemes.insert(name, scheme.canonical());
    }

    /// Looks up a function's scheme.
    pub fn get(&self, name: &Ident) -> Option<&FnScheme> {
        self.schemes.get(name)
    }

    /// Iterates over `(name, scheme)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &FnScheme)> {
        self.schemes.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// `true` if the interface has no entries.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }
}

impl ToJson for TypeInterface {
    fn to_json_value(&self) -> Json {
        Json::Obj(
            self.schemes
                .iter()
                .map(|(name, scheme)| (name.as_str().to_owned(), scheme.to_json_value()))
                .collect(),
        )
    }
}

impl FromJson for TypeInterface {
    fn from_json_value(j: &Json) -> Result<TypeInterface, JsonError> {
        let mut schemes = BTreeMap::new();
        for (name, v) in j.as_obj()? {
            schemes.insert(Ident::new(name), FnScheme::from_json_value(v)?);
        }
        Ok(TypeInterface { schemes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{TyVar, Type};

    fn sample() -> TypeInterface {
        let mut i = TypeInterface::new();
        i.insert(
            Ident::new("map"),
            FnScheme {
                vars: vec![TyVar(4), TyVar(9)],
                params: vec![
                    Type::fun(Type::Var(TyVar(4)), Type::Var(TyVar(9))),
                    Type::list(Type::Var(TyVar(4))),
                ],
                ret: Type::list(Type::Var(TyVar(9))),
            },
        );
        i
    }

    #[test]
    fn insert_canonicalises() {
        let i = sample();
        let s = i.get(&Ident::new("map")).unwrap();
        assert_eq!(s.to_string(), "forall t0 t1. (t0 -> t1) -> [t0] -> [t1]");
    }

    #[test]
    fn json_roundtrip() {
        let i = sample();
        let json = i.to_json_compact();
        let back = TypeInterface::from_json_str(&json).unwrap();
        assert_eq!(i, back);
    }

    #[test]
    fn missing_lookup_is_none() {
        assert!(sample().get(&Ident::new("nope")).is_none());
    }

    #[test]
    fn len_and_iter() {
        let i = sample();
        assert_eq!(i.len(), 1);
        assert!(!i.is_empty());
        assert_eq!(i.iter().count(), 1);
    }
}

//! Types, type variables, function schemes and substitutions.

use mspec_lang::{FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A type variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TyVar(pub u32);

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A monomorphic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Natural numbers.
    Nat,
    /// Booleans.
    Bool,
    /// Homogeneous lists.
    List(Box<Type>),
    /// Functions (the type of anonymous functions; named functions get a
    /// [`FnScheme`] instead).
    Fun(Box<Type>, Box<Type>),
    /// A type variable.
    Var(TyVar),
}

impl Type {
    /// `[t]`.
    pub fn list(t: Type) -> Type {
        Type::List(Box::new(t))
    }

    /// `a -> b`.
    pub fn fun(a: Type, b: Type) -> Type {
        Type::Fun(Box::new(a), Box::new(b))
    }

    /// The free type variables, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<TyVar>) {
        match self {
            Type::Nat | Type::Bool => {}
            Type::List(t) => t.collect_vars(out),
            Type::Fun(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Type::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
    }

    /// `true` if the variable occurs in the type.
    pub fn mentions(&self, v: TyVar) -> bool {
        match self {
            Type::Nat | Type::Bool => false,
            Type::List(t) => t.mentions(v),
            Type::Fun(a, b) => a.mentions(v) || b.mentions(v),
            Type::Var(w) => *w == v,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, arrow_left: bool) -> fmt::Result {
        match self {
            Type::Nat => write!(f, "Nat"),
            Type::Bool => write!(f, "Bool"),
            Type::List(t) => {
                write!(f, "[")?;
                t.fmt_prec(f, false)?;
                write!(f, "]")
            }
            Type::Fun(a, b) => {
                if arrow_left {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, true)?;
                write!(f, " -> ")?;
                b.fmt_prec(f, false)?;
                if arrow_left {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Type::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, false)
    }
}

/// A substitution from type variables to types.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Subst(BTreeMap<TyVar, Type>);

impl Subst {
    /// The identity substitution.
    pub fn empty() -> Subst {
        Subst::default()
    }

    /// A singleton substitution `v ↦ t`.
    pub fn single(v: TyVar, t: Type) -> Subst {
        let mut m = BTreeMap::new();
        m.insert(v, t);
        Subst(m)
    }

    /// A substitution from explicit bindings, applied *simultaneously*
    /// (no binding rewrites another). Use this for instantiation, where
    /// composing singletons would let a fresh variable collide with a
    /// still-uninstantiated quantified variable.
    pub fn parallel(bindings: impl IntoIterator<Item = (TyVar, Type)>) -> Subst {
        Subst(bindings.into_iter().collect())
    }

    /// Applies the substitution to a type.
    pub fn apply(&self, t: &Type) -> Type {
        match t {
            Type::Nat => Type::Nat,
            Type::Bool => Type::Bool,
            Type::List(inner) => Type::list(self.apply(inner)),
            Type::Fun(a, b) => Type::fun(self.apply(a), self.apply(b)),
            Type::Var(v) => match self.0.get(v) {
                // Substitutions are kept idempotent by `compose`, so one
                // level of lookup suffices.
                Some(bound) => bound.clone(),
                None => t.clone(),
            },
        }
    }

    /// Composes substitutions: `self.compose(&s)` applies `s` first,
    /// then `self`.
    pub fn compose(&self, s: &Subst) -> Subst {
        let mut out: BTreeMap<TyVar, Type> =
            s.0.iter().map(|(v, t)| (*v, self.apply(t))).collect();
        for (v, t) in &self.0 {
            out.entry(*v).or_insert_with(|| t.clone());
        }
        Subst(out)
    }

    /// Looks up a variable's binding.
    pub fn get(&self, v: TyVar) -> Option<&Type> {
        self.0.get(&v)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The type scheme of a named top-level function:
/// `forall vars. params -> ret`.
///
/// Named functions are not first-class, so their scheme keeps the
/// parameter list separate instead of currying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnScheme {
    /// Quantified variables.
    pub vars: Vec<TyVar>,
    /// Parameter types, one per parameter.
    pub params: Vec<Type>,
    /// Result type.
    pub ret: Type,
}

impl FnScheme {
    /// A monomorphic scheme (no quantified variables).
    pub fn mono(params: Vec<Type>, ret: Type) -> FnScheme {
        FnScheme { vars: Vec::new(), params, ret }
    }

    /// Canonically renames the quantified variables to `t0, t1, …` in
    /// first-occurrence order, so that structurally equal schemes are
    /// equal values (important for interface files).
    pub fn canonical(&self) -> FnScheme {
        let mut order: Vec<TyVar> = Vec::new();
        for p in &self.params {
            for v in p.free_vars() {
                if self.vars.contains(&v) && !order.contains(&v) {
                    order.push(v);
                }
            }
        }
        for v in self.ret.free_vars() {
            if self.vars.contains(&v) && !order.contains(&v) {
                order.push(v);
            }
        }
        let sub = Subst(
            order
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, Type::Var(TyVar(i as u32))))
                .collect(),
        );
        FnScheme {
            vars: (0..order.len() as u32).map(TyVar).collect(),
            params: self.params.iter().map(|p| sub.apply(p)).collect(),
            ret: sub.apply(&self.ret),
        }
    }

    /// The free (unquantified) variables of the scheme.
    pub fn free_vars(&self) -> BTreeSet<TyVar> {
        let mut out = BTreeSet::new();
        for p in &self.params {
            out.extend(p.free_vars());
        }
        out.extend(self.ret.free_vars());
        for v in &self.vars {
            out.remove(v);
        }
        out
    }
}

impl fmt::Display for FnScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.vars.is_empty() {
            write!(f, "forall")?;
            for v in &self.vars {
                write!(f, " {v}")?;
            }
            write!(f, ". ")?;
        }
        for p in &self.params {
            match p {
                Type::Fun(..) => write!(f, "({p}) -> ")?,
                _ => write!(f, "{p} -> ")?,
            }
        }
        write!(f, "{}", self.ret)
    }
}

impl ToJson for TyVar {
    fn to_json_value(&self) -> Json {
        Json::Num(u128::from(self.0))
    }
}

impl FromJson for TyVar {
    fn from_json_value(j: &Json) -> Result<TyVar, JsonError> {
        Ok(TyVar(j.as_u32()?))
    }
}

impl ToJson for Type {
    fn to_json_value(&self) -> Json {
        match self {
            Type::Nat => Json::str("Nat"),
            Type::Bool => Json::str("Bool"),
            Type::List(t) => Json::obj([("list", t.to_json_value())]),
            Type::Fun(a, b) => {
                Json::obj([("fun", Json::Arr(vec![a.to_json_value(), b.to_json_value()]))])
            }
            Type::Var(v) => Json::obj([("var", v.to_json_value())]),
        }
    }
}

impl FromJson for Type {
    fn from_json_value(j: &Json) -> Result<Type, JsonError> {
        if let Ok(s) = j.as_str() {
            return match s {
                "Nat" => Ok(Type::Nat),
                "Bool" => Ok(Type::Bool),
                other => Err(JsonError(format!("unknown base type `{other}`"))),
            };
        }
        let fields = j.as_obj()?;
        match fields {
            [(k, v)] if k == "list" => Ok(Type::list(Type::from_json_value(v)?)),
            [(k, v)] if k == "fun" => {
                let parts = v.as_arr()?;
                if parts.len() != 2 {
                    return Err(JsonError("`fun` expects [arg, ret]".into()));
                }
                Ok(Type::fun(Type::from_json_value(&parts[0])?, Type::from_json_value(&parts[1])?))
            }
            [(k, v)] if k == "var" => Ok(Type::Var(TyVar::from_json_value(v)?)),
            _ => Err(JsonError("malformed type".into())),
        }
    }
}

impl ToJson for FnScheme {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("vars", self.vars.to_json_value()),
            ("params", self.params.to_json_value()),
            ("ret", self.ret.to_json_value()),
        ])
    }
}

impl FromJson for FnScheme {
    fn from_json_value(j: &Json) -> Result<FnScheme, JsonError> {
        Ok(FnScheme {
            vars: Vec::from_json_value(j.get("vars")?)?,
            params: Vec::from_json_value(j.get("params")?)?,
            ret: Type::from_json_value(j.get("ret")?)?,
        })
    }
}

/// A fresh-variable supply.
#[derive(Debug, Default)]
pub struct TyVarGen {
    next: u32,
}

impl TyVarGen {
    /// Creates a supply starting at `t0`.
    pub fn new() -> TyVarGen {
        TyVarGen::default()
    }

    /// Creates a supply starting after the given variable.
    pub fn starting_after(v: u32) -> TyVarGen {
        TyVarGen { next: v }
    }

    /// Produces a fresh variable.
    pub fn fresh(&mut self) -> TyVar {
        let v = TyVar(self.next);
        self.next += 1;
        v
    }

    /// Produces a fresh variable wrapped as a type.
    pub fn fresh_ty(&mut self) -> Type {
        Type::Var(self.fresh())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nests_arrows_correctly() {
        let t = Type::fun(Type::fun(Type::Nat, Type::Bool), Type::list(Type::Nat));
        assert_eq!(t.to_string(), "(Nat -> Bool) -> [Nat]");
        let t2 = Type::fun(Type::Nat, Type::fun(Type::Bool, Type::Nat));
        assert_eq!(t2.to_string(), "Nat -> Bool -> Nat");
    }

    #[test]
    fn subst_apply_and_compose() {
        let v0 = TyVar(0);
        let v1 = TyVar(1);
        let s1 = Subst::single(v0, Type::Var(v1));
        let s2 = Subst::single(v1, Type::Nat);
        // compose applies s1 first, then s2.
        let s = s2.compose(&s1);
        assert_eq!(s.apply(&Type::Var(v0)), Type::Nat);
        assert_eq!(s.apply(&Type::Var(v1)), Type::Nat);
    }

    #[test]
    fn compose_keeps_outer_bindings() {
        let s1 = Subst::single(TyVar(0), Type::Nat);
        let s2 = Subst::single(TyVar(1), Type::Bool);
        let s = s2.compose(&s1);
        assert_eq!(s.apply(&Type::Var(TyVar(0))), Type::Nat);
        assert_eq!(s.apply(&Type::Var(TyVar(1))), Type::Bool);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn parallel_does_not_chain() {
        // {t0 -> t2, t2 -> t4} applied to t0 gives t2, not t4.
        let s = Subst::parallel([
            (TyVar(0), Type::Var(TyVar(2))),
            (TyVar(2), Type::Var(TyVar(4))),
        ]);
        assert_eq!(s.apply(&Type::Var(TyVar(0))), Type::Var(TyVar(2)));
    }

    #[test]
    fn free_vars_in_order() {
        let t = Type::fun(Type::Var(TyVar(5)), Type::fun(Type::Var(TyVar(2)), Type::Var(TyVar(5))));
        assert_eq!(t.free_vars(), vec![TyVar(5), TyVar(2)]);
    }

    #[test]
    fn mentions_checks_occurrence() {
        let t = Type::list(Type::Var(TyVar(3)));
        assert!(t.mentions(TyVar(3)));
        assert!(!t.mentions(TyVar(4)));
    }

    #[test]
    fn canonical_renames_in_occurrence_order() {
        let s = FnScheme {
            vars: vec![TyVar(7), TyVar(3)],
            params: vec![Type::Var(TyVar(7)), Type::Var(TyVar(3))],
            ret: Type::Var(TyVar(7)),
        };
        let c = s.canonical();
        assert_eq!(c.params, vec![Type::Var(TyVar(0)), Type::Var(TyVar(1))]);
        assert_eq!(c.ret, Type::Var(TyVar(0)));
        assert_eq!(c.vars, vec![TyVar(0), TyVar(1)]);
    }

    #[test]
    fn canonical_is_idempotent() {
        let s = FnScheme {
            vars: vec![TyVar(9)],
            params: vec![Type::list(Type::Var(TyVar(9)))],
            ret: Type::Var(TyVar(9)),
        };
        assert_eq!(s.canonical(), s.canonical().canonical());
    }

    #[test]
    fn scheme_display() {
        let s = FnScheme {
            vars: vec![TyVar(0)],
            params: vec![Type::fun(Type::Var(TyVar(0)), Type::Nat), Type::Var(TyVar(0))],
            ret: Type::Nat,
        };
        assert_eq!(s.to_string(), "forall t0. (t0 -> Nat) -> t0 -> Nat");
    }

    #[test]
    fn scheme_free_vars_excludes_quantified() {
        let s = FnScheme {
            vars: vec![TyVar(0)],
            params: vec![Type::Var(TyVar(0)), Type::Var(TyVar(1))],
            ret: Type::Nat,
        };
        assert_eq!(s.free_vars(), [TyVar(1)].into());
    }

    #[test]
    fn gen_produces_distinct_vars() {
        let mut g = TyVarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
    }
}

//! Unification of monomorphic types.

use crate::error::TypeError;
use crate::ty::{Subst, Type};

/// Computes the most general unifier of `a` and `b`.
///
/// # Errors
///
/// [`TypeError::Mismatch`] when the types clash structurally and
/// [`TypeError::Occurs`] when unification would build an infinite type.
/// `context` labels the error with the function being checked.
pub fn unify(a: &Type, b: &Type, context: &str) -> Result<Subst, TypeError> {
    match (a, b) {
        (Type::Nat, Type::Nat) | (Type::Bool, Type::Bool) => Ok(Subst::empty()),
        (Type::Var(v), t) | (t, Type::Var(v)) => {
            if let Type::Var(w) = t {
                if w == v {
                    return Ok(Subst::empty());
                }
            }
            if t.mentions(*v) {
                return Err(TypeError::Occurs {
                    var: v.to_string(),
                    ty: t.clone(),
                    context: context.to_string(),
                });
            }
            Ok(Subst::single(*v, t.clone()))
        }
        (Type::List(x), Type::List(y)) => unify(x, y, context),
        (Type::Fun(a1, r1), Type::Fun(a2, r2)) => {
            let s1 = unify(a1, a2, context)?;
            let s2 = unify(&s1.apply(r1), &s1.apply(r2), context)?;
            Ok(s2.compose(&s1))
        }
        _ => Err(TypeError::Mismatch {
            expected: a.clone(),
            found: b.clone(),
            context: context.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TyVar;

    #[test]
    fn unifies_identical_bases() {
        assert!(unify(&Type::Nat, &Type::Nat, "t").unwrap().is_empty());
        assert!(unify(&Type::Bool, &Type::Bool, "t").unwrap().is_empty());
    }

    #[test]
    fn base_clash_fails() {
        assert!(matches!(
            unify(&Type::Nat, &Type::Bool, "t"),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn binds_variables() {
        let s = unify(&Type::Var(TyVar(0)), &Type::Nat, "t").unwrap();
        assert_eq!(s.apply(&Type::Var(TyVar(0))), Type::Nat);
    }

    #[test]
    fn same_variable_unifies_trivially() {
        let s = unify(&Type::Var(TyVar(0)), &Type::Var(TyVar(0)), "t").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn occurs_check_fires() {
        let v = Type::Var(TyVar(0));
        let lv = Type::list(v.clone());
        assert!(matches!(unify(&v, &lv, "t"), Err(TypeError::Occurs { .. })));
    }

    #[test]
    fn unifies_functions_threading_substitution() {
        // (t0 -> t0) ~ (Nat -> t1)  =>  t0 = Nat, t1 = Nat
        let a = Type::fun(Type::Var(TyVar(0)), Type::Var(TyVar(0)));
        let b = Type::fun(Type::Nat, Type::Var(TyVar(1)));
        let s = unify(&a, &b, "t").unwrap();
        assert_eq!(s.apply(&Type::Var(TyVar(0))), Type::Nat);
        assert_eq!(s.apply(&Type::Var(TyVar(1))), Type::Nat);
    }

    #[test]
    fn unifies_nested_lists() {
        let a = Type::list(Type::list(Type::Var(TyVar(0))));
        let b = Type::list(Type::Var(TyVar(1)));
        let s = unify(&a, &b, "t").unwrap();
        assert_eq!(s.apply(&Type::Var(TyVar(1))), Type::list(Type::Var(TyVar(0))));
    }

    #[test]
    fn fun_vs_list_fails() {
        let a = Type::fun(Type::Nat, Type::Nat);
        let b = Type::list(Type::Nat);
        assert!(unify(&a, &b, "t").is_err());
    }

    #[test]
    fn error_carries_context() {
        let err = unify(&Type::Nat, &Type::Bool, "Mod.fn").unwrap_err();
        assert!(err.to_string().contains("Mod.fn"));
    }
}

//! Random well-typed modular programs.
//!
//! Programs are well typed *by construction* (every expression is
//! generated at a known type) and **total**: generated functions only
//! call previously generated functions, so there is no recursion and
//! every program terminates on every input. That makes them ideal for
//! the semantic-preservation property: for any generated program, any
//! division and any inputs, running the residual program on the dynamic
//! inputs must equal running the source on all inputs.

use mspec_lang::ast::{Def, Expr, Ident, Module, Program, QualName};
use mspec_lang::builder as b;
use mspec_lang::eval::Value;
use crate::rng::TestRng;

/// The types the generator works at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GTy {
    /// Naturals.
    Nat,
    /// Booleans.
    Bool,
    /// Lists of naturals.
    ListNat,
    /// Functions from naturals to naturals.
    FunNat,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of modules (each imports all earlier ones).
    pub modules: usize,
    /// Definitions per module.
    pub defs_per_module: usize,
    /// Maximum expression depth.
    pub max_depth: u32,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { modules: 3, defs_per_module: 3, max_depth: 4, seed: 0 }
    }
}

/// A generated program together with its function signatures (needed to
/// build arguments and divisions).
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The program.
    pub program: Program,
    /// Every function with its parameter types, in generation order.
    pub functions: Vec<(QualName, Vec<GTy>)>,
}

/// Generates a random well-typed, total, modular program.
pub fn random_program(config: &GenConfig) -> GeneratedProgram {
    let mut rng = TestRng::seed_from_u64(config.seed);
    let mut functions: Vec<(QualName, Vec<GTy>)> = Vec::new();
    let mut modules = Vec::new();
    for m in 0..config.modules {
        let name = format!("M{m}");
        let imports: Vec<&'static str> = Vec::new();
        let mut defs: Vec<Def> = Vec::new();
        for i in 0..config.defs_per_module {
            let fname = format!("f{m}x{i}");
            let nparams = rng.gen_range(1..=3usize);
            let params: Vec<GTy> = (0..nparams).map(|_| param_ty(&mut rng)).collect();
            // The first definition of every module returns Nat — the
            // convention `call_of` relies on to find callable targets.
            let ret = if i == 0 { GTy::Nat } else { ret_ty(&mut rng) };
            let env: Vec<(Ident, GTy)> = params
                .iter()
                .enumerate()
                .map(|(k, t)| (Ident::new(format!("p{k}")), *t))
                .collect();
            let mut cx = Cx { rng: &mut rng, env, fns: &functions };
            let body = cx.gen(ret, config.max_depth);
            defs.push(Def::new(
                fname.clone(),
                (0..nparams).map(|k| Ident::new(format!("p{k}"))).collect(),
                body,
            ));
            functions.push((QualName::new(name.as_str(), fname.as_str()), params));
        }
        let mut module = Module::new(name.as_str(), vec![], defs);
        // Import all earlier modules (calls are fully qualified, so this
        // is only about visibility).
        module.imports = (0..m).map(|k| mspec_lang::ModName::new(format!("M{k}"))).collect();
        let _ = imports;
        modules.push(module);
    }
    GeneratedProgram { program: Program::new(modules), functions }
}

/// Generates a random argument value of the given type (closures are
/// excluded — `FunNat` parameters can only be exercised statically, so
/// call sites always pass lambdas).
pub fn random_value(ty: GTy, rng: &mut TestRng) -> Option<Value> {
    match ty {
        GTy::Nat => Some(Value::nat(rng.gen_range(0..20u64))),
        GTy::Bool => Some(Value::bool_(rng.gen_bool(0.5))),
        GTy::ListNat => {
            let n = rng.gen_range(0..5u32);
            Some(Value::list((0..n).map(|_| Value::nat(rng.gen_range(0..20u64))).collect()))
        }
        GTy::FunNat => None,
    }
}

fn param_ty(rng: &mut TestRng) -> GTy {
    match rng.gen_range(0..10u32) {
        0..=4 => GTy::Nat,
        5..=6 => GTy::Bool,
        7..=8 => GTy::ListNat,
        _ => GTy::FunNat,
    }
}

fn ret_ty(rng: &mut TestRng) -> GTy {
    match rng.gen_range(0..6u32) {
        0..=3 => GTy::Nat,
        4 => GTy::Bool,
        _ => GTy::ListNat,
    }
}

struct Cx<'a> {
    rng: &'a mut TestRng,
    env: Vec<(Ident, GTy)>,
    fns: &'a [(QualName, Vec<GTy>)],
}

impl Cx<'_> {
    fn var_of(&mut self, ty: GTy) -> Option<Expr> {
        let cands: Vec<&Ident> =
            self.env.iter().filter(|(_, t)| *t == ty).map(|(n, _)| n).collect();
        if cands.is_empty() {
            None
        } else {
            let i = self.rng.gen_range(0..cands.len());
            Some(Expr::Var(*cands[i]))
        }
    }

    fn leaf(&mut self, ty: GTy) -> Expr {
        if self.rng.gen_bool(0.5) {
            if let Some(v) = self.var_of(ty) {
                return v;
            }
        }
        match ty {
            GTy::Nat => b::nat(self.rng.gen_range(0..10u64)),
            GTy::Bool => b::bool_(self.rng.gen_bool(0.5)),
            GTy::ListNat => {
                let n = self.rng.gen_range(0..3u32);
                let mut e = b::nil();
                for _ in 0..n {
                    e = b::cons(b::nat(self.rng.gen_range(0..10u64)), e);
                }
                e
            }
            GTy::FunNat => {
                // A lambda at depth 0: \x -> x + c.
                b::lam("v", b::add(b::var("v"), b::nat(self.rng.gen_range(0..5u64))))
            }
        }
    }

    fn gen(&mut self, ty: GTy, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf(ty);
        }
        let d = depth - 1;
        match ty {
            GTy::Nat => match self.rng.gen_range(0..12u32) {
                0 | 1 => self.leaf(ty),
                2 => b::add(self.gen(GTy::Nat, d), self.gen(GTy::Nat, d)),
                3 => b::sub(self.gen(GTy::Nat, d), self.gen(GTy::Nat, d)),
                4 => b::mul(self.gen(GTy::Nat, d), self.gen(GTy::Nat, d)),
                5 => b::if_(self.gen(GTy::Bool, d), self.gen(GTy::Nat, d), self.gen(GTy::Nat, d)),
                6 => {
                    // Guarded head.
                    let xs = self.gen(GTy::ListNat, d);
                    b::if_(b::null(xs.clone()), self.gen(GTy::Nat, d), b::head(xs))
                }
                7 => self.call_of(GTy::Nat, d),
                8 => {
                    // Apply a function value.
                    let f = self.gen(GTy::FunNat, d);
                    b::app(f, self.gen(GTy::Nat, d))
                }
                9 => {
                    let x = Ident::new(format!("l{depth}"));
                    let rhs = self.gen(GTy::Nat, d);
                    self.env.push((x, GTy::Nat));
                    let body = self.gen(GTy::Nat, d);
                    self.env.pop();
                    Expr::Let(x, Box::new(rhs), Box::new(body))
                }
                _ => self.leaf(ty),
            },
            GTy::Bool => match self.rng.gen_range(0..8u32) {
                0 | 1 => self.leaf(ty),
                2 => b::eq(self.gen(GTy::Nat, d), self.gen(GTy::Nat, d)),
                3 => b::lt(self.gen(GTy::Nat, d), self.gen(GTy::Nat, d)),
                4 => b::leq(self.gen(GTy::Nat, d), self.gen(GTy::Nat, d)),
                5 => b::and(self.gen(GTy::Bool, d), self.gen(GTy::Bool, d)),
                6 => b::or(self.gen(GTy::Bool, d), self.gen(GTy::Bool, d)),
                _ => b::not(self.gen(GTy::Bool, d)),
            },
            GTy::ListNat => match self.rng.gen_range(0..6u32) {
                0 | 1 => self.leaf(ty),
                2 => b::cons(self.gen(GTy::Nat, d), self.gen(GTy::ListNat, d)),
                3 => {
                    // Guarded tail.
                    let xs = self.gen(GTy::ListNat, d);
                    b::if_(b::null(xs.clone()), b::nil(), b::tail(xs))
                }
                4 => b::if_(
                    self.gen(GTy::Bool, d),
                    self.gen(GTy::ListNat, d),
                    self.gen(GTy::ListNat, d),
                ),
                _ => self.call_of(GTy::ListNat, d),
            },
            GTy::FunNat => match self.rng.gen_range(0..3u32) {
                0 => self.leaf(ty),
                _ => {
                    let x = Ident::new(format!("a{depth}"));
                    self.env.push((x, GTy::Nat));
                    let body = self.gen(GTy::Nat, d);
                    self.env.pop();
                    Expr::Lam(x, Box::new(body))
                }
            },
        }
    }

    /// A call to a previously generated function of the right return
    /// type, or a fallback leaf.
    fn call_of(&mut self, ret: GTy, depth: u32) -> Expr {
        // We only track parameter types; return types are recovered by
        // storing them in the name (see below) — instead we simply filter
        // by a marker: functions are generated with known return types,
        // encoded via the parity of their index. To stay simple, calls
        // are only generated for Nat-returning functions, which we
        // arrange by construction: see `random_program`, which records
        // every function; we conservatively wrap the call to the right
        // type.
        let nat_rets: Vec<(QualName, Vec<GTy>)> = self
            .fns
            .iter()
            .filter(|(q, _)| q.name.as_str().ends_with("x0")) // first def of each module: made Nat by convention below
            .cloned()
            .collect();
        let usable: Vec<_> = nat_rets;
        if usable.is_empty() || ret != GTy::Nat {
            return self.leaf(ret);
        }
        let (q, params) = usable[self.rng.gen_range(0..usable.len())].clone();
        let args: Vec<Expr> = params.iter().map(|t| self.gen(*t, depth)).collect();
        Expr::Call(mspec_lang::CallName::resolved(q.module.as_str(), q.name.as_str()), args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::resolve::resolve;

    #[test]
    fn generated_programs_resolve() {
        for seed in 0..20 {
            let g = random_program(&GenConfig { seed, ..GenConfig::default() });
            let r = resolve(g.program.clone());
            assert!(r.is_ok(), "seed {seed}: {r:?}\n{}", mspec_lang::pretty::pretty_program(&g.program));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(&GenConfig { seed: 42, ..GenConfig::default() });
        let b = random_program(&GenConfig { seed: 42, ..GenConfig::default() });
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_program(&GenConfig { seed: 1, ..GenConfig::default() });
        let b = random_program(&GenConfig { seed: 2, ..GenConfig::default() });
        assert_ne!(a.program, b.program);
    }

    #[test]
    fn random_values_match_types() {
        let mut rng = TestRng::seed_from_u64(7);
        assert!(matches!(random_value(GTy::Nat, &mut rng), Some(Value::Nat(_))));
        assert!(matches!(random_value(GTy::Bool, &mut rng), Some(Value::Bool(_))));
        assert!(random_value(GTy::ListNat, &mut rng).unwrap().as_list().is_some());
        assert!(random_value(GTy::FunNat, &mut rng).is_none());
    }

    #[test]
    fn function_count_matches_config() {
        let g = random_program(&GenConfig {
            modules: 4,
            defs_per_module: 5,
            max_depth: 3,
            seed: 9,
        });
        assert_eq!(g.functions.len(), 20);
        assert_eq!(g.program.modules.len(), 4);
    }
}

//! Deliberate artefact corruption for fault-injection tests.
//!
//! The robustness of the on-disk artefact layer is tested by damaging
//! real `.bti`/`.gx` files in targeted ways — truncation, single-bit
//! flips, header version bumps — and asserting that every loader
//! returns a structured error instead of panicking or silently
//! accepting the damaged data.
//!
//! These helpers are test infrastructure: they panic on I/O failure
//! (a broken test environment), never on file *content*.

use crate::rng::TestRng;
use std::fs;
use std::path::Path;

/// Truncates the file to its first `keep` bytes (no-op if it is
/// already shorter).
pub fn truncate_file(path: &Path, keep: usize) {
    let bytes = fs::read(path).expect("read artefact");
    let keep = keep.min(bytes.len());
    fs::write(path, &bytes[..keep]).expect("write truncated artefact");
}

/// Flips one bit chosen by `rng`. Returns the `(byte offset, bit mask)`
/// actually flipped, for failure messages.
pub fn flip_random_bit(path: &Path, rng: &mut TestRng) -> (usize, u8) {
    let len = fs::metadata(path).expect("stat artefact").len() as usize;
    assert!(len > 0, "cannot corrupt an empty file");
    let offset = rng.gen_range(0..len as u64) as usize;
    let mask = 1u8 << rng.gen_range(0..8u64);
    flip_bit_at(path, offset, mask);
    (offset, mask)
}

/// XORs the byte at `offset` with `mask`.
pub fn flip_bit_at(path: &Path, offset: usize, mask: u8) {
    let mut bytes = fs::read(path).expect("read artefact");
    bytes[offset] ^= mask;
    fs::write(path, bytes).expect("write corrupted artefact");
}

/// Rewrites the header's version token (`v1` or the seekable `v2`) to a
/// far-future version, leaving payload and checksum intact.
pub fn bump_version(path: &Path) {
    let text = fs::read_to_string(path).expect("read artefact");
    let mut bumped = text.replacen(" v1 ", " v999 ", 1);
    if bumped == text {
        bumped = text.replacen(" v2 ", " v999 ", 1);
    }
    assert_ne!(text, bumped, "no `v1`/`v2` version token in {}", path.display());
    fs::write(path, bumped).expect("write version-bumped artefact");
}

//! Scrubbers for comparing telemetry output across runs.
//!
//! Telemetry events are deterministic in everything except wall-clock
//! timestamps (span ids, sequence numbers and thread ids come from
//! monotone counters). [`scrub_timestamps`] zeroes the `"ts"` fields of
//! a JSONL event log so two runs of the same workload can be compared
//! byte-for-byte.

/// Replaces every `"ts":<digits>` occurrence with `"ts":0`. Hand-rolled
/// scan (no regex dependency); values are only rewritten when the key
/// is followed by a literal run of digits, so string fields that happen
/// to contain `"ts"` are untouched.
pub fn scrub_timestamps(text: &str) -> String {
    const KEY: &str = "\"ts\":";
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find(KEY) {
        let after = pos + KEY.len();
        let digits = rest[after..].chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 {
            out.push_str(&rest[..after]);
            out.push('0');
            rest = &rest[after + digits..];
        } else {
            out.push_str(&rest[..after]);
            rest = &rest[after..];
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroes_timestamps_only() {
        let line = r#"{"ev":"b","ts":123456789,"tid":0,"name":"build","detail":"ts"}"#;
        assert_eq!(
            scrub_timestamps(line),
            r#"{"ev":"b","ts":0,"tid":0,"name":"build","detail":"ts"}"#
        );
    }

    #[test]
    fn scrubs_every_line() {
        let text = "{\"ts\":1}\n{\"ts\":22}\n{\"ev\":\"counter\",\"value\":3}\n";
        assert_eq!(
            scrub_timestamps(text),
            "{\"ts\":0}\n{\"ts\":0}\n{\"ev\":\"counter\",\"value\":3}\n"
        );
    }

    #[test]
    fn key_without_digits_is_left_alone() {
        assert_eq!(scrub_timestamps("\"ts\":x"), "\"ts\":x");
    }
}

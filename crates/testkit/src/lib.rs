//! Workload generators for tests and benchmarks.
//!
//! Two kinds of programs are generated:
//!
//! * [`random`] — random *well-typed-by-construction* modular programs,
//!   used by property tests (specialisation must preserve semantics on
//!   every generated program) and as stress inputs,
//! * [`library`] — deterministic synthetic libraries with controllable
//!   module count, functions per module and call structure, used by the
//!   scaling experiments (§4's "general purpose libraries often define
//!   very many functions, only a few of which are used").
//!
//! A third ingredient, [`corrupt`], damages on-disk artefact files
//! (truncation, bit flips, version bumps) for the fault-injection
//! suite.

pub mod corrupt;
pub mod library;
pub mod random;
pub mod rng;
pub mod scrub;

pub use corrupt::{bump_version, flip_bit_at, flip_random_bit, truncate_file};
pub use library::{layered_program, library_program, LayeredShape, LibraryShape};
pub use random::{random_program, GenConfig};
pub use rng::TestRng;
pub use scrub::scrub_timestamps;

//! Deterministic synthetic libraries for the scaling experiments.
//!
//! §4 motivates the approach with "general purpose libraries often define
//! very many functions, only a few of which are used in any particular
//! application". [`library_program`] builds exactly that situation with
//! controllable size: `modules × fns_per_module` power-like library
//! functions, of which a `Main` module uses `used_fns` with a static
//! exponent — so specialisation cost can be measured as the library
//! grows while the used set stays fixed.

use mspec_lang::ast::{Def, Module, Program, QualName};
use mspec_lang::builder as b;
use mspec_lang::ModName;

/// Shape of a synthetic library workload.
#[derive(Debug, Clone, Copy)]
pub struct LibraryShape {
    /// Number of library modules.
    pub modules: usize,
    /// Functions per library module.
    pub fns_per_module: usize,
    /// How many library functions `Main.main` actually uses.
    pub used_fns: usize,
    /// The static exponent each used function is specialised to.
    pub exponent: u64,
    /// If `true`, each library module's functions call into the previous
    /// module (cross-module chains); otherwise modules are independent.
    pub cross_module: bool,
}

impl Default for LibraryShape {
    fn default() -> LibraryShape {
        LibraryShape {
            modules: 4,
            fns_per_module: 8,
            used_fns: 3,
            exponent: 5,
            cross_module: true,
        }
    }
}

/// Builds the synthetic program. Returns the program and the entry
/// (`Main.main`, one dynamic parameter).
pub fn library_program(shape: &LibraryShape) -> (Program, QualName) {
    assert!(shape.modules >= 1 && shape.fns_per_module >= 1);
    assert!(shape.used_fns >= 1);
    let mut modules = Vec::new();
    for m in 0..shape.modules {
        let mut defs: Vec<Def> = Vec::new();
        for i in 0..shape.fns_per_module {
            let name = fn_name(m, i);
            // A power-like recursive function with a distinctive base
            // case; in cross-module mode the base case calls into the
            // previous module.
            let base = if shape.cross_module && m > 0 {
                b::qcall(
                    &mod_name(m - 1).0,
                    &fn_name(m - 1, i % shape.fns_per_module),
                    [b::nat(1), b::add(b::var("x"), b::nat((m * 31 + i) as u64))],
                )
            } else {
                b::add(b::var("x"), b::nat((m * 31 + i) as u64))
            };
            defs.push(b::def(
                &name,
                ["n", "x"],
                b::if_(
                    b::leq(b::var("n"), b::nat(1)),
                    base,
                    b::mul(b::var("x"), b::call(&name, [b::sub(b::var("n"), b::nat(1)), b::var("x")])),
                ),
            ));
        }
        let imports = if shape.cross_module && m > 0 {
            vec![mod_name(m - 1)]
        } else {
            vec![]
        };
        modules.push(Module::new(mod_name(m), imports, defs));
    }

    // Main uses `used_fns` functions spread across the library (stride
    // chosen to touch different modules), with the static exponent.
    let total = shape.modules * shape.fns_per_module;
    let used = shape.used_fns.min(total);
    let stride = (total / used).max(1);
    let mut body = b::nat(0);
    for k in 0..used {
        let idx = (k * stride) % total;
        let (m, i) = (idx / shape.fns_per_module, idx % shape.fns_per_module);
        body = b::add(
            body,
            b::qcall(&mod_name(m).0, &fn_name(m, i), [b::nat(shape.exponent), b::var("y")]),
        );
    }
    let main = Module::new(
        "Main",
        (0..shape.modules).map(mod_name).collect(),
        vec![b::def("main", ["y"], body)],
    );
    modules.push(main);
    (Program::new(modules), QualName::new("Main", "main"))
}

fn mod_name(m: usize) -> ModName {
    ModName::new(format!("Lib{m}"))
}

fn fn_name(m: usize, i: usize) -> String {
    format!("f{m}x{i}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::eval::{Evaluator, Value};
    use mspec_lang::resolve::resolve;

    #[test]
    fn library_resolves_and_runs() {
        let (p, entry) = library_program(&LibraryShape::default());
        let rp = resolve(p).unwrap();
        let mut ev = Evaluator::new(&rp);
        let v = ev.call(&entry, vec![Value::nat(2)]).unwrap();
        assert!(v.as_nat().is_some());
    }

    #[test]
    fn size_scales_with_shape() {
        let small = library_program(&LibraryShape {
            modules: 2,
            fns_per_module: 4,
            ..LibraryShape::default()
        })
        .0;
        let large = library_program(&LibraryShape {
            modules: 8,
            fns_per_module: 4,
            ..LibraryShape::default()
        })
        .0;
        assert!(large.size() > (3 * small.size()));
        assert_eq!(small.modules.len(), 3);
        assert_eq!(large.modules.len(), 9);
    }

    #[test]
    fn used_set_is_respected() {
        let (p, _) = library_program(&LibraryShape {
            used_fns: 2,
            ..LibraryShape::default()
        });
        let main = p.module("Main").unwrap();
        let calls = main.defs[0].body.called_functions();
        assert_eq!(calls.len(), 2);
    }

    #[test]
    fn independent_mode_has_no_lib_imports() {
        let (p, _) = library_program(&LibraryShape {
            cross_module: false,
            ..LibraryShape::default()
        });
        for m in &p.modules {
            if m.name.as_str() != "Main" {
                assert!(m.imports.is_empty());
            }
        }
    }

    #[test]
    fn deterministic_output() {
        let a = library_program(&LibraryShape::default()).0;
        let b = library_program(&LibraryShape::default()).0;
        assert_eq!(a, b);
    }
}

//! Deterministic synthetic libraries for the scaling experiments.
//!
//! §4 motivates the approach with "general purpose libraries often define
//! very many functions, only a few of which are used in any particular
//! application". [`library_program`] builds exactly that situation with
//! controllable size: `modules × fns_per_module` power-like library
//! functions, of which a `Main` module uses `used_fns` with a static
//! exponent — so specialisation cost can be measured as the library
//! grows while the used set stays fixed.

use mspec_lang::ast::{Def, Module, Program, QualName};
use mspec_lang::builder as b;
use mspec_lang::ModName;

/// Shape of a synthetic library workload.
#[derive(Debug, Clone, Copy)]
pub struct LibraryShape {
    /// Number of library modules.
    pub modules: usize,
    /// Functions per library module.
    pub fns_per_module: usize,
    /// How many library functions `Main.main` actually uses.
    pub used_fns: usize,
    /// The static exponent each used function is specialised to.
    pub exponent: u64,
    /// If `true`, each library module's functions call into the previous
    /// module (cross-module chains); otherwise modules are independent.
    pub cross_module: bool,
}

impl Default for LibraryShape {
    fn default() -> LibraryShape {
        LibraryShape {
            modules: 4,
            fns_per_module: 8,
            used_fns: 3,
            exponent: 5,
            cross_module: true,
        }
    }
}

/// Builds the synthetic program. Returns the program and the entry
/// (`Main.main`, one dynamic parameter).
pub fn library_program(shape: &LibraryShape) -> (Program, QualName) {
    assert!(shape.modules >= 1 && shape.fns_per_module >= 1);
    assert!(shape.used_fns >= 1);
    let mut modules = Vec::new();
    for m in 0..shape.modules {
        let mut defs: Vec<Def> = Vec::new();
        for i in 0..shape.fns_per_module {
            let name = fn_name(m, i);
            // A power-like recursive function with a distinctive base
            // case; in cross-module mode the base case calls into the
            // previous module.
            let base = if shape.cross_module && m > 0 {
                b::qcall(
                    mod_name(m - 1).as_str(),
                    &fn_name(m - 1, i % shape.fns_per_module),
                    [b::nat(1), b::add(b::var("x"), b::nat((m * 31 + i) as u64))],
                )
            } else {
                b::add(b::var("x"), b::nat((m * 31 + i) as u64))
            };
            defs.push(b::def(
                &name,
                ["n", "x"],
                b::if_(
                    b::leq(b::var("n"), b::nat(1)),
                    base,
                    b::mul(b::var("x"), b::call(&name, [b::sub(b::var("n"), b::nat(1)), b::var("x")])),
                ),
            ));
        }
        let imports = if shape.cross_module && m > 0 {
            vec![mod_name(m - 1)]
        } else {
            vec![]
        };
        modules.push(Module::new(mod_name(m), imports, defs));
    }

    // Main uses `used_fns` functions spread across the library (stride
    // chosen to touch different modules), with the static exponent.
    let total = shape.modules * shape.fns_per_module;
    let used = shape.used_fns.min(total);
    let stride = (total / used).max(1);
    let mut body = b::nat(0);
    for k in 0..used {
        let idx = (k * stride) % total;
        let (m, i) = (idx / shape.fns_per_module, idx % shape.fns_per_module);
        body = b::add(
            body,
            b::qcall(mod_name(m).as_str(), &fn_name(m, i), [b::nat(shape.exponent), b::var("y")]),
        );
    }
    let main = Module::new(
        "Main",
        (0..shape.modules).map(mod_name).collect(),
        vec![b::def("main", ["y"], body)],
    );
    modules.push(main);
    (Program::new(modules), QualName::new("Main", "main"))
}

fn mod_name(m: usize) -> ModName {
    ModName::new(format!("Lib{m}"))
}

fn fn_name(m: usize, i: usize) -> String {
    format!("f{m}x{i}")
}

/// Shape of a layered synthetic program: `levels × width` modules where
/// every module at level `l > 0` imports every module at level `l - 1`.
///
/// Unlike [`LibraryShape`]'s chain (width 1), this graph has genuine
/// per-level parallelism: the `width` modules of a level are mutually
/// independent, so a level-parallel build can process them concurrently.
#[derive(Debug, Clone, Copy)]
pub struct LayeredShape {
    /// Number of levels in the module graph (excluding `Main`).
    pub levels: usize,
    /// Modules per level.
    pub width: usize,
    /// Functions per module.
    pub fns_per_module: usize,
    /// Static exponent used by `Main`.
    pub exponent: u64,
}

impl Default for LayeredShape {
    fn default() -> LayeredShape {
        LayeredShape { levels: 4, width: 4, fns_per_module: 8, exponent: 5 }
    }
}

/// Builds the layered program. Returns the program and the entry
/// (`Main.main`, one dynamic parameter). `Main` imports every module of
/// the top level, so the graph has `levels + 1` levels in total.
pub fn layered_program(shape: &LayeredShape) -> (Program, QualName) {
    assert!(shape.levels >= 1 && shape.width >= 1 && shape.fns_per_module >= 1);
    let mut modules = Vec::new();
    for l in 0..shape.levels {
        for w in 0..shape.width {
            let mut defs: Vec<Def> = Vec::new();
            for i in 0..shape.fns_per_module {
                let name = layer_fn_name(l, i);
                // Power-like recursion whose base case fans into the
                // previous level (rotated by module position so imports
                // are genuinely used).
                let base = if l > 0 {
                    b::qcall(
                        layer_mod_name(l - 1, (w + i) % shape.width).as_str(),
                        &layer_fn_name(l - 1, i),
                        [b::nat(1), b::add(b::var("x"), b::nat((l * 17 + w * 5 + i) as u64))],
                    )
                } else {
                    b::add(b::var("x"), b::nat((w * 5 + i) as u64))
                };
                defs.push(b::def(
                    &name,
                    ["n", "x"],
                    b::if_(
                        b::leq(b::var("n"), b::nat(1)),
                        base,
                        b::mul(
                            b::var("x"),
                            b::call(&name, [b::sub(b::var("n"), b::nat(1)), b::var("x")]),
                        ),
                    ),
                ));
            }
            let imports = if l > 0 {
                (0..shape.width).map(|p| layer_mod_name(l - 1, p)).collect()
            } else {
                vec![]
            };
            modules.push(Module::new(layer_mod_name(l, w), imports, defs));
        }
    }
    // Main calls one function from each top-level module.
    let top = shape.levels - 1;
    let mut body = b::nat(0);
    for w in 0..shape.width {
        body = b::add(
            body,
            b::qcall(
                layer_mod_name(top, w).as_str(),
                &layer_fn_name(top, w % shape.fns_per_module),
                [b::nat(shape.exponent), b::var("y")],
            ),
        );
    }
    let main = Module::new(
        "Main",
        (0..shape.width).map(|w| layer_mod_name(top, w)).collect(),
        vec![b::def("main", ["y"], body)],
    );
    modules.push(main);
    (Program::new(modules), QualName::new("Main", "main"))
}

fn layer_mod_name(l: usize, w: usize) -> ModName {
    ModName::new(format!("L{l}w{w}"))
}

fn layer_fn_name(l: usize, i: usize) -> String {
    format!("g{l}x{i}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::eval::{Evaluator, Value};
    use mspec_lang::resolve::resolve;

    #[test]
    fn library_resolves_and_runs() {
        let (p, entry) = library_program(&LibraryShape::default());
        let rp = resolve(p).unwrap();
        let mut ev = Evaluator::new(&rp);
        let v = ev.call(&entry, vec![Value::nat(2)]).unwrap();
        assert!(v.as_nat().is_some());
    }

    #[test]
    fn size_scales_with_shape() {
        let small = library_program(&LibraryShape {
            modules: 2,
            fns_per_module: 4,
            ..LibraryShape::default()
        })
        .0;
        let large = library_program(&LibraryShape {
            modules: 8,
            fns_per_module: 4,
            ..LibraryShape::default()
        })
        .0;
        assert!(large.size() > (3 * small.size()));
        assert_eq!(small.modules.len(), 3);
        assert_eq!(large.modules.len(), 9);
    }

    #[test]
    fn used_set_is_respected() {
        let (p, _) = library_program(&LibraryShape {
            used_fns: 2,
            ..LibraryShape::default()
        });
        let main = p.module("Main").unwrap();
        let calls = main.defs[0].body.called_functions();
        assert_eq!(calls.len(), 2);
    }

    #[test]
    fn independent_mode_has_no_lib_imports() {
        let (p, _) = library_program(&LibraryShape {
            cross_module: false,
            ..LibraryShape::default()
        });
        for m in &p.modules {
            if m.name.as_str() != "Main" {
                assert!(m.imports.is_empty());
            }
        }
    }

    #[test]
    fn deterministic_output() {
        let a = library_program(&LibraryShape::default()).0;
        let b = library_program(&LibraryShape::default()).0;
        assert_eq!(a, b);
    }

    #[test]
    fn layered_program_resolves_and_runs() {
        let (p, entry) = layered_program(&LayeredShape::default());
        let shape = LayeredShape::default();
        assert_eq!(p.modules.len(), shape.levels * shape.width + 1);
        let rp = resolve(p).unwrap();
        let mut ev = Evaluator::new(&rp);
        let v = ev.call(&entry, vec![Value::nat(2)]).unwrap();
        assert!(v.as_nat().is_some());
    }

    #[test]
    fn layered_program_has_full_width_levels() {
        let shape = LayeredShape { levels: 3, width: 5, fns_per_module: 2, exponent: 3 };
        let (p, _) = layered_program(&shape);
        let rp = resolve(p).unwrap();
        // Every level-l module imports all of level l-1; Main imports
        // the top level.
        for m in rp.program().modules.iter() {
            if m.name.as_str() == "Main" || m.name.as_str().starts_with("L0") {
                continue;
            }
            assert_eq!(m.imports.len(), shape.width, "{}", m.name);
        }
    }
}

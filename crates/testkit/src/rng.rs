//! A tiny deterministic pseudo-random number generator.
//!
//! Workload generation only needs reproducible, well-distributed draws —
//! not cryptographic quality — so a SplitMix64 stream keeps the crate
//! dependency-free. The API mirrors the handful of operations the
//! generators use (`seed_from_u64`, `gen_range`, `gen_bool`).

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 generator. Identical seeds yield identical
/// streams on every platform.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood): one addition and three
        // xor-shift-multiply rounds per draw.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n,
        // irrelevant for test workloads.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Ranges [`TestRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one value.
    fn sample(self, rng: &mut TestRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as u64) - (self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as u64) - (start as u64) + 1;
                start + rng.below(width) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10u64);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = TestRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&heads), "{heads}");
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = TestRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}

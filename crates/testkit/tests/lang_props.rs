//! Language-level properties over randomly generated programs:
//! pretty-print/parse round trips, and agreement between the reference
//! interpreter and the compiled evaluator.

use mspec_lang::compile::{compile_program, CEvaluator};
use mspec_lang::eval::Evaluator;
use mspec_lang::parser::parse_program;
use mspec_lang::pretty::pretty_program;
use mspec_lang::resolve::resolve;
use mspec_testkit::random::{random_program, random_value, GTy, GenConfig};
use mspec_testkit::TestRng;

fn roundtrip(seed: u64) {
    let g = random_program(&GenConfig { seed, ..GenConfig::default() });
    let printed = pretty_program(&g.program);
    let reparsed = parse_program(&printed)
        .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
    // Resolution normalises zero-arity calls, so compare resolved forms.
    let a = resolve(g.program.clone()).unwrap();
    let b = resolve(reparsed).unwrap();
    assert_eq!(a.program(), b.program(), "seed {seed}\n{printed}");
}

fn evaluators_agree(seed: u64) {
    let g = random_program(&GenConfig { seed, ..GenConfig::default() });
    let resolved = resolve(g.program.clone()).unwrap();
    let compiled = compile_program(&resolved);
    let mut rng = TestRng::seed_from_u64(seed.wrapping_mul(31));
    for (q, params) in &g.functions {
        if params.contains(&GTy::FunNat) {
            continue;
        }
        let args: Vec<_> = params
            .iter()
            .map(|t| random_value(*t, &mut rng).expect("first-order"))
            .collect();
        let reference = {
            let mut ev = Evaluator::new(&resolved);
            ev.call(q, args.clone())
        };
        let fast = {
            let mut ev = CEvaluator::new(&compiled);
            ev.call_values(q, args)
        };
        match (&reference, &fast) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "seed {seed}, fn {q}"),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "seed {seed}, fn {q}"),
            other => panic!("seed {seed}, fn {q}: evaluators disagree: {other:?}"),
        }
    }
    let _ = rng.gen_range(0..2u32); // keep rng used even for empty programs
}

#[test]
fn pretty_parse_roundtrip() {
    let mut rng = TestRng::seed_from_u64(0xA11CE);
    for _ in 0..64 {
        roundtrip(rng.gen_range(0..10_000u64));
    }
}

#[test]
fn compiled_evaluator_agrees_with_reference() {
    let mut rng = TestRng::seed_from_u64(0xB0B);
    for _ in 0..64 {
        evaluators_agree(rng.gen_range(0..10_000u64));
    }
}

#[test]
fn deterministic_sweeps() {
    for seed in 0..50 {
        roundtrip(seed);
        evaluators_agree(seed);
    }
}

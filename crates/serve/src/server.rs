//! The daemon: connection handling, admission control, the worker
//! pool, deadlines and panic containment.
//!
//! Request lifecycle:
//!
//! ```text
//! frame ──parse──▶ admission ──try_push──▶ bounded queue ──pop──▶ worker
//!          │            │           │                                │
//!     bad-request   budget-denied  overloaded (shed)          catch_unwind
//!                                                              deadline watchdog
//! ```
//!
//! * `health`/`stats`/`shutdown` are answered inline on the connection
//!   thread — they must keep working while the worker pool is saturated
//!   (that is the point of a health endpoint).
//! * `spec`/`fault` go through admission: the request's fuel budget is
//!   reserved from the connection's fuel account (refused
//!   `budget-denied` if it does not fit), then the job enters the
//!   bounded queue (refused `overloaded` if full — load shedding).
//!   Unused fuel is refunded after the run; a panicked request forfeits
//!   its reservation.
//! * Each job's wall-clock deadline starts at *admission*: a job that
//!   expires while still queued is answered `deadline` without running
//!   (this is what keeps p99 bounded under overload), and a running job
//!   is cancelled by the watchdog firing the engine's
//!   [`CancelToken`], surfacing partial-progress stats.
//! * Every job body runs under `catch_unwind`: a panic becomes a typed
//!   `internal` reply (retryable) and the worker survives.

use crate::config::ServeConfig;
use crate::proto::{
    read_frame, ErrorClass, ErrorInfo, FrameBuf, FrameRead, Request, RequestKind, Response,
    ResponseBody, RunRequest, SpecRequest,
};
use crate::queue::{BoundedQueue, PushError};
use crate::resident::{Resident, ResidentOptions};
use mspec_cache::DiskCache;
use mspec_cogen::{atomic_write, fnv64};
use mspec_genext::{CancelToken, SpecBudget, SpecStats};
use mspec_lang::json::{FromJson, Json, ToJson};
use mspec_telemetry::{Exposition, FlightRing, LogHistogram, RateWindow, Recorder};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// The resident caches are shared across worker threads; this line is
// where a non-Send type sneaking into `GenProgram` would surface.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Resident>();
};

/// How often connection readers wake up to poll the shutdown flag, and
/// the granularity of deadline enforcement.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
const WATCHDOG_TICK: Duration = Duration::from_millis(1);

/// Capacity of the always-on crash flight ring: the last N
/// request-lifecycle events (admissions, sheds, completions, errors)
/// kept in fixed memory for postmortems.
const FLIGHT_CAPACITY: usize = 256;

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Live counters (atomics bumped from many threads).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    denied: AtomicU64,
    deadline_expired: AtomicU64,
    bad_frames: AtomicU64,
    disconnects: AtomicU64,
    refused_clients: AtomicU64,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Frames received (including malformed ones).
    pub requests: u64,
    /// Successful `spec` replies.
    pub ok: u64,
    /// Typed error replies of any class.
    pub errors: u64,
    /// Requests shed because the queue was full.
    pub shed: u64,
    /// Worker panics contained (each produced an `internal` reply).
    pub panics: u64,
    /// Requests refused by fuel-account admission control.
    pub denied: u64,
    /// Requests whose wall-clock deadline fired (queued or running).
    pub deadline_expired: u64,
    /// Malformed frames (unparseable JSON, bad UTF-8, overlong lines).
    pub bad_frames: u64,
    /// Connections that ended (cleanly or mid-request).
    pub disconnects: u64,
    /// Connections refused at the `--max-clients` limit.
    pub refused_clients: u64,
}

enum JobKind {
    Spec(SpecRequest),
    Run(RunRequest),
    Fault,
}

struct Job {
    id: u64,
    /// Request-scoped trace id (see [`request_trace_id`]).
    req: u64,
    /// Daemon-minted connection id (1-based; 0 = unscoped).
    conn: u64,
    kind: JobKind,
    writer: SharedWriter,
    enqueued: Instant,
    deadline: Instant,
    cancel: CancelToken,
    reserved: u64,
    account: Arc<AtomicU64>,
}

/// Always-on live metrics, cheap enough to run with tracing off: one
/// log2-bucket observation per finished job plus a few short
/// uncontended lock acquisitions per request.
struct Live {
    /// Admission-to-reply latency of executed jobs, microseconds.
    latency_us: LogHistogram,
    /// Frames received, over a sliding window.
    req_window: Mutex<RateWindow>,
    /// Requests shed by the bounded queue, over the same window.
    shed_window: Mutex<RateWindow>,
    /// Spec/run lookups answered by the resident memo...
    hit_window: Mutex<RateWindow>,
    /// ...out of all finished spec/run lookups.
    lookup_window: Mutex<RateWindow>,
}

impl Default for Live {
    fn default() -> Live {
        // 10 slots of 1s: rates answer "what is happening now" with a
        // ten-second memory.
        let w = || Mutex::new(RateWindow::new(10, 1_000));
        Live {
            latency_us: LogHistogram::default(),
            req_window: w(),
            shed_window: w(),
            hit_window: w(),
            lookup_window: w(),
        }
    }
}

struct State {
    cfg: ServeConfig,
    resident: Resident,
    queue: BoundedQueue<Job>,
    rec: Recorder,
    started: Instant,
    shutdown: AtomicBool,
    clients: AtomicUsize,
    counters: Counters,
    next_watch: AtomicU64,
    watch: Mutex<HashMap<u64, (Instant, CancelToken)>>,
    /// Connection-id mint; ids start at 1 (0 = unscoped in telemetry).
    next_conn: AtomicU64,
    /// Crash-dump sequence number (one per contained panic).
    crash_seq: AtomicU64,
    /// The crash flight recorder (always on).
    flight: FlightRing,
    /// Always-on rate windows and latency histogram for `metrics`.
    live: Live,
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Milliseconds since the server started — the monotone clock every
    /// rate window runs on.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue.close();
    }

    fn watch_register(&self, deadline: Instant, token: CancelToken) -> u64 {
        let id = self.next_watch.fetch_add(1, Ordering::Relaxed);
        lock(&self.watch).insert(id, (deadline, token));
        id
    }

    fn watch_remove(&self, id: u64) {
        lock(&self.watch).remove(&id);
    }

    fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            requests: c.requests.load(Ordering::Relaxed),
            ok: c.ok.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            denied: c.denied.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            bad_frames: c.bad_frames.load(Ordering::Relaxed),
            disconnects: c.disconnects.load(Ordering::Relaxed),
            refused_clients: c.refused_clients.load(Ordering::Relaxed),
        }
    }

    /// Counter pairs for `health`/`stats` replies, deterministic order.
    fn counter_pairs(&self, full: bool) -> Vec<(String, u64)> {
        let s = self.stats();
        let mut out = vec![
            ("serve.requests".to_string(), s.requests),
            ("serve.ok".to_string(), s.ok),
            ("serve.errors".to_string(), s.errors),
            ("serve.shed".to_string(), s.shed),
            ("serve.panics".to_string(), s.panics),
            ("serve.queue_len".to_string(), self.queue.len() as u64),
            ("serve.in_flight".to_string(), self.queue.in_flight() as u64),
            ("serve.clients".to_string(), self.clients.load(Ordering::Relaxed) as u64),
        ];
        let (programs, artefacts, memo, compiled) = self.resident.cache_sizes();
        out.extend([
            ("resident.cache.programs".to_string(), programs as u64),
            ("resident.cache.artefacts".to_string(), artefacts as u64),
            ("resident.cache.memo".to_string(), memo as u64),
            ("resident.cache.compiled".to_string(), compiled as u64),
        ]);
        if full {
            let r = self.resident.stats();
            out.extend([
                ("serve.denied".to_string(), s.denied),
                ("serve.deadline_expired".to_string(), s.deadline_expired),
                ("serve.bad_frames".to_string(), s.bad_frames),
                ("serve.disconnects".to_string(), s.disconnects),
                ("serve.refused_clients".to_string(), s.refused_clients),
                ("resident.programs_built".to_string(), r.programs_built),
                ("resident.program_hits".to_string(), r.program_hits),
                ("resident.artefact_links".to_string(), r.artefact_links),
                ("resident.artefact_revalidations".to_string(), r.artefact_revalidations),
                ("resident.memo_hits".to_string(), r.memo_hits),
                ("resident.residuals_compiled".to_string(), r.residuals_compiled),
                ("resident.compiled_hits".to_string(), r.compiled_hits),
                ("serve.cache.evictions".to_string(), r.evictions),
                ("serve.cache.disk_hits".to_string(), r.disk_hits),
                ("serve.cache.disk_stores".to_string(), r.disk_stores),
            ]);
        }
        out
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn send(writer: &SharedWriter, resp: &Response) {
    // One write_all per frame: a frame split across small writes
    // interacts with Nagle + delayed ACK on TCP transports, turning a
    // sub-millisecond reply into a ~40ms one.
    let frame = format!("{}\n", resp.to_json_compact());
    let mut w = lock(writer);
    // A failed write means the client disconnected mid-request; the
    // server must shrug, not die.
    let _ = w.write_all(frame.as_bytes());
    let _ = w.flush();
}

/// A running TCP listener.
pub struct TcpHandle {
    /// The bound port (useful with `--port 0`).
    pub port: u16,
    accept: std::thread::JoinHandle<()>,
}

impl TcpHandle {
    /// Blocks until the accept loop exits (shutdown).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// The daemon. Construction spawns the worker pool and the deadline
/// watchdog; [`Server::serve_stdio`] or [`Server::start_tcp`] attaches
/// transports.
pub struct Server {
    state: Arc<State>,
}

impl Server {
    /// Builds the server and spawns `cfg.workers` request workers plus
    /// the deadline watchdog.
    pub fn new(cfg: ServeConfig, rec: Recorder) -> Server {
        // `serve_cmd` validates `--cache-dir` before the server is
        // built, so a failed open here (raced directory removal) just
        // runs without the disk tier rather than refusing to start.
        let disk = cfg.cache_dir.as_ref().and_then(|d| DiskCache::open(d).ok());
        // Startup GC: bound the disk tier before serving so a
        // long-lived cache directory cannot grow without limit. GC
        // failure is non-fatal for the same reason a failed open is.
        if let (Some(disk), Some(max)) = (disk.as_ref(), cfg.cache_gc_bytes) {
            if let Ok(report) = disk.gc(None, Some(max)) {
                rec.count("serve.cache.gc_removed", report.removed as u64);
                rec.count("serve.cache.gc_bytes_removed", report.bytes_removed);
            }
        }
        let resident =
            Resident::with_options(ResidentOptions { memo_cap: cfg.memo_cap, disk });
        let state = Arc::new(State {
            queue: BoundedQueue::new(cfg.queue_depth),
            cfg,
            resident,
            rec,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            clients: AtomicUsize::new(0),
            counters: Counters::default(),
            next_watch: AtomicU64::new(0),
            watch: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            crash_seq: AtomicU64::new(0),
            flight: FlightRing::new(FLIGHT_CAPACITY),
            live: Live::default(),
        });
        for i in 0..state.cfg.workers.max(1) {
            let st = Arc::clone(&state);
            // Deeply-unfolding requests recurse in the engine; the
            // roomy stack matches the repo's convention for engine
            // threads (virtual memory, committed lazily).
            let _ = std::thread::Builder::new()
                .name(format!("mspecd-worker-{i}"))
                .stack_size(64 * 1024 * 1024)
                .spawn(move || worker_loop(&st));
        }
        let st = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name("mspecd-watchdog".to_string())
            .spawn(move || watchdog_loop(&st));
        Server { state }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// Initiates shutdown: the queue closes (draining what it holds),
    /// workers exit, connection readers notice within [`POLL_INTERVAL`].
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Serves a single session on stdin/stdout, blocking until EOF or a
    /// `shutdown` request. This is the `--spawn` transport of
    /// `mspec client` and the offline-safe smoke-test mode.
    pub fn serve_stdio(&self) -> std::io::Result<()> {
        let stdin = std::io::stdin();
        let writer: SharedWriter =
            Arc::new(Mutex::new(Box::new(std::io::stdout()) as Box<dyn Write + Send>));
        self.state.clients.fetch_add(1, Ordering::Relaxed);
        connection_loop(&self.state, &mut stdin.lock(), &writer);
        self.state.clients.fetch_sub(1, Ordering::Relaxed);
        self.state.begin_shutdown();
        self.finish();
        Ok(())
    }

    /// Binds `127.0.0.1:{cfg.port}` and serves until shutdown. Returns
    /// immediately; join the handle to block.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration errors.
    pub fn start_tcp(&self) -> std::io::Result<TcpHandle> {
        let listener = TcpListener::bind(("127.0.0.1", self.state.cfg.port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let state = Arc::clone(&self.state);
        let accept = std::thread::Builder::new()
            .name("mspecd-accept".to_string())
            .spawn(move || {
                accept_loop(&state, &listener);
                finish_trace(&state);
            })?;
        Ok(TcpHandle { port, accept })
    }

    /// Flushes the telemetry trace (stdio mode calls this itself).
    pub fn finish(&self) {
        finish_trace(&self.state);
    }
}

fn finish_trace(state: &State) {
    if let Some(path) = &state.cfg.trace_path {
        let snap = state.rec.snapshot();
        let _ = std::fs::write(path, snap.to_jsonl());
    }
}

fn accept_loop(state: &Arc<State>, listener: &TcpListener) {
    let mut conn_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.shutting_down() {
        // Reap finished connection threads as we go: a long-lived
        // daemon must not grow this Vec with one dead handle per
        // connection ever served.
        let mut i = 0;
        while i < conn_threads.len() {
            if conn_threads[i].is_finished() {
                let _ = conn_threads.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let active = state.clients.load(Ordering::Relaxed);
                if active >= state.cfg.max_clients {
                    state.counters.refused_clients.fetch_add(1, Ordering::Relaxed);
                    refuse_client(stream, state.cfg.max_clients);
                    continue;
                }
                state.clients.fetch_add(1, Ordering::Relaxed);
                let st = Arc::clone(state);
                if let Ok(h) = std::thread::Builder::new()
                    .name("mspecd-conn".to_string())
                    .spawn(move || {
                        handle_tcp_connection(&st, stream);
                        st.clients.fetch_sub(1, Ordering::Relaxed);
                        st.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                    })
                {
                    conn_threads.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for h in conn_threads {
        let _ = h.join();
    }
}

fn refuse_client(stream: TcpStream, max_clients: usize) {
    let _ = stream.set_nodelay(true);
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(Box::new(w) as Box<dyn Write + Send>)),
        Err(_) => return,
    };
    send(
        &writer,
        &Response {
            id: 0,
            body: ResponseBody::Error(ErrorInfo::new(
                ErrorClass::Overloaded,
                format!("client limit reached ({max_clients}); retry later"),
            )),
        },
    );
}

fn handle_tcp_connection(state: &Arc<State>, stream: TcpStream) {
    // The read timeout lets the reader poll the shutdown flag without
    // losing partial frames (see `proto::read_frame`).
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(Box::new(w) as Box<dyn Write + Send>)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    connection_loop(state, &mut reader, &writer);
}

fn connection_loop(state: &Arc<State>, reader: &mut impl BufRead, writer: &SharedWriter) {
    // Connection ids start at 1: 0 is the "unscoped" sentinel in
    // telemetry events and the flight ring.
    let conn = state.next_conn.fetch_add(1, Ordering::Relaxed) + 1;
    let account = Arc::new(AtomicU64::new(state.cfg.client_fuel));
    let mut buf = FrameBuf::new();
    loop {
        match read_frame(reader, &mut buf) {
            FrameRead::Frame(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_frame(state, &line, writer, &account, conn);
            }
            FrameRead::Retry => {
                if state.shutting_down() {
                    return;
                }
            }
            FrameRead::TooLong => {
                state.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                send(writer, &bad_request(0, "frame exceeds the size limit"));
            }
            FrameRead::BadUtf8 => {
                state.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                send(writer, &bad_request(0, "frame is not valid UTF-8"));
            }
            FrameRead::Eof | FrameRead::Io(_) => return,
        }
    }
}

fn bad_request(id: u64, msg: &str) -> Response {
    Response { id, body: ResponseBody::Error(ErrorInfo::new(ErrorClass::BadRequest, msg)) }
}

/// The request-scoped trace id: FNV-1a over `"{conn}:{id}"`, where
/// `conn` is the daemon-minted connection id and `id` is the client's
/// correlation id. Deterministic, so clients and operators can
/// recompute the id offline and point `mspec explain --req` or
/// `mspec trace flame --req` at one request's event stream. Never 0
/// (0 means "unscoped" throughout telemetry).
pub fn request_trace_id(conn: u64, id: u64) -> u64 {
    let h = fnv64(format!("{conn}:{id}").as_bytes());
    if h == 0 {
        1
    } else {
        h
    }
}

fn handle_frame(
    state: &Arc<State>,
    line: &str,
    writer: &SharedWriter,
    account: &Arc<AtomicU64>,
    conn: u64,
) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    state.rec.count("serve.requests", 1);
    lock(&state.live.req_window).record(state.now_ms(), 1);

    // Parse in two steps so a structurally-valid frame with bad fields
    // still gets its `id` echoed back.
    let json = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            state.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
            send(writer, &bad_request(0, &format!("malformed frame: {e}")));
            return;
        }
    };
    let id = json.get("id").ok().and_then(|v| v.as_u64().ok()).unwrap_or(0);
    let req = match Request::from_json_value(&json) {
        Ok(r) => r,
        Err(e) => {
            state.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            send(writer, &bad_request(id, &format!("bad request: {e}")));
            return;
        }
    };

    match req.kind {
        RequestKind::Health => {
            let uptime_ms = state.started.elapsed().as_millis() as u64;
            send(
                writer,
                &Response {
                    id: req.id,
                    body: ResponseBody::Health { uptime_ms, counters: state.counter_pairs(false) },
                },
            );
        }
        RequestKind::Stats => {
            send(
                writer,
                &Response {
                    id: req.id,
                    body: ResponseBody::Stats { counters: state.counter_pairs(true) },
                },
            );
        }
        RequestKind::Metrics => {
            // Read-only and bounded cost by construction (counter loads,
            // four cache len()s, one histogram walk): safe to answer
            // inline even while the worker pool is saturated.
            send(
                writer,
                &Response {
                    id: req.id,
                    body: ResponseBody::Metrics { text: metrics_text(state) },
                },
            );
        }
        RequestKind::Shutdown => {
            send(writer, &Response { id: req.id, body: ResponseBody::Ok });
            state.begin_shutdown();
        }
        RequestKind::Fault => {
            if !state.cfg.chaos {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                send(
                    writer,
                    &bad_request(req.id, "fault injection is disabled (start with --chaos)"),
                );
                return;
            }
            let rid = request_trace_id(conn, req.id);
            admit(state, req.id, rid, conn, JobKind::Fault, 0, None, writer, account);
        }
        RequestKind::Spec(spec) => {
            let reserve = spec.fuel.unwrap_or(SpecBudget::default().steps);
            let deadline_ms = spec.deadline_ms.unwrap_or(state.cfg.deadline_ms);
            let rid = request_trace_id(conn, req.id);
            admit(
                state,
                req.id,
                rid,
                conn,
                JobKind::Spec(spec),
                reserve,
                Some(deadline_ms.min(state.cfg.deadline_ms)),
                writer,
                account,
            );
        }
        RequestKind::Run(run) => {
            // Same admission economics as `spec`: the specialisation
            // stage's fuel is reserved (the residual's own execution is
            // bounded by `run_fuel`, not by the connection account).
            let reserve = run.spec.fuel.unwrap_or(SpecBudget::default().steps);
            let deadline_ms = run.spec.deadline_ms.unwrap_or(state.cfg.deadline_ms);
            let rid = request_trace_id(conn, req.id);
            admit(
                state,
                req.id,
                rid,
                conn,
                JobKind::Run(run),
                reserve,
                Some(deadline_ms.min(state.cfg.deadline_ms)),
                writer,
                account,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn admit(
    state: &Arc<State>,
    id: u64,
    req: u64,
    conn: u64,
    kind: JobKind,
    reserve: u64,
    deadline_ms: Option<u64>,
    writer: &SharedWriter,
    account: &Arc<AtomicU64>,
) {
    let kind_name = match kind {
        JobKind::Spec(_) => "spec",
        JobKind::Run(_) => "run",
        JobKind::Fault => "fault",
    };
    if reserve > 0 {
        let claimed = account
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| cur.checked_sub(reserve));
        if claimed.is_err() {
            state.counters.denied.fetch_add(1, Ordering::Relaxed);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            state.rec.count("serve.denied", 1);
            state.flight.record(req, conn, "denied", format!("{kind_name} id {id} needs {reserve} fuel"));
            send(
                writer,
                &Response {
                    id,
                    body: ResponseBody::Error(ErrorInfo::new(
                        ErrorClass::BudgetDenied,
                        format!(
                            "request needs {reserve} fuel but the connection account holds {}; \
                             lower the request's `fuel` or open a new connection",
                            account.load(Ordering::Relaxed)
                        ),
                    )),
                },
            );
            return;
        }
    }
    let now = Instant::now();
    let deadline = now + Duration::from_millis(deadline_ms.unwrap_or(state.cfg.deadline_ms));
    let job = Job {
        id,
        req,
        conn,
        kind,
        writer: Arc::clone(writer),
        enqueued: now,
        deadline,
        cancel: CancelToken::new(),
        reserved: reserve,
        account: Arc::clone(account),
    };
    match state.queue.try_push(job) {
        Ok(()) => {
            state.flight.record(req, conn, "admit", format!("{kind_name} id {id}"));
        }
        Err(PushError::Full) => {
            account.fetch_add(reserve, Ordering::AcqRel);
            state.counters.shed.fetch_add(1, Ordering::Relaxed);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            state.rec.count("serve.shed", 1);
            lock(&state.live.shed_window).record(state.now_ms(), 1);
            state.flight.record(req, conn, "shed", format!("{kind_name} id {id}"));
            send(
                writer,
                &Response {
                    id,
                    body: ResponseBody::Error(ErrorInfo::new(
                        ErrorClass::Overloaded,
                        format!(
                            "request queue is full ({} deep); backing off and retrying will \
                             succeed once load drops",
                            state.cfg.queue_depth
                        ),
                    )),
                },
            );
        }
        Err(PushError::Closed) => {
            account.fetch_add(reserve, Ordering::AcqRel);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            state.flight.record(req, conn, "closed", format!("{kind_name} id {id}"));
            send(
                writer,
                &Response {
                    id,
                    body: ResponseBody::Error(ErrorInfo::new(
                        ErrorClass::ShuttingDown,
                        "server is shutting down",
                    )),
                },
            );
        }
    }
}

fn watchdog_loop(state: &Arc<State>) {
    // Keeps ticking through shutdown until the queue has drained and no
    // job is mid-run: deadlines stay enforced for draining work. The
    // in-flight count inside `is_idle` is bumped under the queue lock
    // at pop time, so a worker that has just taken the final job can
    // never be missed between the pop and its watch registration.
    while !state.shutting_down() || !state.queue.is_idle() {
        {
            let watch = lock(&state.watch);
            let now = Instant::now();
            for (deadline, token) in watch.values() {
                if now >= *deadline {
                    token.cancel();
                }
            }
        }
        std::thread::sleep(WATCHDOG_TICK);
    }
}

fn worker_loop(state: &Arc<State>) {
    while let Some(job) = state.queue.pop() {
        run_job(state, &job);
        // After the reply is written: the watchdog may now consider the
        // pool idle as far as this job is concerned.
        state.queue.task_done();
    }
}

fn run_job(state: &Arc<State>, job: &Job) {
    let now = Instant::now();
    if now >= job.deadline {
        // Expired while queued: answer without running. This is the
        // half of deadline enforcement that bounds p99 under
        // overload — queued latency counts against the deadline.
        job.account.fetch_add(job.reserved, Ordering::AcqRel);
        state.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
        state.rec.count("serve.deadline_expired", 1);
        state.flight.record(job.req, job.conn, "deadline", format!("id {} expired while queued", job.id));
        send(
            &job.writer,
            &Response {
                id: job.id,
                body: ResponseBody::Error(ErrorInfo::with_stats(
                    ErrorClass::Deadline,
                    "deadline expired while queued (no work started)",
                    SpecStats::default(),
                )),
            },
        );
        return;
    }
    match job.kind {
        JobKind::Fault => run_fault(state, job),
        JobKind::Spec(ref spec) => run_spec(state, job, spec),
        JobKind::Run(ref run) => run_run(state, job, run),
    }
    let elapsed = job.enqueued.elapsed();
    state.live.latency_us.observe(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    state
        .rec
        .observe("serve.latency_ns", elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
}

/// One finished spec/run lookup for the windowed hit-ratio gauges.
fn note_lookup(state: &State, hit: bool) {
    let now = state.now_ms();
    lock(&state.live.lookup_window).record(now, 1);
    if hit {
        lock(&state.live.hit_window).record(now, 1);
    }
}

fn run_fault(state: &Arc<State>, job: &Job) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        panic!("injected fault (chaos request)");
    }));
    debug_assert!(outcome.is_err());
    state.counters.panics.fetch_add(1, Ordering::Relaxed);
    state.counters.errors.fetch_add(1, Ordering::Relaxed);
    state.rec.count("serve.panics", 1);
    state.flight.record(job.req, job.conn, "panic", format!("fault id {} (injected)", job.id));
    crash_dump(state, job, "worker panicked: injected fault (chaos request)");
    send(
        &job.writer,
        &Response {
            id: job.id,
            body: ResponseBody::Error(ErrorInfo::new(
                ErrorClass::Internal,
                "worker panicked serving the request (contained); the fault was injected",
            )),
        },
    );
}

fn run_spec(state: &Arc<State>, job: &Job, spec: &SpecRequest) {
    // Every span, counter and spec-decision event the engine emits for
    // this job carries the request's trace id: the recorder handle is
    // request-scoped, the shared event sink is not.
    let rec = state.rec.with_request(job.req, job.conn);
    let wid = state.watch_register(job.deadline, job.cancel.clone());
    let result = catch_unwind(AssertUnwindSafe(|| {
        state.resident.execute_spec(spec, job.cancel.clone(), &rec)
    }));
    state.watch_remove(wid);
    match result {
        Ok(Ok(outcome)) => {
            // Refund what the run did not spend. A memo hit ran no
            // engine work at all — its `stats` are the original run's
            // counters — so the whole reservation comes back.
            let spent =
                if outcome.memo_hit { 0 } else { outcome.stats.steps.min(job.reserved) };
            job.account.fetch_add(job.reserved - spent, Ordering::AcqRel);
            state.counters.ok.fetch_add(1, Ordering::Relaxed);
            rec.count("serve.ok", 1);
            note_lookup(state, outcome.memo_hit);
            state.flight.record(job.req, job.conn, "done", format!("spec id {}", job.id));
            send(
                &job.writer,
                &Response {
                    id: job.id,
                    body: ResponseBody::Spec {
                        entry: outcome.entry,
                        residual: outcome.residual.to_string(),
                        stats: outcome.stats,
                        memo_hit: outcome.memo_hit,
                    },
                },
            );
        }
        Ok(Err(info)) => {
            let spent = info.stats.map_or(0, |s| s.steps).min(job.reserved);
            job.account.fetch_add(job.reserved - spent, Ordering::AcqRel);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            if info.class == ErrorClass::Deadline {
                state.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                state.rec.count("serve.deadline_expired", 1);
            }
            state.flight.record(job.req, job.conn, "error", format!("id {}: {}", job.id, info.class));
            send(&job.writer, &Response { id: job.id, body: ResponseBody::Error(info) });
        }
        Err(_) => {
            // Panic containment: the reservation is forfeited (we cannot
            // know what was spent) and the client gets a retryable
            // `internal` error. The worker itself survives.
            state.counters.panics.fetch_add(1, Ordering::Relaxed);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            state.rec.count("serve.panics", 1);
            state.flight.record(job.req, job.conn, "panic", format!("id {}", job.id));
            crash_dump(state, job, "worker panicked serving the request");
            send(
                &job.writer,
                &Response {
                    id: job.id,
                    body: ResponseBody::Error(ErrorInfo::new(
                        ErrorClass::Internal,
                        "worker panicked serving the request (contained)",
                    )),
                },
            );
        }
    }
}

fn run_run(state: &Arc<State>, job: &Job, run: &RunRequest) {
    let rec = state.rec.with_request(job.req, job.conn);
    let wid = state.watch_register(job.deadline, job.cancel.clone());
    let result = catch_unwind(AssertUnwindSafe(|| {
        state.resident.execute_run(run, job.cancel.clone(), &rec, state.cfg.vm_opt)
    }));
    state.watch_remove(wid);
    match result {
        Ok(Ok(outcome)) => {
            // Refund as for `spec`: only the specialisation stage drew
            // on the connection account, and a memo hit drew nothing.
            let spent =
                if outcome.memo_hit { 0 } else { outcome.spec_stats.steps.min(job.reserved) };
            job.account.fetch_add(job.reserved - spent, Ordering::AcqRel);
            state.counters.ok.fetch_add(1, Ordering::Relaxed);
            rec.count("serve.ok", 1);
            note_lookup(state, outcome.memo_hit);
            state.flight.record(job.req, job.conn, "done", format!("run id {}", job.id));
            send(
                &job.writer,
                &Response {
                    id: job.id,
                    body: ResponseBody::Run {
                        entry: outcome.entry,
                        value: outcome.value,
                        memo_hit: outcome.memo_hit,
                        compiled_hit: outcome.compiled_hit,
                        instructions: outcome.instructions,
                    },
                },
            );
        }
        Ok(Err(info)) => {
            let spent = info.stats.map_or(0, |s| s.steps).min(job.reserved);
            job.account.fetch_add(job.reserved - spent, Ordering::AcqRel);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            if info.class == ErrorClass::Deadline {
                state.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                state.rec.count("serve.deadline_expired", 1);
            }
            state.flight.record(job.req, job.conn, "error", format!("id {}: {}", job.id, info.class));
            send(&job.writer, &Response { id: job.id, body: ResponseBody::Error(info) });
        }
        Err(_) => {
            state.counters.panics.fetch_add(1, Ordering::Relaxed);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            state.rec.count("serve.panics", 1);
            state.flight.record(job.req, job.conn, "panic", format!("id {}", job.id));
            crash_dump(state, job, "worker panicked serving the request");
            send(
                &job.writer,
                &Response {
                    id: job.id,
                    body: ResponseBody::Error(ErrorInfo::new(
                        ErrorClass::Internal,
                        "worker panicked serving the request (contained)",
                    )),
                },
            );
        }
    }
}

/// Renders the live metrics exposition: monotone counters from the
/// server's atomics, instantaneous gauges (queue depth, in-flight,
/// cache occupancy), windowed rates (req/s, shed/s, memo hit ratio)
/// and latency quantiles estimated from the always-on log2 histogram.
/// Bounded cost by construction — no allocation proportional to
/// traffic, no engine state touched.
fn metrics_text(state: &State) -> String {
    let s = state.stats();
    let now_ms = state.now_ms();
    let mut exp = Exposition::new();
    exp.gauge("mspecd_uptime_ms", "Milliseconds since the daemon started", now_ms);
    exp.counter("mspecd_requests_total", "Frames received (including malformed)", s.requests);
    exp.counter("mspecd_ok_total", "Successful spec/run replies", s.ok);
    exp.counter("mspecd_errors_total", "Typed error replies of any class", s.errors);
    exp.counter("mspecd_shed_total", "Requests shed by the bounded queue", s.shed);
    exp.counter("mspecd_panics_total", "Worker panics contained", s.panics);
    exp.counter(
        "mspecd_deadline_expired_total",
        "Requests whose wall-clock deadline fired",
        s.deadline_expired,
    );
    exp.gauge("mspecd_queue_depth", "Jobs currently queued", state.queue.len() as u64);
    exp.gauge("mspecd_in_flight", "Jobs currently executing", state.queue.in_flight() as u64);
    exp.gauge(
        "mspecd_clients",
        "Currently connected clients",
        state.clients.load(Ordering::Relaxed) as u64,
    );
    exp.gauge_milli(
        "mspecd_req_rate",
        "Frames per second over the sliding window",
        lock(&state.live.req_window).rate_milli_per_sec(now_ms),
    );
    exp.gauge_milli(
        "mspecd_shed_rate",
        "Sheds per second over the sliding window",
        lock(&state.live.shed_window).rate_milli_per_sec(now_ms),
    );
    let hits = lock(&state.live.hit_window).total(now_ms);
    let lookups = lock(&state.live.lookup_window).total(now_ms);
    exp.gauge_milli(
        "mspecd_memo_hit_ratio",
        "Share of finished spec/run lookups answered by the resident memo, sliding window",
        hits.saturating_mul(1000).checked_div(lookups).unwrap_or(0),
    );
    exp.summary(
        "mspecd_latency_us",
        "Admission-to-reply latency of executed jobs, microseconds",
        &state.live.latency_us.nonzero_buckets(),
    );
    let (programs, artefacts, memo, compiled) = state.resident.cache_sizes();
    exp.gauge("mspecd_cache_programs", "Resident compiled inline programs", programs as u64);
    exp.gauge("mspecd_cache_artefacts", "Resident linked artefact sets", artefacts as u64);
    exp.gauge("mspecd_cache_memo", "Resident memoised specialisations", memo as u64);
    exp.gauge("mspecd_cache_compiled", "Resident compiled residuals", compiled as u64);
    let r = state.resident.stats();
    exp.counter("mspecd_cache_evictions_total", "Entries evicted at the memo cap", r.evictions);
    exp.counter("mspecd_cache_disk_hits_total", "Disk-tier residual cache hits", r.disk_hits);
    exp.counter("mspecd_cache_disk_stores_total", "Residuals persisted to the disk tier", r.disk_stores);
    exp.counter("mspecd_flight_recorded_total", "Events ever written to the flight ring", state.flight.recorded());
    exp.render()
}

/// Writes a crash dump for a contained worker panic: one header line
/// naming the offending request (trace id, connection, correlation id)
/// and the server's posture at the moment of the crash (queue depth,
/// in-flight count, the connection's remaining fuel), then the flight
/// ring oldest-first. Written via the atomic temp-file + rename
/// machinery, so a dump is never observed half-written; the sequence
/// number gives each incident its own file.
fn crash_dump(state: &State, job: &Job, message: &str) {
    let seq = state.crash_seq.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let dir = state.cfg.crash_dir.clone().unwrap_or_else(|| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("crash-{pid}-{seq}.jsonl"));
    let header = Json::obj([
        ("kind", Json::str("crash")),
        ("pid", Json::Num(u128::from(pid))),
        ("seq", Json::Num(u128::from(seq))),
        ("req", Json::Num(u128::from(job.req))),
        ("conn", Json::Num(u128::from(job.conn))),
        ("id", Json::Num(u128::from(job.id))),
        ("queue_len", Json::Num(state.queue.len() as u128)),
        ("in_flight", Json::Num(state.queue.in_flight() as u128)),
        ("fuel_remaining", Json::Num(u128::from(job.account.load(Ordering::Relaxed)))),
        ("uptime_ms", Json::Num(u128::from(state.now_ms()))),
        ("message", Json::str(message)),
    ]);
    let mut text = header.write_compact();
    text.push('\n');
    text.push_str(&state.flight.to_jsonl());
    let _ = atomic_write(&path, text.as_bytes());
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::proto::SpecRequest;

    const POWER: &str =
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

    /// Unbounded polyvariance: `n` static under dynamic control grows
    /// without bound, driving the pending list forever — *iteratively*
    /// (no engine recursion), so only a budget or a deadline stops it.
    const POLY: &str =
        "module Loop where\ncount n b = if b == 0 then n else count (n + 1) (b - 1)\n";

    fn connect(port: u16) -> TcpStream {
        let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
        stream.write_all(format!("{}\n", req.to_json_compact()).as_bytes()).unwrap();
        stream.flush().unwrap();
        read_response(stream)
    }

    fn read_response(stream: &mut TcpStream) -> Response {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Response::from_json_str(line.trim_end()).unwrap()
    }

    fn test_server(mut cfg: ServeConfig) -> (Server, TcpHandle) {
        // Crash dumps default to the cwd; tests that trip the panic
        // path must never litter the crate directory.
        if cfg.crash_dir.is_none() {
            cfg.crash_dir = Some(std::env::temp_dir().to_string_lossy().into_owned());
        }
        let server = Server::new(cfg, Recorder::disabled());
        let handle = server.start_tcp().unwrap();
        (server, handle)
    }

    #[test]
    fn spec_health_and_shutdown_over_tcp() {
        let (server, handle) = test_server(ServeConfig::default());
        let mut c = connect(handle.port);
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 1,
                kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:3,D")),
            },
        );
        let ResponseBody::Spec { residual, memo_hit, .. } = resp.body else {
            panic!("expected spec reply, got {resp:?}");
        };
        assert!(residual.contains("x * (x * x)"), "{residual}");
        assert!(!memo_hit);

        let resp = roundtrip(&mut c, &Request { id: 2, kind: RequestKind::Health });
        let ResponseBody::Health { counters, .. } = resp.body else { panic!("{resp:?}") };
        assert!(counters.iter().any(|(k, v)| k == "serve.ok" && *v == 1));
        assert!(counters.iter().any(|(k, _)| k == "serve.in_flight"));
        assert!(counters.iter().any(|(k, v)| k == "resident.cache.memo" && *v == 1));

        let resp = roundtrip(&mut c, &Request { id: 3, kind: RequestKind::Shutdown });
        assert_eq!(resp.body, ResponseBody::Ok);
        handle.join();
        assert_eq!(server.stats().ok, 1);
    }

    #[test]
    fn run_requests_execute_residuals_and_warm_the_compiled_cache() {
        use mspec_lang::vm::VmOpt;

        let cfg = ServeConfig { vm_opt: VmOpt::Fuse, ..ServeConfig::default() };
        let (server, handle) = test_server(cfg);
        let mut c = connect(handle.port);
        let req = |id| Request {
            id,
            kind: RequestKind::Run(RunRequest {
                spec: SpecRequest::inline(POWER, "Power.power", "S:5,D"),
                values: "3".to_string(),
                run_fuel: None,
            }),
        };
        let resp = roundtrip(&mut c, &req(1));
        let ResponseBody::Run { value, memo_hit, compiled_hit, instructions, .. } = resp.body
        else {
            panic!("expected run reply, got {resp:?}");
        };
        assert_eq!(value, "243");
        assert!(!memo_hit && !compiled_hit);
        assert!(instructions > 0);
        let cold_instructions = instructions;

        let resp = roundtrip(&mut c, &req(2));
        let ResponseBody::Run { value, memo_hit, compiled_hit, instructions, .. } = resp.body
        else {
            panic!("{resp:?}");
        };
        assert_eq!(value, "243");
        assert!(memo_hit && compiled_hit, "warm request hits both resident caches");
        assert_eq!(instructions, cold_instructions);

        let resp = roundtrip(&mut c, &Request { id: 3, kind: RequestKind::Stats });
        let ResponseBody::Stats { counters } = resp.body else { panic!("{resp:?}") };
        assert!(counters.iter().any(|(k, v)| k == "resident.compiled_hits" && *v == 1));
        server.shutdown();
        handle.join();
        assert_eq!(server.stats().ok, 2);
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_the_server_survives() {
        let (server, handle) = test_server(ServeConfig { chaos: true, ..ServeConfig::default() });
        let mut c = connect(handle.port);
        // Not JSON at all.
        writeln!(c, "this is not json").unwrap();
        let resp = read_response(&mut c);
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::BadRequest);
        // Valid JSON, invalid request (id is echoed).
        c.write_all(b"{\"id\":9,\"kind\":\"teleport\"}\n").unwrap();
        let resp = read_response(&mut c);
        assert_eq!(resp.id, 9);
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::BadRequest);
        // A panicking request is contained...
        let resp = roundtrip(&mut c, &Request { id: 10, kind: RequestKind::Fault });
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::Internal);
        assert!(e.retryable);
        // ...and the very next request on the same connection works.
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 11,
                kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:2,D")),
            },
        );
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
        server.shutdown();
        handle.join();
        assert_eq!(server.stats().panics, 1);
    }

    #[test]
    fn admission_denies_over_account_requests() {
        let cfg = ServeConfig { client_fuel: 1_000, ..ServeConfig::default() };
        let (server, handle) = test_server(cfg);
        let mut c = connect(handle.port);
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 1,
                kind: RequestKind::Spec(SpecRequest {
                    fuel: Some(5_000),
                    ..SpecRequest::inline(POWER, "Power.power", "S:3,D")
                }),
            },
        );
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::BudgetDenied);
        assert!(!e.retryable);
        // A request that fits still works, and its unused fuel refunds.
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 2,
                kind: RequestKind::Spec(SpecRequest {
                    fuel: Some(900),
                    ..SpecRequest::inline(POWER, "Power.power", "S:3,D")
                }),
            },
        );
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 3,
                kind: RequestKind::Spec(SpecRequest {
                    fuel: Some(900),
                    ..SpecRequest::inline(POWER, "Power.power", "S:4,D")
                }),
            },
        );
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
        server.shutdown();
        handle.join();
        assert_eq!(server.stats().denied, 1);
    }

    #[test]
    fn memo_hits_refund_the_full_reservation() {
        // Memo hits run no engine work (their `stats` are the original
        // run's counters), so they must charge the connection's fuel
        // account nothing. Charging the original step cost per hit
        // would drain the account into spurious budget-denied replies.
        const ACCOUNT: u64 = 50_000;
        let cfg = ServeConfig { client_fuel: ACCOUNT, ..ServeConfig::default() };
        let (server, handle) = test_server(cfg);
        let mut c = connect(handle.port);
        let req = |id| Request {
            id,
            kind: RequestKind::Spec(SpecRequest {
                fuel: Some(5_000),
                ..SpecRequest::inline(POWER, "Power.power", "S:40,D")
            }),
        };
        let resp = roundtrip(&mut c, &req(1));
        let ResponseBody::Spec { memo_hit, stats, .. } = resp.body else { panic!("{resp:?}") };
        assert!(!memo_hit);
        assert!(stats.steps > 0);
        // Enough memo hits that per-hit charging of the original step
        // cost would exhaust the account with room to spare.
        let hits = ACCOUNT / stats.steps.max(1) + 5;
        for id in 2..2 + hits {
            let resp = roundtrip(&mut c, &req(id));
            let ResponseBody::Spec { memo_hit, .. } = resp.body else {
                panic!("request {id}: {resp:?}")
            };
            assert!(memo_hit, "request {id} should be a memo hit");
        }
        server.shutdown();
        handle.join();
        assert_eq!(server.stats().denied, 0);
    }

    #[test]
    fn deadline_cancels_a_running_request() {
        let (server, handle) = test_server(ServeConfig::default());
        let mut c = connect(handle.port);
        // An unbounded static loop: only the deadline can stop it.
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 1,
                kind: RequestKind::Spec(SpecRequest {
                    deadline_ms: Some(50),
                    // Plenty of fuel (but within the connection's
                    // account, so admission lets it in).
                    fuel: Some(1_000_000_000),
                    // Keep the specialisation-count budget out of the
                    // way: only the deadline may stop this run.
                    max_spec: Some(usize::MAX),
                    ..SpecRequest::inline(POLY, "Loop.count", "S:0,D")
                }),
            },
        );
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::Deadline, "{e:?}");
        assert!(e.stats.unwrap().steps > 0, "partial progress expected");
        server.shutdown();
        handle.join();
        assert_eq!(server.stats().deadline_expired, 1);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // One worker, depth-1 queue: park the worker on a slow request,
        // fill the queue, and watch the third request shed.
        let cfg = ServeConfig { workers: 1, queue_depth: 1, ..ServeConfig::default() };
        let server = Server::new(cfg, Recorder::disabled());
        let handle = server.start_tcp().unwrap();
        let mut slow = connect(handle.port);
        let spin = SpecRequest {
            deadline_ms: Some(400),
            fuel: Some(1_000_000_000),
            max_spec: Some(usize::MAX),
            ..SpecRequest::inline(POLY, "Loop.count", "S:0,D")
        };
        writeln!(
            slow,
            "{}",
            Request { id: 1, kind: RequestKind::Spec(spin.clone()) }.to_json_compact()
        )
        .unwrap();
        slow.flush().unwrap();
        std::thread::sleep(Duration::from_millis(60));
        // Fill the depth-1 queue.
        let mut q = connect(handle.port);
        writeln!(q, "{}", Request { id: 2, kind: RequestKind::Spec(spin.clone()) }.to_json_compact())
            .unwrap();
        q.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // This one must shed immediately.
        let mut shed = connect(handle.port);
        let resp = roundtrip(&mut shed, &Request { id: 3, kind: RequestKind::Spec(spin) });
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::Overloaded);
        assert!(e.retryable);
        server.shutdown();
        handle.join();
        assert!(server.stats().shed >= 1);
    }

    #[test]
    fn metrics_request_is_answered_inline_and_schema_checks() {
        let (server, handle) = test_server(ServeConfig::default());
        let mut c = connect(handle.port);
        // Run one request so latency/rate metrics have substance.
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 1,
                kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:3,D")),
            },
        );
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
        // The reply races the worker's post-send latency observation by
        // a few microseconds, so scrape until the count lands.
        let mut text = String::new();
        for i in 2..40u64 {
            let resp = roundtrip(&mut c, &Request { id: i, kind: RequestKind::Metrics });
            let ResponseBody::Metrics { text: t } = resp.body else { panic!("{resp:?}") };
            text = t;
            if text.contains("mspecd_latency_us_count 1\n") {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = mspec_telemetry::metrics::check_exposition(&text).unwrap();
        assert!(report.families >= 15, "{report:?}\n{text}");
        assert!(text.contains("mspecd_ok_total 1\n"), "{text}");
        assert!(text.contains("mspecd_latency_us_count 1\n"), "{text}");
        assert!(text.contains("mspecd_cache_memo 1\n"), "{text}");
        server.shutdown();
        handle.join();
    }

    #[test]
    fn request_trace_ids_are_deterministic_nonzero_and_distinct() {
        assert_eq!(request_trace_id(1, 7), request_trace_id(1, 7));
        assert_ne!(request_trace_id(1, 7), request_trace_id(2, 7));
        assert_ne!(request_trace_id(1, 7), request_trace_id(1, 8));
        assert_ne!(request_trace_id(1, 7), 0);
    }

    #[test]
    fn daemon_traces_carry_request_ids_and_replay_per_request() {
        let rec = Recorder::enabled();
        let server = Server::new(ServeConfig::default(), rec.clone());
        let handle = server.start_tcp().unwrap();
        let mut c = connect(handle.port);
        for (id, n) in [(1u64, 3u64), (2, 4)] {
            let resp = roundtrip(
                &mut c,
                &Request {
                    id,
                    kind: RequestKind::Spec(SpecRequest::inline(
                        POWER,
                        "Power.power",
                        &format!("S:{n},D"),
                    )),
                },
            );
            assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
        }
        server.shutdown();
        handle.join();
        let snap = rec.snapshot();
        let rid1 = request_trace_id(1, 1);
        let rid2 = request_trace_id(1, 2);
        for rid in [rid1, rid2] {
            assert!(
                snap.events.iter().any(|e| e.req == rid),
                "no events tagged with request {rid}"
            );
        }
        // Each request's stream replays independently through explain:
        // filtering to one rid must reproduce that request's private
        // provenance (one residual version each), and the S:3 / S:4
        // runs unfold different numbers of static call sites, so the
        // two per-request answers are distinguishable.
        let one = mspec_telemetry::explain_req(&snap, "Power.power", Some(rid1)).unwrap();
        assert!(one.contains("1 residual version(s)"), "{one}");
        let two = mspec_telemetry::explain_req(&snap, "Power.power", Some(rid2)).unwrap();
        assert!(two.contains("1 residual version(s)"), "{two}");
        assert_ne!(one, two, "per-request streams must not bleed into each other");
        // An unknown request id matches no events at all.
        assert!(mspec_telemetry::explain_req(&snap, "Power.power", Some(0xdead)).is_none());
    }

    #[test]
    fn startup_gc_bounds_the_disk_cache() {
        let dir = std::env::temp_dir().join(format!("mspec-serve-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::open(&dir).unwrap();
        for i in 0..4u32 {
            cache.put(&mspec_cache::CacheEntry {
                key: format!("k{i}"),
                entry: "M.f".to_string(),
                residual: "module M where\nf x = x\n".repeat(8),
                stats: mspec_genext::SpecStats::default(),
            }).unwrap();
        }
        assert_eq!(cache.len(), 4);
        let cfg = ServeConfig {
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            cache_gc_bytes: Some(1),
            ..ServeConfig::default()
        };
        let server = Server::new(cfg, Recorder::disabled());
        // A 1-byte bound prunes every pre-existing entry at startup.
        assert_eq!(cache.len(), 0);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contained_panic_writes_exactly_one_crash_dump_and_serving_continues() {
        let dir = std::env::temp_dir().join(format!("mspec-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ServeConfig {
            chaos: true,
            crash_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        };
        let (server, handle) = test_server(cfg);
        let mut c = connect(handle.port);
        let resp = roundtrip(&mut c, &Request { id: 3, kind: RequestKind::Fault });
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::Internal);
        // The daemon keeps serving after the contained panic.
        let resp = roundtrip(
            &mut c,
            &Request {
                id: 4,
                kind: RequestKind::Spec(SpecRequest::inline(POWER, "Power.power", "S:2,D")),
            },
        );
        assert!(matches!(resp.body, ResponseBody::Spec { .. }), "{resp:?}");
        server.shutdown();
        handle.join();
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|f| f.file_name().to_string_lossy().starts_with("crash-"))
            .collect();
        assert_eq!(dumps.len(), 1, "exactly one crash dump per incident");
        let text = std::fs::read_to_string(dumps[0].path()).unwrap();
        let mut lines = text.lines();
        let header = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("kind").unwrap().as_str().unwrap(), "crash");
        assert_eq!(header.get("id").unwrap().as_u64().unwrap(), 3);
        assert_eq!(
            header.get("req").unwrap().as_u64().unwrap(),
            request_trace_id(1, 3),
            "the dump names the offending request's trace id"
        );
        // Every ring line parses, and the fault's own admission is in it.
        let mut admits = 0;
        for line in lines {
            let j = Json::parse(line).unwrap();
            if j.get("kind").unwrap().as_str().unwrap() == "admit" {
                admits += 1;
            }
        }
        assert!(admits >= 1, "the ring holds the fault's admission\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stdio_counters_via_stats_request() {
        // Exercise the frame handler directly (as serve_stdio does).
        let server = Server::new(ServeConfig::default(), Recorder::disabled());
        let buf: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::new()) as Box<dyn Write + Send>));
        let account = Arc::new(AtomicU64::new(server.state.cfg.client_fuel));
        handle_frame(
            &server.state,
            &Request { id: 5, kind: RequestKind::Stats }.to_json_compact(),
            &buf,
            &account,
            1,
        );
        assert_eq!(server.stats().requests, 1);
        server.shutdown();
    }
}

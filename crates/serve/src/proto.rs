//! The wire protocol: JSONL frames, the request/response vocabulary
//! and the error taxonomy.
//!
//! One frame is one JSON object on one line, terminated by `\n` —
//! trivially debuggable with a terminal and resynchronisable after any
//! malformed frame (skip to the next newline). Requests carry a
//! client-chosen `id` echoed in the response, so a client may pipeline
//! requests and match replies out of order (the server's worker pool
//! replies in completion order, not arrival order).
//!
//! # Request kinds
//!
//! | kind       | fields                                              |
//! |------------|-----------------------------------------------------|
//! | `spec`     | `program` (inline source) *or* `dir` (`.gx` artefact directory), `entry`, `args` (a division: `S:<v>`, `D`, `P:<n>`), optional `fuel`, `max_spec`, `on_exhaustion`, `strategy`, `deadline_ms` |
//! | `run`      | every `spec` field, plus `values` (comma-separated dynamic argument literals) and optional `run_fuel` — specialises (or memo-hits), then *executes* the residual on the resident compiled-bytecode cache |
//! | `health`   | — (liveness + headline counters snapshot)           |
//! | `stats`    | — (full counter dump)                               |
//! | `metrics`  | — (Prometheus-style text exposition: windowed rates, latency quantiles, cache occupancy; read-only, answered inline on the connection thread, never queued behind spec work) |
//! | `fault`    | — (panics the worker; only honoured under `--chaos`)|
//! | `shutdown` | — (drain and stop the daemon)                       |
//!
//! # Error taxonomy
//!
//! Every failure reply names an [`ErrorClass`]; the `retryable` flag is
//! derived from the class and tells clients whether backing off and
//! resending the *same* request can succeed:
//!
//! * retryable — [`ErrorClass::Overloaded`] (the bounded queue was
//!   full: load shedding, try again after backoff) and
//!   [`ErrorClass::Internal`] (a worker panicked; the request *may*
//!   have tripped transient state).
//! * terminal — everything else: resending the identical request gives
//!   the identical answer ([`ErrorClass::BadRequest`],
//!   [`ErrorClass::Compile`], [`ErrorClass::NoSuchEntry`],
//!   [`ErrorClass::Budget`], [`ErrorClass::BudgetDenied`],
//!   [`ErrorClass::Deadline`], [`ErrorClass::StaleInterface`],
//!   [`ErrorClass::Artefact`], [`ErrorClass::ShuttingDown`]).

use mspec_genext::{OnExhaustion, SpecStats, Strategy};
use mspec_lang::eval::Value;
use mspec_lang::json::{FromJson, Json, JsonError, ToJson};
use std::io::BufRead;

/// Hard cap on one frame's length. A frame larger than this is a
/// protocol violation: the reader drains to the next newline and
/// replies `bad-request` rather than buffering without bound.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What is being asked.
    pub kind: RequestKind,
}

/// The request vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Specialise an entry function of a program.
    Spec(SpecRequest),
    /// Specialise (or serve from the memo), then execute the residual
    /// on dynamic values through the resident compiled-program cache.
    Run(RunRequest),
    /// Liveness + headline counters.
    Health,
    /// Full counter dump.
    Stats,
    /// Prometheus-style text exposition (rates, quantiles, occupancy).
    /// Read-only and bounded-cost: answered inline on the connection
    /// thread, never queued behind spec work.
    Metrics,
    /// Chaos hook: panic the worker that picks this up. Only honoured
    /// when the server was started with fault injection enabled;
    /// otherwise answered with `bad-request`.
    Fault,
    /// Drain and stop the daemon.
    Shutdown,
}

/// One specialisation request.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRequest {
    /// Inline source text (mutually exclusive with `dir`).
    pub program: Option<String>,
    /// A directory of `.gx`/`.bti` artefacts to link (server-side
    /// path; revalidated against interface fingerprints on every use).
    pub dir: Option<String>,
    /// Entry function, `Module.function`.
    pub entry: String,
    /// The division, in CLI syntax: `S:<v>,D,P:<n>`.
    pub args: String,
    /// Step-fuel budget (admission-controlled; clamped to the server's
    /// per-request cap).
    pub fuel: Option<u64>,
    /// Specialisation-count budget.
    pub max_spec: Option<usize>,
    /// Exhaustion policy (`error` | `generalise`).
    pub on_exhaustion: OnExhaustion,
    /// Engine strategy (`bf` | `df`).
    pub strategy: Strategy,
    /// Wall-clock deadline for this request, milliseconds from
    /// admission. Clamped to the server's `--deadline-ms` cap.
    pub deadline_ms: Option<u64>,
}

impl SpecRequest {
    /// A minimal inline-source request (the common case in tests).
    pub fn inline(program: &str, entry: &str, args: &str) -> SpecRequest {
        SpecRequest {
            program: Some(program.to_string()),
            dir: None,
            entry: entry.to_string(),
            args: args.to_string(),
            fuel: None,
            max_spec: None,
            on_exhaustion: OnExhaustion::Error,
            strategy: Strategy::BreadthFirst,
            deadline_ms: None,
        }
    }
}

/// One specialise-then-execute request: the embedded [`SpecRequest`]
/// names (or produces) the residual; `values` are the dynamic inputs
/// it runs on. Warm requests skip the engine *and* the bytecode
/// compiler — the resident caches answer both by the same identity.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// The specialisation that produces (or names) the residual.
    pub spec: SpecRequest,
    /// Dynamic argument values, comma-separated literals
    /// (see [`parse_values`]).
    pub values: String,
    /// Execution fuel for the residual run (default: the engine-wide
    /// `DEFAULT_FUEL`; a budget of `n` admits exactly `n` charges).
    pub run_fuel: Option<u64>,
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id (0 when the request was too
    /// malformed to carry one).
    pub id: u64,
    /// Outcome.
    pub body: ResponseBody,
}

/// The response vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A finished specialisation.
    Spec {
        /// Residual entry function, `Module.function`.
        entry: String,
        /// The residual program's concrete syntax — byte-identical to
        /// `mspec spec` CLI output for the same request.
        residual: String,
        /// Engine counters for the run.
        stats: SpecStats,
        /// Whether this reply came from the resident cross-request
        /// memo rather than a fresh engine run.
        memo_hit: bool,
    },
    /// A finished residual execution.
    Run {
        /// Residual entry function, `Module.function`.
        entry: String,
        /// The computed value, rendered as the CLI renders values.
        value: String,
        /// Whether the specialisation came from the resident memo.
        memo_hit: bool,
        /// Whether the compiled bytecode came from the resident
        /// compiled-program cache (a warm run: no engine, no compile,
        /// straight to fused dispatch).
        compiled_hit: bool,
        /// Fuel-charging VM instructions the run executed.
        instructions: u64,
    },
    /// Health snapshot.
    Health {
        /// Milliseconds since the server started.
        uptime_ms: u64,
        /// Headline counters, name/value pairs in deterministic order.
        counters: Vec<(String, u64)>,
    },
    /// Full counter dump.
    Stats {
        /// Counters, name/value pairs in deterministic order.
        counters: Vec<(String, u64)>,
    },
    /// A metrics exposition.
    Metrics {
        /// The Prometheus-style exposition text
        /// (see `mspec_telemetry::Exposition`).
        text: String,
    },
    /// Acknowledgement with no payload (e.g. `shutdown`).
    Ok,
    /// A structured failure.
    Error(ErrorInfo),
}

/// A structured error reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorInfo {
    /// The taxonomy class.
    pub class: ErrorClass,
    /// Whether backing off and resending the same request can succeed
    /// (derived from the class; carried on the wire so clients need no
    /// taxonomy table).
    pub retryable: bool,
    /// Human-readable detail.
    pub message: String,
    /// Partial-progress engine counters, present when the request got
    /// as far as running the engine (deadline and budget breaches).
    pub stats: Option<SpecStats>,
}

impl ErrorInfo {
    /// An error reply for `class` with the class's retryability.
    pub fn new(class: ErrorClass, message: impl Into<String>) -> ErrorInfo {
        ErrorInfo { class, retryable: class.retryable(), message: message.into(), stats: None }
    }

    /// [`ErrorInfo::new`] carrying partial-progress stats.
    pub fn with_stats(
        class: ErrorClass,
        message: impl Into<String>,
        stats: SpecStats,
    ) -> ErrorInfo {
        ErrorInfo {
            class,
            retryable: class.retryable(),
            message: message.into(),
            stats: Some(stats),
        }
    }
}

/// The error classes of the service (see the module docs for the
/// retryable/terminal split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Malformed frame or request fields.
    BadRequest,
    /// The program failed to parse/resolve/typecheck/analyse.
    Compile,
    /// The entry function does not exist in the program.
    NoSuchEntry,
    /// A [`mspec_genext::SpecBudget`] resource ran out mid-run.
    Budget,
    /// Admission control refused the request: its budget does not fit
    /// the connection's remaining fuel account.
    BudgetDenied,
    /// The wall-clock deadline fired; the reply carries the partial
    /// progress made.
    Deadline,
    /// The bounded queue was full (load shedding) or the client limit
    /// was reached — the 503 of this protocol.
    Overloaded,
    /// A worker panicked serving the request.
    Internal,
    /// A `.gx` artefact no longer matches the `.bti` interface it was
    /// generated against.
    StaleInterface,
    /// An artefact directory failed to load (corrupt/truncated files).
    Artefact,
    /// The server is draining for shutdown.
    ShuttingDown,
}

impl ErrorClass {
    /// Whether resending the same request after backoff can succeed.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorClass::Overloaded | ErrorClass::Internal)
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorClass::BadRequest => "bad-request",
            ErrorClass::Compile => "compile",
            ErrorClass::NoSuchEntry => "no-such-entry",
            ErrorClass::Budget => "budget",
            ErrorClass::BudgetDenied => "budget-denied",
            ErrorClass::Deadline => "deadline",
            ErrorClass::Overloaded => "overloaded",
            ErrorClass::Internal => "internal",
            ErrorClass::StaleInterface => "stale-interface",
            ErrorClass::Artefact => "artefact",
            ErrorClass::ShuttingDown => "shutting-down",
        }
    }

    /// Inverse of [`ErrorClass::as_str`].
    pub fn parse(s: &str) -> Option<ErrorClass> {
        Some(match s {
            "bad-request" => ErrorClass::BadRequest,
            "compile" => ErrorClass::Compile,
            "no-such-entry" => ErrorClass::NoSuchEntry,
            "budget" => ErrorClass::Budget,
            "budget-denied" => ErrorClass::BudgetDenied,
            "deadline" => ErrorClass::Deadline,
            "overloaded" => ErrorClass::Overloaded,
            "internal" => ErrorClass::Internal,
            "stale-interface" => ErrorClass::StaleInterface,
            "artefact" => ErrorClass::Artefact,
            "shutting-down" => ErrorClass::ShuttingDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

fn stats_to_json(s: &SpecStats) -> Json {
    Json::obj([
        ("specialisations", Json::Num(s.specialisations as u128)),
        ("memo_probes", Json::Num(s.memo_probes as u128)),
        ("memo_hits", Json::Num(s.memo_hits as u128)),
        ("unfolds", Json::Num(s.unfolds as u128)),
        ("steps", Json::Num(s.steps as u128)),
        ("residual_nodes", Json::Num(s.residual_nodes as u128)),
        ("generalised", Json::Num(s.generalised as u128)),
    ])
}

fn stats_from_json(j: &Json) -> Result<SpecStats, JsonError> {
    Ok(SpecStats {
        specialisations: j.get("specialisations")?.as_usize()?,
        memo_probes: j.get("memo_probes")?.as_usize()?,
        memo_hits: j.get("memo_hits")?.as_usize()?,
        unfolds: j.get("unfolds")?.as_usize()?,
        steps: j.get("steps")?.as_u64()?,
        residual_nodes: j.get("residual_nodes")?.as_usize()?,
        generalised: j.get("generalised")?.as_usize()?,
        ..SpecStats::default()
    })
}

fn counters_to_json(counters: &[(String, u64)]) -> Json {
    Json::Obj(
        counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as u128))).collect(),
    )
}

fn counters_from_json(j: &Json) -> Result<Vec<(String, u64)>, JsonError> {
    j.as_obj()?
        .iter()
        .map(|(k, v)| Ok((k.clone(), v.as_u64()?)))
        .collect()
}

fn push_spec_fields(s: &SpecRequest, fields: &mut Vec<(String, Json)>) {
    if let Some(p) = &s.program {
        fields.push(("program".into(), Json::str(p.clone())));
    }
    if let Some(d) = &s.dir {
        fields.push(("dir".into(), Json::str(d.clone())));
    }
    fields.push(("entry".into(), Json::str(s.entry.clone())));
    fields.push(("args".into(), Json::str(s.args.clone())));
    if let Some(fuel) = s.fuel {
        fields.push(("fuel".into(), Json::Num(fuel as u128)));
    }
    if let Some(m) = s.max_spec {
        fields.push(("max_spec".into(), Json::Num(m as u128)));
    }
    if s.on_exhaustion == OnExhaustion::Generalise {
        fields.push(("on_exhaustion".into(), Json::str("generalise")));
    }
    if s.strategy == Strategy::DepthFirst {
        fields.push(("strategy".into(), Json::str("df")));
    }
    if let Some(d) = s.deadline_ms {
        fields.push(("deadline_ms".into(), Json::Num(d as u128)));
    }
}

impl ToJson for Request {
    fn to_json_value(&self) -> Json {
        let mut fields = vec![("id".to_string(), Json::Num(self.id as u128))];
        match &self.kind {
            RequestKind::Health => fields.push(("kind".into(), Json::str("health"))),
            RequestKind::Stats => fields.push(("kind".into(), Json::str("stats"))),
            RequestKind::Metrics => fields.push(("kind".into(), Json::str("metrics"))),
            RequestKind::Fault => fields.push(("kind".into(), Json::str("fault"))),
            RequestKind::Shutdown => fields.push(("kind".into(), Json::str("shutdown"))),
            RequestKind::Spec(s) => {
                fields.push(("kind".into(), Json::str("spec")));
                push_spec_fields(s, &mut fields);
            }
            RequestKind::Run(r) => {
                fields.push(("kind".into(), Json::str("run")));
                push_spec_fields(&r.spec, &mut fields);
                fields.push(("values".into(), Json::str(r.values.clone())));
                if let Some(f) = r.run_fuel {
                    fields.push(("run_fuel".into(), Json::Num(f as u128)));
                }
            }
        }
        Json::Obj(fields)
    }
}

fn spec_from_json(j: &Json) -> Result<SpecRequest, JsonError> {
    let program = match j.get("program") {
        Ok(v) => Some(v.as_str()?.to_string()),
        Err(_) => None,
    };
    let dir = match j.get("dir") {
        Ok(v) => Some(v.as_str()?.to_string()),
        Err(_) => None,
    };
    if program.is_some() == dir.is_some() {
        return Err(JsonError(
            "spec needs exactly one of `program` (inline source) or `dir` \
             (artefact directory)"
                .into(),
        ));
    }
    let on_exhaustion = match j.get("on_exhaustion") {
        Ok(v) => match v.as_str()? {
            "error" => OnExhaustion::Error,
            "generalise" => OnExhaustion::Generalise,
            other => {
                return Err(JsonError(format!(
                    "on_exhaustion must be error or generalise, got `{other}`"
                )))
            }
        },
        Err(_) => OnExhaustion::Error,
    };
    let strategy = match j.get("strategy") {
        Ok(v) => match v.as_str()? {
            "bf" => Strategy::BreadthFirst,
            "df" => Strategy::DepthFirst,
            other => {
                return Err(JsonError(format!(
                    "strategy must be bf or df, got `{other}`"
                )))
            }
        },
        Err(_) => Strategy::BreadthFirst,
    };
    Ok(SpecRequest {
        program,
        dir,
        entry: j.get("entry")?.as_str()?.to_string(),
        args: j.get("args")?.as_str()?.to_string(),
        fuel: match j.get("fuel") {
            Ok(v) => Some(v.as_u64()?),
            Err(_) => None,
        },
        max_spec: match j.get("max_spec") {
            Ok(v) => Some(v.as_usize()?),
            Err(_) => None,
        },
        on_exhaustion,
        strategy,
        deadline_ms: match j.get("deadline_ms") {
            Ok(v) => Some(v.as_u64()?),
            Err(_) => None,
        },
    })
}

impl FromJson for Request {
    fn from_json_value(j: &Json) -> Result<Request, JsonError> {
        let id = j.get("id")?.as_u64()?;
        let kind = match j.get("kind")?.as_str()? {
            "health" => RequestKind::Health,
            "stats" => RequestKind::Stats,
            "metrics" => RequestKind::Metrics,
            "fault" => RequestKind::Fault,
            "shutdown" => RequestKind::Shutdown,
            "spec" => RequestKind::Spec(spec_from_json(j)?),
            "run" => RequestKind::Run(RunRequest {
                spec: spec_from_json(j)?,
                values: j.get("values")?.as_str()?.to_string(),
                run_fuel: match j.get("run_fuel") {
                    Ok(v) => Some(v.as_u64()?),
                    Err(_) => None,
                },
            }),
            other => return Err(JsonError(format!("unknown request kind `{other}`"))),
        };
        Ok(Request { id, kind })
    }
}

impl ToJson for Response {
    fn to_json_value(&self) -> Json {
        let mut fields = vec![("id".to_string(), Json::Num(self.id as u128))];
        match &self.body {
            ResponseBody::Spec { entry, residual, stats, memo_hit } => {
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("kind".into(), Json::str("spec")));
                fields.push(("entry".into(), Json::str(entry.clone())));
                fields.push(("residual".into(), Json::str(residual.clone())));
                fields.push(("stats".into(), stats_to_json(stats)));
                fields.push(("memo_hit".into(), Json::Bool(*memo_hit)));
            }
            ResponseBody::Run { entry, value, memo_hit, compiled_hit, instructions } => {
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("kind".into(), Json::str("run")));
                fields.push(("entry".into(), Json::str(entry.clone())));
                fields.push(("value".into(), Json::str(value.clone())));
                fields.push(("memo_hit".into(), Json::Bool(*memo_hit)));
                fields.push(("compiled_hit".into(), Json::Bool(*compiled_hit)));
                fields.push(("instructions".into(), Json::Num(*instructions as u128)));
            }
            ResponseBody::Health { uptime_ms, counters } => {
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("kind".into(), Json::str("health")));
                fields.push(("uptime_ms".into(), Json::Num(*uptime_ms as u128)));
                fields.push(("counters".into(), counters_to_json(counters)));
            }
            ResponseBody::Stats { counters } => {
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("kind".into(), Json::str("stats")));
                fields.push(("counters".into(), counters_to_json(counters)));
            }
            ResponseBody::Metrics { text } => {
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("kind".into(), Json::str("metrics")));
                fields.push(("text".into(), Json::str(text.clone())));
            }
            ResponseBody::Ok => {
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("kind".into(), Json::str("ok")));
            }
            ResponseBody::Error(e) => {
                fields.push(("ok".into(), Json::Bool(false)));
                let mut err = vec![
                    ("class".to_string(), Json::str(e.class.as_str())),
                    ("retryable".to_string(), Json::Bool(e.retryable)),
                    ("message".to_string(), Json::str(e.message.clone())),
                ];
                if let Some(stats) = &e.stats {
                    err.push(("stats".to_string(), stats_to_json(stats)));
                }
                fields.push(("error".into(), Json::Obj(err)));
            }
        }
        Json::Obj(fields)
    }
}

impl FromJson for Response {
    fn from_json_value(j: &Json) -> Result<Response, JsonError> {
        let id = j.get("id")?.as_u64()?;
        let body = if j.get("ok")?.as_bool()? {
            match j.get("kind")?.as_str()? {
                "spec" => ResponseBody::Spec {
                    entry: j.get("entry")?.as_str()?.to_string(),
                    residual: j.get("residual")?.as_str()?.to_string(),
                    stats: stats_from_json(j.get("stats")?)?,
                    memo_hit: j.get("memo_hit")?.as_bool()?,
                },
                "run" => ResponseBody::Run {
                    entry: j.get("entry")?.as_str()?.to_string(),
                    value: j.get("value")?.as_str()?.to_string(),
                    memo_hit: j.get("memo_hit")?.as_bool()?,
                    compiled_hit: j.get("compiled_hit")?.as_bool()?,
                    instructions: j.get("instructions")?.as_u64()?,
                },
                "health" => ResponseBody::Health {
                    uptime_ms: j.get("uptime_ms")?.as_u64()?,
                    counters: counters_from_json(j.get("counters")?)?,
                },
                "stats" => ResponseBody::Stats {
                    counters: counters_from_json(j.get("counters")?)?,
                },
                "metrics" => ResponseBody::Metrics {
                    text: j.get("text")?.as_str()?.to_string(),
                },
                "ok" => ResponseBody::Ok,
                other => return Err(JsonError(format!("unknown response kind `{other}`"))),
            }
        } else {
            let e = j.get("error")?;
            let class_str = e.get("class")?.as_str()?;
            let class = ErrorClass::parse(class_str)
                .ok_or_else(|| JsonError(format!("unknown error class `{class_str}`")))?;
            ResponseBody::Error(ErrorInfo {
                class,
                retryable: e.get("retryable")?.as_bool()?,
                message: e.get("message")?.as_str()?.to_string(),
                stats: match e.get("stats") {
                    Ok(s) => Some(stats_from_json(s)?),
                    Err(_) => None,
                },
            })
        };
        Ok(Response { id, body })
    }
}

/// What one attempt to read a frame produced.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete line (without the trailing newline).
    Frame(String),
    /// Clean end of stream (client closed the connection).
    Eof,
    /// The line exceeded [`MAX_FRAME_BYTES`]; its bytes were discarded
    /// as they arrived (never buffered past the cap) and the stream is
    /// resynchronised at the newline that ended it.
    TooLong,
    /// The line was not valid UTF-8; the stream is resynchronised at
    /// the next newline.
    BadUtf8,
    /// The stream should be polled again (read timeout expired with an
    /// incomplete line buffered; the [`FrameBuf`] keeps the partial
    /// state).
    Retry,
    /// A hard I/O error; the connection is unusable.
    Io(std::io::Error),
}

/// Cross-call reader state for [`read_frame`]: the partial line
/// accumulated so far, plus whether the reader is currently discarding
/// the remainder of a line that already blew [`MAX_FRAME_BYTES`].
///
/// The discard flag is what keeps an oversized line bounded even when
/// it spans many read timeouts: once the cap is hit the partial bytes
/// are dropped and every further chunk of that line is consumed
/// without buffering, until its newline finally arrives.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    skipping: bool,
}

impl FrameBuf {
    /// An empty reader state.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Whether no partial line is buffered or being discarded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && !self.skipping
    }
}

/// Reads one `\n`-terminated frame, accumulating into `state` across
/// calls so that a read *timeout* (used by the server to poll its
/// shutdown flag) never loses partial bytes: on [`FrameRead::Retry`]
/// call again with the same `state`.
///
/// At most [`MAX_FRAME_BYTES`] of one line are ever buffered: the cap
/// is checked on every chunk the transport delivers, and an over-cap
/// line switches the reader into discard mode until its newline, at
/// which point [`FrameRead::TooLong`] reports the resynchronised
/// stream. A newline-free byte flood therefore costs bounded memory,
/// not an allocation per chunk.
pub fn read_frame(r: &mut impl BufRead, state: &mut FrameBuf) -> FrameRead {
    loop {
        let (newline, chunk_len) = {
            let available = match r.fill_buf() {
                Ok(a) => a,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return FrameRead::Retry;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return FrameRead::Io(e),
            };
            if available.is_empty() {
                // EOF. A final unterminated (or oversized) line is
                // garbage: the sender died mid-write.
                state.buf.clear();
                state.skipping = false;
                return FrameRead::Eof;
            }
            let newline = available.iter().position(|&b| b == b'\n');
            if !state.skipping {
                let end = newline.unwrap_or(available.len());
                state.buf.extend_from_slice(&available[..end]);
            }
            (newline, available.len())
        };
        match newline {
            Some(i) => {
                r.consume(i + 1);
                if state.skipping {
                    // The oversized line finally ended: resynchronised.
                    state.skipping = false;
                    return FrameRead::TooLong;
                }
                if state.buf.last() == Some(&b'\r') {
                    state.buf.pop();
                }
                if state.buf.len() > MAX_FRAME_BYTES {
                    state.buf.clear();
                    return FrameRead::TooLong;
                }
                let frame = std::mem::take(&mut state.buf);
                return match String::from_utf8(frame) {
                    Ok(s) => FrameRead::Frame(s),
                    Err(_) => FrameRead::BadUtf8,
                };
            }
            None => {
                r.consume(chunk_len);
                if state.buf.len() > MAX_FRAME_BYTES {
                    // Over the cap with no end in sight: drop what we
                    // buffered and discard the rest of the line.
                    state.buf.clear();
                    state.skipping = true;
                }
            }
        }
    }
}

/// Parses a division list: `S:<value>,D,P:<n>,…` (empty = no args).
///
/// # Errors
///
/// A description of the first malformed entry.
pub fn parse_division(s: &str) -> Result<Vec<mspec_genext::SpecArg>, String> {
    use mspec_genext::SpecArg;
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|part| {
            let part = part.trim();
            if part == "D" {
                Ok(SpecArg::Dynamic)
            } else if let Some(v) = part.strip_prefix("S:") {
                Ok(SpecArg::Static(parse_value(v)?))
            } else if let Some(n) = part.strip_prefix("P:") {
                n.parse::<usize>()
                    .map(SpecArg::StaticSpine)
                    .map_err(|_| format!("bad spine length `{n}`"))
            } else {
                Err(format!("bad division entry `{part}` (use S:<v>, D or P:<n>)"))
            }
        })
        .collect()
}

/// Parses a comma-separated value list (empty string = no values).
///
/// # Errors
///
/// As [`parse_value`].
pub fn parse_values(s: &str) -> Result<Vec<Value>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|p| parse_value(p.trim())).collect()
}

/// Parses one literal: a natural, `true`/`false`, or `[v;v;…]`.
///
/// # Errors
///
/// A description of the malformed literal.
pub fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::bool_(true));
    }
    if s == "false" {
        return Ok(Value::bool_(false));
    }
    if let Some(inner) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        if inner.trim().is_empty() {
            return Ok(Value::Nil);
        }
        let items = inner.split(';').map(parse_value).collect::<Result<Vec<_>, _>>()?;
        return Ok(Value::list(items));
    }
    s.parse::<u64>()
        .map(Value::nat)
        .map_err(|_| format!("bad value `{s}` (naturals, true/false, [v;…])"))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use mspec_genext::SpecArg;

    #[test]
    fn request_roundtrips() {
        let reqs = vec![
            Request { id: 1, kind: RequestKind::Health },
            Request { id: 2, kind: RequestKind::Stats },
            Request { id: 13, kind: RequestKind::Metrics },
            Request { id: 3, kind: RequestKind::Fault },
            Request { id: 4, kind: RequestKind::Shutdown },
            Request {
                id: 5,
                kind: RequestKind::Spec(SpecRequest {
                    fuel: Some(9),
                    max_spec: Some(3),
                    on_exhaustion: OnExhaustion::Generalise,
                    strategy: Strategy::DepthFirst,
                    deadline_ms: Some(250),
                    ..SpecRequest::inline("module M where\nf x = x\n", "M.f", "S:1,D")
                }),
            },
            Request {
                id: 6,
                kind: RequestKind::Run(RunRequest {
                    spec: SpecRequest::inline("module M where\nf x = x\n", "M.f", "S:1,D"),
                    values: "7".into(),
                    run_fuel: Some(1000),
                }),
            },
            Request {
                id: 7,
                kind: RequestKind::Run(RunRequest {
                    spec: SpecRequest::inline("module M where\nf x = x\n", "M.f", "D"),
                    values: "".into(),
                    run_fuel: None,
                }),
            },
        ];
        for r in reqs {
            let text = r.to_json_compact();
            assert_eq!(Request::from_json_str(&text).unwrap(), r, "{text}");
        }
    }

    #[test]
    fn response_roundtrips() {
        let stats = SpecStats { steps: 42, specialisations: 2, ..SpecStats::default() };
        let rs = vec![
            Response {
                id: 7,
                body: ResponseBody::Spec {
                    entry: "M.f'1".into(),
                    residual: "module M where\nf'1 x = x\n".into(),
                    stats,
                    memo_hit: true,
                },
            },
            Response {
                id: 8,
                body: ResponseBody::Health {
                    uptime_ms: 12,
                    counters: vec![("serve.requests".into(), 3)],
                },
            },
            Response { id: 9, body: ResponseBody::Stats { counters: vec![] } },
            Response {
                id: 13,
                body: ResponseBody::Metrics {
                    text: "# TYPE up gauge\nup 1\n".into(),
                },
            },
            Response { id: 10, body: ResponseBody::Ok },
            Response {
                id: 12,
                body: ResponseBody::Run {
                    entry: "M.f'1".into(),
                    value: "128".into(),
                    memo_hit: true,
                    compiled_hit: false,
                    instructions: 314,
                },
            },
            Response {
                id: 11,
                body: ResponseBody::Error(ErrorInfo::with_stats(
                    ErrorClass::Deadline,
                    "deadline 5ms exceeded",
                    stats,
                )),
            },
        ];
        for r in rs {
            let text = r.to_json_compact();
            assert_eq!(Response::from_json_str(&text).unwrap(), r, "{text}");
        }
    }

    #[test]
    fn retryability_follows_the_taxonomy() {
        assert!(ErrorClass::Overloaded.retryable());
        assert!(ErrorClass::Internal.retryable());
        for terminal in [
            ErrorClass::BadRequest,
            ErrorClass::Compile,
            ErrorClass::NoSuchEntry,
            ErrorClass::Budget,
            ErrorClass::BudgetDenied,
            ErrorClass::Deadline,
            ErrorClass::StaleInterface,
            ErrorClass::Artefact,
            ErrorClass::ShuttingDown,
        ] {
            assert!(!terminal.retryable(), "{terminal}");
        }
    }

    #[test]
    fn error_classes_roundtrip_via_wire_names() {
        for c in [
            ErrorClass::BadRequest,
            ErrorClass::Compile,
            ErrorClass::NoSuchEntry,
            ErrorClass::Budget,
            ErrorClass::BudgetDenied,
            ErrorClass::Deadline,
            ErrorClass::Overloaded,
            ErrorClass::Internal,
            ErrorClass::StaleInterface,
            ErrorClass::Artefact,
            ErrorClass::ShuttingDown,
        ] {
            assert_eq!(ErrorClass::parse(c.as_str()), Some(c));
        }
        assert_eq!(ErrorClass::parse("teapot"), None);
    }

    #[test]
    fn spec_requires_exactly_one_source() {
        let both = r#"{"id":1,"kind":"spec","program":"x","dir":"y","entry":"M.f","args":""}"#;
        assert!(Request::from_json_str(both).is_err());
        let neither = r#"{"id":1,"kind":"spec","entry":"M.f","args":""}"#;
        assert!(Request::from_json_str(neither).is_err());
    }

    #[test]
    fn read_frame_handles_lines_eof_and_crlf() {
        let mut r = std::io::Cursor::new(b"{\"a\":1}\r\nnext\n".to_vec());
        let mut buf = FrameBuf::new();
        let FrameRead::Frame(f1) = read_frame(&mut r, &mut buf) else { panic!() };
        assert_eq!(f1, "{\"a\":1}");
        let FrameRead::Frame(f2) = read_frame(&mut r, &mut buf) else { panic!() };
        assert_eq!(f2, "next");
        assert!(matches!(read_frame(&mut r, &mut buf), FrameRead::Eof));
    }

    #[test]
    fn read_frame_drops_truncated_tail() {
        // No trailing newline: the unterminated frame is discarded (the
        // sender died mid-write), reported as EOF.
        let mut r = std::io::Cursor::new(b"complete\ntrunca".to_vec());
        let mut buf = FrameBuf::new();
        assert!(matches!(read_frame(&mut r, &mut buf), FrameRead::Frame(ref s) if s == "complete"));
        assert!(matches!(read_frame(&mut r, &mut buf), FrameRead::Eof));
        assert!(buf.is_empty());
    }

    #[test]
    fn read_frame_rejects_bad_utf8_and_resyncs() {
        let mut bytes = vec![0xFF, 0xFE, b'\n'];
        bytes.extend_from_slice(b"{\"id\":1,\"kind\":\"health\"}\n");
        let mut r = std::io::Cursor::new(bytes);
        let mut buf = FrameBuf::new();
        assert!(matches!(read_frame(&mut r, &mut buf), FrameRead::BadUtf8));
        assert!(matches!(read_frame(&mut r, &mut buf), FrameRead::Frame(_)));
    }

    #[test]
    fn read_frame_bounds_oversized_lines_and_resyncs() {
        // A line well past the cap, delivered in small transport chunks
        // (the shape of a newline-free byte flood): the reader must
        // flip to discard mode instead of buffering, then resync at the
        // newline and parse the following frame normally.
        let mut bytes = vec![b'x'; MAX_FRAME_BYTES + 64 * 1024];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"{\"id\":1,\"kind\":\"health\"}\n");
        let mut r = std::io::BufReader::with_capacity(8 * 1024, std::io::Cursor::new(bytes));
        let mut buf = FrameBuf::new();
        assert!(matches!(read_frame(&mut r, &mut buf), FrameRead::TooLong));
        assert!(buf.is_empty(), "nothing buffered after resync");
        let FrameRead::Frame(f) = read_frame(&mut r, &mut buf) else { panic!() };
        assert_eq!(f, "{\"id\":1,\"kind\":\"health\"}");
    }

    #[test]
    fn read_frame_discard_mode_survives_eof_mid_line() {
        // Oversized line, then the sender dies with no newline: EOF,
        // with the reader state fully reset.
        let bytes = vec![b'x'; MAX_FRAME_BYTES + 4096];
        let mut r = std::io::BufReader::with_capacity(8 * 1024, std::io::Cursor::new(bytes));
        let mut buf = FrameBuf::new();
        assert!(matches!(read_frame(&mut r, &mut buf), FrameRead::Eof));
        assert!(buf.is_empty());
    }

    #[test]
    fn parses_divisions_and_values() {
        let d = parse_division("S:3,D,P:4").unwrap();
        assert_eq!(d.len(), 3);
        assert!(matches!(d[0], SpecArg::Static(Value::Nat(3))));
        assert!(matches!(d[1], SpecArg::Dynamic));
        assert!(matches!(d[2], SpecArg::StaticSpine(4)));
        assert!(parse_division("X").is_err());
        assert!(parse_division("").unwrap().is_empty());
        assert_eq!(parse_value("[1;2]").unwrap(), Value::list(vec![Value::nat(1), Value::nat(2)]));
        assert!(parse_value("nope").is_err());
    }
}

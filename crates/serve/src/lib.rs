//! Specialisation as a service: the `mspecd` daemon and its client.
//!
//! The paper's generating extensions are built once and *reused* across
//! many specialisation requests — exactly the shape of a resident
//! service. This crate grows the batch pipeline into a long-lived
//! daemon (`mspec serve`) speaking a hand-rolled JSONL protocol over
//! TCP or stdio (one JSON object per line, reusing [`mspec_lang::json`]
//! — zero new dependencies), plus the retrying client behind
//! `mspec client`.
//!
//! The design goal is that *every* failure mode is structured and
//! survivable — a multi-tenant server must degrade gracefully, never
//! die or stall:
//!
//! * **panic containment** — each request runs under `catch_unwind` on
//!   a worker thread; a panicking request becomes a typed
//!   `internal` error reply, never a dead server ([`server`]);
//! * **admission control** — every connection carries a fuel account
//!   ([`ServeConfig::client_fuel`]); a request whose budget does not
//!   fit the account's remainder is refused up front
//!   (`budget-denied`), so one pathological client cannot starve the
//!   rest ([`server`]);
//! * **load shedding** — requests queue in a *bounded* queue
//!   ([`queue`]); when it is full the server answers `overloaded`
//!   (retryable, the HTTP 503 of this protocol) immediately instead of
//!   growing latency without bound;
//! * **deadlines** — each request gets a wall-clock deadline; a
//!   watchdog thread fires the engine's [`mspec_genext::CancelToken`]
//!   and the reply is a structured `deadline` error carrying
//!   partial-progress stats ([`server`]);
//! * **observability** — every admitted request is tagged with a
//!   stable trace id ([`request_trace_id`]) that every `--trace` event
//!   carries, a read-only `metrics` request answers with a
//!   Prometheus-style exposition without queueing behind spec work, and
//!   an always-on flight ring of recent events is dumped to a
//!   `crash-<pid>-<seq>.jsonl` file when a worker panics ([`server`]);
//! * **resident state** — compiled generating extensions, linked `.gx`
//!   artefact sets (revalidated against their `.bti` interface
//!   fingerprints on every reuse) and a cross-request memo of finished
//!   specialisations stay warm between requests ([`resident`]).
//!
//! The protocol frames, the error taxonomy (retryable vs terminal
//! classes) and the shedding policy are documented in [`proto`] and in
//! DESIGN.md §"Service model".

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod config;
pub mod proto;
pub mod queue;
pub mod resident;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use config::{KnobOrigin, ServeConfig, ServeConfigError, ServeKnob};
pub use proto::{
    parse_division, parse_value, parse_values, ErrorClass, ErrorInfo, Request, RequestKind,
    Response, ResponseBody, RunRequest, SpecRequest,
};
pub use queue::{BoundedQueue, PushError};
pub use resident::{Resident, ResidentStats, RunOutcome, SpecOutcome};
pub use server::{request_trace_id, Server, ServerStats, TcpHandle};

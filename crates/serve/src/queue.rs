//! A bounded MPMC queue — the admission edge of the server.
//!
//! `try_push` never blocks: a full queue is an *immediate* `overloaded`
//! reply to the client (load shedding), which is what keeps tail
//! latency bounded under overload — queued work is work the server has
//! promised to do within its deadline.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity: shed the request.
    Full,
    /// The queue is closed: the server is shutting down.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Items popped but not yet marked done via
    /// [`BoundedQueue::task_done`]. Incremented under the queue lock at
    /// pop time, so there is no window in which an item has left the
    /// queue but [`BoundedQueue::is_idle`] reports idle.
    in_flight: usize,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false, in_flight: 0 }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (shed the request),
    /// [`PushError::Closed`] after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    /// Parks with a bounded timeout, so a lost wakeup costs one period,
    /// never a hang (same discipline as `mspec-sched`).
    ///
    /// A popped item counts as *in flight* until the consumer calls
    /// [`BoundedQueue::task_done`]; [`BoundedQueue::is_idle`] stays
    /// false in between.
    pub fn pop(&self) -> Option<T> {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.in_flight += 1;
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.nonempty.wait_timeout(inner, Duration::from_millis(50)) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail,
    /// and poppers return `None` once empty.
    pub fn close(&self) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.closed = true;
        drop(inner);
        self.nonempty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.items.len(),
            Err(poisoned) => poisoned.into_inner().items.len(),
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks one previously popped item as fully processed.
    pub fn task_done(&self) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.in_flight = inner.in_flight.saturating_sub(1);
    }

    /// Items popped but not yet marked done — requests currently being
    /// executed by workers.
    pub fn in_flight(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.in_flight,
            Err(poisoned) => poisoned.into_inner().in_flight,
        }
    }

    /// Whether the queue is empty *and* no popped item is still being
    /// processed. Both facts are read under one lock, so a consumer
    /// that has popped the final item can never be missed — this is
    /// what the server's deadline watchdog keys its exit on.
    pub fn is_idle(&self) -> bool {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.items.is_empty() && inner.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn popped_items_stay_in_flight_until_done() {
        let q = BoundedQueue::new(2);
        assert!(q.is_idle());
        q.try_push(1).unwrap();
        assert!(!q.is_idle());
        assert_eq!(q.pop(), Some(1));
        // Queue drained, but the item is still being processed.
        assert!(q.is_empty());
        assert!(!q.is_idle());
        assert_eq!(q.in_flight(), 1);
        q.task_done();
        assert!(q.is_idle());
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn wakes_a_blocked_popper() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(handle.join().unwrap(), Some(7));
    }
}

//! Resident state: what stays warm between requests.
//!
//! The paper's economics are "build the generating extension once,
//! specialise many times" — a daemon realises them only if the built
//! artefacts actually survive between requests. Three caches do:
//!
//! * **programs** — inline source compiled through the full pipeline
//!   (parse → resolve → infer → BTA → cogen), keyed by the FNV-1a hash
//!   of the source text;
//! * **artefact sets** — `.gx` directories linked with
//!   [`mspec_cogen::link_dir`], keyed by directory path and
//!   *revalidated on every reuse* against the `.bti` interface
//!   fingerprints recorded at link time: a changed interface forces a
//!   re-link (which itself re-checks the genexts and can fail
//!   `stale-interface`), so the daemon never serves residual code
//!   linked against an interface that has since changed on disk;
//! * **memo** — finished specialisations keyed by
//!   (program *identity*, entry, args, budget, strategy), so a repeated
//!   request is answered without running the engine at all
//!   (`memo_hit: true` in the reply). The identity component is the
//!   source hash for inline programs and the linked interface
//!   fingerprints for artefact directories — and the memo is consulted
//!   only *after* the program loads and revalidates, so a `.bti`
//!   change on disk invalidates memoised residuals exactly when it
//!   forces a re-link;
//! * **compiled residuals** — for `run` requests, the residual's
//!   bytecode (optionally superinstruction-fused, see
//!   [`mspec_lang::fuse`]), keyed by `(vm-opt, memo key)`. A warm `run`
//!   request therefore skips parse, resolve, compile *and* fusion and
//!   goes straight to VM dispatch; and because the key embeds the memo
//!   identity, compiled code is invalidated exactly when the memoised
//!   residual is.
//!
//! Each cache is **bounded** ([`ResidentOptions::memo_cap`], the
//! `--memo-cap` knob): past the cap the oldest-inserted entry is
//! evicted (counted in `serve.cache.evictions`), so a daemon fed an
//! endless stream of distinct requests holds steady instead of growing
//! without bound. Below the in-memory tiers sits an optional
//! **persistent disk cache** ([`mspec_cache::DiskCache`], the
//! `--cache-dir` knob): memo misses probe it and finished residuals are
//! stored to it, so a *restarted* daemon — or a CLI run sharing the
//! directory — answers warm (`memo_hit: true`) without running the
//! engine. Keys are derived in `mspec-cache` (identical to the memo's),
//! so staleness is the same story: the key embeds the interface
//! identity, and entries for superseded interfaces are simply
//! unreachable.

use crate::proto::{parse_division, parse_values, ErrorClass, ErrorInfo, RunRequest, SpecRequest};
use mspec_bta::analyse::analyse_program_with;
use mspec_cache::{
    bti_files, dir_source_key, inline_source_key, interfaces_identity, spec_key, CacheEntry,
    DiskCache,
};
use mspec_cogen::compile::compile_program;
use mspec_cogen::{bti_fingerprint, fnv64, link_dir, CogenError};
use mspec_genext::{
    CancelToken, Engine, EngineOptions, GenProgram, SpecBudget, SpecError, SpecStats,
};
use mspec_lang::ast::QualName;
use mspec_lang::bytecode::{compile as compile_bytecode, BcProgram};
use mspec_lang::eval::{EvalError, DEFAULT_FUEL};
use mspec_lang::fuse::fuse;
use mspec_lang::parser::parse_program;
use mspec_lang::pretty::pretty_program;
use mspec_lang::resolve::resolve;
use mspec_lang::vm::{Vm, VmOpt};
use mspec_telemetry::Recorder;
use mspec_types::infer_program;
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A successfully executed (or memoised) specialisation.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// Residual entry function, `Module.function`.
    pub entry: String,
    /// Residual program concrete syntax (byte-identical to the
    /// sequential CLI path: both are [`pretty_program`] of the engine's
    /// residual). Rendered exactly once, when the engine run finishes;
    /// shared behind an `Arc` so a memo hit costs a refcount bump, not
    /// a copy of the source text.
    pub residual: Arc<str>,
    /// Engine counters (the original run's, for a memo hit).
    pub stats: SpecStats,
    /// Whether the cross-request memo answered.
    pub memo_hit: bool,
}

/// A successfully executed residual run (`run` requests).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Residual entry function, `Module.function`.
    pub entry: String,
    /// The computed value, rendered with `Value`'s `Display`.
    pub value: String,
    /// Whether the specialisation was answered by the memo.
    pub memo_hit: bool,
    /// Whether the compiled bytecode was answered by the resident
    /// compiled-program cache.
    pub compiled_hit: bool,
    /// Fuel-charging VM instructions the run executed.
    pub instructions: u64,
    /// The specialisation stage's engine counters (the original run's,
    /// for a memo hit) — not on the wire, but the server refunds unused
    /// admission fuel from them exactly as for `spec` replies.
    pub spec_stats: SpecStats,
}

/// A residual compiled to (optionally fused) bytecode, resident across
/// requests. Keyed by the same memo identity as the specialisation that
/// produced it, so a `.bti` change invalidates residual *executions*
/// exactly when it invalidates residual *source*.
struct CompiledResidual {
    entry: QualName,
    bc: Arc<BcProgram>,
}

/// A linked artefact directory plus the interface fingerprints it was
/// linked against.
struct ArtefactSet {
    gen: Arc<GenProgram>,
    /// `(path, fingerprint)` for every `.bti` present at link time.
    interfaces: Vec<(PathBuf, u64)>,
    /// Hash of `interfaces` — the set's identity in memo keys, so a
    /// re-link against changed interfaces orphans the old entries.
    identity: u64,
}

/// Counters describing cache behaviour, surfaced via `stats` replies.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResidentStats {
    /// Inline programs compiled (cache misses).
    pub programs_built: u64,
    /// Inline-program cache hits.
    pub program_hits: u64,
    /// Artefact directories (re)linked.
    pub artefact_links: u64,
    /// Artefact reuses whose fingerprints revalidated clean.
    pub artefact_revalidations: u64,
    /// Cross-request memo hits.
    pub memo_hits: u64,
    /// Residuals compiled to bytecode (`run` cache misses).
    pub residuals_compiled: u64,
    /// Compiled-residual cache hits (`run` requests that skipped
    /// straight to dispatch).
    pub compiled_hits: u64,
    /// Entries evicted from any resident cache at its `--memo-cap`.
    pub evictions: u64,
    /// Specialisations answered by the on-disk residual cache
    /// (`--cache-dir`) — warm-restart memo hits.
    pub disk_hits: u64,
    /// Finished residuals persisted to the on-disk cache.
    pub disk_stores: u64,
}

/// A FIFO-bounded map: at most `cap` live entries, oldest-inserted
/// evicted first. Re-inserting an existing key refreshes its value but
/// not its age; `remove`/`retain` leave stale order slots behind, which
/// the eviction loop skips (each is visited at most once, so the order
/// queue cannot grow past inserts).
struct Bounded<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: Hash + Eq + Clone, V> Bounded<K, V> {
    fn new(cap: usize) -> Bounded<K, V> {
        Bounded { map: HashMap::new(), order: VecDeque::new(), cap: cap.max(1) }
    }

    fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(k)
    }

    /// Inserts, evicting oldest entries past the cap. Returns how many
    /// entries were evicted (0 or 1 in steady state).
    fn insert(&mut self, k: K, v: V) -> u64 {
        if self.map.insert(k.clone(), v).is_none() {
            self.order.push_back(k);
        }
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let Some(old) = self.order.pop_front() else { break };
            if self.map.remove(&old).is_some() {
                evicted += 1;
            }
        }
        evicted
    }

    fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.remove(k)
    }

    fn retain(&mut self, f: impl FnMut(&K, &mut V) -> bool) {
        self.map.retain(f);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// Construction options for [`Resident`].
#[derive(Debug, Clone)]
pub struct ResidentOptions {
    /// Entry cap applied to each resident cache (programs, artefact
    /// sets, memo, compiled residuals); oldest entries are evicted
    /// first. The `--memo-cap` serve knob.
    pub memo_cap: usize,
    /// Optional persistent residual cache (`--cache-dir`): memo misses
    /// probe it, finished specialisations are stored to it, so a
    /// restarted daemon pointed at the same directory answers warm.
    pub disk: Option<DiskCache>,
}

impl Default for ResidentOptions {
    fn default() -> ResidentOptions {
        ResidentOptions { memo_cap: 1024, disk: None }
    }
}

/// The resident cache shared by all workers.
pub struct Resident {
    programs: Mutex<Bounded<u64, Arc<GenProgram>>>,
    artefacts: Mutex<Bounded<String, Arc<ArtefactSet>>>,
    memo: Mutex<Bounded<String, SpecOutcome>>,
    compiled: Mutex<Bounded<String, Arc<CompiledResidual>>>,
    disk: Option<DiskCache>,
    stats: Mutex<ResidentStats>,
}

impl Default for Resident {
    fn default() -> Resident {
        Resident::new()
    }
}

impl Resident {
    /// An empty cache with default options.
    pub fn new() -> Resident {
        Resident::with_options(ResidentOptions::default())
    }

    /// An empty cache with an explicit entry cap and optional
    /// persistent disk tier.
    pub fn with_options(opts: ResidentOptions) -> Resident {
        Resident {
            programs: Mutex::new(Bounded::new(opts.memo_cap)),
            artefacts: Mutex::new(Bounded::new(opts.memo_cap)),
            memo: Mutex::new(Bounded::new(opts.memo_cap)),
            compiled: Mutex::new(Bounded::new(opts.memo_cap)),
            disk: opts.disk,
            stats: Mutex::new(ResidentStats::default()),
        }
    }

    fn note_evictions(&self, n: u64, rec: &Recorder) {
        if n > 0 {
            lock(&self.stats).evictions += n;
            rec.count("serve.cache.evictions", n);
        }
    }

    /// Cache-behaviour counters.
    pub fn stats(&self) -> ResidentStats {
        *lock(&self.stats)
    }

    /// Current entry counts of each resident cache tier, in a fixed
    /// order: `(programs, artefact sets, memo, compiled residuals)`.
    /// Cheap (four lock/len pairs) — health and metrics replies call
    /// this on the connection thread.
    pub fn cache_sizes(&self) -> (usize, usize, usize, usize) {
        (
            lock(&self.programs).map.len(),
            lock(&self.artefacts).map.len(),
            lock(&self.memo).map.len(),
            lock(&self.compiled).map.len(),
        )
    }

    /// Executes one specialisation request against the resident caches.
    /// `cancel` is polled by the engine every
    /// [`CancelToken::CHECK_MASK`]`+1` steps — the deadline watchdog's
    /// hook into the run.
    ///
    /// # Errors
    ///
    /// A typed [`ErrorInfo`] for every failure mode; `deadline` and
    /// `budget` errors carry the partial-progress engine counters.
    pub fn execute_spec(
        &self,
        req: &SpecRequest,
        cancel: CancelToken,
        rec: &Recorder,
    ) -> Result<SpecOutcome, ErrorInfo> {
        self.execute_spec_keyed(req, cancel, rec).map(|(outcome, _)| outcome)
    }

    /// [`Resident::execute_spec`] plus the memo key the outcome was
    /// stored (or found) under — the identity the compiled-residual
    /// cache reuses so residual *executions* are invalidated exactly
    /// when residual *source* is.
    fn execute_spec_keyed(
        &self,
        req: &SpecRequest,
        cancel: CancelToken,
        rec: &Recorder,
    ) -> Result<(SpecOutcome, String), ErrorInfo> {
        let args = parse_division(&req.args)
            .map_err(|e| ErrorInfo::new(ErrorClass::BadRequest, format!("bad args: {e}")))?;
        // Load (and for artefact dirs, revalidate) *before* the memo
        // lookup: the memo key carries the loaded program's identity,
        // so a stale memo entry can never shadow a changed artefact.
        let (gen, source_key) = self.load_program(req, rec)?;
        let memo_key = memo_key(req, &source_key);
        if let Some(hit) = lock(&self.memo).get(memo_key.as_str()) {
            lock(&self.stats).memo_hits += 1;
            // `residual` is an `Arc<str>`: this clone is a refcount
            // bump, not a copy of the rendered source.
            let outcome = SpecOutcome { memo_hit: true, ..hit.clone() };
            return Ok((outcome, memo_key));
        }
        // Persistent tier: a finished residual stored by an earlier
        // process (CLI run or pre-restart daemon) under the same key.
        // Safe to serve for the same reason the memo is — the program
        // already loaded and revalidated above, and the key embeds its
        // identity. Corrupt or torn entries read as `None` (a miss) and
        // are rewritten below.
        if let Some(disk) = &self.disk {
            if let Some(hit) = disk.get(&memo_key) {
                let outcome = SpecOutcome {
                    entry: hit.entry,
                    residual: hit.residual.into(),
                    stats: hit.stats,
                    memo_hit: false,
                };
                let evicted = lock(&self.memo).insert(memo_key.clone(), outcome.clone());
                self.note_evictions(evicted, rec);
                lock(&self.stats).disk_hits += 1;
                rec.count("serve.cache.disk_hits", 1);
                return Ok((SpecOutcome { memo_hit: true, ..outcome }, memo_key));
            }
        }

        let (module, function) = req.entry.split_once('.').ok_or_else(|| {
            ErrorInfo::new(
                ErrorClass::BadRequest,
                format!("entry `{}` is not of the form Module.function", req.entry),
            )
        })?;
        let entry = QualName::new(module, function);
        if gen.function(&entry).is_none() {
            return Err(ErrorInfo::new(
                ErrorClass::NoSuchEntry,
                format!("no function `{}` in the program", req.entry),
            ));
        }

        let mut budget = SpecBudget::default();
        if let Some(fuel) = req.fuel {
            budget.steps = fuel;
        }
        if let Some(m) = req.max_spec {
            budget.max_specialisations = m;
        }
        let options = EngineOptions {
            strategy: req.strategy,
            budget,
            on_exhaustion: req.on_exhaustion,
            ..EngineOptions::default()
        };

        let mut engine = Engine::with_recorder(&gen, options, rec.clone());
        engine.set_cancel_token(cancel);
        match engine.specialise(&entry, args) {
            Ok(residual) => {
                let outcome = SpecOutcome {
                    entry: format!("{}", residual.entry),
                    residual: pretty_program(&residual.program).into(),
                    stats: *engine.stats(),
                    memo_hit: false,
                };
                let evicted = lock(&self.memo).insert(memo_key.clone(), outcome.clone());
                self.note_evictions(evicted, rec);
                if let Some(disk) = &self.disk {
                    let entry = CacheEntry {
                        key: memo_key.clone(),
                        entry: outcome.entry.clone(),
                        residual: outcome.residual.to_string(),
                        stats: outcome.stats,
                    };
                    // A failed store is not a request failure: the
                    // cache is an accelerator, the residual is in hand.
                    if disk.put(&entry).is_ok() {
                        lock(&self.stats).disk_stores += 1;
                        rec.count("serve.cache.disk_stores", 1);
                    }
                }
                Ok((outcome, memo_key))
            }
            Err(e) => Err(spec_error_info(e, *engine.stats())),
        }
    }

    /// Executes a `run` request: specialise (through the memo), compile
    /// the residual to bytecode (through the compiled-residual cache),
    /// then run it on the VM. With [`VmOpt::Fuse`] the bytecode goes
    /// through the superinstruction pass before caching, so every warm
    /// request skips straight to fused dispatch.
    ///
    /// The VM has no cancellation hook; the run itself is bounded by
    /// its fuel budget (`run_fuel`, default [`DEFAULT_FUEL`]) rather
    /// than by `cancel`, which covers the specialisation stage only.
    ///
    /// # Errors
    ///
    /// Everything [`Resident::execute_spec`] can fail with, plus
    /// `bad-request` for malformed values or a residual evaluation
    /// error and `budget` when the run exhausts its fuel.
    pub fn execute_run(
        &self,
        req: &RunRequest,
        cancel: CancelToken,
        rec: &Recorder,
        opt: VmOpt,
    ) -> Result<RunOutcome, ErrorInfo> {
        let values = parse_values(&req.values)
            .map_err(|e| ErrorInfo::new(ErrorClass::BadRequest, format!("bad values: {e}")))?;
        let (outcome, memo_key) = self.execute_spec_keyed(&req.spec, cancel, rec)?;
        // Unfused and fused programs are distinct residents: a daemon
        // restarted with another `--vm-opt` must not serve stale tiers.
        let compiled_key = format!("{}|{memo_key}", opt.name());
        let cached = lock(&self.compiled).get(compiled_key.as_str()).cloned();
        let (compiled, compiled_hit) = match cached {
            Some(c) => {
                lock(&self.stats).compiled_hits += 1;
                rec.count("serve.run.compiled_hits", 1);
                (c, true)
            }
            None => {
                let c = {
                    let _span = rec.span("serve.run.compile");
                    Arc::new(compile_residual(&outcome, opt, rec)?)
                };
                lock(&self.stats).residuals_compiled += 1;
                let evicted = lock(&self.compiled).insert(compiled_key, Arc::clone(&c));
                self.note_evictions(evicted, rec);
                (c, false)
            }
        };
        let fuel = req.run_fuel.unwrap_or(DEFAULT_FUEL);
        let mut vm = Vm::with_fuel(&compiled.bc, fuel);
        match vm.call(&compiled.entry, values) {
            Ok(v) => Ok(RunOutcome {
                entry: outcome.entry.clone(),
                value: format!("{v}"),
                memo_hit: outcome.memo_hit,
                compiled_hit,
                instructions: vm.stats().instructions,
                spec_stats: outcome.stats,
            }),
            Err(EvalError::FuelExhausted) => Err(ErrorInfo::new(
                ErrorClass::Budget,
                format!("residual run exhausted its fuel budget of {fuel}"),
            )),
            Err(e) => Err(ErrorInfo::new(
                ErrorClass::BadRequest,
                format!("residual run failed: {e}"),
            )),
        }
    }

    /// Evicts everything (used by tests to measure cold-path cost).
    pub fn clear(&self) {
        lock(&self.programs).clear();
        lock(&self.artefacts).clear();
        lock(&self.memo).clear();
        lock(&self.compiled).clear();
    }

    /// Loads the requested program and returns it together with its
    /// memo identity: `src:<hash>` for inline source, `dir:<path>@<fp>`
    /// for artefact directories (where `<fp>` hashes the interface
    /// fingerprints the set was linked against).
    fn load_program(
        &self,
        req: &SpecRequest,
        rec: &Recorder,
    ) -> Result<(Arc<GenProgram>, String), ErrorInfo> {
        if let Some(src) = &req.program {
            let gen = self.load_inline(src, rec)?;
            return Ok((gen, inline_source_key(src)));
        }
        if let Some(dir) = &req.dir {
            return self.load_artefacts(dir, rec);
        }
        Err(ErrorInfo::new(
            ErrorClass::BadRequest,
            "spec needs exactly one of `program` or `dir`",
        ))
    }

    fn load_inline(&self, src: &str, rec: &Recorder) -> Result<Arc<GenProgram>, ErrorInfo> {
        let key = fnv64(src.as_bytes());
        if let Some(gen) = lock(&self.programs).get(&key) {
            lock(&self.stats).program_hits += 1;
            return Ok(Arc::clone(gen));
        }
        let _span = rec.span("serve.compile");
        let gen = build_inline(src)
            .map_err(|msg| ErrorInfo::new(ErrorClass::Compile, msg))?;
        let gen = Arc::new(gen);
        lock(&self.stats).programs_built += 1;
        let evicted = lock(&self.programs).insert(key, Arc::clone(&gen));
        self.note_evictions(evicted, rec);
        Ok(gen)
    }

    fn load_artefacts(
        &self,
        dir: &str,
        rec: &Recorder,
    ) -> Result<(Arc<GenProgram>, String), ErrorInfo> {
        // Bind the cached set outside the `if let`: a guard temporary
        // in the scrutinee would stay locked for the whole block and
        // self-deadlock on the `remove` below.
        let cached = lock(&self.artefacts).get(dir).cloned();
        if let Some(set) = cached {
            if self.revalidate(&set) {
                lock(&self.stats).artefact_revalidations += 1;
                return Ok((Arc::clone(&set.gen), dir_source_key(dir, set.identity)));
            }
            // An interface changed underneath us: drop and re-link, and
            // purge memoised residuals for every earlier version of
            // this directory (their keys can never match again, so
            // keeping them would only leak).
            lock(&self.artefacts).remove(dir);
            let stale_prefix = format!("dir:{dir}@");
            lock(&self.memo).retain(|k, _| !k.starts_with(&stale_prefix));
        }
        let gen = link_dir(dir).map_err(cogen_error_info)?;
        let interfaces: Vec<(PathBuf, u64)> = bti_files(dir)
            .into_iter()
            .filter_map(|p| bti_fingerprint(&p).ok().map(|fp| (p, fp)))
            .collect();
        let identity = interfaces_identity(&interfaces);
        let set = Arc::new(ArtefactSet { gen: Arc::new(gen), interfaces, identity });
        lock(&self.stats).artefact_links += 1;
        let evicted = lock(&self.artefacts).insert(dir.to_string(), Arc::clone(&set));
        self.note_evictions(evicted, rec);
        Ok((Arc::clone(&set.gen), dir_source_key(dir, identity)))
    }

    /// `true` when every interface fingerprint recorded at link time
    /// still matches the `.bti` on disk (and no interface appeared or
    /// vanished).
    fn revalidate(&self, set: &ArtefactSet) -> bool {
        set.interfaces
            .iter()
            .all(|(path, fp)| bti_fingerprint(path).is_ok_and(|now| now == *fp))
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The memo key of one request, derived in `mspec-cache` so the CLI's
/// persistent cache and the daemon's memo address the same entries.
fn memo_key(req: &SpecRequest, source: &str) -> String {
    spec_key(
        source,
        &req.entry,
        &req.args,
        req.fuel,
        req.max_spec,
        req.on_exhaustion,
        req.strategy,
    )
}

/// Compiles a specialisation outcome's rendered residual to bytecode,
/// fusing superinstructions when `opt` asks for it (and emitting the
/// `vm.fused_*` and `vm.tier_up` counters on that path).
///
/// The residual text is our own pretty-printer's output, so parse or
/// resolve failures here are server bugs, not client errors — they map
/// to `internal`.
fn compile_residual(
    outcome: &SpecOutcome,
    opt: VmOpt,
    rec: &Recorder,
) -> Result<CompiledResidual, ErrorInfo> {
    fn internal<E: std::fmt::Display>(stage: &'static str) -> impl Fn(E) -> ErrorInfo {
        move |e| ErrorInfo::new(ErrorClass::Internal, format!("residual {stage} failed: {e}"))
    }
    let (module, function) = outcome.entry.split_once('.').ok_or_else(|| {
        ErrorInfo::new(
            ErrorClass::Internal,
            format!("residual entry `{}` is not of the form Module.function", outcome.entry),
        )
    })?;
    let entry = QualName::new(module, function);
    let program = parse_program(&outcome.residual).map_err(internal("parse"))?;
    let resolved = resolve(program).map_err(internal("resolve"))?;
    let bc = compile_bytecode(&resolved).map_err(internal("compile"))?;
    let bc = match opt {
        VmOpt::None => bc,
        VmOpt::Fuse => {
            let (fused, stats) = fuse(&bc);
            for (name, n) in stats.pairs() {
                rec.count(name, n);
            }
            rec.count("vm.tier_up", 1);
            fused
        }
    };
    Ok(CompiledResidual { entry, bc: Arc::new(bc) })
}

/// The full sequential build pipeline, stage for stage the same calls
/// as `mspec-core`'s `Pipeline::from_program_with` — which is what
/// keeps daemon residuals byte-identical to `mspec spec` output.
fn build_inline(src: &str) -> Result<GenProgram, String> {
    let program = parse_program(src).map_err(|e| format!("parse: {e}"))?;
    let resolved = resolve(program).map_err(|e| format!("resolve: {e}"))?;
    infer_program(&resolved).map_err(|e| format!("types: {e}"))?;
    let ann = analyse_program_with(&resolved, &BTreeSet::new()).map_err(|e| format!("bta: {e}"))?;
    compile_program(&ann).map_err(|e| format!("cogen: {e}"))
}

fn spec_error_info(e: SpecError, stats: SpecStats) -> ErrorInfo {
    match e {
        SpecError::Cancelled { witness, steps } => ErrorInfo::with_stats(
            ErrorClass::Deadline,
            format!("cancelled at `{witness}` after {steps} steps"),
            stats,
        ),
        SpecError::BudgetExhausted { .. } => {
            ErrorInfo::with_stats(ErrorClass::Budget, format!("{e}"), stats)
        }
        SpecError::UnknownEntry(q) => {
            ErrorInfo::new(ErrorClass::NoSuchEntry, format!("no function `{q}` in the program"))
        }
        other => ErrorInfo::new(ErrorClass::Compile, format!("specialisation failed: {other}")),
    }
}

fn cogen_error_info(e: CogenError) -> ErrorInfo {
    match e {
        CogenError::StaleInterface { module, import } => ErrorInfo::new(
            ErrorClass::StaleInterface,
            format!(
                "genext for `{}` was generated against an older interface of `{}`; rebuild",
                module.as_str(),
                import.as_str()
            ),
        ),
        other => ErrorInfo::new(ErrorClass::Artefact, format!("artefact load failed: {other}")),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    const POWER: &str =
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

    fn spec_req(entry: &str, args: &str) -> SpecRequest {
        SpecRequest::inline(POWER, entry, args)
    }

    #[test]
    fn specialises_and_memoises() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        let req = spec_req("Power.power", "S:3,D");
        let first = r.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(!first.memo_hit);
        assert!(first.residual.contains("x * (x * x)"), "{}", first.residual);
        let second = r.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(second.memo_hit);
        assert_eq!(first.residual, second.residual);
        assert_eq!(r.stats().memo_hits, 1);
        assert_eq!(r.stats().programs_built, 1);
    }

    #[test]
    fn program_cache_hits_across_distinct_requests() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        r.execute_spec(&spec_req("Power.power", "S:2,D"), CancelToken::new(), &rec).unwrap();
        r.execute_spec(&spec_req("Power.power", "S:3,D"), CancelToken::new(), &rec).unwrap();
        let s = r.stats();
        assert_eq!(s.programs_built, 1);
        assert_eq!(s.program_hits, 1);
        assert_eq!(s.memo_hits, 0);
    }

    #[test]
    fn dir_memo_is_invalidated_when_interfaces_change() {
        use mspec_cogen::files::cogen_module;

        let dir = std::env::temp_dir().join(format!("mspec-serve-memo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cogen = |src: &str| {
            let rp = resolve(parse_program(src).unwrap()).unwrap();
            let m = rp.program().modules[0].clone();
            cogen_module(&m, &dir, &BTreeSet::new()).unwrap()
        };
        let out1 = cogen("module M where\nf x = x + 1\n");
        let fp1 = bti_fingerprint(&out1.bti).unwrap();

        let r = Resident::new();
        let rec = Recorder::disabled();
        let req = SpecRequest {
            program: None,
            dir: Some(dir.to_string_lossy().into_owned()),
            ..SpecRequest::inline("", "M.f", "D")
        };
        let first = r.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(!first.memo_hit);
        assert!(first.residual.contains("x + 1"), "{}", first.residual);
        let second = r.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(second.memo_hit, "unchanged artefacts serve from the memo");

        // Re-cogen with a changed interface (and a changed body for
        // the entry): the identical request must be answered from the
        // fresh artefacts, not the pre-change memo entry.
        let out2 = cogen("module M where\nf x = x + 2\ng y = y\n");
        let fp2 = bti_fingerprint(&out2.bti).unwrap();
        assert_ne!(fp1, fp2, "interface change must alter the fingerprint");
        let third = r.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(!third.memo_hit, "memo must not survive an artefact change");
        assert!(third.residual.contains("x + 2"), "{}", third.residual);
        assert_eq!(r.stats().artefact_links, 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_executes_and_caches_compiled_residuals() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        let req = RunRequest {
            spec: spec_req("Power.power", "S:5,D"),
            values: "3".to_string(),
            run_fuel: None,
        };
        for opt in [VmOpt::None, VmOpt::Fuse] {
            r.clear();
            let cold = r.execute_run(&req, CancelToken::new(), &rec, opt).unwrap();
            assert_eq!(cold.value, "243", "3^5 under {opt}");
            assert!(!cold.compiled_hit);
            assert!(cold.instructions > 0);
            let warm = r.execute_run(&req, CancelToken::new(), &rec, opt).unwrap();
            assert_eq!(warm.value, "243");
            assert!(warm.memo_hit, "spec answered from the memo");
            assert!(warm.compiled_hit, "bytecode answered from the compiled cache");
            assert_eq!(
                warm.instructions, cold.instructions,
                "cached and fresh bytecode run the same instruction count"
            );
        }
    }

    #[test]
    fn fused_and_unfused_runs_agree_on_value_and_fuel() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        let req = RunRequest {
            spec: spec_req("Power.power", "S:8,D"),
            values: "2".to_string(),
            run_fuel: None,
        };
        let plain = r.execute_run(&req, CancelToken::new(), &rec, VmOpt::None).unwrap();
        let fused = r.execute_run(&req, CancelToken::new(), &rec, VmOpt::Fuse).unwrap();
        assert_eq!(plain.value, "256");
        assert_eq!(fused.value, plain.value);
        assert_eq!(fused.instructions, plain.instructions, "fusion preserves the fuel contract");
        // Distinct vm-opts are distinct cache entries, not hits.
        assert!(!fused.compiled_hit);
        assert_eq!(r.stats().residuals_compiled, 2);
    }

    #[test]
    fn run_maps_fuel_exhaustion_to_budget_and_bad_values_to_bad_request() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        let starved = RunRequest {
            spec: spec_req("Power.power", "S:6,D"),
            values: "2".to_string(),
            run_fuel: Some(1),
        };
        let e = r.execute_run(&starved, CancelToken::new(), &rec, VmOpt::Fuse).unwrap_err();
        assert_eq!(e.class, ErrorClass::Budget);
        let malformed = RunRequest {
            spec: spec_req("Power.power", "S:6,D"),
            values: "2,oops".to_string(),
            run_fuel: None,
        };
        let e = r.execute_run(&malformed, CancelToken::new(), &rec, VmOpt::None).unwrap_err();
        assert_eq!(e.class, ErrorClass::BadRequest);
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        let e = r
            .execute_spec(&spec_req("Power.ghost", "S:3,D"), CancelToken::new(), &rec)
            .unwrap_err();
        assert_eq!(e.class, ErrorClass::NoSuchEntry);
        let e = r
            .execute_spec(&spec_req("nodots", "S:3,D"), CancelToken::new(), &rec)
            .unwrap_err();
        assert_eq!(e.class, ErrorClass::BadRequest);
        let e = r
            .execute_spec(&spec_req("Power.power", "Q:9"), CancelToken::new(), &rec)
            .unwrap_err();
        assert_eq!(e.class, ErrorClass::BadRequest);
        let e = r
            .execute_spec(
                &SpecRequest::inline("module Broken where\nf x = y\n", "Broken.f", "D"),
                CancelToken::new(),
                &rec,
            )
            .unwrap_err();
        assert_eq!(e.class, ErrorClass::Compile);
        assert!(!e.retryable);
    }

    #[test]
    fn cancelled_runs_report_deadline_with_partial_stats() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        // Pre-cancelled token: the engine notices at the first check.
        let token = CancelToken::new();
        token.cancel();
        // A deep static unfold chain guarantees the run reaches the
        // engine's first cancellation check (every 1024 steps).
        let req = SpecRequest {
            fuel: Some(u64::MAX),
            ..spec_req("Power.power", "S:2000,D")
        };
        let e = r.execute_spec(&req, token, &rec).unwrap_err();
        assert_eq!(e.class, ErrorClass::Deadline);
        assert!(!e.retryable);
        let stats = e.stats.expect("partial stats");
        assert!(stats.steps > 0);
    }

    #[test]
    fn memo_cap_bounds_the_cache_and_counts_evictions() {
        let r = Resident::with_options(ResidentOptions { memo_cap: 2, disk: None });
        let rec = Recorder::disabled();
        for n in 2..=5 {
            let req = spec_req("Power.power", &format!("S:{n},D"));
            r.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        }
        // Four distinct memo entries through a cap of two: two evicted.
        assert_eq!(r.stats().evictions, 2);
        assert_eq!(lock(&r.memo).map.len(), 2);
        // The freshest entry is still memoised; the oldest re-runs.
        let warm = r.execute_spec(&spec_req("Power.power", "S:5,D"), CancelToken::new(), &rec);
        assert!(warm.unwrap().memo_hit);
        let cold = r.execute_spec(&spec_req("Power.power", "S:2,D"), CancelToken::new(), &rec);
        assert!(!cold.unwrap().memo_hit, "evicted entries must re-run the engine");
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut b: Bounded<String, u32> = Bounded::new(2);
        assert_eq!(b.insert("a".into(), 1), 0);
        assert_eq!(b.insert("b".into(), 2), 0);
        assert_eq!(b.insert("a".into(), 3), 0, "refresh is not growth");
        assert_eq!(b.get("a"), Some(&3));
        assert_eq!(b.insert("c".into(), 4), 1, "third distinct key evicts the oldest");
        assert!(b.get("a").is_none());
        // Stale order slots (from remove) are skipped, not counted.
        b.remove("b");
        assert_eq!(b.insert("d".into(), 5), 0);
        assert_eq!(b.insert("e".into(), 6), 1);
    }

    #[test]
    fn disk_cache_survives_a_daemon_restart() {
        let dir = std::env::temp_dir().join(format!("mspec-serve-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = Recorder::disabled();
        let req = spec_req("Power.power", "S:4,D");

        let opts = || ResidentOptions {
            memo_cap: 64,
            disk: DiskCache::open(&dir).ok(),
        };
        let first = Resident::with_options(opts());
        let cold = first.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(!cold.memo_hit);
        assert_eq!(first.stats().disk_stores, 1);

        // A fresh Resident over the same directory is a daemon restart:
        // empty in-memory caches, warm disk.
        let second = Resident::with_options(opts());
        let warm = second.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(warm.memo_hit, "restart answers from the persistent cache");
        assert_eq!(warm.residual, cold.residual, "byte-identical residual");
        assert_eq!(warm.stats, cold.stats, "original run's counters travel with the entry");
        let s = second.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.memo_hits, 0, "the in-memory memo was empty");
        // The disk hit warmed the memo: a repeat is a memo hit, not a
        // second disk read.
        let third = second.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(third.memo_hit);
        assert_eq!(second.stats().memo_hits, 1);
        assert_eq!(second.stats().disk_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_rerun_the_engine_and_are_rewritten() {
        let dir = std::env::temp_dir().join(format!("mspec-serve-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = Recorder::disabled();
        let req = spec_req("Power.power", "S:7,D");
        let opts = || ResidentOptions {
            memo_cap: 64,
            disk: DiskCache::open(&dir).ok(),
        };

        let first = Resident::with_options(opts());
        let cold = first.execute_spec(&req, CancelToken::new(), &rec).unwrap();

        // Tear every cache entry on disk down to a prefix.
        for f in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
            let bytes = std::fs::read(f.path()).unwrap();
            std::fs::write(f.path(), &bytes[..bytes.len() / 2]).unwrap();
        }

        let second = Resident::with_options(opts());
        let redone = second.execute_spec(&req, CancelToken::new(), &rec).unwrap();
        assert!(!redone.memo_hit, "a torn entry is a miss, never served");
        assert_eq!(redone.residual, cold.residual);
        let s = second.stats();
        assert_eq!(s.disk_hits, 0);
        assert_eq!(s.disk_stores, 1, "the engine run rewrote the torn entry");

        // And the rewrite repaired the slot for the next restart.
        let third = Resident::with_options(opts());
        assert!(third.execute_spec(&req, CancelToken::new(), &rec).unwrap().memo_hit);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_breach_reports_budget_class() {
        let r = Resident::new();
        let rec = Recorder::disabled();
        let req = SpecRequest { fuel: Some(10), ..spec_req("Power.power", "S:40,D") };
        let e = r.execute_spec(&req, CancelToken::new(), &rec).unwrap_err();
        assert_eq!(e.class, ErrorClass::Budget);
        assert!(e.stats.is_some());
    }
}

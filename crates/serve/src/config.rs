//! Server configuration: the tuning knobs, their flag/env spellings and
//! the structured errors produced when a knob carries a bad value.
//!
//! Follows the [`mspec_sched::ThreadConfigError`] convention: every
//! error names the *knob the user actually turned* — the `--flag` or
//! the `MSPEC_*` environment variable — never a bare "invalid value".

use mspec_lang::vm::VmOpt;
use std::fmt;

/// One tunable server knob. Each knob has a command-line flag and an
/// environment-variable fallback; the flag wins when both are set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKnob {
    /// TCP port to listen on (`0` is *not* an error for this knob only
    /// via the OS convention — but we require explicitness, so 0 means
    /// "OS-assigned" and is accepted).
    Port,
    /// Maximum simultaneously connected clients.
    MaxClients,
    /// Bound on the request queue; a full queue sheds load.
    QueueDepth,
    /// Default/maximum per-request wall-clock deadline, milliseconds.
    DeadlineMs,
    /// Per-connection step-fuel account for admission control.
    ClientFuel,
    /// Entry cap on each resident cache (programs, artefact sets, memo,
    /// compiled residuals); oldest entries are evicted past it.
    MemoCap,
    /// Byte budget for the persistent disk cache: at startup the server
    /// prunes `.resid` files oldest-first until the cache fits.
    CacheGcBytes,
}

impl ServeKnob {
    /// The command-line flag spelling.
    pub fn flag(self) -> &'static str {
        match self {
            ServeKnob::Port => "--port",
            ServeKnob::MaxClients => "--max-clients",
            ServeKnob::QueueDepth => "--queue-depth",
            ServeKnob::DeadlineMs => "--deadline-ms",
            ServeKnob::ClientFuel => "--client-fuel",
            ServeKnob::MemoCap => "--memo-cap",
            ServeKnob::CacheGcBytes => "--cache-gc-bytes",
        }
    }

    /// The environment-variable spelling.
    pub fn env(self) -> &'static str {
        match self {
            ServeKnob::Port => "MSPEC_SERVE_PORT",
            ServeKnob::MaxClients => "MSPEC_MAX_CLIENTS",
            ServeKnob::QueueDepth => "MSPEC_QUEUE_DEPTH",
            ServeKnob::DeadlineMs => "MSPEC_DEADLINE_MS",
            ServeKnob::ClientFuel => "MSPEC_CLIENT_FUEL",
            ServeKnob::MemoCap => "MSPEC_MEMO_CAP",
            ServeKnob::CacheGcBytes => "MSPEC_CACHE_GC_BYTES",
        }
    }

    /// Whether `0` is a meaningful setting for this knob. Only the port
    /// admits it (OS-assigned port, which the tests rely on).
    pub fn zero_ok(self) -> bool {
        matches!(self, ServeKnob::Port)
    }
}

/// Where a knob's value came from, so errors blame the right spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobOrigin {
    /// The command-line flag.
    Flag,
    /// The environment variable.
    Env,
}

/// The knob's user-facing name under the given origin.
fn knob_name(knob: ServeKnob, origin: KnobOrigin) -> &'static str {
    match origin {
        KnobOrigin::Flag => knob.flag(),
        KnobOrigin::Env => knob.env(),
    }
}

/// A structured configuration error: the user turned a knob to a value
/// the server cannot run with. Mirrors
/// [`mspec_sched::ThreadConfigError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `0` was requested for a knob that needs at least 1.
    Zero {
        /// Which knob.
        knob: ServeKnob,
        /// Which spelling carried the zero.
        origin: KnobOrigin,
    },
    /// The value did not parse as an unsigned integer (or overflowed
    /// the knob's width).
    Invalid {
        /// Which knob.
        knob: ServeKnob,
        /// Which spelling carried the value.
        origin: KnobOrigin,
        /// The offending text.
        value: String,
    },
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::Zero { knob, origin } => {
                write!(f, "{} requires at least 1 (got 0)", knob_name(*knob, *origin))
            }
            ServeConfigError::Invalid { knob, origin, value } => {
                write!(
                    f,
                    "{} expects a positive integer, got `{value}`",
                    knob_name(*knob, *origin)
                )
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Parses one knob value (flag or env text) as a `u64`.
///
/// # Errors
///
/// [`ServeConfigError::Zero`] for `0` on knobs where zero is
/// meaningless, [`ServeConfigError::Invalid`] for non-numeric text.
pub fn parse_knob(
    knob: ServeKnob,
    origin: KnobOrigin,
    value: &str,
) -> Result<u64, ServeConfigError> {
    let trimmed = value.trim();
    let n: u64 = trimmed
        .parse()
        .map_err(|_| ServeConfigError::Invalid { knob, origin, value: trimmed.to_string() })?;
    if n == 0 && !knob.zero_ok() {
        return Err(ServeConfigError::Zero { knob, origin });
    }
    Ok(n)
}

/// The resolved server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port (0 = OS-assigned). Ignored in stdio mode.
    pub port: u16,
    /// Maximum simultaneously connected clients; further connections
    /// are answered with one `overloaded` reply and closed.
    pub max_clients: usize,
    /// Request-queue bound; a full queue sheds (`overloaded`).
    pub queue_depth: usize,
    /// Maximum (and default) per-request wall-clock deadline in
    /// milliseconds; request-supplied deadlines are clamped to this.
    pub deadline_ms: u64,
    /// Per-connection step-fuel account; each request reserves its fuel
    /// budget from this account at admission and refunds what it did
    /// not use. A request that cannot fit is refused (`budget-denied`).
    pub client_fuel: u64,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Honour `fault` requests (chaos testing). Off by default.
    pub chaos: bool,
    /// Write a JSONL telemetry trace to this path on shutdown.
    pub trace_path: Option<String>,
    /// Bytecode tier for `run` requests: [`VmOpt::Fuse`] sends every
    /// residual through the superinstruction pass before it enters the
    /// compiled-program cache (`--vm-opt fuse`).
    pub vm_opt: VmOpt,
    /// Entry cap per resident cache; oldest-inserted entries are
    /// evicted past it (`serve.cache.evictions` counts them).
    pub memo_cap: usize,
    /// Root of the persistent residual cache (`--cache-dir`, or the
    /// `MSPEC_CACHE_DIR` environment variable). `None` disables the
    /// disk tier.
    pub cache_dir: Option<String>,
    /// Startup garbage-collection byte budget for the disk cache
    /// (`--cache-gc-bytes`); `None` skips the startup sweep.
    pub cache_gc_bytes: Option<u64>,
    /// Directory crash dumps are written to (`--crash-dir`); `None`
    /// means the daemon's working directory.
    pub crash_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            port: 0,
            max_clients: 32,
            queue_depth: 64,
            deadline_ms: 30_000,
            client_fuel: 2_000_000_000,
            workers: 2,
            chaos: false,
            trace_path: None,
            vm_opt: VmOpt::None,
            memo_cap: 1024,
            cache_dir: None,
            cache_gc_bytes: None,
            crash_dir: None,
        }
    }
}

impl ServeConfig {
    /// Applies one flag value to the config.
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] naming the flag when the value is bad.
    pub fn set_flag(&mut self, knob: ServeKnob, value: &str) -> Result<(), ServeConfigError> {
        self.set(knob, KnobOrigin::Flag, value)
    }

    /// Reads every knob's environment variable, for knobs not already
    /// pinned by a flag (`pinned` lists those).
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] naming the environment variable.
    pub fn apply_env(&mut self, pinned: &[ServeKnob]) -> Result<(), ServeConfigError> {
        for knob in [
            ServeKnob::Port,
            ServeKnob::MaxClients,
            ServeKnob::QueueDepth,
            ServeKnob::DeadlineMs,
            ServeKnob::ClientFuel,
            ServeKnob::MemoCap,
            ServeKnob::CacheGcBytes,
        ] {
            if pinned.contains(&knob) {
                continue;
            }
            if let Ok(v) = std::env::var(knob.env()) {
                self.set(knob, KnobOrigin::Env, &v)?;
            }
        }
        Ok(())
    }

    fn set(
        &mut self,
        knob: ServeKnob,
        origin: KnobOrigin,
        value: &str,
    ) -> Result<(), ServeConfigError> {
        let n = parse_knob(knob, origin, value)?;
        match knob {
            ServeKnob::Port => {
                self.port = u16::try_from(n).map_err(|_| ServeConfigError::Invalid {
                    knob,
                    origin,
                    value: value.trim().to_string(),
                })?;
            }
            ServeKnob::MaxClients => self.max_clients = n as usize,
            ServeKnob::QueueDepth => self.queue_depth = n as usize,
            ServeKnob::DeadlineMs => self.deadline_ms = n,
            ServeKnob::ClientFuel => self.client_fuel = n,
            ServeKnob::MemoCap => self.memo_cap = n as usize,
            ServeKnob::CacheGcBytes => self.cache_gc_bytes = Some(n),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn errors_name_the_flag() {
        let mut cfg = ServeConfig::default();
        let err = cfg.set_flag(ServeKnob::QueueDepth, "0").unwrap_err();
        assert_eq!(err.to_string(), "--queue-depth requires at least 1 (got 0)");
        let err = cfg.set_flag(ServeKnob::DeadlineMs, "soon").unwrap_err();
        assert_eq!(err.to_string(), "--deadline-ms expects a positive integer, got `soon`");
        let err = cfg.set_flag(ServeKnob::MaxClients, "-3").unwrap_err();
        assert_eq!(err.to_string(), "--max-clients expects a positive integer, got `-3`");
    }

    #[test]
    fn errors_name_the_env_var() {
        let mut cfg = ServeConfig::default();
        let err = cfg.set(ServeKnob::ClientFuel, KnobOrigin::Env, "lots").unwrap_err();
        assert_eq!(err.to_string(), "MSPEC_CLIENT_FUEL expects a positive integer, got `lots`");
        let err = cfg.set(ServeKnob::MaxClients, KnobOrigin::Env, "0").unwrap_err();
        assert_eq!(err.to_string(), "MSPEC_MAX_CLIENTS requires at least 1 (got 0)");
    }

    #[test]
    fn port_zero_means_os_assigned() {
        let mut cfg = ServeConfig::default();
        cfg.set_flag(ServeKnob::Port, "0").unwrap();
        assert_eq!(cfg.port, 0);
        let err = cfg.set_flag(ServeKnob::Port, "70000").unwrap_err();
        assert_eq!(err.to_string(), "--port expects a positive integer, got `70000`");
    }

    #[test]
    fn memo_cap_knob_applies_and_rejects_zero() {
        let mut cfg = ServeConfig::default();
        assert_eq!(cfg.memo_cap, 1024);
        cfg.set_flag(ServeKnob::MemoCap, "8").unwrap();
        assert_eq!(cfg.memo_cap, 8);
        let err = cfg.set_flag(ServeKnob::MemoCap, "0").unwrap_err();
        assert_eq!(err.to_string(), "--memo-cap requires at least 1 (got 0)");
        let err = cfg.set(ServeKnob::MemoCap, KnobOrigin::Env, "many").unwrap_err();
        assert_eq!(err.to_string(), "MSPEC_MEMO_CAP expects a positive integer, got `many`");
    }

    #[test]
    fn cache_gc_bytes_knob_applies() {
        let mut cfg = ServeConfig::default();
        assert_eq!(cfg.cache_gc_bytes, None);
        cfg.set_flag(ServeKnob::CacheGcBytes, "65536").unwrap();
        assert_eq!(cfg.cache_gc_bytes, Some(65_536));
        let err = cfg.set_flag(ServeKnob::CacheGcBytes, "0").unwrap_err();
        assert_eq!(err.to_string(), "--cache-gc-bytes requires at least 1 (got 0)");
    }

    #[test]
    fn flags_apply_and_values_land() {
        let mut cfg = ServeConfig::default();
        cfg.set_flag(ServeKnob::QueueDepth, "7").unwrap();
        cfg.set_flag(ServeKnob::DeadlineMs, " 250 ").unwrap();
        cfg.set_flag(ServeKnob::ClientFuel, "123456").unwrap();
        cfg.set_flag(ServeKnob::MaxClients, "3").unwrap();
        assert_eq!(cfg.queue_depth, 7);
        assert_eq!(cfg.deadline_ms, 250);
        assert_eq!(cfg.client_fuel, 123_456);
        assert_eq!(cfg.max_clients, 3);
    }
}

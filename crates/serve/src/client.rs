//! The retrying client behind `mspec client`.
//!
//! Two transports:
//!
//! * **TCP** — connect to a running daemon (`mspec serve`);
//! * **spawn** — start a child daemon speaking the same protocol on its
//!   stdin/stdout (`mspec serve --stdio`), used by the offline smoke
//!   tests where binding a socket may be unavailable.
//!
//! Retry policy: transport failures (connect refused, broken pipe) and
//! *retryable* error replies (`overloaded`, `internal` — see
//! [`crate::proto::ErrorClass::retryable`]) are retried with
//! exponential backoff plus jitter; terminal error replies are returned
//! to the caller immediately — resending them cannot change the
//! answer. The jitter source is a hand-rolled xorshift64 (no external
//! RNG dependency), seeded from the clock and PID, because a thundering
//! herd of deterministic clients would re-collide on every retry.

use crate::proto::{Request, RequestKind, Response, ResponseBody, RunRequest, SpecRequest};
use mspec_lang::json::{FromJson, ToJson};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// How failures are retried.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// First backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Randomise each backoff to `[delay/2, delay]`.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based), before
    /// jitter: `min(max, base * 2^(attempt-1))`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

/// A client-side failure (transport or protocol — *not* a typed server
/// error reply, which is returned as a normal [`Response`]).
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, spawning, writing or reading failed (after retries).
    Io(String),
    /// The server's reply was not a valid protocol frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "transport error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

enum Transport {
    Tcp { addr: String, conn: Option<TcpConn> },
    Spawn { program: String, args: Vec<String>, child: Option<SpawnConn> },
}

struct TcpConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

struct SpawnConn {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
    writer: std::process::ChildStdin,
}

/// The retrying protocol client.
pub struct Client {
    transport: Transport,
    policy: RetryPolicy,
    next_id: u64,
    rng: u64,
    /// Attempts actually made by the last request (observability for
    /// the CLI's `-v` output and the tests).
    pub last_attempts: u32,
}

impl Client {
    /// A TCP client for `addr` (e.g. `127.0.0.1:7878`). Connects
    /// lazily, on the first request.
    pub fn tcp(addr: impl Into<String>) -> Client {
        Client::with_transport(Transport::Tcp { addr: addr.into(), conn: None })
    }

    /// A client that spawns `program args…` as a child daemon speaking
    /// the protocol on its stdin/stdout.
    pub fn spawn(program: impl Into<String>, args: Vec<String>) -> Client {
        Client::with_transport(Transport::Spawn { program: program.into(), args, child: None })
    }

    fn with_transport(transport: Transport) -> Client {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9E37_79B9_7F4A_7C15, |d| d.as_nanos() as u64)
            ^ (u64::from(std::process::id()) << 32);
        Client { transport, policy: RetryPolicy::default(), next_id: 1, rng: seed | 1, last_attempts: 0 }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Client {
        self.policy = policy;
        self
    }

    /// Sends one request, retrying transport failures and retryable
    /// error replies per the policy. Terminal error replies are
    /// returned as-is (they carry the typed [`crate::ErrorInfo`]).
    ///
    /// # Errors
    ///
    /// [`ClientError`] when the transport still fails after the last
    /// attempt, or the server talks gibberish.
    pub fn request(&mut self, kind: RequestKind) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request { id, kind };
        let mut last: Option<Result<Response, ClientError>> = None;
        self.last_attempts = 0;
        for attempt in 1..=self.policy.max_attempts.max(1) {
            self.last_attempts = attempt;
            if attempt > 1 {
                std::thread::sleep(self.jittered(self.policy.backoff(attempt - 1)));
            }
            match self.try_once(&req) {
                Ok(resp) => {
                    let retryable =
                        matches!(&resp.body, ResponseBody::Error(e) if e.retryable);
                    if !retryable {
                        return Ok(resp);
                    }
                    last = Some(Ok(resp));
                }
                Err(e) => {
                    // The connection is suspect: rebuild it on retry.
                    self.disconnect();
                    last = Some(Err(e));
                }
            }
        }
        last.unwrap_or_else(|| {
            Err(ClientError::Io("no attempts were made (max_attempts = 0)".into()))
        })
    }

    /// Convenience: a `spec` request.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn spec(&mut self, spec: SpecRequest) -> Result<Response, ClientError> {
        self.request(RequestKind::Spec(spec))
    }

    /// Convenience: a `run` request (specialise, then execute the
    /// residual on the daemon's resident VM).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn run(&mut self, run: RunRequest) -> Result<Response, ClientError> {
        self.request(RequestKind::Run(run))
    }

    /// Convenience: a `health` request.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn health(&mut self) -> Result<Response, ClientError> {
        self.request(RequestKind::Health)
    }

    /// Convenience: a `metrics` request (the Prometheus-style text
    /// exposition; `mspec top` polls this).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.request(RequestKind::Metrics)
    }

    /// Convenience: a `shutdown` request.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(RequestKind::Shutdown)
    }

    fn jittered(&mut self, delay: Duration) -> Duration {
        if !self.policy.jitter || delay.is_zero() {
            return delay;
        }
        // xorshift64: cheap, seedable, no dependencies.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let nanos = delay.as_nanos() as u64;
        Duration::from_nanos(nanos / 2 + x % (nanos / 2 + 1))
    }

    fn try_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        let line = req.to_json_compact();
        let reply = match &mut self.transport {
            Transport::Tcp { addr, conn } => {
                if conn.is_none() {
                    let stream = TcpStream::connect(addr.as_str())
                        .map_err(|e| ClientError::Io(format!("connect {addr}: {e}")))?;
                    // One frame, one write: avoids Nagle + delayed-ACK
                    // stalls on small request/reply exchanges.
                    let _ = stream.set_nodelay(true);
                    let reader = BufReader::new(
                        stream
                            .try_clone()
                            .map_err(|e| ClientError::Io(format!("clone socket: {e}")))?,
                    );
                    *conn = Some(TcpConn { reader, writer: stream });
                }
                let Some(c) = conn.as_mut() else {
                    return Err(ClientError::Io("no connection".into()));
                };
                c.writer
                    .write_all(format!("{line}\n").as_bytes())
                    .and_then(|()| c.writer.flush())
                    .map_err(|e| ClientError::Io(format!("send: {e}")))?;
                read_reply(&mut c.reader)?
            }
            Transport::Spawn { program, args, child } => {
                if child.is_none() {
                    *child = Some(spawn_daemon(program, args)?);
                }
                let Some(c) = child.as_mut() else {
                    return Err(ClientError::Io("no child".into()));
                };
                c.writer
                    .write_all(format!("{line}\n").as_bytes())
                    .and_then(|()| c.writer.flush())
                    .map_err(|e| ClientError::Io(format!("send to child: {e}")))?;
                read_reply(&mut c.reader)?
            }
        };
        if reply.id != req.id {
            return Err(ClientError::Protocol(format!(
                "reply id {} does not match request id {}",
                reply.id, req.id
            )));
        }
        Ok(reply)
    }

    fn disconnect(&mut self) {
        match &mut self.transport {
            Transport::Tcp { conn, .. } => *conn = None,
            Transport::Spawn { child, .. } => {
                if let Some(mut c) = child.take() {
                    let _ = c.child.kill();
                    let _ = c.child.wait();
                }
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if let Transport::Spawn { child: Some(c), .. } = &mut self.transport {
            // Ask politely (EOF on its stdin ends a stdio daemon), then
            // make sure.
            let _ = c.writer.flush();
            let _ = c.child.kill();
            let _ = c.child.wait();
        }
    }
}

fn spawn_daemon(program: &str, args: &[String]) -> Result<SpawnConn, ClientError> {
    let mut child = Command::new(program)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| ClientError::Io(format!("spawn {program}: {e}")))?;
    let stdin = child.stdin.take().ok_or_else(|| ClientError::Io("child stdin".into()))?;
    let stdout = child.stdout.take().ok_or_else(|| ClientError::Io("child stdout".into()))?;
    Ok(SpawnConn { child, reader: BufReader::new(stdout), writer: stdin })
}

fn read_reply(reader: &mut impl BufRead) -> Result<Response, ClientError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ClientError::Io(format!("read reply: {e}")))?;
    if n == 0 {
        return Err(ClientError::Io("server closed the connection".into()));
    }
    Response::from_json_str(line.trim_end())
        .map_err(|e| ClientError::Protocol(format!("bad reply frame: {e} in `{line}`")))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::config::ServeConfig;
    use crate::proto::ErrorClass;
    use crate::server::Server;
    use mspec_telemetry::Recorder;

    const POWER: &str =
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(300),
            jitter: false,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(6), Duration::from_millis(300));
        assert_eq!(p.backoff(60), Duration::from_millis(300));
    }

    #[test]
    fn jitter_stays_within_half_to_full_delay() {
        let mut c = Client::tcp("127.0.0.1:1");
        for _ in 0..100 {
            let d = c.jittered(Duration::from_millis(100));
            assert!(d >= Duration::from_millis(50) && d <= Duration::from_millis(100), "{d:?}");
        }
    }

    #[test]
    fn tcp_roundtrip_and_connect_retry() {
        let server = Server::new(ServeConfig::default(), Recorder::disabled());
        let handle = server.start_tcp().unwrap();
        let mut client = Client::tcp(format!("127.0.0.1:{}", handle.port));
        let resp = client.spec(SpecRequest::inline(POWER, "Power.power", "S:3,D")).unwrap();
        let ResponseBody::Spec { residual, .. } = resp.body else { panic!("{resp:?}") };
        assert!(residual.contains("x * (x * x)"), "{residual}");
        let resp = client.health().unwrap();
        assert!(matches!(resp.body, ResponseBody::Health { .. }));
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn run_roundtrip_reports_warm_caches() {
        use mspec_lang::vm::VmOpt;

        let cfg = ServeConfig { vm_opt: VmOpt::Fuse, ..ServeConfig::default() };
        let server = Server::new(cfg, Recorder::disabled());
        let handle = server.start_tcp().unwrap();
        let mut client = Client::tcp(format!("127.0.0.1:{}", handle.port));
        let req = RunRequest {
            spec: SpecRequest::inline(POWER, "Power.power", "S:4,D"),
            values: "5".to_string(),
            run_fuel: None,
        };
        let resp = client.run(req.clone()).unwrap();
        let ResponseBody::Run { value, compiled_hit, .. } = resp.body else { panic!("{resp:?}") };
        assert_eq!(value, "625");
        assert!(!compiled_hit);
        let resp = client.run(req).unwrap();
        let ResponseBody::Run { value, memo_hit, compiled_hit, .. } = resp.body else {
            panic!("{resp:?}")
        };
        assert_eq!(value, "625");
        assert!(memo_hit && compiled_hit);
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn connect_failure_is_io_after_retries() {
        // Nothing listens on port 1.
        let mut client = Client::tcp("127.0.0.1:1").with_policy(RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: false,
        });
        let err = client.health().unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "{err}");
        assert_eq!(client.last_attempts, 2);
    }

    #[test]
    fn terminal_errors_are_not_retried() {
        let server = Server::new(ServeConfig::default(), Recorder::disabled());
        let handle = server.start_tcp().unwrap();
        let mut client = Client::tcp(format!("127.0.0.1:{}", handle.port));
        let resp = client
            .spec(SpecRequest::inline(POWER, "Power.ghost", "S:3,D"))
            .unwrap();
        let ResponseBody::Error(e) = resp.body else { panic!("{resp:?}") };
        assert_eq!(e.class, ErrorClass::NoSuchEntry);
        assert_eq!(client.last_attempts, 1);
        client.shutdown().unwrap();
        handle.join();
    }
}

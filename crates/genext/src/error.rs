//! Specialisation-time errors.

use mspec_lang::{ModName, QualName};
use std::error::Error;
use std::fmt;

/// An error raised while running a generating extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A call to a function with no generating extension (module not
    /// linked in).
    UnknownFunction(QualName),
    /// A static operation was applied to a value of the wrong shape.
    /// Well-typed, well-annotated programs never raise this.
    TypeConfusion(String),
    /// A static division by zero — the specialised computation itself
    /// is erroneous, as running the source program would show.
    DivByZero,
    /// A static `head`/`tail` of the empty list.
    EmptyList(&'static str),
    /// The specialisation step budget ran out. By the paper's
    /// conservative unfolding strategy this only happens when the source
    /// program itself diverges on the static inputs.
    FuelExhausted,
    /// More residual definitions were requested than the engine's limit —
    /// almost always unbounded polyvariance: static data growing without
    /// bound under dynamic control (e.g. a counter incremented towards a
    /// dynamic bound). Generalise the offending argument to dynamic.
    TooManySpecialisations {
        /// The configured limit.
        limit: usize,
        /// The function whose specialisation hit the limit.
        witness: QualName,
    },
    /// The entry function given to `specialise` does not exist.
    UnknownEntry(QualName),
    /// An entry argument count that does not match the entry function.
    EntryArity {
        /// The entry function.
        entry: QualName,
        /// Its parameter count.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// The generated residual modules import each other cyclically
    /// (cannot happen for first-order programs; reported defensively).
    CyclicResidualImports {
        /// One module on the cycle.
        witness: ModName,
    },
    /// Two linked modules share a name.
    DuplicateModule(ModName),
    /// Writing residual modules to disk failed.
    Io(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownFunction(q) => {
                write!(f, "no generating extension linked for `{q}`")
            }
            SpecError::TypeConfusion(m) => write!(f, "specialisation type confusion: {m}"),
            SpecError::DivByZero => write!(f, "static division by zero during specialisation"),
            SpecError::EmptyList(op) => {
                write!(f, "static `{op}` of empty list during specialisation")
            }
            SpecError::FuelExhausted => write!(
                f,
                "specialisation fuel exhausted (the source program diverges on these inputs)"
            ),
            SpecError::TooManySpecialisations { limit, witness } => write!(
                f,
                "more than {limit} specialisations requested (last for `{witness}`): \
                 unbounded polyvariance — a static argument grows without bound under \
                 dynamic control; generalise it to dynamic"
            ),
            SpecError::UnknownEntry(q) => write!(f, "unknown entry function `{q}`"),
            SpecError::EntryArity { entry, expected, found } => write!(
                f,
                "entry `{entry}` takes {expected} arguments but the division covers {found}"
            ),
            SpecError::CyclicResidualImports { witness } => {
                write!(f, "residual modules import cyclically (involving {witness})")
            }
            SpecError::DuplicateModule(m) => write!(f, "two linked modules named {m}"),
            SpecError::Io(m) => write!(f, "residual emission I/O error: {m}"),
        }
    }
}

impl Error for SpecError {}

impl From<std::io::Error> for SpecError {
    fn from(e: std::io::Error) -> SpecError {
        SpecError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SpecError::UnknownFunction(QualName::new("A", "f"))
            .to_string()
            .contains("A.f"));
        assert!(SpecError::FuelExhausted.to_string().contains("diverges"));
        let e = SpecError::EntryArity {
            entry: QualName::new("M", "main"),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("takes 2"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SpecError = io.into();
        assert!(matches!(e, SpecError::Io(_)));
    }
}

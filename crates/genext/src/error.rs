//! Specialisation-time errors.

use crate::budget::BudgetResource;
use mspec_lang::{ModName, QualName};
use std::error::Error;
use std::fmt;

/// An error raised while running a generating extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A call to a function with no generating extension (module not
    /// linked in).
    UnknownFunction(QualName),
    /// A static operation was applied to a value of the wrong shape.
    /// Well-typed, well-annotated programs never raise this.
    TypeConfusion(String),
    /// A static division by zero — the specialised computation itself
    /// is erroneous, as running the source program would show.
    DivByZero,
    /// A static `head`/`tail` of the empty list.
    EmptyList(&'static str),
    /// A [`crate::budget::SpecBudget`] resource ran out under
    /// [`crate::budget::OnExhaustion::Error`]. For step fuel this only
    /// happens when the source program itself diverges on the static
    /// inputs (the paper's conservative unfolding strategy); for the
    /// specialisation cap it is almost always unbounded polyvariance:
    /// static data growing without bound under dynamic control.
    BudgetExhausted {
        /// Which resource ran out.
        resource: BudgetResource,
        /// The function whose call hit the limit.
        witness: QualName,
        /// Structural hash of the offending call's static skeleton
        /// (`0` for breaches detected mid-unfold, before splitting).
        skeleton_hash: u64,
        /// The chain of specialisation/unfold requests that led to the
        /// breach, outermost first, truncated to the innermost frames.
        chain: Vec<QualName>,
    },
    /// The session's [`crate::CancelToken`] fired mid-run: an external
    /// controller (a wall-clock deadline watchdog, a disconnecting
    /// client) asked the engine to stop. The session is abandoned at a
    /// step boundary; `steps` records the partial progress made, so
    /// callers can report how far the run got before cancellation.
    Cancelled {
        /// The function being specialised/unfolded when the token fired
        /// (the innermost request-chain frame).
        witness: QualName,
        /// Evaluation steps completed before cancellation.
        steps: u64,
    },
    /// The entry function given to `specialise` does not exist.
    UnknownEntry(QualName),
    /// An entry argument count that does not match the entry function.
    EntryArity {
        /// The entry function.
        entry: QualName,
        /// Its parameter count.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// The generated residual modules import each other cyclically
    /// (cannot happen for first-order programs; reported defensively).
    CyclicResidualImports {
        /// One module on the cycle.
        witness: ModName,
    },
    /// Two linked modules share a name.
    DuplicateModule(ModName),
    /// Writing residual modules to disk failed.
    Io(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownFunction(q) => {
                write!(f, "no generating extension linked for `{q}`")
            }
            SpecError::TypeConfusion(m) => write!(f, "specialisation type confusion: {m}"),
            SpecError::DivByZero => write!(f, "static division by zero during specialisation"),
            SpecError::EmptyList(op) => {
                write!(f, "static `{op}` of empty list during specialisation")
            }
            SpecError::BudgetExhausted { resource, witness, skeleton_hash, chain } => {
                match resource {
                    BudgetResource::Steps => write!(
                        f,
                        "specialisation fuel exhausted at `{witness}` (the source \
                         program diverges on these inputs)"
                    )?,
                    BudgetResource::Specialisations => write!(
                        f,
                        "specialisation count budget exhausted (last request for \
                         `{witness}`): unbounded polyvariance — a static argument \
                         grows without bound under dynamic control; generalise it \
                         to dynamic"
                    )?,
                    BudgetResource::Pending => write!(
                        f,
                        "pending/suspension depth budget exhausted at `{witness}`: \
                         too many specialisations requested before any completed"
                    )?,
                    BudgetResource::ResidualNodes => write!(
                        f,
                        "residual program size budget exhausted at `{witness}`: \
                         the residual program is blowing up"
                    )?,
                }
                write!(f, " [skeleton {skeleton_hash:016x}]")?;
                if !chain.is_empty() {
                    write!(f, "; request chain:")?;
                    for q in chain {
                        write!(f, " -> {q}")?;
                    }
                }
                Ok(())
            }
            SpecError::Cancelled { witness, steps } => write!(
                f,
                "specialisation cancelled at `{witness}` after {steps} steps \
                 (deadline or external cancellation)"
            ),
            SpecError::UnknownEntry(q) => write!(f, "unknown entry function `{q}`"),
            SpecError::EntryArity { entry, expected, found } => write!(
                f,
                "entry `{entry}` takes {expected} arguments but the division covers {found}"
            ),
            SpecError::CyclicResidualImports { witness } => {
                write!(f, "residual modules import cyclically (involving {witness})")
            }
            SpecError::DuplicateModule(m) => write!(f, "two linked modules named {m}"),
            SpecError::Io(m) => write!(f, "residual emission I/O error: {m}"),
        }
    }
}

impl Error for SpecError {}

impl From<std::io::Error> for SpecError {
    fn from(e: std::io::Error) -> SpecError {
        SpecError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SpecError::UnknownFunction(QualName::new("A", "f"))
            .to_string()
            .contains("A.f"));
        let fuel = SpecError::BudgetExhausted {
            resource: BudgetResource::Steps,
            witness: QualName::new("M", "loop"),
            skeleton_hash: 0xdead_beef,
            chain: vec![QualName::new("M", "main"), QualName::new("M", "loop")],
        };
        let text = fuel.to_string();
        assert!(text.contains("diverges"), "{text}");
        assert!(text.contains("fuel"), "{text}");
        assert!(text.contains("M.loop"), "{text}");
        assert!(text.contains("-> M.main"), "{text}");
        assert!(text.contains("00000000deadbeef"), "{text}");
        let poly = SpecError::BudgetExhausted {
            resource: BudgetResource::Specialisations,
            witness: QualName::new("M", "upto"),
            skeleton_hash: 1,
            chain: vec![],
        };
        assert!(poly.to_string().contains("polyvariance"), "{poly}");
        let e = SpecError::EntryArity {
            entry: QualName::new("M", "main"),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("takes 2"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SpecError = io.into();
        assert!(matches!(e, SpecError::Io(_)));
    }
}

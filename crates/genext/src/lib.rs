//! Generating extensions and the specialisation engine.
//!
//! A *generating extension* (§2, §4.2) is a specialiser specialised to
//! one program: run it on (some of) the program's inputs and it produces
//! a residual program. Here a module's generating extension is a compiled
//! form of its binding-time-annotated definitions — variables resolved to
//! environment slots, every symbolic binding time compiled to a bitmask
//! test ([`gexp::BtCode`]) — executed by an [`engine::Engine`] that
//! provides the paper's "common code": the `mk_*` operations, `mk_resid`
//! memoisation with its pending list, coercions (including eta-expansion
//! of static closures), residual-module placement (§5) and two-pass
//! module emission.
//!
//! Contents:
//!
//! * [`value`] — partial values: static data, static closures carrying
//!   their generating function, and residual code; plus the
//!   static/dynamic *splitting* used by `mk_resid` (dynamic leaves inside
//!   static skeletons become extra residual formals — the paper's
//!   `map_g z ys` case),
//! * [`gexp`] — the compiled generating-extension representation
//!   (`GExp`, `GenFn`, `GenModule`, `GenProgram`), serialisable to `.gx`
//!   files so library genexts can be shipped without source,
//! * [`engine`] — the specialisation engine with breadth-first (pending
//!   list) and depth-first strategies and space accounting,
//! * [`budget`] — resource governance: budgets for step fuel,
//!   specialisation count, pending/suspension depth and residual size,
//!   with a configurable exhaustion policy (structured error or
//!   generalising fallback),
//! * [`placement`] — the residual-module placement algorithm of §5,
//! * [`emit`] — module sinks: in-memory assembly and the paper's
//!   two-pass temporary-file emission; residual import computation and
//!   acyclicity checking,
//! * [`error`] — specialisation-time errors.

pub mod budget;
pub mod emit;
pub mod engine;
pub mod error;
pub mod gexp;
pub mod parallel;
pub mod placement;
pub mod value;

pub use budget::{BudgetResource, CancelToken, OnExhaustion, SpecBudget};
pub use emit::{FileSink, MemorySink, ModuleSink, ResidualProgram};
pub use engine::{CostModel, Engine, EngineOptions, Provenance, SpecArg, SpecStats, Strategy};
pub use error::SpecError;
pub use gexp::{BtCode, FnUnit, GExp, GenFn, GenModule, GenProgram, LinkUnit};
pub use parallel::{specialise_streaming_threaded, specialise_threaded, ParallelOutcome};
pub use value::{Closure, PKey, PVal};

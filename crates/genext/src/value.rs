//! Partial values and static/dynamic splitting.
//!
//! A [`PVal`] is what flows through a generating extension: fully static
//! data, residual code, or — the interesting cases — static *skeletons*
//! with dynamic leaves (a list with known spine but unknown elements) and
//! static closures whose environments may capture dynamic values.
//!
//! [`split`] decomposes a value into a hashable static skeleton
//! ([`PKey`], the memoisation key of `mk_resid`) and its dynamic leaves;
//! [`rebuild`] replaces those leaves with fresh formal parameters when a
//! residual definition's body is constructed — exactly the paper's
//! treatment of `map (\x -> x + z) ys ⇒ map_g z ys`.

use crate::gexp::GExp;
use mspec_bta::BtMask;
use mspec_lang::ast::{Expr, Ident, ModName, PrimOp, QualName};
use mspec_lang::eval::Value;
use std::rc::Rc;
use std::sync::Arc;

/// A partial (specialisation-time) value.
#[derive(Debug, Clone)]
pub enum PVal {
    /// A known natural.
    Nat(u64),
    /// A known boolean.
    Bool(bool),
    /// The known empty list.
    Nil,
    /// A known cons cell (the parts may contain dynamic leaves).
    Cons(Rc<PVal>, Rc<PVal>),
    /// A static closure.
    Clo(Rc<Closure>),
    /// Residual code.
    Code(Expr),
}

/// A static closure: the paper's Similix-style closure extended with the
/// compiled generating function for its body (§4.2: "an extra field ...
/// a function which generates specialisations of the closure's body").
#[derive(Debug)]
pub struct Closure {
    /// Parameter name (used for readable residual lambdas).
    pub param: Ident,
    /// The compiled body; its frame is `env` followed by the parameter.
    pub body: Arc<GExp>,
    /// Captured values, shared with the frame they were captured from
    /// (applying a closure never deep-copies its environment).
    pub env: Vec<Rc<PVal>>,
    /// Named functions reachable from the body (for placement).
    pub free_fns: Arc<Vec<QualName>>,
    /// Identity of the lambda site within its module.
    pub lam_id: u32,
    /// Module the lambda occurs in (with `lam_id`, a global identity).
    pub module: ModName,
    /// The binding-time mask of the function the lambda was written in:
    /// the closure body's compiled binding times refer to *that*
    /// function's signature variables, so unfolding the closure later
    /// must happen under this mask, not the current one.
    pub mask: BtMask,
}

impl PVal {
    /// Converts an interpreter [`Value`] into a partial value.
    ///
    /// Returns `None` for closures: run-time function values cannot be
    /// supplied as specialisation inputs.
    pub fn from_value(v: &Value) -> Option<PVal> {
        match v {
            Value::Nat(n) => Some(PVal::Nat(*n)),
            Value::Bool(b) => Some(PVal::Bool(*b)),
            Value::Nil => Some(PVal::Nil),
            Value::Cons(h, t) => Some(PVal::Cons(
                Rc::new(PVal::from_value(h)?),
                Rc::new(PVal::from_value(t)?),
            )),
            Value::Closure(_) => None,
        }
    }

    /// `true` if the value contains no dynamic leaves.
    pub fn is_fully_static(&self) -> bool {
        match self {
            PVal::Nat(_) | PVal::Bool(_) | PVal::Nil => true,
            PVal::Cons(h, t) => h.is_fully_static() && t.is_fully_static(),
            PVal::Clo(c) => c.env.iter().all(|e| e.is_fully_static()),
            PVal::Code(_) => false,
        }
    }

    /// All named functions reachable from the static parts of the value —
    /// the free function names of §5's placement rule (functions inside
    /// dynamic leaves are excluded: they are referenced at the *call
    /// site*, not inside the new definition).
    pub fn free_fns(&self, out: &mut Vec<QualName>) {
        match self {
            PVal::Nat(_) | PVal::Bool(_) | PVal::Nil | PVal::Code(_) => {}
            PVal::Cons(h, t) => {
                h.free_fns(out);
                t.free_fns(out);
            }
            PVal::Clo(c) => {
                for f in c.free_fns.iter() {
                    if !out.contains(f) {
                        out.push(*f);
                    }
                }
                for v in &c.env {
                    v.free_fns(out);
                }
            }
        }
    }
}

/// The static skeleton of a value: the memoisation key of `mk_resid`.
/// Dynamic leaves become [`PKey::Hole`]s, so two calls with the same
/// static data (and *any* dynamic data) share one specialisation — the
/// paper's "only the static parts are compared with previously generated
/// specialisations".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PKey {
    /// A known natural.
    Nat(u64),
    /// A known boolean.
    Bool(bool),
    /// The empty list.
    Nil,
    /// A cons cell.
    Cons(Box<PKey>, Box<PKey>),
    /// A closure: lambda-site identity, origin mask, plus the skeletons
    /// of its captured environment.
    Clo {
        /// Module of the lambda site.
        module: ModName,
        /// Lambda-site id within the module.
        lam_id: u32,
        /// Origin binding-time mask (it changes how the body specialises).
        mask: u128,
        /// Skeletons of captured values.
        env: Vec<PKey>,
    },
    /// A dynamic leaf.
    Hole,
}

/// Splits a value into its skeleton and the residual code of its dynamic
/// leaves (in deterministic left-to-right order).
pub fn split(v: &PVal, leaves: &mut Vec<Expr>) -> PKey {
    split_hashed(v, leaves).0
}

/// Like [`split`], but also returns a structural hash of the skeleton,
/// computed in the same traversal. The memo table probes on this hash
/// first, so the common case (a repeat request) costs one `u64` compare
/// instead of a deep [`PKey`] walk; equal hashes are collision-checked
/// against the full skeleton.
pub fn split_hashed(v: &PVal, leaves: &mut Vec<Expr>) -> (PKey, u64) {
    let mut h = FNV_OFFSET;
    let key = split_into(v, leaves, &mut h);
    (key, h)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seed for folding per-argument skeleton hashes into a single memo hash
/// with [`hash_fold`].
pub const SKELETON_SEED: u64 = FNV_OFFSET;

/// Folds one [`split_hashed`] hash into an accumulated argument-list
/// hash.
#[inline]
pub fn hash_fold(acc: u64, h: u64) -> u64 {
    (acc ^ h).wrapping_mul(FNV_PRIME)
}

/// The memo hash of an argument list of `n` all-[`PKey::Hole`] skeletons
/// — the key shape produced when the engine's generalising fallback
/// abandons the static skeleton and lifts every argument to code. Equals
/// what [`split_hashed`] + [`hash_fold`] would compute over `n` `Code`
/// values.
pub fn all_holes_hash(n: usize) -> u64 {
    let mut acc = SKELETON_SEED;
    for _ in 0..n {
        let mut h = FNV_OFFSET;
        mix(&mut h, 6);
        acc = hash_fold(acc, h);
    }
    acc
}

#[inline]
fn mix(h: &mut u64, word: u64) {
    *h = (*h ^ word).wrapping_mul(FNV_PRIME);
}

fn split_into(v: &PVal, leaves: &mut Vec<Expr>, h: &mut u64) -> PKey {
    match v {
        PVal::Nat(n) => {
            mix(h, 1);
            mix(h, *n);
            PKey::Nat(*n)
        }
        PVal::Bool(b) => {
            mix(h, 2);
            mix(h, u64::from(*b));
            PKey::Bool(*b)
        }
        PVal::Nil => {
            mix(h, 3);
            PKey::Nil
        }
        PVal::Cons(hd, tl) => {
            mix(h, 4);
            let hk = split_into(hd, leaves, h);
            let tk = split_into(tl, leaves, h);
            PKey::Cons(Box::new(hk), Box::new(tk))
        }
        PVal::Clo(c) => {
            mix(h, 5);
            mix(h, u64::from(c.module.sym().id()));
            mix(h, u64::from(c.lam_id));
            mix(h, c.mask.0 as u64);
            mix(h, (c.mask.0 >> 64) as u64);
            let env = c.env.iter().map(|e| split_into(e, leaves, h)).collect();
            PKey::Clo { module: c.module, lam_id: c.lam_id, mask: c.mask.0, env }
        }
        PVal::Code(e) => {
            mix(h, 6);
            leaves.push(e.clone());
            PKey::Hole
        }
    }
}

/// Rebuilds a value with each dynamic leaf replaced by a reference to the
/// corresponding fresh formal parameter. `names` must have exactly as
/// many entries as [`split`] produced leaves; `next` tracks consumption.
pub fn rebuild(v: &PVal, names: &[Ident], next: &mut usize) -> PVal {
    match v {
        PVal::Nat(_) | PVal::Bool(_) | PVal::Nil => v.clone(),
        PVal::Cons(h, t) => {
            let h2 = rebuild(h, names, next);
            let t2 = rebuild(t, names, next);
            PVal::Cons(Rc::new(h2), Rc::new(t2))
        }
        PVal::Clo(c) => {
            let env = c.env.iter().map(|e| Rc::new(rebuild(e, names, next))).collect();
            PVal::Clo(Rc::new(Closure {
                param: c.param,
                body: Arc::clone(&c.body),
                env,
                free_fns: Arc::clone(&c.free_fns),
                lam_id: c.lam_id,
                module: c.module,
                mask: c.mask,
            }))
        }
        PVal::Code(_) => {
            let name = names[*next];
            *next += 1;
            PVal::Code(Expr::Var(name))
        }
    }
}

/// Converts a fully static value back to an interpreter [`Value`]
/// (`None` if it contains code or closures).
pub fn to_value(v: &PVal) -> Option<Value> {
    match v {
        PVal::Nat(n) => Some(Value::Nat(*n)),
        PVal::Bool(b) => Some(Value::Bool(*b)),
        PVal::Nil => Some(Value::Nil),
        PVal::Cons(h, t) => Some(Value::Cons(Rc::new(to_value(h)?), Rc::new(to_value(t)?))),
        PVal::Clo(_) | PVal::Code(_) => None,
    }
}

/// Builds the literal expression denoting a fully static first-order
/// value (no closures). Used when lifting static data into residual code.
pub fn quote_static(v: &PVal) -> Option<Expr> {
    match v {
        PVal::Nat(n) => Some(Expr::Nat(*n)),
        PVal::Bool(b) => Some(Expr::Bool(*b)),
        PVal::Nil => Some(Expr::Nil),
        PVal::Cons(h, t) => Some(Expr::Prim(
            PrimOp::Cons,
            vec![quote_static(h)?, quote_static(t)?],
        )),
        PVal::Code(e) => Some(e.clone()),
        PVal::Clo(_) => None, // closures need the engine's eta-expansion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clo(env: Vec<PVal>) -> PVal {
        PVal::Clo(Rc::new(Closure {
            param: Ident::new("x"),
            body: Arc::new(GExp::Var(0)),
            env: env.into_iter().map(Rc::new).collect(),
            free_fns: Arc::new(vec![QualName::new("P", "power")]),
            lam_id: 7,
            module: ModName::new("B"),
            mask: BtMask::all_static(),
        }))
    }

    #[test]
    fn from_value_converts_data() {
        let v = Value::list(vec![Value::nat(1), Value::bool_(true)]);
        let p = PVal::from_value(&v).unwrap();
        assert!(p.is_fully_static());
        assert_eq!(to_value(&p), Some(v));
    }

    #[test]
    fn split_fully_static_has_no_leaves() {
        let p = PVal::Cons(Rc::new(PVal::Nat(1)), Rc::new(PVal::Nil));
        let mut leaves = Vec::new();
        let k = split(&p, &mut leaves);
        assert!(leaves.is_empty());
        assert_eq!(k, PKey::Cons(Box::new(PKey::Nat(1)), Box::new(PKey::Nil)));
    }

    #[test]
    fn split_collects_dynamic_leaves_in_order() {
        // cons(code(a), cons(2, code(b)))
        let p = PVal::Cons(
            Rc::new(PVal::Code(Expr::Var(Ident::new("a")))),
            Rc::new(PVal::Cons(
                Rc::new(PVal::Nat(2)),
                Rc::new(PVal::Code(Expr::Var(Ident::new("b")))),
            )),
        );
        let mut leaves = Vec::new();
        let k = split(&p, &mut leaves);
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0], Expr::Var(Ident::new("a")));
        assert_eq!(leaves[1], Expr::Var(Ident::new("b")));
        // Skeleton has holes in the right places.
        assert_eq!(
            k,
            PKey::Cons(
                Box::new(PKey::Hole),
                Box::new(PKey::Cons(Box::new(PKey::Nat(2)), Box::new(PKey::Hole)))
            )
        );
    }

    #[test]
    fn all_holes_hash_matches_split_of_code_values() {
        for n in 0..4 {
            let mut leaves = Vec::new();
            let mut acc = SKELETON_SEED;
            for i in 0..n {
                let v = PVal::Code(Expr::Var(Ident::new(format!("x{i}"))));
                let (k, h) = split_hashed(&v, &mut leaves);
                assert_eq!(k, PKey::Hole);
                acc = hash_fold(acc, h);
            }
            assert_eq!(acc, all_holes_hash(n), "n = {n}");
        }
    }

    #[test]
    fn closures_key_on_site_and_static_env() {
        let c1 = clo(vec![PVal::Nat(1), PVal::Code(Expr::Var(Ident::new("z")))]);
        let c2 = clo(vec![PVal::Nat(1), PVal::Code(Expr::Var(Ident::new("w")))]);
        let mut l1 = Vec::new();
        let mut l2 = Vec::new();
        // Same static parts, different dynamic leaves → same key.
        assert_eq!(split(&c1, &mut l1), split(&c2, &mut l2));
        assert_eq!(l1.len(), 1);
        // Different static env → different key.
        let c3 = clo(vec![PVal::Nat(2), PVal::Code(Expr::Var(Ident::new("z")))]);
        let mut l3 = Vec::new();
        assert_ne!(split(&c1, &mut l1), split(&c3, &mut l3));
    }

    #[test]
    fn rebuild_replaces_leaves_with_formals() {
        let p = PVal::Cons(
            Rc::new(PVal::Code(Expr::Nat(13))),
            Rc::new(PVal::Nat(5)),
        );
        let names = vec![Ident::new("d0")];
        let mut next = 0;
        let rebuilt = rebuild(&p, &names, &mut next);
        assert_eq!(next, 1);
        match rebuilt {
            PVal::Cons(h, t) => {
                assert!(matches!(&*h, PVal::Code(Expr::Var(n)) if n.as_str() == "d0"));
                assert!(matches!(&*t, PVal::Nat(5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rebuild_reaches_into_closure_envs() {
        let c = clo(vec![PVal::Code(Expr::Nat(13))]);
        let names = vec![Ident::new("z0")];
        let mut next = 0;
        let rebuilt = rebuild(&c, &names, &mut next);
        match rebuilt {
            PVal::Clo(c2) => {
                assert!(matches!(&*c2.env[0], PVal::Code(Expr::Var(n)) if n.as_str() == "z0"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_fns_sees_through_structure() {
        let p = PVal::Cons(Rc::new(clo(vec![])), Rc::new(PVal::Nil));
        let mut fns = Vec::new();
        p.free_fns(&mut fns);
        assert_eq!(fns, vec![QualName::new("P", "power")]);
        // Functions inside dynamic leaves are NOT collected.
        let dynamic = PVal::Code(Expr::Call(
            mspec_lang::CallName::resolved("X", "f"),
            vec![],
        ));
        let mut fns2 = Vec::new();
        dynamic.free_fns(&mut fns2);
        assert!(fns2.is_empty());
    }

    #[test]
    fn quote_static_builds_literals() {
        let p = PVal::Cons(Rc::new(PVal::Nat(1)), Rc::new(PVal::Nil));
        let e = quote_static(&p).unwrap();
        assert_eq!(
            e,
            Expr::Prim(PrimOp::Cons, vec![Expr::Nat(1), Expr::Nil])
        );
        assert!(quote_static(&clo(vec![])).is_none());
    }

    #[test]
    fn from_value_rejects_closures() {
        use mspec_lang::eval::{ClosureVal, Env};
        let v = Value::Closure(Rc::new(ClosureVal {
            param: Ident::new("x"),
            body: Expr::Var(Ident::new("x")),
            env: Env::empty(),
        }));
        assert!(PVal::from_value(&v).is_none());
    }
}

//! Residual-module emission.
//!
//! The paper (§5) emits residual definitions *as soon as they are
//! constructed* to keep memory consumption minimal, and, because a
//! module's imports are only known after all of its bodies exist, uses
//! two passes: bodies into temporary files first, then headers and
//! imports, then the bodies are copied after them. [`FileSink`]
//! reproduces that scheme literally; [`MemorySink`] is the in-memory
//! equivalent used when the caller wants the residual program as a value.
//!
//! [`assemble`] computes each generated module's imports from its code,
//! checks the generated import graph is acyclic, and never materialises
//! empty modules (they are simply never created, as in the paper).

use crate::error::SpecError;
use mspec_lang::ast::{Def, ModName, Module, Program, QualName};
use mspec_lang::modgraph::ModGraph;
use mspec_lang::pretty::pretty_def;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Receives residual definitions as soon as they are constructed.
pub trait ModuleSink {
    /// Emits one residual definition into a residual module.
    ///
    /// # Errors
    ///
    /// Implementations may fail on I/O.
    fn emit(&mut self, module: &ModName, def: &Def) -> Result<(), SpecError>;
}

/// Collects residual definitions in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    modules: BTreeMap<ModName, Vec<Def>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The collected modules.
    pub fn modules(&self) -> &BTreeMap<ModName, Vec<Def>> {
        &self.modules
    }

    /// Consumes the sink.
    pub fn into_modules(self) -> BTreeMap<ModName, Vec<Def>> {
        self.modules
    }
}

impl ModuleSink for MemorySink {
    fn emit(&mut self, module: &ModName, def: &Def) -> Result<(), SpecError> {
        self.modules.entry(*module).or_default().push(def.clone());
        Ok(())
    }
}

/// Streams residual definitions to per-module temporary body files; a
/// final pass writes each module file as header + imports + body (the
/// paper's two-pass emission).
#[derive(Debug)]
pub struct FileSink {
    dir: PathBuf,
    bodies: BTreeMap<ModName, fs::File>,
}

impl FileSink {
    /// Creates a sink writing into `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn new(dir: impl AsRef<Path>) -> Result<FileSink, SpecError> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(FileSink { dir: dir.as_ref().to_path_buf(), bodies: BTreeMap::new() })
    }

    fn body_path(&self, module: &ModName) -> PathBuf {
        self.dir.join(format!("{module}.body.tmp"))
    }

    /// Final path of a module's emitted source.
    pub fn module_path(&self, module: &ModName) -> PathBuf {
        self.dir.join(format!("{module}.mspec"))
    }

    /// Second pass: writes `Module.mspec` files — header, imports, then
    /// the streamed bodies — and removes the temporaries.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn finish(
        mut self,
        imports: &BTreeMap<ModName, BTreeSet<ModName>>,
    ) -> Result<Vec<PathBuf>, SpecError> {
        // Close body handles before re-reading.
        let modules: Vec<ModName> = self.bodies.keys().cloned().collect();
        self.bodies.clear();
        let mut out = Vec::new();
        for m in modules {
            let body = fs::read_to_string(self.body_path(&m))?;
            let mut text = format!("module {m} where\n");
            if let Some(imps) = imports.get(&m) {
                for i in imps {
                    text.push_str(&format!("import {i}\n"));
                }
            }
            text.push('\n');
            text.push_str(&body);
            let path = self.module_path(&m);
            fs::write(&path, text)?;
            fs::remove_file(self.body_path(&m))?;
            out.push(path);
        }
        Ok(out)
    }
}

impl ModuleSink for FileSink {
    fn emit(&mut self, module: &ModName, def: &Def) -> Result<(), SpecError> {
        if !self.bodies.contains_key(module) {
            let f = fs::File::create(self.body_path(module))?;
            self.bodies.insert(*module, f);
        }
        let f = self.bodies.get_mut(module).expect("just inserted");
        writeln!(f, "{}", pretty_def(def, Some(module)))?;
        Ok(())
    }
}

/// A sink that discards everything (for measuring pure specialisation
/// cost in benchmarks).
#[derive(Debug, Default)]
pub struct NullSink;

impl ModuleSink for NullSink {
    fn emit(&mut self, _module: &ModName, _def: &Def) -> Result<(), SpecError> {
        Ok(())
    }
}

/// The result of a specialisation run: a real, runnable program.
#[derive(Debug, Clone)]
pub struct ResidualProgram {
    /// The residual modules (with computed imports).
    pub program: Program,
    /// The residual entry function.
    pub entry: QualName,
    /// The imports each residual module ended up with (also inside
    /// `program`; kept separately for [`FileSink::finish`]).
    pub imports: BTreeMap<ModName, BTreeSet<ModName>>,
}

/// Assembles residual modules: computes imports from the code, orders
/// modules topologically and checks acyclicity.
///
/// # Errors
///
/// [`SpecError::CyclicResidualImports`] if the generated modules import
/// each other cyclically.
pub fn assemble(
    modules: BTreeMap<ModName, Vec<Def>>,
    entry: QualName,
) -> Result<ResidualProgram, SpecError> {
    let mut imports: BTreeMap<ModName, BTreeSet<ModName>> = BTreeMap::new();
    for (name, defs) in &modules {
        let mut set = BTreeSet::new();
        for d in defs {
            for q in d.body.called_functions() {
                if q.module != *name {
                    set.insert(q.module);
                }
            }
        }
        imports.insert(*name, set);
    }
    let program = Program::new(
        modules
            .into_iter()
            .map(|(name, defs)| {
                let imps = imports[&name].iter().cloned().collect();
                Module::new(name, imps, defs)
            })
            .collect(),
    );
    match ModGraph::new(&program) {
        Ok(_) => Ok(ResidualProgram { program, entry, imports }),
        Err(mspec_lang::LangError::CyclicImports { witness }) => {
            Err(SpecError::CyclicResidualImports { witness })
        }
        Err(other) => Err(SpecError::TypeConfusion(format!(
            "residual module assembly failed: {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::builder::*;

    fn def_calling(name: &str, target_mod: &str, target: &str) -> Def {
        def(name, ["x"], qcall(target_mod, target, [var("x")]))
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut s = MemorySink::new();
        s.emit(&ModName::new("A"), &def("f_1", ["x"], var("x"))).unwrap();
        s.emit(&ModName::new("A"), &def("f_2", ["x"], var("x"))).unwrap();
        assert_eq!(s.modules()[&ModName::new("A")].len(), 2);
    }

    #[test]
    fn assemble_computes_imports_and_orders() {
        let mut mods = BTreeMap::new();
        mods.insert(ModName::new("Main"), vec![def_calling("main_1", "Power", "power_1")]);
        mods.insert(ModName::new("Power"), vec![def("power_1", ["x"], var("x"))]);
        let rp = assemble(mods, QualName::new("Main", "main_1")).unwrap();
        assert_eq!(
            rp.imports[&ModName::new("Main")],
            [ModName::new("Power")].into()
        );
        assert!(rp.imports[&ModName::new("Power")].is_empty());
        // And it is a resolvable program.
        assert!(mspec_lang::resolve::resolve(rp.program.clone()).is_ok());
    }

    #[test]
    fn assemble_rejects_cycles() {
        let mut mods = BTreeMap::new();
        mods.insert(ModName::new("A"), vec![def_calling("f", "B", "g")]);
        mods.insert(ModName::new("B"), vec![def_calling("g", "A", "f")]);
        let err = assemble(mods, QualName::new("A", "f")).unwrap_err();
        assert!(matches!(err, SpecError::CyclicResidualImports { .. }));
    }

    #[test]
    fn no_empty_modules_in_assembly() {
        // Emptiness avoidance is by construction: only emitted modules
        // exist. An assembled program has exactly the emitted modules.
        let mut mods = BTreeMap::new();
        mods.insert(ModName::new("OnlyOne"), vec![def("f", [], nat(1))]);
        let rp = assemble(mods, QualName::new("OnlyOne", "f")).unwrap();
        assert_eq!(rp.program.modules.len(), 1);
    }

    #[test]
    fn file_sink_two_pass_emission() {
        let dir = std::env::temp_dir().join(format!("mspec-sink-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut sink = FileSink::new(&dir).unwrap();
        let m = ModName::new("Power");
        sink.emit(&m, &def("power_1", ["x"], mul(var("x"), var("x")))).unwrap();
        sink.emit(&m, &def("power_2", ["x"], qcall("Power", "power_1", [var("x")]))).unwrap();
        // Body temp file exists during pass one.
        assert!(dir.join("Power.body.tmp").exists());
        let mut imports = BTreeMap::new();
        imports.insert(m, BTreeSet::new());
        let files = sink.finish(&imports).unwrap();
        assert_eq!(files.len(), 1);
        // Temp removed, final file parses as a module.
        assert!(!dir.join("Power.body.tmp").exists());
        let text = fs::read_to_string(&files[0]).unwrap();
        let module = mspec_lang::parser::parse_module(&text).unwrap();
        assert_eq!(module.defs.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_sink_writes_import_lines() {
        let dir = std::env::temp_dir().join(format!("mspec-sink-imp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut sink = FileSink::new(&dir).unwrap();
        let m = ModName::new("Main");
        sink.emit(&m, &def_calling("main_1", "Power", "power_1")).unwrap();
        let mut imports = BTreeMap::new();
        imports.insert(m, [ModName::new("Power")].into());
        let files = sink.finish(&imports).unwrap();
        let text = fs::read_to_string(&files[0]).unwrap();
        assert!(text.contains("import Power"), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.emit(&ModName::new("X"), &def("f", [], nat(1))).unwrap();
    }
}

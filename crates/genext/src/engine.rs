//! The specialisation engine: the "common code" every generating
//! extension links against (§6 reports ~300 lines of Haskell; this is
//! the grown-up Rust version).
//!
//! The engine provides:
//!
//! * the `mk_*` operations — each [`GExp`] node consults its compiled
//!   binding time against the call's mask and either computes or builds
//!   residual code,
//! * `mk_resid` — memoised polyvariant specialisation of named
//!   functions: arguments are split into static skeletons and dynamic
//!   leaves, the skeleton (plus mask) is the memo key, leaves become the
//!   residual function's formal parameters,
//! * coercions, including lifting static data to code and eta-expanding
//!   static closures,
//! * residual-module placement at first-call time (§5) and streamed
//!   emission of finished definitions,
//! * breadth-first (pending list — the paper's choice, "considerably
//!   more space efficient") and depth-first strategies, with the
//!   accounting needed to reproduce that comparison.

use crate::emit::{assemble, MemorySink, ModuleSink, ResidualProgram};
use crate::error::SpecError;
use crate::gexp::{GCoerce, GenProgram, GExp};
use crate::placement::Placer;
use crate::value::{rebuild, split, Closure, PKey, PVal};
use mspec_bta::division::{Division, ParamBt};
use mspec_bta::BtMask;
use mspec_lang::ast::{CallName, Def, Expr, Ident, ModName, PrimOp, QualName};
use mspec_lang::eval::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

/// Order in which discovered specialisations are constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// The paper's choice: queue requests in a pending list; exactly one
    /// specialisation is under construction at any time and finished
    /// bodies stream out immediately.
    BreadthFirst,
    /// Construct requested specialisations immediately, suspending the
    /// current one — simpler, but the suspended partial bodies pile up.
    DepthFirst,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Specialisation order.
    pub strategy: Strategy,
    /// Step budget; [`SpecError::FuelExhausted`] when exceeded.
    pub fuel: u64,
    /// Upper bound on the number of residual definitions. Unbounded
    /// *polyvariance* — ever-growing static data under dynamic control,
    /// e.g. `range a b` with static `a` and dynamic `b` — diverges in
    /// every offline specialiser with this unfolding strategy (the
    /// paper's termination argument covers unfolding, not polyvariant
    /// residualisation); this limit turns that into a prompt, clean
    /// error instead of exhausting memory.
    pub max_specialisations: usize,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            strategy: Strategy::BreadthFirst,
            fuel: 200_000_000,
            max_specialisations: 100_000,
        }
    }
}

/// One entry-function argument in a specialisation request.
#[derive(Debug, Clone)]
pub enum SpecArg {
    /// A known value (becomes static data).
    Static(Value),
    /// Unknown until run time (becomes a formal parameter of the
    /// residual entry function).
    Dynamic,
    /// A list of `n` unknown elements with a known spine (partially
    /// static; becomes `n` formal parameters).
    StaticSpine(usize),
}

/// Counters describing a specialisation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Residual definitions constructed.
    pub specialisations: usize,
    /// `mk_resid` requests answered from the memo table.
    pub memo_hits: usize,
    /// Named calls unfolded instead of residualised.
    pub unfolds: usize,
    /// Evaluation steps performed.
    pub steps: u64,
    /// Peak length of the pending list (breadth-first).
    pub peak_pending: usize,
    /// Peak number of simultaneously open (under-construction) bodies —
    /// always 1 for breadth-first, the suspension depth for depth-first.
    /// This is the paper's space argument in one number.
    pub peak_open: usize,
    /// Total AST nodes across all residual definitions.
    pub residual_nodes: usize,
    /// Residual modules touched.
    pub residual_modules: usize,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SpecKey {
    target: QualName,
    mask: u128,
    keys: Vec<PKey>,
}

/// Where one residual definition came from: the paper's relationship
/// between source functions and their polyvariant specialisations, made
/// inspectable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// The source function that was specialised.
    pub source: QualName,
    /// The binding-time mask of this variant.
    pub mask: BtMask,
    /// Width of the mask (the source signature's variable count).
    pub vars: u32,
    /// The residual definition (module + name).
    pub residual: QualName,
    /// Number of formal parameters of the residual definition (its
    /// dynamic leaves).
    pub formals: usize,
}

struct PendingSpec {
    target: QualName,
    mask: BtMask,
    env: Vec<PVal>,
    resid: QualName,
    formals: Vec<Ident>,
}

/// The specialisation engine over a linked [`GenProgram`].
pub struct Engine<'p> {
    program: &'p GenProgram,
    options: EngineOptions,
    memo: HashMap<SpecKey, QualName>,
    pending: VecDeque<PendingSpec>,
    placer: Placer,
    name_counters: HashMap<QualName, u32>,
    gensym: u64,
    open: usize,
    fuel: u64,
    stats: SpecStats,
    imports: BTreeMap<ModName, BTreeSet<ModName>>,
    provenance: Vec<Provenance>,
}

impl<'p> Engine<'p> {
    /// Creates an engine with the given options.
    pub fn new(program: &'p GenProgram, options: EngineOptions) -> Engine<'p> {
        Engine {
            program,
            options,
            memo: HashMap::new(),
            pending: VecDeque::new(),
            placer: Placer::new(program.graph()),
            name_counters: HashMap::new(),
            gensym: 0,
            open: 0,
            fuel: options.fuel,
            stats: SpecStats::default(),
            imports: BTreeMap::new(),
            provenance: Vec::new(),
        }
    }

    /// Counters for the run so far.
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    /// The imports each residual module has accumulated (for
    /// [`crate::emit::FileSink::finish`]).
    pub fn residual_imports(&self) -> &BTreeMap<ModName, BTreeSet<ModName>> {
        &self.imports
    }

    /// The provenance of every residual definition created so far, in
    /// creation order (the entry first).
    pub fn provenance(&self) -> &[Provenance] {
        &self.provenance
    }

    /// Specialises `entry` with respect to the given arguments and
    /// returns the assembled residual program.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`]; notably [`SpecError::FuelExhausted`] when the
    /// source program diverges on the static inputs.
    pub fn specialise(
        &mut self,
        entry: &QualName,
        args: Vec<SpecArg>,
    ) -> Result<ResidualProgram, SpecError> {
        let mut sink = MemorySink::new();
        let entry_resid = self.specialise_streaming(entry, args, &mut sink)?;
        assemble(sink.into_modules(), entry_resid)
    }

    /// Specialises `entry`, streaming every finished residual definition
    /// to `sink` the moment it is constructed (the paper's low-memory
    /// mode). Returns the residual entry function; imports for the
    /// second emission pass are available from
    /// [`Engine::residual_imports`].
    ///
    /// # Errors
    ///
    /// Any [`SpecError`].
    pub fn specialise_streaming(
        &mut self,
        entry: &QualName,
        args: Vec<SpecArg>,
        sink: &mut dyn ModuleSink,
    ) -> Result<QualName, SpecError> {
        let f = self
            .program
            .function(entry)
            .ok_or_else(|| SpecError::UnknownEntry(entry.clone()))?;
        if f.params.len() != args.len() {
            return Err(SpecError::EntryArity {
                entry: entry.clone(),
                expected: f.params.len(),
                found: args.len(),
            });
        }
        let division = Division(
            args.iter()
                .map(|a| match a {
                    SpecArg::Static(_) => ParamBt::Static,
                    SpecArg::Dynamic => ParamBt::Dynamic,
                    SpecArg::StaticSpine(_) => ParamBt::StaticSpine,
                })
                .collect(),
        );
        let mask = division
            .mask_for(&f.sig)
            .map_err(|e| SpecError::TypeConfusion(e.to_string()))?;

        // Build the argument values; dynamic positions reference the
        // residual entry's formal parameters by their original names.
        let mut vals = Vec::with_capacity(args.len());
        for (a, p) in args.iter().zip(&f.params) {
            vals.push(match a {
                SpecArg::Static(v) => PVal::from_value(v).ok_or_else(|| {
                    SpecError::TypeConfusion(format!(
                        "closure values cannot be specialisation inputs (parameter {p})"
                    ))
                })?,
                SpecArg::Dynamic => PVal::Code(Expr::Var(p.clone())),
                SpecArg::StaticSpine(n) => {
                    let mut list = PVal::Nil;
                    for i in (0..*n).rev() {
                        let name = Ident::new(format!("{p}{i}"));
                        list = PVal::Cons(
                            Rc::new(PVal::Code(Expr::Var(name))),
                            Rc::new(list),
                        );
                    }
                    list
                }
            });
        }

        // The entry is always residualised (it is the program we are
        // generating), keeping its original name.
        let mut leaves = Vec::new();
        let keys: Vec<PKey> = vals.iter().map(|v| split(v, &mut leaves)).collect();
        let key = SpecKey { target: entry.clone(), mask: mask.0, keys };
        let formals: Vec<Ident> = uniquify(
            leaves
                .iter()
                .enumerate()
                .map(|(i, l)| match l {
                    Expr::Var(x) => x.clone(),
                    _ => Ident::new(format!("d{i}")),
                })
                .collect(),
        );
        let mut free = vec![entry.clone()];
        for v in &vals {
            v.free_fns(&mut free);
        }
        let module = self.placer.place(&free, self.program.graph());
        let resid = QualName { module, name: entry.name.clone() };
        self.memo.insert(key, resid.clone());
        self.provenance.push(Provenance {
            source: entry.clone(),
            mask,
            vars: f.sig.vars,
            residual: resid.clone(),
            formals: formals.len(),
        });
        let mut next = 0;
        let env: Vec<PVal> = vals.iter().map(|v| rebuild(v, &formals, &mut next)).collect();
        let spec = PendingSpec { target: entry.clone(), mask, env, resid: resid.clone(), formals };
        self.construct(spec, sink)?;
        self.drain(sink)?;
        Ok(resid)
    }

    fn drain(&mut self, sink: &mut dyn ModuleSink) -> Result<(), SpecError> {
        while let Some(spec) = self.pending.pop_front() {
            self.construct(spec, sink)?;
        }
        Ok(())
    }

    /// Constructs one residual definition (and, depth-first, everything
    /// it transitively requests).
    fn construct(
        &mut self,
        spec: PendingSpec,
        sink: &mut dyn ModuleSink,
    ) -> Result<(), SpecError> {
        self.open += 1;
        self.stats.peak_open = self.stats.peak_open.max(self.open);
        let f = self
            .program
            .function(&spec.target)
            .ok_or_else(|| SpecError::UnknownFunction(spec.target.clone()))?;
        let body = Rc::clone(&f.body);
        let mut env = spec.env;
        let result = self.eval(&body, &mut env, spec.mask, &spec.target.module, sink)?;
        let body_expr = self.lift(result, sink)?;
        let def = Def::new(spec.resid.name.clone(), spec.formals, body_expr);
        self.stats.specialisations += 1;
        self.stats.residual_nodes += def.body.size();
        let imports = self.imports.entry(spec.resid.module.clone()).or_default();
        for q in def.body.called_functions() {
            if q.module != spec.resid.module {
                imports.insert(q.module.clone());
            }
        }
        sink.emit(&spec.resid.module, &def)?;
        self.stats.residual_modules = self.imports.len();
        self.open -= 1;
        Ok(())
    }

    fn step(&mut self) -> Result<(), SpecError> {
        self.stats.steps += 1;
        self.fuel = self.fuel.checked_sub(1).ok_or(SpecError::FuelExhausted)?;
        if self.fuel == 0 {
            return Err(SpecError::FuelExhausted);
        }
        Ok(())
    }

    fn fresh(&mut self, base: &str) -> Ident {
        self.gensym += 1;
        Ident::new(format!("{base}'{}", self.gensym))
    }

    /// `mk_resid` plus the unfold decision: the call side of §4.2.
    fn call(
        &mut self,
        target: &QualName,
        mask: BtMask,
        args: Vec<PVal>,
        sink: &mut dyn ModuleSink,
    ) -> Result<PVal, SpecError> {
        let f = self
            .program
            .function(target)
            .ok_or_else(|| SpecError::UnknownFunction(target.clone()))?;
        debug_assert!(f.sig.satisfies(mask), "instantiation violated {target}'s constraints");
        if f.sig.unfoldable_under(mask) {
            self.stats.unfolds += 1;
            let body = Rc::clone(&f.body);
            let mut env = args;
            return self.eval(&body, &mut env, mask, &target.module, sink);
        }

        // Residualise: split arguments, memoise on the static skeleton.
        let mut leaves = Vec::new();
        let mut keys = Vec::with_capacity(args.len());
        let mut leaf_names: Vec<Ident> = Vec::new();
        for (arg, p) in args.iter().zip(&f.params) {
            let before = leaves.len();
            keys.push(split(arg, &mut leaves));
            let count = leaves.len() - before;
            for j in 0..count {
                // Prefer the leaf's own variable name (the paper's
                // `map_g z ys` keeps the captured `z` recognisable),
                // falling back to the parameter name.
                leaf_names.push(match &leaves[before + j] {
                    Expr::Var(x) => x.clone(),
                    _ if count == 1 => p.clone(),
                    _ => Ident::new(format!("{p}_{j}")),
                });
            }
        }
        let key = SpecKey { target: target.clone(), mask: mask.0, keys };
        if let Some(resid) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            return Ok(PVal::Code(Expr::Call(CallName::from(resid.clone()), leaves)));
        }

        // New specialisation: name it, place it (§5: at first call,
        // before the body exists), then queue or recurse.
        if self.memo.len() >= self.options.max_specialisations {
            return Err(SpecError::TooManySpecialisations {
                limit: self.options.max_specialisations,
                witness: target.clone(),
            });
        }
        let counter = self.name_counters.entry(target.clone()).or_insert(0);
        *counter += 1;
        let resid_name = Ident::new(format!("{}_{}", target.name, counter));
        let mut free = vec![target.clone()];
        for a in &args {
            a.free_fns(&mut free);
        }
        let module = self.placer.place(&free, self.program.graph());
        let resid = QualName { module, name: resid_name };
        self.memo.insert(key, resid.clone());

        let formals = uniquify(leaf_names);
        self.provenance.push(Provenance {
            source: target.clone(),
            mask,
            vars: f.sig.vars,
            residual: resid.clone(),
            formals: formals.len(),
        });
        let mut next = 0;
        let env: Vec<PVal> = args.iter().map(|a| rebuild(a, &formals, &mut next)).collect();
        let spec = PendingSpec {
            target: target.clone(),
            mask,
            env,
            resid: resid.clone(),
            formals,
        };
        match self.options.strategy {
            Strategy::BreadthFirst => {
                self.pending.push_back(spec);
                self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
            }
            Strategy::DepthFirst => self.construct(spec, sink)?,
        }
        Ok(PVal::Code(Expr::Call(CallName::from(resid), leaves)))
    }

    /// Evaluates a generating-extension expression under a binding-time
    /// mask. `module` is the module the expression's source occurs in
    /// (for closure identity and placement).
    fn eval(
        &mut self,
        e: &GExp,
        env: &mut Vec<PVal>,
        mask: BtMask,
        module: &ModName,
        sink: &mut dyn ModuleSink,
    ) -> Result<PVal, SpecError> {
        self.step()?;
        match e {
            GExp::Nat(n) => Ok(PVal::Nat(*n)),
            GExp::Bool(b) => Ok(PVal::Bool(*b)),
            GExp::Nil => Ok(PVal::Nil),
            GExp::Var(i) => Ok(env[*i as usize].clone()),
            GExp::Prim(op, code, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, mask, module, sink)?);
                }
                if code.is_dynamic(mask) {
                    let mut lifted = Vec::with_capacity(vals.len());
                    for v in vals {
                        lifted.push(self.lift(v, sink)?);
                    }
                    Ok(PVal::Code(Expr::Prim(*op, lifted)))
                } else {
                    static_prim(*op, vals)
                }
            }
            GExp::If(code, c, t, f) => {
                let cv = self.eval(c, env, mask, module, sink)?;
                if code.is_dynamic(mask) {
                    let tv = self.eval(t, env, mask, module, sink)?;
                    let fv = self.eval(f, env, mask, module, sink)?;
                    Ok(PVal::Code(Expr::If(
                        Box::new(self.lift(cv, sink)?),
                        Box::new(self.lift(tv, sink)?),
                        Box::new(self.lift(fv, sink)?),
                    )))
                } else {
                    match cv {
                        PVal::Bool(true) => self.eval(t, env, mask, module, sink),
                        PVal::Bool(false) => self.eval(f, env, mask, module, sink),
                        other => Err(SpecError::TypeConfusion(format!(
                            "static conditional on non-boolean {other:?}"
                        ))),
                    }
                }
            }
            GExp::Call { target, inst, args } => {
                let mut callee_mask = BtMask::all_static();
                for (i, code) in inst.iter().enumerate() {
                    if code.is_dynamic(mask) {
                        callee_mask = callee_mask.set_dynamic(i as u32);
                    }
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, mask, module, sink)?);
                }
                self.call(target, callee_mask, vals, sink)
            }
            GExp::Lam { param, body, captured, free_fns, lam_id } => {
                let captured_vals = captured.iter().map(|s| env[*s as usize].clone()).collect();
                Ok(PVal::Clo(Rc::new(Closure {
                    param: param.clone(),
                    body: Rc::clone(body),
                    env: captured_vals,
                    free_fns: Rc::clone(free_fns),
                    lam_id: *lam_id,
                    module: module.clone(),
                    mask,
                })))
            }
            GExp::App(code, f, a) => {
                let fv = self.eval(f, env, mask, module, sink)?;
                let av = self.eval(a, env, mask, module, sink)?;
                if code.is_dynamic(mask) {
                    Ok(PVal::Code(Expr::App(
                        Box::new(self.lift(fv, sink)?),
                        Box::new(self.lift(av, sink)?),
                    )))
                } else {
                    match fv {
                        PVal::Clo(c) => self.apply_closure(&c, av, sink),
                        other => Err(SpecError::TypeConfusion(format!(
                            "static application of non-closure {other:?}"
                        ))),
                    }
                }
            }
            GExp::Let(rhs, body) => {
                let v = self.eval(rhs, env, mask, module, sink)?;
                env.push(v);
                let r = self.eval(body, env, mask, module, sink);
                env.pop();
                r
            }
            GExp::Coerce(spec, inner) => {
                let v = self.eval(inner, env, mask, module, sink)?;
                self.coerce(spec, v, mask, sink)
            }
        }
    }

    /// Unfolds a static closure: evaluates its generating function on the
    /// argument, under the closure's *origin* mask (its binding times
    /// refer to the signature variables of the function it was written
    /// in).
    fn apply_closure(
        &mut self,
        c: &Closure,
        arg: PVal,
        sink: &mut dyn ModuleSink,
    ) -> Result<PVal, SpecError> {
        let mut env: Vec<PVal> = c.env.clone();
        env.push(arg);
        let body = Rc::clone(&c.body);
        self.eval(&body, &mut env, c.mask, &c.module, sink)
    }

    /// Applies a compiled coercion to a value.
    fn coerce(
        &mut self,
        spec: &GCoerce,
        v: PVal,
        mask: BtMask,
        sink: &mut dyn ModuleSink,
    ) -> Result<PVal, SpecError> {
        match spec {
            GCoerce::Id => Ok(v),
            GCoerce::Base { from, to } | GCoerce::Fun { from, to } => {
                if !from.is_dynamic(mask) && to.is_dynamic(mask) {
                    Ok(PVal::Code(self.lift(v, sink)?))
                } else {
                    Ok(v)
                }
            }
            GCoerce::List { from, to, elem, elem_identity } => {
                if from.is_dynamic(mask) {
                    Ok(v) // already code
                } else if to.is_dynamic(mask) {
                    Ok(PVal::Code(self.lift(v, sink)?))
                } else if *elem_identity {
                    Ok(v)
                } else {
                    self.coerce_spine(elem, v, mask, sink)
                }
            }
        }
    }

    fn coerce_spine(
        &mut self,
        elem: &GCoerce,
        v: PVal,
        mask: BtMask,
        sink: &mut dyn ModuleSink,
    ) -> Result<PVal, SpecError> {
        match v {
            PVal::Nil => Ok(PVal::Nil),
            PVal::Cons(h, t) => {
                let h2 = self.coerce(elem, (*h).clone(), mask, sink)?;
                let t2 = self.coerce_spine(elem, (*t).clone(), mask, sink)?;
                Ok(PVal::Cons(Rc::new(h2), Rc::new(t2)))
            }
            other => Err(SpecError::TypeConfusion(format!(
                "static-spine coercion applied to {other:?}"
            ))),
        }
    }

    /// Lifts a value to residual code: literals for data, eta-expansion
    /// for static closures (specialising the closure body with a fresh
    /// dynamic variable).
    fn lift(&mut self, v: PVal, sink: &mut dyn ModuleSink) -> Result<Expr, SpecError> {
        match v {
            PVal::Code(e) => Ok(e),
            PVal::Nat(n) => Ok(Expr::Nat(n)),
            PVal::Bool(b) => Ok(Expr::Bool(b)),
            PVal::Nil => Ok(Expr::Nil),
            PVal::Cons(h, t) => {
                let h2 = self.lift((*h).clone(), sink)?;
                let t2 = self.lift((*t).clone(), sink)?;
                Ok(Expr::Prim(PrimOp::Cons, vec![h2, t2]))
            }
            PVal::Clo(c) => {
                let x = self.fresh(c.param.as_str());
                let body = self.apply_closure(&c, PVal::Code(Expr::Var(x.clone())), sink)?;
                let body = self.lift(body, sink)?;
                Ok(Expr::Lam(x, Box::new(body)))
            }
        }
    }
}

/// Performs a static primitive on partial values.
fn static_prim(op: PrimOp, vals: Vec<PVal>) -> Result<PVal, SpecError> {
    use PrimOp::*;
    let nat = |v: &PVal| match v {
        PVal::Nat(n) => Ok(*n),
        other => Err(SpecError::TypeConfusion(format!(
            "static {} on non-natural {other:?}",
            op.symbol()
        ))),
    };
    let boolean = |v: &PVal| match v {
        PVal::Bool(b) => Ok(*b),
        other => Err(SpecError::TypeConfusion(format!(
            "static {} on non-boolean {other:?}",
            op.symbol()
        ))),
    };
    match op {
        Add => Ok(PVal::Nat(nat(&vals[0])?.wrapping_add(nat(&vals[1])?))),
        Sub => Ok(PVal::Nat(nat(&vals[0])?.saturating_sub(nat(&vals[1])?))),
        Mul => Ok(PVal::Nat(nat(&vals[0])?.wrapping_mul(nat(&vals[1])?))),
        Div => {
            let n0 = nat(&vals[0])?;
            match n0.checked_div(nat(&vals[1])?) {
                Some(q) => Ok(PVal::Nat(q)),
                None => Err(SpecError::DivByZero),
            }
        }
        Eq => Ok(PVal::Bool(nat(&vals[0])? == nat(&vals[1])?)),
        Lt => Ok(PVal::Bool(nat(&vals[0])? < nat(&vals[1])?)),
        Leq => Ok(PVal::Bool(nat(&vals[0])? <= nat(&vals[1])?)),
        And => Ok(PVal::Bool(boolean(&vals[0])? && boolean(&vals[1])?)),
        Or => Ok(PVal::Bool(boolean(&vals[0])? || boolean(&vals[1])?)),
        Not => Ok(PVal::Bool(!boolean(&vals[0])?)),
        Cons => Ok(PVal::Cons(
            Rc::new(vals[0].clone()),
            Rc::new(vals[1].clone()),
        )),
        Head => match &vals[0] {
            PVal::Cons(h, _) => Ok((**h).clone()),
            PVal::Nil => Err(SpecError::EmptyList("head")),
            other => Err(SpecError::TypeConfusion(format!("static head of {other:?}"))),
        },
        Tail => match &vals[0] {
            PVal::Cons(_, t) => Ok((**t).clone()),
            PVal::Nil => Err(SpecError::EmptyList("tail")),
            other => Err(SpecError::TypeConfusion(format!("static tail of {other:?}"))),
        },
        Null => match &vals[0] {
            PVal::Nil => Ok(PVal::Bool(true)),
            PVal::Cons(..) => Ok(PVal::Bool(false)),
            other => Err(SpecError::TypeConfusion(format!("static null of {other:?}"))),
        },
    }
}

/// Makes names unique by appending primed counters to duplicates.
fn uniquify(names: Vec<Ident>) -> Vec<Ident> {
    let mut seen: BTreeSet<Ident> = BTreeSet::new();
    let mut out = Vec::with_capacity(names.len());
    for n in names {
        if seen.insert(n.clone()) {
            out.push(n);
            continue;
        }
        let mut k = 2;
        loop {
            let candidate = Ident::new(format!("{n}'{k}"));
            if seen.insert(candidate.clone()) {
                out.push(candidate);
                break;
            }
            k += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniquify_keeps_distinct_names() {
        let names = vec![Ident::new("a"), Ident::new("b")];
        assert_eq!(uniquify(names.clone()), names);
    }

    #[test]
    fn uniquify_renames_duplicates() {
        let names = vec![Ident::new("a"), Ident::new("a"), Ident::new("a")];
        let out = uniquify(names);
        assert_eq!(out[0].as_str(), "a");
        assert_eq!(out[1].as_str(), "a'2");
        assert_eq!(out[2].as_str(), "a'3");
    }

    #[test]
    fn static_prim_arithmetic() {
        assert!(matches!(
            static_prim(PrimOp::Add, vec![PVal::Nat(2), PVal::Nat(3)]),
            Ok(PVal::Nat(5))
        ));
        assert!(matches!(
            static_prim(PrimOp::Sub, vec![PVal::Nat(2), PVal::Nat(3)]),
            Ok(PVal::Nat(0))
        ));
        assert!(matches!(
            static_prim(PrimOp::Div, vec![PVal::Nat(1), PVal::Nat(0)]),
            Err(SpecError::DivByZero)
        ));
    }

    #[test]
    fn static_prim_lists_allow_dynamic_elements() {
        // A partially static list: static cons with a code head.
        let code = PVal::Code(Expr::Var(Ident::new("x")));
        let cons = static_prim(PrimOp::Cons, vec![code.clone(), PVal::Nil]).unwrap();
        let head = static_prim(PrimOp::Head, vec![cons.clone()]).unwrap();
        assert!(matches!(head, PVal::Code(_)));
        assert!(matches!(
            static_prim(PrimOp::Null, vec![cons]),
            Ok(PVal::Bool(false))
        ));
    }

    #[test]
    fn static_prim_type_confusion_is_reported() {
        assert!(matches!(
            static_prim(PrimOp::Add, vec![PVal::Bool(true), PVal::Nat(1)]),
            Err(SpecError::TypeConfusion(_))
        ));
        assert!(matches!(
            static_prim(PrimOp::Head, vec![PVal::Nat(1)]),
            Err(SpecError::TypeConfusion(_))
        ));
    }

    // Engine-level behaviour is exercised end-to-end in the cogen crate
    // (which can build GenPrograms from source) and the integration
    // tests; here we cover the pure helpers.
}

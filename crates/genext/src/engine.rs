//! The specialisation engine: the "common code" every generating
//! extension links against (§6 reports ~300 lines of Haskell; this is
//! the grown-up Rust version).
//!
//! The engine provides:
//!
//! * the `mk_*` operations — each [`GExp`] node consults its compiled
//!   binding time against the call's mask and either computes or builds
//!   residual code,
//! * `mk_resid` — memoised polyvariant specialisation of named
//!   functions: arguments are split into static skeletons and dynamic
//!   leaves, the skeleton (plus mask) is the memo key, leaves become the
//!   residual function's formal parameters,
//! * coercions, including lifting static data to code and eta-expanding
//!   static closures,
//! * residual-module placement at first-call time (§5) and streamed
//!   emission of finished definitions,
//! * breadth-first (pending list — the paper's choice, "considerably
//!   more space efficient") and depth-first strategies, with the
//!   accounting needed to reproduce that comparison.
//!
//! Performance notes: environments hold `Rc<PVal>`, so a variable lookup
//! is a reference-count bump and applying a closure shares its captured
//! frame instead of copying it. The memo table is probed by a structural
//! hash computed during splitting ([`split_hashed`]); the full [`PKey`]
//! skeletons are only compared on a hash collision.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::budget::{BudgetResource, CancelToken, Fuel, OnExhaustion, SpecBudget};
use crate::emit::{assemble, MemorySink, ModuleSink, ResidualProgram};
use crate::error::SpecError;
use crate::gexp::{GCoerce, GenProgram, GExp};
use crate::placement::Placer;
use crate::value::{
    all_holes_hash, hash_fold, rebuild, split_hashed, Closure, PKey, PVal, SKELETON_SEED,
};
use mspec_bta::division::{Division, ParamBt};
use mspec_bta::BtMask;
use mspec_lang::ast::{CallName, Def, Expr, Ident, ModName, PrimOp, QualName};
use mspec_lang::eval::Value;
use mspec_lang::{FromJson, Json, JsonError, ToJson};
use mspec_telemetry::{Decision, Recorder, SpecEvent};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Order in which discovered specialisations are constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's choice: queue requests in a pending list; exactly one
    /// specialisation is under construction at any time and finished
    /// bodies stream out immediately.
    BreadthFirst,
    /// Construct requested specialisations immediately, suspending the
    /// current one — simpler, but the suspended partial bodies pile up.
    DepthFirst,
}

/// Per-operation cost model: how much work each variable lookup and memo
/// probe performs.
///
/// [`CostModel::Legacy`] replicates the engine's pre-interning costs —
/// deep value clones on every variable lookup, lambda capture and
/// closure application, and memo keys built from freshly formatted
/// strings plus deep skeleton copies. It exists so benchmarks can
/// measure the old and new engines in the *same run* on the *same
/// machine*; residual output is identical under both models, only the
/// constant factors differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Shared `Rc` environments and hash-probed memoisation (default).
    #[default]
    Interned,
    /// Pre-interning behaviour: deep clones and string-keyed memoisation.
    Legacy,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Specialisation order.
    pub strategy: Strategy,
    /// Resource limits for the session (step fuel, specialisation count,
    /// pending/suspension depth, residual size). See [`SpecBudget`].
    pub budget: SpecBudget,
    /// What happens when a budget resource runs out: a structured
    /// [`SpecError::BudgetExhausted`], or generalising fallback — demote
    /// the offending call to a fully-dynamic residual call so the
    /// session always terminates with a correct program.
    pub on_exhaustion: OnExhaustion,
    /// Per-operation cost model (benchmarking aid; see [`CostModel`]).
    pub cost_model: CostModel,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            strategy: Strategy::BreadthFirst,
            budget: SpecBudget::default(),
            on_exhaustion: OnExhaustion::Error,
            cost_model: CostModel::Interned,
        }
    }
}

/// One entry-function argument in a specialisation request.
#[derive(Debug, Clone)]
pub enum SpecArg {
    /// A known value (becomes static data).
    Static(Value),
    /// Unknown until run time (becomes a formal parameter of the
    /// residual entry function).
    Dynamic,
    /// A list of `n` unknown elements with a known spine (partially
    /// static; becomes `n` formal parameters).
    StaticSpine(usize),
}

/// Counters describing a specialisation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Residual definitions constructed.
    pub specialisations: usize,
    /// `mk_resid` memo-table lookups performed.
    pub memo_probes: usize,
    /// `mk_resid` requests answered from the memo table.
    pub memo_hits: usize,
    /// Named calls unfolded instead of residualised.
    pub unfolds: usize,
    /// Evaluation steps performed.
    pub steps: u64,
    /// Peak length of the pending list (breadth-first).
    pub peak_pending: usize,
    /// Peak number of simultaneously open (under-construction) bodies —
    /// always 1 for breadth-first, the suspension depth for depth-first.
    /// This is the paper's space argument in one number.
    pub peak_open: usize,
    /// Total AST nodes across all residual definitions.
    pub residual_nodes: usize,
    /// Residual modules touched.
    pub residual_modules: usize,
    /// Calls demoted to fully-dynamic residual calls by the
    /// generalising fallback ([`OnExhaustion::Generalise`]).
    pub generalised: usize,
}

impl SpecStats {
    /// Presentation form for the CLI's unified stats formatter.
    pub fn summary(&self, entry: impl Into<String>) -> mspec_telemetry::SpecSummary {
        mspec_telemetry::SpecSummary {
            entry: entry.into(),
            specialisations: self.specialisations as u64,
            memo_probes: self.memo_probes as u64,
            memo_hits: self.memo_hits as u64,
            unfolds: self.unfolds as u64,
            steps: self.steps,
            peak_pending: self.peak_pending as u64,
            residual_nodes: self.residual_nodes as u64,
            generalised: self.generalised as u64,
        }
    }
}

impl ToJson for SpecStats {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("specialisations", Json::Num(self.specialisations as u128)),
            ("memo_probes", Json::Num(self.memo_probes as u128)),
            ("memo_hits", Json::Num(self.memo_hits as u128)),
            ("unfolds", Json::Num(self.unfolds as u128)),
            ("steps", Json::Num(u128::from(self.steps))),
            ("peak_pending", Json::Num(self.peak_pending as u128)),
            ("peak_open", Json::Num(self.peak_open as u128)),
            ("residual_nodes", Json::Num(self.residual_nodes as u128)),
            ("residual_modules", Json::Num(self.residual_modules as u128)),
            ("generalised", Json::Num(self.generalised as u128)),
        ])
    }
}

impl FromJson for SpecStats {
    fn from_json_value(j: &Json) -> Result<SpecStats, JsonError> {
        Ok(SpecStats {
            specialisations: j.get("specialisations")?.as_usize()?,
            memo_probes: j.get("memo_probes")?.as_usize()?,
            memo_hits: j.get("memo_hits")?.as_usize()?,
            unfolds: j.get("unfolds")?.as_usize()?,
            steps: j.get("steps")?.as_u64()?,
            peak_pending: j.get("peak_pending")?.as_usize()?,
            peak_open: j.get("peak_open")?.as_usize()?,
            residual_nodes: j.get("residual_nodes")?.as_usize()?,
            residual_modules: j.get("residual_modules")?.as_usize()?,
            generalised: j.get("generalised")?.as_usize()?,
        })
    }
}

/// Hash-first memo key: the structural hash of the split skeletons
/// stands in for the skeletons themselves, so a probe compares three
/// machine words. Full [`PKey`] vectors are kept in the bucket and only
/// compared when hashes collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SpecKey {
    pub(crate) target: QualName,
    pub(crate) mask: u128,
    pub(crate) hash: u64,
}

/// Where one residual definition came from: the paper's relationship
/// between source functions and their polyvariant specialisations, made
/// inspectable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The source function that was specialised.
    pub source: QualName,
    /// The binding-time mask of this variant.
    pub mask: BtMask,
    /// Width of the mask (the source signature's variable count).
    pub vars: u32,
    /// The residual definition (module + name).
    pub residual: QualName,
    /// Number of formal parameters of the residual definition (its
    /// dynamic leaves).
    pub formals: usize,
}

pub(crate) struct PendingSpec {
    target: QualName,
    mask: BtMask,
    env: Vec<Rc<PVal>>,
    resid: QualName,
    formals: Vec<Ident>,
    /// Structural hash of the request's static skeleton (for budget
    /// diagnostics).
    hash: u64,
}

/// The specialisation engine over a linked [`GenProgram`].
pub struct Engine<'p> {
    pub(crate) program: &'p GenProgram,
    pub(crate) options: EngineOptions,
    pub(crate) memo: HashMap<SpecKey, Vec<(Vec<PKey>, QualName)>>,
    legacy_memo: HashMap<(String, u128, Vec<PKey>), QualName>,
    pub(crate) pending: VecDeque<PendingSpec>,
    pub(crate) placer: Placer,
    pub(crate) name_counters: HashMap<QualName, u32>,
    pub(crate) gensym: u64,
    open: usize,
    pub(crate) fuel: Fuel,
    /// The stack of specialisation/unfold requests currently being
    /// served: `(target, skeleton hash)`, outermost first. Snapshotted
    /// into [`SpecError::BudgetExhausted`] so a diverging cycle is
    /// visible in the error.
    pub(crate) chain: Vec<(QualName, u64)>,
    pub(crate) stats: SpecStats,
    pub(crate) imports: BTreeMap<ModName, BTreeSet<ModName>>,
    pub(crate) provenance: Vec<Provenance>,
    pub(crate) recorder: Recorder,
    /// External cancellation handle (deadline watchdogs, disconnecting
    /// clients); polled on the step-fuel path. `None` = never cancelled.
    cancel: Option<CancelToken>,
    /// Residual definitions currently under construction, innermost
    /// last — the *parent* attribution for decision events (which
    /// residual body a request arose inside).
    pub(crate) resid_stack: Vec<QualName>,
    /// Present when this engine is a *worker* of the concurrent driver
    /// ([`crate::parallel`]): naming side effects (fresh residual names,
    /// gensyms, placement) are replaced by placeholders and recorded for
    /// the driver's deterministic replay, and step fuel is claimed in
    /// chunks from a pool shared with the other workers.
    pub(crate) par: Option<Box<crate::parallel::ParCtx>>,
}

impl<'p> Engine<'p> {
    /// Creates an engine with the given options.
    pub fn new(program: &'p GenProgram, options: EngineOptions) -> Engine<'p> {
        Engine::with_recorder(program, options, Recorder::disabled())
    }

    /// [`Engine::new`] with a telemetry recorder: the engine emits one
    /// decision event per specialisation request (entry, unfold, memo
    /// hit, residualise, generalise) plus session counters and a
    /// pending-depth histogram.
    pub fn with_recorder(
        program: &'p GenProgram,
        options: EngineOptions,
        recorder: Recorder,
    ) -> Engine<'p> {
        Engine {
            program,
            options,
            memo: HashMap::new(),
            legacy_memo: HashMap::new(),
            pending: VecDeque::new(),
            placer: Placer::new(program.graph()),
            name_counters: HashMap::new(),
            gensym: 0,
            open: 0,
            fuel: Fuel::new(options.budget.steps),
            chain: Vec::new(),
            stats: SpecStats::default(),
            imports: BTreeMap::new(),
            provenance: Vec::new(),
            recorder,
            cancel: None,
            resid_stack: Vec::new(),
            par: None,
        }
    }

    /// Attaches a [`CancelToken`]: when some other thread fires it, the
    /// session aborts with [`SpecError::Cancelled`] at the next check
    /// point (at most [`CancelToken::CHECK_MASK`]` + 1` steps later).
    /// This is the hook wall-clock deadlines hang off — a watchdog owns
    /// the clock, the engine only ever polls a flag.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// One decision event, fully attributed: what was requested, what
    /// was decided and why, where the request arose, and how much
    /// budget headroom was left. No-op (and no formatting) when the
    /// recorder is disabled.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_decision(
        &self,
        decision: Decision,
        target: &QualName,
        mask: BtMask,
        vars: u32,
        skeleton_hash: u64,
        probe: bool,
        residual: Option<&QualName>,
        witness: String,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let mut ev = SpecEvent::request(target.to_string(), mask.render(vars));
        ev.decision = decision;
        ev.skeleton_hash = skeleton_hash;
        ev.probe = probe;
        ev.residual = residual.map(QualName::to_string).unwrap_or_default();
        ev.witness = witness;
        ev.parent = self.resid_stack.last().map(QualName::to_string).unwrap_or_default();
        ev.chain_depth = self.chain.len() as u64;
        ev.pending = self.pending.len() as u64;
        ev.fuel_left = self.fuel.remaining();
        ev.specs_left = self
            .options
            .budget
            .max_specialisations
            .saturating_sub(self.provenance.len()) as u64;
        self.recorder.spec(ev);
    }

    /// Counters for the run so far.
    pub fn stats(&self) -> &SpecStats {
        &self.stats
    }

    /// The imports each residual module has accumulated (for
    /// [`crate::emit::FileSink::finish`]).
    pub fn residual_imports(&self) -> &BTreeMap<ModName, BTreeSet<ModName>> {
        &self.imports
    }

    /// The provenance of every residual definition created so far, in
    /// creation order (the entry first).
    pub fn provenance(&self) -> &[Provenance] {
        &self.provenance
    }

    /// Specialises `entry` with respect to the given arguments and
    /// returns the assembled residual program.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`]; notably [`SpecError::BudgetExhausted`] when
    /// the source program diverges on the static inputs and the policy
    /// is [`OnExhaustion::Error`].
    pub fn specialise(
        &mut self,
        entry: &QualName,
        args: Vec<SpecArg>,
    ) -> Result<ResidualProgram, SpecError> {
        let mut sink = MemorySink::new();
        let entry_resid = self.specialise_streaming(entry, args, &mut sink)?;
        assemble(sink.into_modules(), entry_resid)
    }

    /// Specialises `entry`, streaming every finished residual definition
    /// to `sink` the moment it is constructed (the paper's low-memory
    /// mode). Returns the residual entry function; imports for the
    /// second emission pass are available from
    /// [`Engine::residual_imports`].
    ///
    /// # Errors
    ///
    /// Any [`SpecError`].
    pub fn specialise_streaming(
        &mut self,
        entry: &QualName,
        args: Vec<SpecArg>,
        sink: &mut dyn ModuleSink,
    ) -> Result<QualName, SpecError> {
        let f = self
            .program
            .function(entry)
            .ok_or(SpecError::UnknownEntry(*entry))?;
        if f.params.len() != args.len() {
            return Err(SpecError::EntryArity {
                entry: *entry,
                expected: f.params.len(),
                found: args.len(),
            });
        }
        let division = Division(
            args.iter()
                .map(|a| match a {
                    SpecArg::Static(_) => ParamBt::Static,
                    SpecArg::Dynamic => ParamBt::Dynamic,
                    SpecArg::StaticSpine(_) => ParamBt::StaticSpine,
                })
                .collect(),
        );
        let mask = division
            .mask_for(&f.sig)
            .map_err(|e| SpecError::TypeConfusion(e.to_string()))?;

        // Build the argument values; dynamic positions reference the
        // residual entry's formal parameters by their original names.
        let mut vals = Vec::with_capacity(args.len());
        for (a, p) in args.iter().zip(&f.params) {
            vals.push(match a {
                SpecArg::Static(v) => PVal::from_value(v).ok_or_else(|| {
                    SpecError::TypeConfusion(format!(
                        "closure values cannot be specialisation inputs (parameter {p})"
                    ))
                })?,
                SpecArg::Dynamic => PVal::Code(Expr::Var(*p)),
                SpecArg::StaticSpine(n) => {
                    let mut list = PVal::Nil;
                    for i in (0..*n).rev() {
                        let name = Ident::new(format!("{p}{i}"));
                        list = PVal::Cons(
                            Rc::new(PVal::Code(Expr::Var(name))),
                            Rc::new(list),
                        );
                    }
                    list
                }
            });
        }

        // The entry is always residualised (it is the program we are
        // generating), keeping its original name.
        let mut leaves = Vec::new();
        let mut keys = Vec::with_capacity(vals.len());
        let mut hash = SKELETON_SEED;
        for v in &vals {
            let (k, h) = split_hashed(v, &mut leaves);
            hash = hash_fold(hash, h);
            keys.push(k);
        }
        let formals: Vec<Ident> = uniquify(
            leaves
                .iter()
                .enumerate()
                .map(|(i, l)| match l {
                    Expr::Var(x) => *x,
                    _ => Ident::new(format!("d{i}")),
                })
                .collect(),
        );
        let mut free = vec![*entry];
        for v in &vals {
            v.free_fns(&mut free);
        }
        let module = self.placer.place(&free, self.program.graph());
        let resid = QualName { module, name: entry.name };
        self.memo_insert(*entry, mask, keys, hash, resid);
        self.provenance.push(Provenance {
            source: *entry,
            mask,
            vars: f.sig.vars,
            residual: resid,
            formals: formals.len(),
        });
        self.record_decision(
            Decision::Entry,
            entry,
            mask,
            f.sig.vars,
            hash,
            false,
            Some(&resid),
            String::new(),
        );
        let mut next = 0;
        let env: Vec<Rc<PVal>> =
            vals.iter().map(|v| Rc::new(rebuild(v, &formals, &mut next))).collect();
        let spec = PendingSpec { target: *entry, mask, env, resid, formals, hash };
        self.construct(spec, sink)?;
        self.drain(sink)?;
        self.flush_counters();
        Ok(resid)
    }

    /// Exports the session counters and the peak gauges once, at the
    /// end of a successful specialisation.
    pub(crate) fn flush_counters(&self) {
        if !self.recorder.is_enabled() {
            return;
        }
        let s = &self.stats;
        self.recorder.count("genext.specialisations", s.specialisations as u64);
        self.recorder.count("genext.memo_probes", s.memo_probes as u64);
        self.recorder.count("genext.memo_hits", s.memo_hits as u64);
        self.recorder.count("genext.unfolds", s.unfolds as u64);
        self.recorder.count("genext.steps", s.steps);
        self.recorder.count("genext.residual_nodes", s.residual_nodes as u64);
        self.recorder.count("genext.residual_modules", s.residual_modules as u64);
        self.recorder.count("genext.generalised", s.generalised as u64);
        self.recorder.count_max("genext.peak_pending", s.peak_pending as u64);
        self.recorder.count_max("genext.peak_open", s.peak_open as u64);
    }

    fn drain(&mut self, sink: &mut dyn ModuleSink) -> Result<(), SpecError> {
        while let Some(spec) = self.pending.pop_front() {
            self.construct(spec, sink)?;
        }
        Ok(())
    }

    /// Constructs one residual definition (and, depth-first, everything
    /// it transitively requests).
    fn construct(
        &mut self,
        spec: PendingSpec,
        sink: &mut dyn ModuleSink,
    ) -> Result<(), SpecError> {
        self.open += 1;
        self.stats.peak_open = self.stats.peak_open.max(self.open);
        if self.options.on_exhaustion == OnExhaustion::Error
            && self.open > self.options.budget.max_pending
        {
            return Err(
                self.budget_error(BudgetResource::Pending, Some((spec.target, spec.hash)))
            );
        }
        let f = self
            .program
            .function(&spec.target)
            .ok_or(SpecError::UnknownFunction(spec.target))?;
        let body = Arc::clone(&f.body);
        let mut env = spec.env;
        self.chain.push((spec.target, spec.hash));
        self.resid_stack.push(spec.resid);
        let result = self.eval(&body, &mut env, spec.mask, spec.target.module, sink)?;
        let body_expr = self.lift_owned(result, sink)?;
        if self.options.cost_model == CostModel::Legacy {
            // The string-based engine allocated one heap `String` per
            // identifier occurrence while constructing this body (every
            // `Expr::Var`/`Call` node carried owned strings).
            legacy_expr_cost(&body_expr);
            legacy_name_cost(&spec.resid);
        }
        let def = Def::new(spec.resid.name, spec.formals, body_expr);
        self.stats.specialisations += 1;
        self.stats.residual_nodes += def.body.size();
        if self.options.on_exhaustion == OnExhaustion::Error
            && self.stats.residual_nodes > self.options.budget.max_residual_nodes
        {
            return Err(
                self.budget_error(BudgetResource::ResidualNodes, Some((spec.target, spec.hash)))
            );
        }
        let imports = self.imports.entry(spec.resid.module).or_default();
        for q in def.body.called_functions() {
            if q.module != spec.resid.module {
                imports.insert(q.module);
            }
        }
        sink.emit(&spec.resid.module, &def)?;
        self.stats.residual_modules = self.imports.len();
        self.resid_stack.pop();
        self.chain.pop();
        self.open -= 1;
        Ok(())
    }

    /// Spends one unit of step fuel. Under [`OnExhaustion::Generalise`]
    /// an empty meter is *not* an error here: evaluation between named
    /// calls is structural and terminates on its own, and the next
    /// `call` checks the budget and demotes. Erroring mid-evaluation
    /// would leave no call site to generalise.
    fn step(&mut self) -> Result<(), SpecError> {
        self.stats.steps += 1;
        if self.stats.steps & CancelToken::CHECK_MASK == 0 {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(self.cancel_error());
                }
            }
        }
        if let Some(par) = self.par.as_mut() {
            // Worker mode: fuel comes from a pool shared with the other
            // workers (claimed in chunks to keep contention negligible);
            // the policy is always `Error` here (the driver falls back
            // to the sequential engine otherwise).
            if !par.spend_fuel() {
                return Err(self.budget_error(BudgetResource::Steps, None));
            }
            return Ok(());
        }
        if !self.fuel.spend() && self.options.on_exhaustion == OnExhaustion::Error {
            return Err(self.budget_error(BudgetResource::Steps, None));
        }
        Ok(())
    }

    /// A [`SpecError::Cancelled`] naming the innermost in-flight request
    /// (mirrors [`Engine::budget_error`]'s witness choice for fuel).
    fn cancel_error(&self) -> SpecError {
        let witness = self
            .chain
            .last()
            .map(|(q, _)| *q)
            .unwrap_or(QualName::new("?", "?"));
        SpecError::Cancelled { witness, steps: self.stats.steps }
    }

    /// The first breached budget resource, if any. Checked at every
    /// `mk_resid`/unfold decision point: all recursion in the object
    /// language flows through named calls, so this catches every
    /// divergence.
    fn budget_breached(&self) -> Option<BudgetResource> {
        let b = &self.options.budget;
        if self.fuel.is_empty() {
            Some(BudgetResource::Steps)
        } else if self.provenance.len() >= b.max_specialisations {
            Some(BudgetResource::Specialisations)
        } else if self.pending.len() >= b.max_pending || self.open > b.max_pending {
            Some(BudgetResource::Pending)
        } else if self.stats.residual_nodes >= b.max_residual_nodes {
            Some(BudgetResource::ResidualNodes)
        } else {
            None
        }
    }

    /// Builds a [`SpecError::BudgetExhausted`] from the current request
    /// chain. `at` names the offending call; when the breach is detected
    /// mid-evaluation (step fuel), the innermost chain frame stands in.
    pub(crate) fn budget_error(
        &self,
        resource: BudgetResource,
        at: Option<(QualName, u64)>,
    ) -> SpecError {
        let (witness, skeleton_hash) = at
            .or_else(|| self.chain.last().copied())
            .unwrap_or((QualName::new("?", "?"), 0));
        const CHAIN_LIMIT: usize = 16;
        let start = self.chain.len().saturating_sub(CHAIN_LIMIT);
        let chain = self.chain[start..].iter().map(|(q, _)| *q).collect();
        SpecError::BudgetExhausted { resource, witness, skeleton_hash, chain }
    }

    fn fresh(&mut self, base: Ident) -> Ident {
        if let Some(par) = self.par.as_mut() {
            // Worker mode: hand out a placeholder from this worker's
            // disjoint range and log the base; the driver's replay
            // assigns the canonical `{base}'{gensym}` names in
            // breadth-first order and renames the placeholders.
            return par.fresh_placeholder(base);
        }
        self.gensym += 1;
        Ident::new(format!("{base}'{}", self.gensym))
    }

    /// Environment lookup under the configured cost model: a
    /// reference-count bump, or (legacy) the deep clone the
    /// pre-interning engine performed.
    #[inline]
    fn fetch(&self, env: &[Rc<PVal>], i: usize) -> Rc<PVal> {
        match self.options.cost_model {
            CostModel::Interned => Rc::clone(&env[i]),
            CostModel::Legacy => Rc::new(legacy_clone(&env[i])),
        }
    }

    /// Memo lookup. Interned: O(1) probe on `(target, mask, hash)` plus
    /// a collision-checked skeleton compare within the bucket. Legacy:
    /// format the target into a fresh string and deep-copy the
    /// skeletons, as the old engine's key construction did.
    fn memo_find(
        &mut self,
        target: QualName,
        mask: BtMask,
        keys: &[PKey],
        hash: u64,
    ) -> Option<QualName> {
        self.stats.memo_probes += 1;
        match self.options.cost_model {
            CostModel::Interned => {
                let bucket = self.memo.get(&SpecKey { target, mask: mask.0, hash })?;
                bucket.iter().find(|(k, _)| k.as_slice() == keys).map(|(_, r)| *r)
            }
            CostModel::Legacy => {
                let key = (target.to_string(), mask.0, keys.to_vec());
                self.legacy_memo.get(&key).copied()
            }
        }
    }

    fn memo_insert(
        &mut self,
        target: QualName,
        mask: BtMask,
        keys: Vec<PKey>,
        hash: u64,
        resid: QualName,
    ) {
        match self.options.cost_model {
            CostModel::Interned => {
                self.memo
                    .entry(SpecKey { target, mask: mask.0, hash })
                    .or_default()
                    .push((keys, resid));
            }
            CostModel::Legacy => {
                self.legacy_memo.insert((target.to_string(), mask.0, keys), resid);
            }
        }
    }

    /// `mk_resid` plus the unfold decision: the call side of §4.2.
    fn call(
        &mut self,
        target: &QualName,
        mask: BtMask,
        args: Vec<Rc<PVal>>,
        sink: &mut dyn ModuleSink,
    ) -> Result<Rc<PVal>, SpecError> {
        if self.options.cost_model == CostModel::Legacy {
            // The pre-interning function index was keyed on string pairs:
            // every call-site resolution formatted and hashed the names.
            legacy_name_cost(target);
        }
        let f = self
            .program
            .function(target)
            .ok_or(SpecError::UnknownFunction(*target))?;
        debug_assert!(f.sig.satisfies(mask), "instantiation violated {target}'s constraints");
        // Budget gate: every divergence passes through here (recursion
        // in the object language is only via named calls), so this one
        // check point suffices to demote the offending call.
        if self.options.on_exhaustion == OnExhaustion::Generalise
            && self.budget_breached().is_some()
        {
            return self.generalise(target, args, sink);
        }
        if f.sig.unfoldable_under(mask) {
            self.stats.unfolds += 1;
            if self.recorder.is_enabled() {
                let witness = format!(
                    "unfold term {} = S under {}",
                    f.sig.unfold,
                    mask.render(f.sig.vars)
                );
                if self.par.is_some() {
                    // Worker mode: buffer the event; the driver emits it
                    // at replay with the sequential budget gauges.
                    self.buffer_unfold_event(target, mask, f.sig.vars, witness);
                } else {
                    self.record_decision(
                        Decision::Unfold,
                        target,
                        mask,
                        f.sig.vars,
                        0,
                        false,
                        None,
                        witness,
                    );
                }
            }
            let body = Arc::clone(&f.body);
            let mut env = args;
            self.chain.push((*target, 0));
            let r = self.eval(&body, &mut env, mask, target.module, sink)?;
            self.chain.pop();
            return Ok(r);
        }

        // Residualise: split arguments, memoise on the static skeleton.
        let mut leaves = Vec::new();
        let mut keys = Vec::with_capacity(args.len());
        let mut leaf_names: Vec<Ident> = Vec::new();
        let mut hash = SKELETON_SEED;
        for (arg, p) in args.iter().zip(&f.params) {
            let before = leaves.len();
            let (k, h) = split_hashed(arg, &mut leaves);
            hash = hash_fold(hash, h);
            keys.push(k);
            let count = leaves.len() - before;
            for j in 0..count {
                // Prefer the leaf's own variable name (the paper's
                // `map_g z ys` keeps the captured `z` recognisable),
                // falling back to the parameter name.
                leaf_names.push(match &leaves[before + j] {
                    Expr::Var(x) => *x,
                    _ if count == 1 => *p,
                    _ => Ident::new(format!("{p}_{j}")),
                });
            }
        }
        if self.par.is_some() {
            // Worker mode: probe the shared memo table and this body's
            // own earlier claims; on a miss, return a placeholder call
            // and record a child request for the driver to resolve with
            // the exact sequential naming and placement.
            return self.residualise_par(target, f.sig.vars, mask, &args, keys, leaves, leaf_names, hash);
        }
        if let Some(resid) = self.memo_find(*target, mask, &keys, hash) {
            self.stats.memo_hits += 1;
            self.record_decision(
                Decision::MemoHit,
                target,
                mask,
                f.sig.vars,
                hash,
                true,
                Some(&resid),
                String::new(),
            );
            if self.options.cost_model == CostModel::Legacy {
                // The old `CallName::from` cloned the module and
                // function name strings into the residual call site.
                legacy_name_cost(&resid);
            }
            return Ok(Rc::new(PVal::Code(Expr::Call(CallName::from(resid), leaves))));
        }

        // New specialisation: name it, place it (§5: at first call,
        // before the body exists), then queue or recurse.
        if self.provenance.len() >= self.options.budget.max_specialisations {
            return Err(
                self.budget_error(BudgetResource::Specialisations, Some((*target, hash)))
            );
        }
        if self.options.cost_model == CostModel::Legacy {
            // Naming, placement and provenance in the string-based
            // engine hashed and cloned qualified-name strings: the
            // name-counter probe, the placement set inserts (one per
            // free function) and the two provenance clones.
            legacy_name_cost(target);
            legacy_name_cost(target);
            legacy_name_cost(target);
        }
        let counter = self.name_counters.entry(*target).or_insert(0);
        *counter += 1;
        let resid_name = Ident::new(format!("{}_{}", target.name, counter));
        let mut free = vec![*target];
        for a in &args {
            a.free_fns(&mut free);
        }
        if self.options.cost_model == CostModel::Legacy {
            for q in &free {
                legacy_name_cost(q);
            }
        }
        let module = self.placer.place(&free, self.program.graph());
        let resid = QualName { module, name: resid_name };
        self.memo_insert(*target, mask, keys, hash, resid);

        let formals = uniquify(leaf_names);
        self.provenance.push(Provenance {
            source: *target,
            mask,
            vars: f.sig.vars,
            residual: resid,
            formals: formals.len(),
        });
        let mut next = 0;
        let env: Vec<Rc<PVal>> = args
            .iter()
            .map(|a| Rc::new(rebuild(a, &formals, &mut next)))
            .collect();
        if self.options.cost_model == CostModel::Legacy {
            // The old `rebuild` cloned each formal's name string into
            // the `Expr::Var` leaf it planted.
            for f in &formals {
                std::hint::black_box(f.as_str().to_string());
            }
        }
        let spec = PendingSpec {
            target: *target,
            mask,
            env,
            resid,
            formals,
            hash,
        };
        if self.recorder.is_enabled() {
            self.record_decision(
                Decision::Residualise,
                target,
                mask,
                f.sig.vars,
                hash,
                true,
                Some(&resid),
                format!(
                    "unfold term {} = D under {}",
                    f.sig.unfold,
                    mask.render(f.sig.vars)
                ),
            );
        }
        match self.options.strategy {
            Strategy::BreadthFirst => {
                if self.pending.len() >= self.options.budget.max_pending {
                    return Err(
                        self.budget_error(BudgetResource::Pending, Some((*target, hash)))
                    );
                }
                self.pending.push_back(spec);
                self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
                self.recorder.observe("genext.pending_depth", self.pending.len() as u64);
            }
            Strategy::DepthFirst => self.construct(spec, sink)?,
        }
        Ok(Rc::new(PVal::Code(Expr::Call(CallName::from(resid), leaves))))
    }

    /// Generalising fallback: demote `target` to a fully-dynamic
    /// residual call. The static skeleton is abandoned — every argument
    /// is lifted to code, so the memo key is all [`PKey::Hole`]s and at
    /// most one generalised variant per source function ever exists.
    /// With finitely many functions, each body finite and evaluated
    /// under a breached budget that keeps every further call on this
    /// path, the session terminates; the residual program is correct,
    /// merely less specialised (the classic generalisation move of
    /// offline partial evaluation, applied on demand instead of by
    /// reannotation).
    ///
    /// Note the unfold decision is deliberately skipped: a recursive
    /// function without static conditionals is unfoldable under *every*
    /// mask and would unfold forever.
    fn generalise(
        &mut self,
        target: &QualName,
        args: Vec<Rc<PVal>>,
        sink: &mut dyn ModuleSink,
    ) -> Result<Rc<PVal>, SpecError> {
        let f = self
            .program
            .function(target)
            .ok_or(SpecError::UnknownFunction(*target))?;
        let mask = BtMask::all_dynamic(f.sig.vars);
        let mut leaves = Vec::with_capacity(args.len());
        for a in &args {
            leaves.push(self.lift(a, sink)?);
        }
        let keys = vec![PKey::Hole; leaves.len()];
        let hash = all_holes_hash(leaves.len());
        if let Some(resid) = self.memo_find(*target, mask, &keys, hash) {
            self.stats.memo_hits += 1;
            self.record_decision(
                Decision::MemoHit,
                target,
                mask,
                f.sig.vars,
                hash,
                true,
                Some(&resid),
                String::new(),
            );
            return Ok(Rc::new(PVal::Code(Expr::Call(CallName::from(resid), leaves))));
        }
        self.stats.generalised += 1;
        let counter = self.name_counters.entry(*target).or_insert(0);
        *counter += 1;
        let resid_name = Ident::new(format!("{}_{}", target.name, counter));
        let module = self.placer.place(&[*target], self.program.graph());
        let resid = QualName { module, name: resid_name };
        self.memo_insert(*target, mask, keys, hash, resid);
        let formals = uniquify(
            leaves
                .iter()
                .zip(&f.params)
                .map(|(l, p)| match l {
                    Expr::Var(x) => *x,
                    _ => *p,
                })
                .collect(),
        );
        self.provenance.push(Provenance {
            source: *target,
            mask,
            vars: f.sig.vars,
            residual: resid,
            formals: formals.len(),
        });
        if self.recorder.is_enabled() {
            let resource = self.budget_breached();
            self.record_decision(
                Decision::Generalise,
                target,
                mask,
                f.sig.vars,
                hash,
                true,
                Some(&resid),
                match resource {
                    Some(r) => format!("budget breached ({r:?}): demoted to all-dynamic variant"),
                    None => "demoted to all-dynamic variant".to_string(),
                },
            );
        }
        let env: Vec<Rc<PVal>> =
            formals.iter().map(|x| Rc::new(PVal::Code(Expr::Var(*x)))).collect();
        let spec = PendingSpec { target: *target, mask, env, resid, formals, hash };
        match self.options.strategy {
            Strategy::BreadthFirst => {
                self.pending.push_back(spec);
                self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
                self.recorder.observe("genext.pending_depth", self.pending.len() as u64);
            }
            Strategy::DepthFirst => self.construct(spec, sink)?,
        }
        Ok(Rc::new(PVal::Code(Expr::Call(CallName::from(resid), leaves))))
    }

    /// Evaluates a generating-extension expression under a binding-time
    /// mask. `module` is the module the expression's source occurs in
    /// (for closure identity and placement).
    pub(crate) fn eval(
        &mut self,
        e: &GExp,
        env: &mut Vec<Rc<PVal>>,
        mask: BtMask,
        module: ModName,
        sink: &mut dyn ModuleSink,
    ) -> Result<Rc<PVal>, SpecError> {
        self.step()?;
        match e {
            GExp::Nat(n) => Ok(Rc::new(PVal::Nat(*n))),
            GExp::Bool(b) => Ok(Rc::new(PVal::Bool(*b))),
            GExp::Nil => Ok(Rc::new(PVal::Nil)),
            GExp::Var(i) => Ok(self.fetch(env, *i as usize)),
            GExp::Prim(op, code, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, mask, module, sink)?);
                }
                if code.is_dynamic(mask) {
                    let mut lifted = Vec::with_capacity(vals.len());
                    for v in vals {
                        lifted.push(self.lift_owned(v, sink)?);
                    }
                    Ok(Rc::new(PVal::Code(Expr::Prim(*op, lifted))))
                } else {
                    static_prim(*op, vals)
                }
            }
            GExp::If(code, c, t, f) => {
                let cv = self.eval(c, env, mask, module, sink)?;
                if code.is_dynamic(mask) {
                    let tv = self.eval(t, env, mask, module, sink)?;
                    let fv = self.eval(f, env, mask, module, sink)?;
                    Ok(Rc::new(PVal::Code(Expr::If(
                        Box::new(self.lift_owned(cv, sink)?),
                        Box::new(self.lift_owned(tv, sink)?),
                        Box::new(self.lift_owned(fv, sink)?),
                    ))))
                } else {
                    match &*cv {
                        PVal::Bool(true) => self.eval(t, env, mask, module, sink),
                        PVal::Bool(false) => self.eval(f, env, mask, module, sink),
                        other => Err(SpecError::TypeConfusion(format!(
                            "static conditional on non-boolean {other:?}"
                        ))),
                    }
                }
            }
            GExp::Call { target, inst, args } => {
                let mut callee_mask = BtMask::all_static();
                for (i, code) in inst.iter().enumerate() {
                    if code.is_dynamic(mask) {
                        callee_mask = callee_mask.set_dynamic(i as u32);
                    }
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, mask, module, sink)?);
                }
                self.call(target, callee_mask, vals, sink)
            }
            GExp::Lam { param, body, captured, free_fns, lam_id } => {
                let captured_vals =
                    captured.iter().map(|s| self.fetch(env, *s as usize)).collect();
                Ok(Rc::new(PVal::Clo(Rc::new(Closure {
                    param: *param,
                    body: Arc::clone(body),
                    env: captured_vals,
                    free_fns: Arc::clone(free_fns),
                    lam_id: *lam_id,
                    module,
                    mask,
                }))))
            }
            GExp::App(code, f, a) => {
                let fv = self.eval(f, env, mask, module, sink)?;
                let av = self.eval(a, env, mask, module, sink)?;
                if code.is_dynamic(mask) {
                    Ok(Rc::new(PVal::Code(Expr::App(
                        Box::new(self.lift_owned(fv, sink)?),
                        Box::new(self.lift_owned(av, sink)?),
                    ))))
                } else {
                    match &*fv {
                        PVal::Clo(c) => self.apply_closure(c, av, sink),
                        other => Err(SpecError::TypeConfusion(format!(
                            "static application of non-closure {other:?}"
                        ))),
                    }
                }
            }
            GExp::Let(rhs, body) => {
                let v = self.eval(rhs, env, mask, module, sink)?;
                env.push(v);
                let r = self.eval(body, env, mask, module, sink);
                env.pop();
                r
            }
            GExp::Coerce(spec, inner) => {
                let v = self.eval(inner, env, mask, module, sink)?;
                self.coerce(spec, v, mask, sink)
            }
        }
    }

    /// Unfolds a static closure: evaluates its generating function on the
    /// argument, under the closure's *origin* mask (its binding times
    /// refer to the signature variables of the function it was written
    /// in). The captured frame is shared, not copied.
    fn apply_closure(
        &mut self,
        c: &Closure,
        arg: Rc<PVal>,
        sink: &mut dyn ModuleSink,
    ) -> Result<Rc<PVal>, SpecError> {
        let mut env: Vec<Rc<PVal>> = match self.options.cost_model {
            CostModel::Interned => c.env.clone(),
            CostModel::Legacy => c.env.iter().map(|e| Rc::new(legacy_clone(e))).collect(),
        };
        env.push(arg);
        let body = Arc::clone(&c.body);
        self.eval(&body, &mut env, c.mask, c.module, sink)
    }

    /// Applies a compiled coercion to a value.
    fn coerce(
        &mut self,
        spec: &GCoerce,
        v: Rc<PVal>,
        mask: BtMask,
        sink: &mut dyn ModuleSink,
    ) -> Result<Rc<PVal>, SpecError> {
        match spec {
            GCoerce::Id => Ok(v),
            GCoerce::Base { from, to } | GCoerce::Fun { from, to } => {
                if !from.is_dynamic(mask) && to.is_dynamic(mask) {
                    let e = self.lift_owned(v, sink)?;
                    Ok(Rc::new(PVal::Code(e)))
                } else {
                    Ok(v)
                }
            }
            GCoerce::List { from, to, elem, elem_identity } => {
                if from.is_dynamic(mask) {
                    Ok(v) // already code
                } else if to.is_dynamic(mask) {
                    let e = self.lift_owned(v, sink)?;
                    Ok(Rc::new(PVal::Code(e)))
                } else if *elem_identity {
                    Ok(v)
                } else {
                    self.coerce_spine(elem, v, mask, sink)
                }
            }
        }
    }

    fn coerce_spine(
        &mut self,
        elem: &GCoerce,
        v: Rc<PVal>,
        mask: BtMask,
        sink: &mut dyn ModuleSink,
    ) -> Result<Rc<PVal>, SpecError> {
        match &*v {
            PVal::Nil => Ok(Rc::clone(&v)),
            PVal::Cons(h, t) => {
                let (h, t) = (Rc::clone(h), Rc::clone(t));
                let h2 = self.coerce(elem, h, mask, sink)?;
                let t2 = self.coerce_spine(elem, t, mask, sink)?;
                Ok(Rc::new(PVal::Cons(h2, t2)))
            }
            other => Err(SpecError::TypeConfusion(format!(
                "static-spine coercion applied to {other:?}"
            ))),
        }
    }

    /// Lifts an owned value, reclaiming the inner expression without a
    /// copy when this reference is the last one (the common case for
    /// freshly built code).
    pub(crate) fn lift_owned(
        &mut self,
        v: Rc<PVal>,
        sink: &mut dyn ModuleSink,
    ) -> Result<Expr, SpecError> {
        match Rc::try_unwrap(v) {
            Ok(PVal::Code(e)) => Ok(e),
            Ok(owned) => self.lift(&owned, sink),
            Err(shared) => self.lift(&shared, sink),
        }
    }

    /// Lifts a value to residual code: literals for data, eta-expansion
    /// for static closures (specialising the closure body with a fresh
    /// dynamic variable).
    fn lift(&mut self, v: &PVal, sink: &mut dyn ModuleSink) -> Result<Expr, SpecError> {
        match v {
            PVal::Code(e) => Ok(e.clone()),
            PVal::Nat(n) => Ok(Expr::Nat(*n)),
            PVal::Bool(b) => Ok(Expr::Bool(*b)),
            PVal::Nil => Ok(Expr::Nil),
            PVal::Cons(h, t) => {
                let h2 = self.lift(h, sink)?;
                let t2 = self.lift(t, sink)?;
                Ok(Expr::Prim(PrimOp::Cons, vec![h2, t2]))
            }
            PVal::Clo(c) => {
                let x = self.fresh(c.param);
                let body = self.apply_closure(c, Rc::new(PVal::Code(Expr::Var(x))), sink)?;
                let body = self.lift_owned(body, sink)?;
                Ok(Expr::Lam(x, Box::new(body)))
            }
        }
    }
}

/// Performs a static primitive on partial values.
fn static_prim(op: PrimOp, vals: Vec<Rc<PVal>>) -> Result<Rc<PVal>, SpecError> {
    use PrimOp::*;
    let nat = |v: &PVal| match v {
        PVal::Nat(n) => Ok(*n),
        other => Err(SpecError::TypeConfusion(format!(
            "static {} on non-natural {other:?}",
            op.symbol()
        ))),
    };
    let boolean = |v: &PVal| match v {
        PVal::Bool(b) => Ok(*b),
        other => Err(SpecError::TypeConfusion(format!(
            "static {} on non-boolean {other:?}",
            op.symbol()
        ))),
    };
    match op {
        Add => Ok(Rc::new(PVal::Nat(nat(&vals[0])?.wrapping_add(nat(&vals[1])?)))),
        Sub => Ok(Rc::new(PVal::Nat(nat(&vals[0])?.saturating_sub(nat(&vals[1])?)))),
        Mul => Ok(Rc::new(PVal::Nat(nat(&vals[0])?.wrapping_mul(nat(&vals[1])?)))),
        Div => {
            let n0 = nat(&vals[0])?;
            match n0.checked_div(nat(&vals[1])?) {
                Some(q) => Ok(Rc::new(PVal::Nat(q))),
                None => Err(SpecError::DivByZero),
            }
        }
        Eq => Ok(Rc::new(PVal::Bool(nat(&vals[0])? == nat(&vals[1])?))),
        Lt => Ok(Rc::new(PVal::Bool(nat(&vals[0])? < nat(&vals[1])?))),
        Leq => Ok(Rc::new(PVal::Bool(nat(&vals[0])? <= nat(&vals[1])?))),
        And => Ok(Rc::new(PVal::Bool(boolean(&vals[0])? && boolean(&vals[1])?))),
        Or => Ok(Rc::new(PVal::Bool(boolean(&vals[0])? || boolean(&vals[1])?))),
        Not => Ok(Rc::new(PVal::Bool(!boolean(&vals[0])?))),
        Cons => Ok(Rc::new(PVal::Cons(Rc::clone(&vals[0]), Rc::clone(&vals[1])))),
        Head => match &*vals[0] {
            PVal::Cons(h, _) => Ok(Rc::clone(h)),
            PVal::Nil => Err(SpecError::EmptyList("head")),
            other => Err(SpecError::TypeConfusion(format!("static head of {other:?}"))),
        },
        Tail => match &*vals[0] {
            PVal::Cons(_, t) => Ok(Rc::clone(t)),
            PVal::Nil => Err(SpecError::EmptyList("tail")),
            other => Err(SpecError::TypeConfusion(format!("static tail of {other:?}"))),
        },
        Null => match &*vals[0] {
            PVal::Nil => Ok(Rc::new(PVal::Bool(true))),
            PVal::Cons(..) => Ok(Rc::new(PVal::Bool(false))),
            other => Err(SpecError::TypeConfusion(format!("static null of {other:?}"))),
        },
    }
}

/// The deep clone the string-based engine performed on every variable
/// lookup and closure-environment copy ([`CostModel::Legacy`] only).
///
/// Post-interning, a structural clone of an `Expr` is nearly free — the
/// identifiers are `u32` symbols. The old engine's identifiers were
/// heap `String`s, so cloning a `Code` value allocated and copied one
/// string per identifier occurrence. [`legacy_name_cost`] materialises
/// exactly those allocations so the legacy model charges what the old
/// engine actually paid.
fn legacy_clone(v: &PVal) -> PVal {
    let cloned = v.clone();
    if let PVal::Code(e) = &cloned {
        legacy_expr_cost(e);
    }
    cloned
}

/// Allocates the strings a pre-interning clone of `e` would have.
fn legacy_expr_cost(e: &Expr) {
    e.visit(&mut |n| match n {
        Expr::Var(x) | Expr::Lam(x, _) | Expr::Let(x, ..) => {
            std::hint::black_box(x.as_str().to_string());
        }
        Expr::Call(c, _) => {
            if let Some(m) = &c.module {
                std::hint::black_box(m.as_str().to_string());
            }
            std::hint::black_box(c.name.as_str().to_string());
        }
        _ => {}
    });
}

/// The string formatting + hashing a pre-interning qualified-name lookup
/// performed on every call-site resolution.
fn legacy_name_cost(q: &QualName) {
    use std::hash::{Hash as _, Hasher as _};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    q.module.as_str().hash(&mut h);
    q.name.as_str().hash(&mut h);
    std::hint::black_box(h.finish());
}

/// Makes names unique by appending primed counters to duplicates.
pub(crate) fn uniquify(names: Vec<Ident>) -> Vec<Ident> {
    let mut seen: BTreeSet<Ident> = BTreeSet::new();
    let mut out = Vec::with_capacity(names.len());
    for n in names {
        if seen.insert(n) {
            out.push(n);
            continue;
        }
        let mut k = 2;
        loop {
            let candidate = Ident::new(format!("{n}'{k}"));
            if seen.insert(candidate) {
                out.push(candidate);
                break;
            }
            k += 1;
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn rc(v: PVal) -> Rc<PVal> {
        Rc::new(v)
    }

    #[test]
    fn uniquify_keeps_distinct_names() {
        let names = vec![Ident::new("a"), Ident::new("b")];
        assert_eq!(uniquify(names.clone()), names);
    }

    #[test]
    fn uniquify_renames_duplicates() {
        let names = vec![Ident::new("a"), Ident::new("a"), Ident::new("a")];
        let out = uniquify(names);
        assert_eq!(out[0].as_str(), "a");
        assert_eq!(out[1].as_str(), "a'2");
        assert_eq!(out[2].as_str(), "a'3");
    }

    #[test]
    fn static_prim_arithmetic() {
        let add = static_prim(PrimOp::Add, vec![rc(PVal::Nat(2)), rc(PVal::Nat(3))]).unwrap();
        assert!(matches!(&*add, PVal::Nat(5)));
        let sub = static_prim(PrimOp::Sub, vec![rc(PVal::Nat(2)), rc(PVal::Nat(3))]).unwrap();
        assert!(matches!(&*sub, PVal::Nat(0)));
        assert!(matches!(
            static_prim(PrimOp::Div, vec![rc(PVal::Nat(1)), rc(PVal::Nat(0))]),
            Err(SpecError::DivByZero)
        ));
    }

    #[test]
    fn static_prim_lists_allow_dynamic_elements() {
        // A partially static list: static cons with a code head.
        let code = rc(PVal::Code(Expr::Var(Ident::new("x"))));
        let cons = static_prim(PrimOp::Cons, vec![code, rc(PVal::Nil)]).unwrap();
        let head = static_prim(PrimOp::Head, vec![Rc::clone(&cons)]).unwrap();
        assert!(matches!(&*head, PVal::Code(_)));
        let null = static_prim(PrimOp::Null, vec![cons]).unwrap();
        assert!(matches!(&*null, PVal::Bool(false)));
    }

    #[test]
    fn static_prim_type_confusion_is_reported() {
        assert!(matches!(
            static_prim(PrimOp::Add, vec![rc(PVal::Bool(true)), rc(PVal::Nat(1))]),
            Err(SpecError::TypeConfusion(_))
        ));
        assert!(matches!(
            static_prim(PrimOp::Head, vec![rc(PVal::Nat(1))]),
            Err(SpecError::TypeConfusion(_))
        ));
    }

    // Engine-level behaviour is exercised end-to-end in the cogen crate
    // (which can build GenPrograms from source) and the integration
    // tests; here we cover the pure helpers.
}

//! Resource governance for specialisation sessions.
//!
//! A generating extension runs at *deployment* time, without the source
//! program (§2): a diverging specialisation — static recursion that
//! never bottoms out, or unbounded polyvariance growing fresh skeletons
//! forever — must surface as a bounded, structured outcome, never a hang
//! or memory exhaustion. [`SpecBudget`] bounds the four resources a
//! session can consume, and [`OnExhaustion`] chooses what happens when
//! one runs out:
//!
//! * [`OnExhaustion::Error`] — abort with
//!   [`crate::SpecError::BudgetExhausted`], carrying the offending
//!   function, its skeleton hash, and the chain of specialisation
//!   requests that led there (so the diverging cycle is visible).
//! * [`OnExhaustion::Generalise`] — demote the offending call to a
//!   fully-dynamic residual call: the static skeleton is abandoned
//!   (every argument lifted to code), so at most one *generalised*
//!   variant per source function is ever created and specialisation
//!   terminates with a correct, merely less specialised program. This is
//!   the classic generalisation move of offline partial evaluation,
//!   applied on demand rather than by reannotation.
//!
//! All recursion in the object language flows through named function
//! calls (the HM type discipline rules out self-application), so
//! checking the budget at every `mk_resid`/unfold decision point is
//! enough to catch any divergence; evaluation between calls is
//! structural and terminates on its own.

/// Resource limits for one specialisation session.
///
/// Every limit is a hard cap; which one fires first depends on the
/// workload (step fuel for unfolding loops, the specialisation cap for
/// unbounded polyvariance, the pending cap for explosive fan-out, the
/// residual-size cap for code blow-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecBudget {
    /// Evaluation-step fuel. Each [`crate::gexp::GExp`] node evaluated
    /// spends one unit.
    pub steps: u64,
    /// Upper bound on memo-table entries, i.e. residual definitions
    /// requested. Unbounded *polyvariance* — ever-growing static data
    /// under dynamic control, e.g. `range a b` with static `a` and
    /// dynamic `b` — diverges in every offline specialiser with this
    /// unfolding strategy (the paper's termination argument covers
    /// unfolding, not polyvariant residualisation).
    pub max_specialisations: usize,
    /// Upper bound on the pending list (breadth-first) and on the
    /// suspension depth of simultaneously open bodies (depth-first).
    pub max_pending: usize,
    /// Upper bound on total residual AST nodes emitted across all
    /// definitions (code-explosion guard).
    pub max_residual_nodes: usize,
}

impl Default for SpecBudget {
    fn default() -> SpecBudget {
        SpecBudget {
            steps: 200_000_000,
            max_specialisations: 100_000,
            max_pending: 100_000,
            max_residual_nodes: 50_000_000,
        }
    }
}

impl SpecBudget {
    /// A budget with the given step fuel and default caps elsewhere.
    pub fn with_steps(steps: u64) -> SpecBudget {
        SpecBudget { steps, ..SpecBudget::default() }
    }
}

/// What the engine does when a [`SpecBudget`] resource runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnExhaustion {
    /// Abort the session with [`crate::SpecError::BudgetExhausted`].
    #[default]
    Error,
    /// Demote the offending call (and every subsequent one) to a
    /// fully-dynamic residual call, guaranteeing termination with a
    /// correct, less specialised program.
    Generalise,
}

/// Which [`SpecBudget`] resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetResource {
    /// [`SpecBudget::steps`].
    Steps,
    /// [`SpecBudget::max_specialisations`].
    Specialisations,
    /// [`SpecBudget::max_pending`].
    Pending,
    /// [`SpecBudget::max_residual_nodes`].
    ResidualNodes,
}

impl std::fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetResource::Steps => "step fuel",
            BudgetResource::Specialisations => "specialisation count",
            BudgetResource::Pending => "pending/suspension depth",
            BudgetResource::ResidualNodes => "residual program size",
        })
    }
}

/// A shared cancellation flag: the handle an external controller (a
/// wall-clock deadline watchdog, a disconnecting client) uses to stop a
/// running specialisation session from another thread.
///
/// The engine polls the flag on its step-fuel path (every
/// [`CancelToken::CHECK_MASK`]` + 1` steps, so the cost is one atomic
/// load amortised over ~1k evaluation steps) and aborts with
/// [`crate::SpecError::Cancelled`] carrying the partial-progress step
/// count. Cancellation is level-triggered and permanent: once fired,
/// the token stays fired, so a session handed an already-cancelled
/// token stops at its first step.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// The engine checks the flag when `steps & CHECK_MASK == 0`.
    pub const CHECK_MASK: u64 = 0x3FF;

    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token. Every engine polling this handle stops at its
    /// next check point.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// A step-fuel meter that reports exhaustion exactly once per unit: a
/// budget of `n` admits exactly `n` spends. (The previous accounting
/// combined `checked_sub` with a separate `== 0` check, so a budget of
/// `n` admitted only `n - 1` steps and "just hit zero" was conflated
/// with "already exhausted".)
#[derive(Debug, Clone, Copy)]
pub struct Fuel(u64);

impl Fuel {
    /// A meter holding `n` units.
    pub fn new(n: u64) -> Fuel {
        Fuel(n)
    }

    /// Spends one unit; `false` iff the meter was already empty.
    #[inline]
    pub fn spend(&mut self) -> bool {
        if self.0 == 0 {
            return false;
        }
        self.0 -= 1;
        true
    }

    /// Whether the meter is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Units remaining.
    pub fn remaining(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_admits_exactly_n_spends() {
        let mut f = Fuel::new(3);
        assert!(f.spend());
        assert!(f.spend());
        assert!(f.spend());
        assert!(!f.spend(), "fourth spend of a 3-unit meter must fail");
        assert!(!f.spend(), "and keep failing");
        assert!(f.is_empty());
    }

    #[test]
    fn zero_fuel_is_exhausted_immediately() {
        let mut f = Fuel::new(0);
        assert!(f.is_empty());
        assert!(!f.spend());
    }

    #[test]
    fn cancel_token_is_shared_and_permanent() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        t2.cancel(); // idempotent
        assert!(t2.is_cancelled());
    }

    #[test]
    fn default_budget_is_generous() {
        let b = SpecBudget::default();
        assert!(b.steps >= 100_000_000);
        assert!(b.max_specialisations >= 10_000);
        assert!(b.max_pending >= 10_000);
        assert!(b.max_residual_nodes >= 1_000_000);
    }

    #[test]
    fn resources_display_distinctly() {
        let all = [
            BudgetResource::Steps,
            BudgetResource::Specialisations,
            BudgetResource::Pending,
            BudgetResource::ResidualNodes,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for r in all {
            assert!(seen.insert(r.to_string()));
        }
    }
}

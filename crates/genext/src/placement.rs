//! Residual-module placement (§5 of the paper).
//!
//! When the first call of a new specialisation is discovered — before its
//! body exists — the engine must decide which residual module it will
//! live in. The body can only refer to specialisations of the function
//! names *free in the call*: the callee itself plus the functions free in
//! the static closures among its arguments (transitively through their
//! environments). The placement is the *combination* of the defining
//! modules of those functions, reduced by removing modules already
//! import-reachable from another member; a singleton set reuses the
//! original module's name, a larger set becomes a combination module
//! (the paper's `PowerTwice`).

use mspec_lang::modgraph::ModGraph;
use mspec_lang::{ModName, QualName};
use std::collections::{BTreeMap, BTreeSet};

/// Assigns residual definitions to residual modules.
#[derive(Debug)]
pub struct Placer {
    /// Combination set → residual module name (stable across calls).
    assigned: BTreeMap<BTreeSet<ModName>, ModName>,
    /// Names already taken (to keep combination names collision-free).
    taken: BTreeSet<ModName>,
}

impl Placer {
    /// Creates a placer for a program whose source modules are the
    /// vertices of `graph`.
    pub fn new(graph: &ModGraph) -> Placer {
        let taken = graph.topo_order().iter().cloned().collect();
        Placer { assigned: BTreeMap::new(), taken }
    }

    /// Places a specialisation given the functions free in its call.
    ///
    /// Returns the residual module name. Deterministic: the same free
    /// set always lands in the same module.
    pub fn place(&mut self, free_fns: &[QualName], graph: &ModGraph) -> ModName {
        let mut set: BTreeSet<ModName> =
            free_fns.iter().map(|q| q.module).collect();
        if set.is_empty() {
            // Cannot happen (the callee itself is always free), but keep
            // a deterministic fallback.
            set.insert(ModName::new("Residual"));
        }
        let reduced = graph.reduce_by_imports(&set);
        if let Some(name) = self.assigned.get(&reduced) {
            return *name;
        }
        let name = if reduced.len() == 1 {
            *reduced.iter().next().expect("non-empty")
        } else {
            // Combination module: concatenate member names (alphabetical,
            // e.g. Power + Twice → PowerTwice), disambiguating on clash.
            let base: String = reduced.iter().map(ModName::as_str).collect();
            let mut candidate = ModName::new(base.clone());
            let mut n = 2;
            while self.taken.contains(&candidate) {
                candidate = ModName::new(format!("{base}{n}"));
                n += 1;
            }
            candidate
        };
        self.taken.insert(name);
        self.assigned.insert(reduced, name);
        name
    }

    /// The combination sets assigned so far (for reporting).
    pub fn assignments(&self) -> impl Iterator<Item = (&BTreeSet<ModName>, &ModName)> {
        self.assigned.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::{Module, Program};

    fn graph(mods: &[(&str, &[&str])]) -> ModGraph {
        let p = Program::new(
            mods.iter()
                .map(|(n, imps)| {
                    Module::new(*n, imps.iter().map(|i| ModName::new(*i)).collect(), vec![])
                })
                .collect(),
        );
        ModGraph::new(&p).unwrap()
    }

    fn q(m: &str, f: &str) -> QualName {
        QualName::new(m, f)
    }

    #[test]
    fn single_module_callee_stays_home() {
        let g = graph(&[("Power", &[])]);
        let mut p = Placer::new(&g);
        assert_eq!(p.place(&[q("Power", "power")], &g).as_str(), "Power");
    }

    #[test]
    fn paper_power_twice_combination() {
        // §5: twice applied to a closure over power → module PowerTwice.
        let g = graph(&[("Power", &[]), ("Twice", &[]), ("Main", &["Power", "Twice"])]);
        let mut p = Placer::new(&g);
        let placed = p.place(&[q("Twice", "twice"), q("Power", "power")], &g);
        assert_eq!(placed.as_str(), "PowerTwice");
    }

    #[test]
    fn paper_main_reduces_to_main() {
        // main's free functions: Main.main and Power.power; Main imports
        // Power, so the combination reduces to {Main}.
        let g = graph(&[("Power", &[]), ("Twice", &[]), ("Main", &["Power", "Twice"])]);
        let mut p = Placer::new(&g);
        let placed = p.place(&[q("Main", "main"), q("Power", "power")], &g);
        assert_eq!(placed.as_str(), "Main");
    }

    #[test]
    fn paper_map_moves_into_importer() {
        // §5: map (defined in A) specialised to a closure over B.g, where
        // B imports A → specialisation placed in B.
        let g = graph(&[("A", &[]), ("B", &["A"])]);
        let mut p = Placer::new(&g);
        let placed = p.place(&[q("A", "map"), q("B", "g")], &g);
        assert_eq!(placed.as_str(), "B");
    }

    #[test]
    fn paper_a_c_combination() {
        // §5: g imported from a third module C (unrelated to A) → a new
        // module A∩C importable into both B and D.
        let g = graph(&[("A", &[]), ("C", &[]), ("B", &["A", "C"]), ("D", &["A", "C"])]);
        let mut p = Placer::new(&g);
        let placed = p.place(&[q("A", "map"), q("C", "g")], &g);
        assert_eq!(placed.as_str(), "AC");
        // The same free set from another caller reuses the module.
        let placed2 = p.place(&[q("C", "g"), q("A", "map")], &g);
        assert_eq!(placed2, placed);
    }

    #[test]
    fn combination_name_collision_is_disambiguated() {
        // A module literally named "AC" already exists.
        let g = graph(&[("A", &[]), ("C", &[]), ("AC", &[])]);
        let mut p = Placer::new(&g);
        let placed = p.place(&[q("A", "f"), q("C", "g")], &g);
        assert_eq!(placed.as_str(), "AC2");
        // …and stays stable.
        assert_eq!(p.place(&[q("A", "f"), q("C", "g")], &g).as_str(), "AC2");
    }

    #[test]
    fn three_way_combination() {
        let g = graph(&[("A", &[]), ("B", &[]), ("C", &[]), ("M", &["A", "B", "C"])]);
        let mut p = Placer::new(&g);
        let placed = p.place(&[q("A", "f"), q("B", "g"), q("C", "h")], &g);
        assert_eq!(placed.as_str(), "ABC");
        assert_eq!(p.assignments().count(), 1);
    }
}

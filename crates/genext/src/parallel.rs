//! The concurrent specialisation driver: sharded memoisation, worker
//! engines with placeholder naming, and a deterministic sequential
//! replay that makes the residual program **byte-identical** to the
//! sequential engine's output at every thread count.
//!
//! # How determinism is preserved
//!
//! The breadth-first pending list is processed in *rounds*. Each round's
//! frontier (residual definitions whose canonical names, formals and
//! placement were fixed by the previous round) is distributed over a
//! work-stealing pool ([`mspec_sched`]); each worker evaluates bodies
//! with its own [`Engine`] in *worker mode*:
//!
//! * child `mk_resid` requests probe the [`SharedMemo`] (claims settled
//!   in earlier rounds) and the body's own earlier claims; a miss
//!   returns a **placeholder** call name from the worker's disjoint
//!   range and records a [`ChildRequest`],
//! * fresh identifiers (closure eta-expansion) are placeholders too,
//!   with the requested base name logged,
//! * decision events are buffered as templates, not emitted,
//! * step fuel is claimed in chunks from a pool shared by the workers.
//!
//! At the round barrier the driver *replays* the finished bodies in
//! breadth-first order on one thread: claims are resolved against the
//! shared memo in first-encounter order (exactly the sequential memo
//! semantics), canonical `{name}_{n}` residual names, §5 placement,
//! `{base}'{n}` gensyms, provenance, statistics, budget checks and
//! telemetry events are produced in the sequential order, and the
//! placeholders are renamed away before the definition is emitted.
//! Placeholders contain `~` (not lexable in source identifiers), so they
//! can never collide with real names — and never survive the replay.
//!
//! With one thread the only deviation from the sequential engine is the
//! round barrier itself, which reorders no decision; budget breaches
//! with *multiple* threads may attribute the breach to a different
//! definition than the sequential run (fuel is consumed concurrently),
//! but successful runs are byte-identical at every thread count.

use crate::budget::{BudgetResource, OnExhaustion};
use crate::emit::{assemble, MemorySink, ModuleSink, NullSink, ResidualProgram};
use crate::engine::{
    uniquify, CostModel, Engine, EngineOptions, Provenance, SpecArg, SpecKey, SpecStats, Strategy,
};
use crate::error::SpecError;
use crate::gexp::{GenProgram, GExp};
use crate::value::{hash_fold, split_hashed, Closure, PKey, PVal, SKELETON_SEED};
use mspec_bta::division::{Division, ParamBt};
use mspec_bta::BtMask;
use mspec_lang::ast::{CallName, Def, Expr, Ident, ModName, QualName};
use mspec_telemetry::{Decision, Recorder, SpecEvent};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::num::NonZeroUsize;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Module namespace of placeholder call names. `~` cannot appear in a
/// lexed identifier, so no source or residual module can collide.
const PAR_MOD: &str = "~par";

/// Steps a worker claims from the shared fuel pool at a time. Large
/// enough that pool contention is negligible, small enough that the
/// total over-claim at a breach is invisible next to the default budget.
const FUEL_CHUNK: u64 = 4096;

/// Snapshot depth for budget-error chains (mirrors the engine's limit).
const CHAIN_LIMIT: usize = 16;

// ---------------------------------------------------------------------
// Send-able partial values
// ---------------------------------------------------------------------

/// A [`PVal`] with the `Rc` sharing flattened out, so frontier items can
/// cross threads. Structure (and therefore splitting, hashing and
/// rebuilding) is preserved exactly; only sharing is lost, which no
/// engine decision observes.
#[derive(Debug, Clone)]
pub(crate) enum SendPVal {
    Nat(u64),
    Bool(bool),
    Nil,
    Cons(Box<SendPVal>, Box<SendPVal>),
    Clo(Box<SendClosure>),
    /// A dynamic leaf. The leaf expression itself is not carried: it
    /// lives at the *call site*; inside the new definition the leaf is
    /// always rebuilt as a reference to the matching formal.
    Code,
}

/// [`Closure`] without `Rc`-shared environment slots.
#[derive(Debug, Clone)]
pub(crate) struct SendClosure {
    param: Ident,
    body: Arc<GExp>,
    env: Vec<SendPVal>,
    free_fns: Arc<Vec<QualName>>,
    lam_id: u32,
    module: ModName,
    mask: BtMask,
}

impl SendPVal {
    pub(crate) fn from_pval(v: &PVal) -> SendPVal {
        match v {
            PVal::Nat(n) => SendPVal::Nat(*n),
            PVal::Bool(b) => SendPVal::Bool(*b),
            PVal::Nil => SendPVal::Nil,
            PVal::Cons(h, t) => {
                SendPVal::Cons(Box::new(Self::from_pval(h)), Box::new(Self::from_pval(t)))
            }
            PVal::Clo(c) => SendPVal::Clo(Box::new(SendClosure {
                param: c.param,
                body: Arc::clone(&c.body),
                env: c.env.iter().map(|e| Self::from_pval(e)).collect(),
                free_fns: Arc::clone(&c.free_fns),
                lam_id: c.lam_id,
                module: c.module,
                mask: c.mask,
            })),
            PVal::Code(_) => SendPVal::Code,
        }
    }

    /// Mirrors [`crate::value::rebuild`]: every dynamic leaf becomes a
    /// reference to the definition's corresponding formal, in the same
    /// left-to-right traversal order as splitting.
    pub(crate) fn rebuild(&self, names: &[Ident], next: &mut usize) -> PVal {
        match self {
            SendPVal::Nat(n) => PVal::Nat(*n),
            SendPVal::Bool(b) => PVal::Bool(*b),
            SendPVal::Nil => PVal::Nil,
            SendPVal::Cons(h, t) => {
                let h2 = h.rebuild(names, next);
                let t2 = t.rebuild(names, next);
                PVal::Cons(Rc::new(h2), Rc::new(t2))
            }
            SendPVal::Clo(c) => {
                let env =
                    c.env.iter().map(|e| Rc::new(e.rebuild(names, next))).collect();
                PVal::Clo(Rc::new(Closure {
                    param: c.param,
                    body: Arc::clone(&c.body),
                    env,
                    free_fns: Arc::clone(&c.free_fns),
                    lam_id: c.lam_id,
                    module: c.module,
                    mask: c.mask,
                }))
            }
            SendPVal::Code => {
                let name = names[*next];
                *next += 1;
                PVal::Code(Expr::Var(name))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shared state: memo table and fuel pool
// ---------------------------------------------------------------------

const SHARDS: usize = 16;

/// One memo shard: specialisation key → residual-name buckets, each
/// bucket keyed by the full per-argument key vector.
type MemoShard = RwLock<HashMap<SpecKey, Vec<(Vec<PKey>, QualName)>>>;

/// The concurrent memo table: [`SpecKey`]-sharded by skeleton hash,
/// read-mostly. Workers only *read* (mid-round); the replay — which runs
/// while every worker is parked at the round barrier — is the sole
/// writer, so insertions happen in deterministic breadth-first order.
pub(crate) struct SharedMemo {
    shards: [MemoShard; SHARDS],
}

impl SharedMemo {
    fn new() -> SharedMemo {
        SharedMemo { shards: std::array::from_fn(|_| RwLock::new(HashMap::new())) }
    }

    fn shard(&self, key: &SpecKey) -> &MemoShard {
        &self.shards[(key.hash as usize) & (SHARDS - 1)]
    }

    fn find(&self, key: &SpecKey, keys: &[PKey]) -> Option<QualName> {
        let guard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        let bucket = guard.get(key)?;
        bucket.iter().find(|(k, _)| k.as_slice() == keys).map(|(_, r)| *r)
    }

    fn insert(&self, key: SpecKey, keys: Vec<PKey>, resid: QualName) {
        let mut guard = self.shard(&key).write().unwrap_or_else(|e| e.into_inner());
        guard.entry(key).or_default().push((keys, resid));
    }
}

/// The step-fuel pool shared by a round's workers. Claimed in chunks so
/// the hot path (one decrement per evaluation step) stays thread-local.
pub(crate) struct FuelPool(AtomicU64);

impl FuelPool {
    fn new(steps: u64) -> FuelPool {
        FuelPool(AtomicU64::new(steps))
    }

    fn claim(&self, want: u64) -> u64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.0.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(c) => cur = c,
            }
        }
    }

    fn refund(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::AcqRel);
        }
    }
}

// ---------------------------------------------------------------------
// Worker-side records
// ---------------------------------------------------------------------

/// One unresolved `mk_resid` miss: everything the replay needs to either
/// resolve it against the shared memo or mint the canonical new
/// specialisation exactly as the sequential engine would have.
pub(crate) struct ChildRequest {
    key: SpecKey,
    keys: Vec<PKey>,
    target: QualName,
    mask: BtMask,
    vars: u32,
    hash: u64,
    leaf_names: Vec<Ident>,
    free: Vec<QualName>,
    args: Vec<SendPVal>,
    placeholder: Ident,
    chain_depth: u64,
    steps_at: u64,
    /// Request-chain snapshot for deterministic budget-error reporting.
    chain: Vec<QualName>,
}

/// A buffered decision event, emitted at replay with the sequential
/// budget gauges reconstructed from the replay state.
pub(crate) struct EvTpl {
    decision: Decision,
    target: QualName,
    mask: BtMask,
    vars: u32,
    hash: u64,
    probe: bool,
    /// Known at buffer time for shared-memo hits; `None` for hits on
    /// this body's own claims (resolved at replay).
    residual: Option<QualName>,
    /// Request index of the original claim, for local hits.
    local_claim: Option<usize>,
    witness: String,
    chain_depth: u64,
    /// Evaluation steps into this definition's body when the decision
    /// was taken (global step count is reconstructed at replay).
    steps_at: u64,
}

/// The ordered log of naming-relevant operations inside one body.
pub(crate) enum ParOp {
    /// A memo miss: `requests[req]` claims a (possibly new) residual.
    Claim { req: usize },
    /// A buffered decision event (unfold, shared hit, local hit).
    Event(Box<EvTpl>),
}

/// One finished worker evaluation: the definition body (with
/// placeholders), the side-effect log, and the statistics deltas.
pub(crate) struct WorkerDef {
    def: Def,
    requests: Vec<ChildRequest>,
    ops: Vec<ParOp>,
    /// `(placeholder, requested base)` in generation order.
    fresh_log: Vec<(Ident, Ident)>,
    d_steps: u64,
    d_unfolds: usize,
    d_probes: usize,
    d_hits: usize,
}

/// A frontier item: a residual definition whose identity (canonical
/// name, placement, formals) is already fixed; only its body remains to
/// be evaluated.
pub(crate) struct ParPending {
    target: QualName,
    mask: BtMask,
    resid: QualName,
    formals: Vec<Ident>,
    args: Vec<SendPVal>,
    hash: u64,
}

/// Per-worker context hung off an [`Engine`] in worker mode.
pub(crate) struct ParCtx {
    shared: Arc<SharedMemo>,
    pool: Arc<FuelPool>,
    local_fuel: u64,
    worker: usize,
    par_mod: ModName,
    call_seq: u64,
    ident_seq: u64,
    def_start_steps: u64,
    requests: Vec<ChildRequest>,
    ops: Vec<ParOp>,
    fresh_log: Vec<(Ident, Ident)>,
    local_claims: HashMap<SpecKey, Vec<(Vec<PKey>, usize)>>,
}

impl ParCtx {
    fn new(
        shared: Arc<SharedMemo>,
        pool: Arc<FuelPool>,
        worker: usize,
        par_mod: ModName,
    ) -> ParCtx {
        ParCtx {
            shared,
            pool,
            local_fuel: 0,
            worker,
            par_mod,
            call_seq: 0,
            ident_seq: 0,
            def_start_steps: 0,
            requests: Vec::new(),
            ops: Vec::new(),
            fresh_log: Vec::new(),
            local_claims: HashMap::new(),
        }
    }

    /// Spends one step from the shared pool (chunked locally).
    pub(crate) fn spend_fuel(&mut self) -> bool {
        if self.local_fuel == 0 {
            self.local_fuel = self.pool.claim(FUEL_CHUNK);
            if self.local_fuel == 0 {
                return false;
            }
        }
        self.local_fuel -= 1;
        true
    }

    /// A placeholder identifier from this worker's disjoint range; the
    /// replay assigns the canonical `{base}'{gensym}` name.
    pub(crate) fn fresh_placeholder(&mut self, base: Ident) -> Ident {
        self.ident_seq += 1;
        let ph = Ident::new(format!("~g{}x{}", self.worker, self.ident_seq));
        self.fresh_log.push((ph, base));
        ph
    }

    fn local_find(&self, key: &SpecKey, keys: &[PKey]) -> Option<usize> {
        let bucket = self.local_claims.get(key)?;
        bucket.iter().find(|(k, _)| k.as_slice() == keys).map(|(_, i)| *i)
    }
}

impl Drop for ParCtx {
    fn drop(&mut self) {
        // Unspent chunk fuel returns to the pool when the session's
        // worker states are dropped, keeping the total admitted step
        // count exactly `budget.steps`. (Workers now live for the whole
        // session, so a worker may carry up to one chunk of unspent
        // fuel across round barriers — part of the documented budget
        // slack at `threads > 1`.)
        self.pool.refund(self.local_fuel);
    }
}

// ---------------------------------------------------------------------
// Engine worker-mode entry points (called from `engine.rs`)
// ---------------------------------------------------------------------

impl<'p> Engine<'p> {
    /// Buffers an unfold decision event for replay-time emission.
    pub(crate) fn buffer_unfold_event(
        &mut self,
        target: &QualName,
        mask: BtMask,
        vars: u32,
        witness: String,
    ) {
        let chain_depth = self.chain.len() as u64;
        let steps_now = self.stats.steps;
        if let Some(par) = self.par.as_mut() {
            par.ops.push(ParOp::Event(Box::new(EvTpl {
                decision: Decision::Unfold,
                target: *target,
                mask,
                vars,
                hash: 0,
                probe: false,
                residual: None,
                local_claim: None,
                witness,
                chain_depth,
                steps_at: steps_now - par.def_start_steps,
            })));
        }
    }

    /// Worker-mode `mk_resid`: probe shared memo, then this body's own
    /// claims; on a miss, claim a placeholder and record the request.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn residualise_par(
        &mut self,
        target: &QualName,
        vars: u32,
        mask: BtMask,
        args: &[Rc<PVal>],
        keys: Vec<PKey>,
        leaves: Vec<Expr>,
        leaf_names: Vec<Ident>,
        hash: u64,
    ) -> Result<Rc<PVal>, SpecError> {
        self.stats.memo_probes += 1;
        let enabled = self.recorder.is_enabled();
        let chain_depth = self.chain.len() as u64;
        let key = SpecKey { target: *target, mask: mask.0, hash };
        let steps_now = self.stats.steps;
        let Some(par) = self.par.as_mut() else {
            return Err(SpecError::TypeConfusion(
                "residualise_par outside worker mode".to_string(),
            ));
        };
        let steps_at = steps_now - par.def_start_steps;

        // Settled in an earlier round (or the entry): a plain memo hit.
        if let Some(found) = par.shared.find(&key, &keys) {
            self.stats.memo_hits += 1;
            if enabled {
                par.ops.push(ParOp::Event(Box::new(EvTpl {
                    decision: Decision::MemoHit,
                    target: *target,
                    mask,
                    vars,
                    hash,
                    probe: true,
                    residual: Some(found),
                    local_claim: None,
                    witness: String::new(),
                    chain_depth,
                    steps_at,
                })));
            }
            return Ok(Rc::new(PVal::Code(Expr::Call(CallName::from(found), leaves))));
        }

        // Claimed earlier in this very body: reuse its placeholder (the
        // replay resolves both occurrences to the same canonical name,
        // hitting whatever the first claim settled to).
        if let Some(req_idx) = par.local_find(&key, &keys) {
            self.stats.memo_hits += 1;
            let ph = par.requests[req_idx].placeholder;
            let pm = par.par_mod;
            if enabled {
                par.ops.push(ParOp::Event(Box::new(EvTpl {
                    decision: Decision::MemoHit,
                    target: *target,
                    mask,
                    vars,
                    hash,
                    probe: true,
                    residual: None,
                    local_claim: Some(req_idx),
                    witness: String::new(),
                    chain_depth,
                    steps_at,
                })));
            }
            return Ok(Rc::new(PVal::Code(Expr::Call(
                CallName { module: Some(pm), name: ph },
                leaves,
            ))));
        }

        // A genuinely new request: claim a placeholder.
        let mut free = vec![*target];
        for a in args {
            a.free_fns(&mut free);
        }
        par.call_seq += 1;
        let ph = Ident::new(format!("~c{}x{}", par.worker, par.call_seq));
        let start = self.chain.len().saturating_sub(CHAIN_LIMIT);
        let chain_tail: Vec<QualName> = self.chain[start..].iter().map(|(q, _)| *q).collect();
        let req_idx = par.requests.len();
        par.local_claims.entry(key).or_default().push((keys.clone(), req_idx));
        par.requests.push(ChildRequest {
            key,
            keys,
            target: *target,
            mask,
            vars,
            hash,
            leaf_names,
            free,
            args: args.iter().map(|a| SendPVal::from_pval(a)).collect(),
            placeholder: ph,
            chain_depth,
            steps_at,
            chain: chain_tail,
        });
        par.ops.push(ParOp::Claim { req: req_idx });
        let pm = par.par_mod;
        Ok(Rc::new(PVal::Code(Expr::Call(
            CallName { module: Some(pm), name: ph },
            leaves,
        ))))
    }

    /// Evaluates one frontier definition in worker mode, returning the
    /// body (with placeholders) plus the replay log.
    pub(crate) fn construct_par(&mut self, item: &ParPending) -> Result<WorkerDef, SpecError> {
        let before = *self.stats();
        if let Some(par) = self.par.as_mut() {
            par.def_start_steps = before.steps;
            // Clear rather than rely on end-of-def takes: a previous
            // definition may have errored out mid-body on this worker.
            par.requests.clear();
            par.ops.clear();
            par.fresh_log.clear();
            par.local_claims.clear();
        }
        let f = self
            .program
            .function(&item.target)
            .ok_or(SpecError::UnknownFunction(item.target))?;
        let body = Arc::clone(&f.body);
        let mut next = 0usize;
        let mut env: Vec<Rc<PVal>> = item
            .args
            .iter()
            .map(|a| Rc::new(a.rebuild(&item.formals, &mut next)))
            .collect();
        self.chain.push((item.target, item.hash));
        self.resid_stack.push(item.resid);
        let mut sink = NullSink;
        let result = self
            .eval(&body, &mut env, item.mask, item.target.module, &mut sink)
            .and_then(|v| self.lift_owned(v, &mut sink));
        self.resid_stack.pop();
        self.chain.pop();
        let body_expr = result?;
        let def = Def::new(item.resid.name, item.formals.clone(), body_expr);
        let d_steps = self.stats.steps - before.steps;
        let d_unfolds = self.stats.unfolds - before.unfolds;
        let d_probes = self.stats.memo_probes - before.memo_probes;
        let d_hits = self.stats.memo_hits - before.memo_hits;
        let Some(par) = self.par.as_mut() else {
            return Err(SpecError::TypeConfusion(
                "construct_par outside worker mode".to_string(),
            ));
        };
        Ok(WorkerDef {
            def,
            requests: std::mem::take(&mut par.requests),
            ops: std::mem::take(&mut par.ops),
            fresh_log: std::mem::take(&mut par.fresh_log),
            d_steps,
            d_unfolds,
            d_probes,
            d_hits,
        })
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit_event(
    rec: &Recorder,
    decision: Decision,
    target: QualName,
    mask: BtMask,
    vars: u32,
    hash: u64,
    probe: bool,
    residual: Option<QualName>,
    witness: String,
    parent: QualName,
    chain_depth: u64,
    pending: usize,
    fuel_left: u64,
    specs_left: u64,
) {
    let mut ev = SpecEvent::request(target.to_string(), mask.render(vars));
    ev.decision = decision;
    ev.skeleton_hash = hash;
    ev.probe = probe;
    ev.residual = residual.map(|q| q.to_string()).unwrap_or_default();
    ev.witness = witness;
    ev.parent = parent.to_string();
    ev.chain_depth = chain_depth;
    ev.pending = pending as u64;
    ev.fuel_left = fuel_left;
    ev.specs_left = specs_left;
    rec.spec(ev);
}

/// Renames placeholder call targets (module `~par`) and placeholder
/// fresh identifiers to their canonical replay-assigned names.
fn rename_expr(
    e: &mut Expr,
    calls: &HashMap<Ident, QualName>,
    idents: &HashMap<Ident, Ident>,
    par_mod: ModName,
) {
    match e {
        Expr::Nat(_) | Expr::Bool(_) | Expr::Nil => {}
        Expr::Var(x) => {
            if let Some(n) = idents.get(x) {
                *x = *n;
            }
        }
        Expr::Prim(_, args) => {
            for a in args {
                rename_expr(a, calls, idents, par_mod);
            }
        }
        Expr::If(c, t, f) => {
            rename_expr(c, calls, idents, par_mod);
            rename_expr(t, calls, idents, par_mod);
            rename_expr(f, calls, idents, par_mod);
        }
        Expr::Call(c, args) => {
            if c.module == Some(par_mod) {
                if let Some(q) = calls.get(&c.name) {
                    *c = CallName::from(*q);
                }
            }
            for a in args {
                rename_expr(a, calls, idents, par_mod);
            }
        }
        Expr::Lam(x, b) => {
            if let Some(n) = idents.get(x) {
                *x = *n;
            }
            rename_expr(b, calls, idents, par_mod);
        }
        Expr::App(f, a) => {
            rename_expr(f, calls, idents, par_mod);
            rename_expr(a, calls, idents, par_mod);
        }
        Expr::Let(x, r, b) => {
            if let Some(n) = idents.get(x) {
                *x = *n;
            }
            rename_expr(r, calls, idents, par_mod);
            rename_expr(b, calls, idents, par_mod);
        }
    }
}

fn request_budget_error(resource: BudgetResource, r: &mut ChildRequest) -> SpecError {
    SpecError::BudgetExhausted {
        resource,
        witness: r.target,
        skeleton_hash: r.hash,
        chain: std::mem::take(&mut r.chain),
    }
}

/// Replays one worker-evaluated definition on the driver thread: claim
/// resolution, canonical naming/placement/gensyms, statistics, budget
/// checks, telemetry and emission — in exact sequential order.
#[allow(clippy::too_many_arguments)]
fn replay_def(
    eng: &mut Engine<'_>,
    wd: WorkerDef,
    target: QualName,
    hash: u64,
    resid: QualName,
    shared: &SharedMemo,
    vpending: &mut usize,
    next: &mut Vec<ParPending>,
    sink: &mut dyn ModuleSink,
    par_mod: ModName,
) -> Result<(), SpecError> {
    let enabled = eng.recorder.is_enabled();
    let b = eng.options.budget;
    eng.stats.peak_open = eng.stats.peak_open.max(1);
    // Sequential `construct` checks `open > max_pending` before pushing
    // the chain frame; breadth-first `open` is always exactly 1 here.
    if 1 > b.max_pending {
        return Err(eng.budget_error(BudgetResource::Pending, Some((target, hash))));
    }
    eng.chain.push((target, hash));
    eng.resid_stack.push(resid);
    let base_steps = eng.stats.steps;
    eng.stats.steps += wd.d_steps;
    eng.stats.unfolds += wd.d_unfolds;
    eng.stats.memo_probes += wd.d_probes;
    eng.stats.memo_hits += wd.d_hits;
    let program = eng.program;
    let mut requests = wd.requests;
    let mut rename_calls: HashMap<Ident, QualName> = HashMap::new();
    for op in wd.ops {
        match op {
            ParOp::Claim { req } => {
                let r = &mut requests[req];
                if let Some(found) = shared.find(&r.key, &r.keys) {
                    // Another definition earlier in breadth-first order
                    // got there first: the sequential run would have
                    // hit the memo here.
                    eng.stats.memo_hits += 1;
                    rename_calls.insert(r.placeholder, found);
                    if enabled {
                        emit_event(
                            &eng.recorder,
                            Decision::MemoHit,
                            r.target,
                            r.mask,
                            r.vars,
                            r.hash,
                            true,
                            Some(found),
                            String::new(),
                            resid,
                            r.chain_depth,
                            *vpending,
                            b.steps.saturating_sub(base_steps + r.steps_at),
                            b.max_specialisations.saturating_sub(eng.provenance.len()) as u64,
                        );
                    }
                } else {
                    if eng.provenance.len() >= b.max_specialisations {
                        return Err(request_budget_error(BudgetResource::Specialisations, r));
                    }
                    let counter = eng.name_counters.entry(r.target).or_insert(0);
                    *counter += 1;
                    let name = Ident::new(format!("{}_{}", r.target.name, counter));
                    let module = eng.placer.place(&r.free, program.graph());
                    let new_resid = QualName { module, name };
                    shared.insert(r.key, r.keys.clone(), new_resid);
                    let formals = uniquify(std::mem::take(&mut r.leaf_names));
                    eng.provenance.push(Provenance {
                        source: r.target,
                        mask: r.mask,
                        vars: r.vars,
                        residual: new_resid,
                        formals: formals.len(),
                    });
                    if enabled {
                        let witness = match program.function(&r.target) {
                            Some(f) => format!(
                                "unfold term {} = D under {}",
                                f.sig.unfold,
                                r.mask.render(r.vars)
                            ),
                            None => String::new(),
                        };
                        emit_event(
                            &eng.recorder,
                            Decision::Residualise,
                            r.target,
                            r.mask,
                            r.vars,
                            r.hash,
                            true,
                            Some(new_resid),
                            witness,
                            resid,
                            r.chain_depth,
                            *vpending,
                            b.steps.saturating_sub(base_steps + r.steps_at),
                            b.max_specialisations.saturating_sub(eng.provenance.len()) as u64,
                        );
                    }
                    if *vpending >= b.max_pending {
                        return Err(request_budget_error(BudgetResource::Pending, r));
                    }
                    *vpending += 1;
                    eng.stats.peak_pending = eng.stats.peak_pending.max(*vpending);
                    eng.recorder.observe("genext.pending_depth", *vpending as u64);
                    rename_calls.insert(r.placeholder, new_resid);
                    next.push(ParPending {
                        target: r.target,
                        mask: r.mask,
                        resid: new_resid,
                        formals,
                        args: std::mem::take(&mut r.args),
                        hash: r.hash,
                    });
                }
            }
            ParOp::Event(tpl) => {
                if !enabled {
                    continue;
                }
                let residual = match tpl.residual {
                    Some(q) => Some(q),
                    None => tpl
                        .local_claim
                        .and_then(|i| rename_calls.get(&requests[i].placeholder).copied()),
                };
                emit_event(
                    &eng.recorder,
                    tpl.decision,
                    tpl.target,
                    tpl.mask,
                    tpl.vars,
                    tpl.hash,
                    tpl.probe,
                    residual,
                    tpl.witness,
                    resid,
                    tpl.chain_depth,
                    *vpending,
                    b.steps.saturating_sub(base_steps + tpl.steps_at),
                    b.max_specialisations.saturating_sub(eng.provenance.len()) as u64,
                );
            }
        }
    }
    // Canonical gensyms in the worker's generation order (which is the
    // sequential evaluation order of this body).
    let mut rename_idents: HashMap<Ident, Ident> = HashMap::new();
    for (ph, base) in wd.fresh_log {
        eng.gensym += 1;
        rename_idents.insert(ph, Ident::new(format!("{base}'{}", eng.gensym)));
    }
    let mut def = wd.def;
    if !(rename_calls.is_empty() && rename_idents.is_empty()) {
        rename_expr(&mut def.body, &rename_calls, &rename_idents, par_mod);
    }
    eng.stats.specialisations += 1;
    eng.stats.residual_nodes += def.body.size();
    if eng.stats.residual_nodes > b.max_residual_nodes {
        return Err(eng.budget_error(BudgetResource::ResidualNodes, Some((target, hash))));
    }
    let imports = eng.imports.entry(resid.module).or_default();
    for q in def.body.called_functions() {
        if q.module != resid.module {
            imports.insert(q.module);
        }
    }
    sink.emit(&resid.module, &def)?;
    eng.stats.residual_modules = eng.imports.len();
    eng.resid_stack.pop();
    eng.chain.pop();
    Ok(())
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Everything a threaded specialisation session produced besides the
/// emitted definitions themselves.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// The residual entry function.
    pub entry: QualName,
    /// Session counters (identical to the sequential engine's).
    pub stats: SpecStats,
    /// Per-definition provenance, in creation (breadth-first) order.
    pub provenance: Vec<Provenance>,
    /// Residual-module import sets (for two-pass file emission).
    pub imports: BTreeMap<ModName, BTreeSet<ModName>>,
}

/// Specialises `entry` on `threads` worker threads, streaming finished
/// definitions to `sink` in breadth-first order. Residual output is
/// byte-identical to [`Engine::specialise_streaming`] at every thread
/// count.
///
/// Falls back to the sequential engine in-process when the options
/// demand orderings the round-based driver does not reproduce
/// (depth-first strategy, generalising fallback, legacy cost model) —
/// and when `threads` is 1: a single synchronous worker consuming the
/// frontier in breadth-first order *is* the sequential engine, so the
/// placeholder/replay decomposition would only add overhead. Routing
/// the degenerate case there keeps `--threads 1` within noise of the
/// sequential path (the `par_table` bench's acceptance row).
///
/// # Errors
///
/// Any [`SpecError`]. Which definition a *budget* breach is attributed
/// to can differ from the sequential run when `threads > 1` (fuel is
/// consumed concurrently, and workers hold unspent chunks across
/// rounds); all other errors, and all successful runs, are
/// deterministic.
pub fn specialise_streaming_threaded(
    program: &GenProgram,
    entry: &QualName,
    args: Vec<SpecArg>,
    options: EngineOptions,
    threads: NonZeroUsize,
    recorder: Recorder,
    sink: &mut dyn ModuleSink,
) -> Result<ParallelOutcome, SpecError> {
    let parallelisable = threads.get() > 1
        && options.strategy == Strategy::BreadthFirst
        && options.on_exhaustion == OnExhaustion::Error
        && options.cost_model == CostModel::Interned;
    if !parallelisable {
        let mut eng = Engine::with_recorder(program, options, recorder);
        let resid = eng.specialise_streaming(entry, args, sink)?;
        return Ok(ParallelOutcome {
            entry: resid,
            stats: *eng.stats(),
            provenance: eng.provenance().to_vec(),
            imports: eng.residual_imports().clone(),
        });
    }

    // The replay engine: owns the canonical naming state (name counters,
    // gensym, placer), provenance, imports and statistics. Its own memo,
    // pending list and fuel meter stay untouched — the shared memo and
    // fuel pool replace them.
    let mut eng = Engine::with_recorder(program, options, recorder.clone());
    let f = program.function(entry).ok_or(SpecError::UnknownEntry(*entry))?;
    if f.params.len() != args.len() {
        return Err(SpecError::EntryArity {
            entry: *entry,
            expected: f.params.len(),
            found: args.len(),
        });
    }
    let division = Division(
        args.iter()
            .map(|a| match a {
                SpecArg::Static(_) => ParamBt::Static,
                SpecArg::Dynamic => ParamBt::Dynamic,
                SpecArg::StaticSpine(_) => ParamBt::StaticSpine,
            })
            .collect(),
    );
    let mask = division
        .mask_for(&f.sig)
        .map_err(|e| SpecError::TypeConfusion(e.to_string()))?;
    let mut vals = Vec::with_capacity(args.len());
    for (a, p) in args.iter().zip(&f.params) {
        vals.push(match a {
            SpecArg::Static(v) => PVal::from_value(v).ok_or_else(|| {
                SpecError::TypeConfusion(format!(
                    "closure values cannot be specialisation inputs (parameter {p})"
                ))
            })?,
            SpecArg::Dynamic => PVal::Code(Expr::Var(*p)),
            SpecArg::StaticSpine(n) => {
                let mut list = PVal::Nil;
                for i in (0..*n).rev() {
                    let name = Ident::new(format!("{p}{i}"));
                    list = PVal::Cons(Rc::new(PVal::Code(Expr::Var(name))), Rc::new(list));
                }
                list
            }
        });
    }
    let mut leaves = Vec::new();
    let mut keys = Vec::with_capacity(vals.len());
    let mut hash = SKELETON_SEED;
    for v in &vals {
        let (k, h) = split_hashed(v, &mut leaves);
        hash = hash_fold(hash, h);
        keys.push(k);
    }
    let formals: Vec<Ident> = uniquify(
        leaves
            .iter()
            .enumerate()
            .map(|(i, l)| match l {
                Expr::Var(x) => *x,
                _ => Ident::new(format!("d{i}")),
            })
            .collect(),
    );
    let mut free = vec![*entry];
    for v in &vals {
        v.free_fns(&mut free);
    }
    let module = eng.placer.place(&free, program.graph());
    let resid = QualName { module, name: entry.name };
    let entry_resid = resid;

    let shared = Arc::new(SharedMemo::new());
    shared.insert(SpecKey { target: *entry, mask: mask.0, hash }, keys, resid);
    eng.provenance.push(Provenance {
        source: *entry,
        mask,
        vars: f.sig.vars,
        residual: resid,
        formals: formals.len(),
    });
    eng.record_decision(
        Decision::Entry,
        entry,
        mask,
        f.sig.vars,
        hash,
        false,
        Some(&resid),
        String::new(),
    );

    let pool = Arc::new(FuelPool::new(options.budget.steps));
    let par_mod = ModName::new(PAR_MOD);
    let mut frontier: Vec<ParPending> = vec![ParPending {
        target: *entry,
        mask,
        resid,
        formals,
        args: vals.iter().map(SendPVal::from_pval).collect(),
        hash,
    }];
    let mut vpending: usize = 0;
    let mut entry_def = true;
    let mut sched_tasks = 0u64;
    let mut sched_steals = 0u64;
    let mut sched_idle_parks = 0u64;

    // One scheduler session for the whole specialisation: the worker
    // threads *and* their engines are built once and reused round after
    // round. (Spawning threads and constructing engines per round made a
    // deep, narrow frontier — one definition per round — pay the setup
    // cost once per definition.) Worker engines survive rounds safely:
    // `construct_par` clears every per-definition buffer at entry and
    // the placeholder counters are monotone per worker.
    let eng = &mut eng;
    let frontier = &mut frontier;
    mspec_sched::run_rounds(
        threads,
        |worker| {
            let mut w = Engine::with_recorder(program, options, recorder.clone());
            w.par = Some(Box::new(ParCtx::new(
                Arc::clone(&shared),
                Arc::clone(&pool),
                worker,
                par_mod,
            )));
            w
        },
        |w: &mut Engine<'_>,
         (idx, item): (usize, ParPending),
         _h: &mspec_sched::WorkerHandle<'_, (usize, ParPending)>| {
            (idx, w.construct_par(&item))
        },
        |round| -> Result<(), SpecError> {
            while !frontier.is_empty() {
                let meta: Vec<(QualName, u64, QualName)> =
                    frontier.iter().map(|it| (it.target, it.hash, it.resid)).collect();
                let mut seeds: Vec<(usize, ParPending)> =
                    frontier.drain(..).enumerate().collect();
                // Workers pop their own deque from the back: reversing
                // the seed order makes a worker that drains the round
                // alone consume it in breadth-first order, matching the
                // sequential engine's fuel-spending order.
                seeds.reverse();
                let outcome = round(seeds);
                sched_tasks += outcome.stats.tasks;
                sched_steals += outcome.stats.steals;
                sched_idle_parks += outcome.stats.idle_parks;
                let mut results = outcome.results;
                results.sort_by_key(|(i, _)| *i);
                let mut next: Vec<ParPending> = Vec::new();
                for (idx, r) in results {
                    if entry_def {
                        // The entry was never on the pending list.
                        entry_def = false;
                    } else {
                        vpending -= 1;
                    }
                    let wd = r?;
                    let (target, hash, resid) = meta[idx];
                    replay_def(
                        eng,
                        wd,
                        target,
                        hash,
                        resid,
                        &shared,
                        &mut vpending,
                        &mut next,
                        sink,
                        par_mod,
                    )?;
                }
                *frontier = next;
            }
            Ok(())
        },
    )?;

    eng.flush_counters();
    if recorder.is_enabled() {
        recorder.count("sched.tasks", sched_tasks);
        recorder.count("sched.steals", sched_steals);
        recorder.count("sched.idle_parks", sched_idle_parks);
    }
    Ok(ParallelOutcome {
        entry: entry_resid,
        stats: *eng.stats(),
        provenance: eng.provenance().to_vec(),
        imports: eng.residual_imports().clone(),
    })
}

/// [`specialise_streaming_threaded`] into an in-memory sink, returning
/// the assembled residual program.
///
/// # Errors
///
/// Any [`SpecError`].
pub fn specialise_threaded(
    program: &GenProgram,
    entry: &QualName,
    args: Vec<SpecArg>,
    options: EngineOptions,
    threads: NonZeroUsize,
    recorder: Recorder,
) -> Result<(ResidualProgram, ParallelOutcome), SpecError> {
    let mut sink = MemorySink::new();
    let out =
        specialise_streaming_threaded(program, entry, args, options, threads, recorder, &mut sink)?;
    let residual = assemble(sink.into_modules(), out.entry)?;
    Ok((residual, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_pool_claims_exactly_budget() {
        let pool = FuelPool::new(10_000);
        let mut total = 0;
        loop {
            let got = pool.claim(FUEL_CHUNK);
            if got == 0 {
                break;
            }
            total += got;
        }
        assert_eq!(total, 10_000);
        pool.refund(123);
        assert_eq!(pool.claim(FUEL_CHUNK), 123);
    }

    #[test]
    fn shared_memo_collision_checks_skeletons() {
        let memo = SharedMemo::new();
        let key = SpecKey { target: QualName::new("M", "f"), mask: 0, hash: 42 };
        let k1 = vec![PKey::Nat(1)];
        let k2 = vec![PKey::Nat(2)];
        memo.insert(key, k1.clone(), QualName::new("S", "f_1"));
        assert_eq!(memo.find(&key, &k1), Some(QualName::new("S", "f_1")));
        assert_eq!(memo.find(&key, &k2), None);
        memo.insert(key, k2.clone(), QualName::new("S", "f_2"));
        assert_eq!(memo.find(&key, &k2), Some(QualName::new("S", "f_2")));
    }

    #[test]
    fn send_pval_rebuild_matches_sequential_rebuild() {
        let v = PVal::Cons(
            Rc::new(PVal::Code(Expr::Nat(7))),
            Rc::new(PVal::Cons(Rc::new(PVal::Nat(3)), Rc::new(PVal::Code(Expr::Nil)))),
        );
        let names = vec![Ident::new("a"), Ident::new("b")];
        let mut n1 = 0;
        let seq = crate::value::rebuild(&v, &names, &mut n1);
        let mut n2 = 0;
        let par = SendPVal::from_pval(&v).rebuild(&names, &mut n2);
        assert_eq!(n1, n2);
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    #[test]
    fn rename_expr_rewrites_placeholders_only() {
        let par_mod = ModName::new(PAR_MOD);
        let ph = Ident::new("~c0x1");
        let fresh_ph = Ident::new("~g0x1");
        let mut e = Expr::Lam(
            fresh_ph,
            Box::new(Expr::Call(
                CallName { module: Some(par_mod), name: ph },
                vec![Expr::Var(fresh_ph), Expr::Call(CallName::resolved("M", "g"), vec![])],
            )),
        );
        let mut calls = HashMap::new();
        calls.insert(ph, QualName::new("S", "f_1"));
        let mut idents = HashMap::new();
        idents.insert(fresh_ph, Ident::new("x'1"));
        rename_expr(&mut e, &calls, &idents, par_mod);
        match &e {
            Expr::Lam(x, b) => {
                assert_eq!(x.as_str(), "x'1");
                match &**b {
                    Expr::Call(c, args) => {
                        assert_eq!(c.module, Some(ModName::new("S")));
                        assert_eq!(c.name.as_str(), "f_1");
                        assert!(matches!(&args[0], Expr::Var(v) if v.as_str() == "x'1"));
                        assert!(
                            matches!(&args[1], Expr::Call(c2, _) if c2.name.as_str() == "g")
                        );
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

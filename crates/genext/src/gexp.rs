//! The compiled generating-extension representation.
//!
//! Compilation (done by the `mspec-cogen` crate) turns an annotated
//! definition into a [`GExp`] tree in which
//!
//! * variables are resolved to environment *slots* (no name lookup at
//!   specialisation time),
//! * every symbolic binding time is a [`BtCode`] — a 128-bit mask plus a
//!   forced flag, so deciding static-vs-dynamic is a single AND against
//!   the call's binding-time mask (the paper's aim that "little
//!   binding-time computation needs to be performed at
//!   specialisation-time"),
//! * lambdas carry their captured slots and free function names
//!   (pre-computed for closure construction and §5 placement).
//!
//! [`GenModule`]s serialise to `.gx` files: the paper's "compiled
//! generating extension of a module", linkable without any source code.

use crate::error::SpecError;
use mspec_bta::{BtMask, BtSignature, BtTerm, CoerceSpec};
use mspec_lang::ast::{Ident, ModName, PrimOp, QualName};
use mspec_lang::modgraph::ModGraph;
use mspec_lang::{Module, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::rc::Rc;

/// A compiled binding-time term: evaluating it against a call's
/// [`BtMask`] costs one AND and one OR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtCode {
    /// The term is the constant `D`.
    pub forced: bool,
    /// Bit `i` set ⇔ signature variable `t_i` occurs in the lub.
    pub bits: u128,
}

impl BtCode {
    /// The constant `S`.
    pub fn s() -> BtCode {
        BtCode { forced: false, bits: 0 }
    }

    /// The constant `D`.
    pub fn d() -> BtCode {
        BtCode { forced: true, bits: 0 }
    }

    /// Compiles a symbolic term.
    pub fn compile(term: &BtTerm) -> BtCode {
        let (forced, bits) = term.bits();
        BtCode { forced, bits }
    }

    /// `true` if the term evaluates to `D` under the mask.
    #[inline]
    pub fn is_dynamic(self, mask: BtMask) -> bool {
        self.forced || (self.bits & mask.0) != 0
    }
}

/// A compiled coercion (the run-time half of [`CoerceSpec`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GCoerce {
    /// Lift to code when `from` is `S` and `to` is `D`.
    Base {
        /// Binding time of the value.
        from: BtCode,
        /// Binding time required.
        to: BtCode,
    },
    /// Lift the spine, or walk it coercing elements.
    List {
        /// Spine binding time of the value.
        from: BtCode,
        /// Spine binding time required.
        to: BtCode,
        /// Element coercion.
        elem: Box<GCoerce>,
        /// `true` if `elem` can never act (pre-computed).
        elem_identity: bool,
    },
    /// Eta-expand a static closure when the arrow rises to `D`.
    Fun {
        /// Arrow binding time of the value.
        from: BtCode,
        /// Arrow binding time required.
        to: BtCode,
    },
    /// Statically the identity.
    Id,
}

impl GCoerce {
    /// Compiles a coercion spec.
    pub fn compile(spec: &CoerceSpec) -> GCoerce {
        match spec {
            CoerceSpec::Id | CoerceSpec::Var { .. } => GCoerce::Id,
            CoerceSpec::Base { from, to } => {
                GCoerce::Base { from: BtCode::compile(from), to: BtCode::compile(to) }
            }
            CoerceSpec::Fun { from, to } => {
                GCoerce::Fun { from: BtCode::compile(from), to: BtCode::compile(to) }
            }
            CoerceSpec::List { from, to, elem } => {
                let compiled = GCoerce::compile(elem);
                let elem_identity = matches!(compiled, GCoerce::Id);
                GCoerce::List {
                    from: BtCode::compile(from),
                    to: BtCode::compile(to),
                    elem: Box::new(compiled),
                    elem_identity,
                }
            }
        }
    }
}

/// A compiled generating-extension expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GExp {
    /// Literal natural.
    Nat(u64),
    /// Literal boolean.
    Bool(bool),
    /// Empty list.
    Nil,
    /// Environment slot.
    Var(u32),
    /// `mk_op`: perform when the code evaluates `S`, residualise when `D`.
    Prim(PrimOp, BtCode, Vec<GExp>),
    /// `mk_if`.
    If(BtCode, Box<GExp>, Box<GExp>, Box<GExp>),
    /// `mk_resid`/unfold of a named function. `inst` maps each callee
    /// signature variable to a term over the caller's variables.
    Call {
        /// The callee.
        target: QualName,
        /// Signature instantiation, one code per callee variable.
        inst: Vec<BtCode>,
        /// Argument expressions.
        args: Vec<GExp>,
    },
    /// Build a static closure.
    Lam {
        /// Parameter name (for readable residual code).
        param: Ident,
        /// Body, compiled against a frame of `captured.len() + 1` slots.
        body: Rc<GExp>,
        /// Slots of the enclosing frame to capture, in order.
        captured: Vec<u32>,
        /// Named functions reachable from the body (for §5 placement).
        free_fns: Rc<Vec<QualName>>,
        /// Site identity (for memoisation keys).
        lam_id: u32,
    },
    /// `mk_app`: unfold the closure when `S`, residual application when `D`.
    App(BtCode, Box<GExp>, Box<GExp>),
    /// Evaluate, push a slot, continue.
    Let(Box<GExp>, Box<GExp>),
    /// A binding-time coercion.
    Coerce(GCoerce, Box<GExp>),
}

impl GExp {
    /// Number of nodes (size metric for the genext-size experiments).
    pub fn size(&self) -> usize {
        match self {
            GExp::Nat(_) | GExp::Bool(_) | GExp::Nil | GExp::Var(_) => 1,
            GExp::Prim(_, _, args) | GExp::Call { args, .. } => {
                1 + args.iter().map(GExp::size).sum::<usize>()
            }
            GExp::If(_, c, t, e) => 1 + c.size() + t.size() + e.size(),
            GExp::Lam { body, .. } => 1 + body.size(),
            GExp::App(_, f, a) => 1 + f.size() + a.size(),
            GExp::Let(e, b) => 1 + e.size() + b.size(),
            GExp::Coerce(_, e) => 1 + e.size(),
        }
    }
}

/// The generating extension of one named function (the paper's
/// `mk_f` + `mk_f_body` pair, §4.2 Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenFn {
    /// The function's qualified name.
    pub name: QualName,
    /// Original parameter names (used to name residual formals).
    pub params: Vec<Ident>,
    /// The binding-time signature (mask width, unfold decision, shapes).
    pub sig: BtSignature,
    /// The compiled body.
    pub body: Rc<GExp>,
}

/// The generating extension of one module — what the `.gx` file holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenModule {
    /// The module's name.
    pub name: ModName,
    /// Its direct imports (needed for placement).
    pub imports: Vec<ModName>,
    /// Generating extensions of its definitions.
    pub fns: Vec<GenFn>,
}

impl GenModule {
    /// Serialises to the `.gx` file format (JSON).
    ///
    /// # Errors
    ///
    /// Serialisation errors (none for well-formed modules).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Reads a `.gx` file back.
    ///
    /// # Errors
    ///
    /// Returns an error if `s` is not a valid genext file.
    pub fn from_json(s: &str) -> Result<GenModule, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// A linked program: generating extensions of all modules, ready to run.
///
/// Linking needs no source code — only `.gx` modules — reproducing the
/// paper's point that library sources stay private.
#[derive(Debug)]
pub struct GenProgram {
    modules: Vec<GenModule>,
    index: HashMap<QualName, (usize, usize)>,
    graph: ModGraph,
}

impl GenProgram {
    /// Links generating extensions of modules into a runnable program.
    ///
    /// # Errors
    ///
    /// [`SpecError::DuplicateModule`] for clashing module names, or a
    /// cyclic/missing-import error surfaced as
    /// [`SpecError::TypeConfusion`] (cannot happen for modules produced
    /// by the cogen from a resolved program).
    pub fn link(modules: Vec<GenModule>) -> Result<GenProgram, SpecError> {
        let mut index = HashMap::new();
        for (mi, m) in modules.iter().enumerate() {
            for (fi, f) in m.fns.iter().enumerate() {
                if index.insert(f.name.clone(), (mi, fi)).is_some() {
                    return Err(SpecError::DuplicateModule(m.name.clone()));
                }
            }
        }
        // Rebuild the import graph from the module skeletons.
        let skeleton = Program::new(
            modules
                .iter()
                .map(|m| Module::new(m.name.clone(), m.imports.clone(), vec![]))
                .collect(),
        );
        let graph = ModGraph::new(&skeleton).map_err(|e| SpecError::TypeConfusion(e.to_string()))?;
        Ok(GenProgram { modules, index, graph })
    }

    /// Looks up a function's generating extension.
    pub fn function(&self, q: &QualName) -> Option<&GenFn> {
        let (mi, fi) = *self.index.get(q)?;
        Some(&self.modules[mi].fns[fi])
    }

    /// The linked modules.
    pub fn modules(&self) -> &[GenModule] {
        &self.modules
    }

    /// The (source) module import graph, used by placement.
    pub fn graph(&self) -> &ModGraph {
        &self.graph
    }

    /// Total number of linked functions.
    pub fn fn_count(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btcode_evaluates_with_one_and() {
        let t = BtTerm::lub_of([0, 2]);
        let c = BtCode::compile(&t);
        assert!(!c.is_dynamic(BtMask(0)));
        assert!(c.is_dynamic(BtMask(0b100)));
        assert!(c.is_dynamic(BtMask(0b001)));
        assert!(!c.is_dynamic(BtMask(0b010)));
        assert!(BtCode::d().is_dynamic(BtMask(0)));
        assert!(!BtCode::s().is_dynamic(BtMask(u128::MAX)));
    }

    #[test]
    fn gcoerce_compiles_identities() {
        assert_eq!(GCoerce::compile(&CoerceSpec::Id), GCoerce::Id);
        let spec = CoerceSpec::List {
            from: BtTerm::var(0),
            to: BtTerm::var(1),
            elem: Box::new(CoerceSpec::Id),
        };
        match GCoerce::compile(&spec) {
            GCoerce::List { elem_identity, .. } => assert!(elem_identity),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gexp_size_counts_nodes() {
        let e = GExp::Prim(
            PrimOp::Add,
            BtCode::s(),
            vec![GExp::Var(0), GExp::Coerce(GCoerce::Id, Box::new(GExp::Nat(1)))],
        );
        assert_eq!(e.size(), 4);
    }

    fn tiny_module() -> GenModule {
        GenModule {
            name: ModName::new("M"),
            imports: vec![],
            fns: vec![GenFn {
                name: QualName::new("M", "id"),
                params: vec![Ident::new("x")],
                sig: BtSignature {
                    vars: 1,
                    constraints: vec![],
                    forced_d: vec![],
                    params: vec![mspec_bta::SigShape::Var(BtTerm::var(0))],
                    ret: mspec_bta::SigShape::Var(BtTerm::var(0)),
                    unfold: BtTerm::s(),
                },
                body: Rc::new(GExp::Var(0)),
            }],
        }
    }

    #[test]
    fn genmodule_json_roundtrip() {
        let m = tiny_module();
        let js = m.to_json().unwrap();
        let back = GenModule::from_json(&js).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn link_and_lookup() {
        let p = GenProgram::link(vec![tiny_module()]).unwrap();
        assert!(p.function(&QualName::new("M", "id")).is_some());
        assert!(p.function(&QualName::new("M", "nope")).is_none());
        assert_eq!(p.fn_count(), 1);
        assert_eq!(p.modules().len(), 1);
    }

    #[test]
    fn link_rejects_duplicate_functions() {
        let m1 = tiny_module();
        let m2 = tiny_module();
        assert!(matches!(
            GenProgram::link(vec![m1, m2]),
            Err(SpecError::DuplicateModule(_))
        ));
    }
}

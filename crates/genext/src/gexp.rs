//! The compiled generating-extension representation.
//!
//! Compilation (done by the `mspec-cogen` crate) turns an annotated
//! definition into a [`GExp`] tree in which
//!
//! * variables are resolved to environment *slots* (no name lookup at
//!   specialisation time),
//! * every symbolic binding time is a [`BtCode`] — a 128-bit mask plus a
//!   forced flag, so deciding static-vs-dynamic is a single AND against
//!   the call's binding-time mask (the paper's aim that "little
//!   binding-time computation needs to be performed at
//!   specialisation-time"),
//! * lambdas carry their captured slots and free function names
//!   (pre-computed for closure construction and §5 placement).
//!
//! [`GenModule`]s serialise to `.gx` files: the paper's "compiled
//! generating extension of a module", linkable without any source code.

use crate::error::SpecError;
use mspec_bta::{BtMask, BtSignature, BtTerm, CoerceSpec};
use mspec_lang::ast::{Ident, ModName, PrimOp, QualName};
use mspec_lang::modgraph::ModGraph;
use mspec_lang::{FromJson, Json, JsonError, Module, Program, ToJson};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A compiled binding-time term: evaluating it against a call's
/// [`BtMask`] costs one AND and one OR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtCode {
    /// The term is the constant `D`.
    pub forced: bool,
    /// Bit `i` set ⇔ signature variable `t_i` occurs in the lub.
    pub bits: u128,
}

impl BtCode {
    /// The constant `S`.
    pub fn s() -> BtCode {
        BtCode { forced: false, bits: 0 }
    }

    /// The constant `D`.
    pub fn d() -> BtCode {
        BtCode { forced: true, bits: 0 }
    }

    /// Compiles a symbolic term.
    pub fn compile(term: &BtTerm) -> BtCode {
        let (forced, bits) = term.bits();
        BtCode { forced, bits }
    }

    /// `true` if the term evaluates to `D` under the mask.
    #[inline]
    pub fn is_dynamic(self, mask: BtMask) -> bool {
        self.forced || (self.bits & mask.0) != 0
    }
}

/// A compiled coercion (the run-time half of [`CoerceSpec`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GCoerce {
    /// Lift to code when `from` is `S` and `to` is `D`.
    Base {
        /// Binding time of the value.
        from: BtCode,
        /// Binding time required.
        to: BtCode,
    },
    /// Lift the spine, or walk it coercing elements.
    List {
        /// Spine binding time of the value.
        from: BtCode,
        /// Spine binding time required.
        to: BtCode,
        /// Element coercion.
        elem: Box<GCoerce>,
        /// `true` if `elem` can never act (pre-computed).
        elem_identity: bool,
    },
    /// Eta-expand a static closure when the arrow rises to `D`.
    Fun {
        /// Arrow binding time of the value.
        from: BtCode,
        /// Arrow binding time required.
        to: BtCode,
    },
    /// Statically the identity.
    Id,
}

impl GCoerce {
    /// Compiles a coercion spec.
    pub fn compile(spec: &CoerceSpec) -> GCoerce {
        match spec {
            CoerceSpec::Id | CoerceSpec::Var { .. } => GCoerce::Id,
            CoerceSpec::Base { from, to } => {
                GCoerce::Base { from: BtCode::compile(from), to: BtCode::compile(to) }
            }
            CoerceSpec::Fun { from, to } => {
                GCoerce::Fun { from: BtCode::compile(from), to: BtCode::compile(to) }
            }
            CoerceSpec::List { from, to, elem } => {
                let compiled = GCoerce::compile(elem);
                let elem_identity = matches!(compiled, GCoerce::Id);
                GCoerce::List {
                    from: BtCode::compile(from),
                    to: BtCode::compile(to),
                    elem: Box::new(compiled),
                    elem_identity,
                }
            }
        }
    }
}

/// A compiled generating-extension expression.
#[derive(Debug, Clone, PartialEq)]
pub enum GExp {
    /// Literal natural.
    Nat(u64),
    /// Literal boolean.
    Bool(bool),
    /// Empty list.
    Nil,
    /// Environment slot.
    Var(u32),
    /// `mk_op`: perform when the code evaluates `S`, residualise when `D`.
    Prim(PrimOp, BtCode, Vec<GExp>),
    /// `mk_if`.
    If(BtCode, Box<GExp>, Box<GExp>, Box<GExp>),
    /// `mk_resid`/unfold of a named function. `inst` maps each callee
    /// signature variable to a term over the caller's variables.
    Call {
        /// The callee.
        target: QualName,
        /// Signature instantiation, one code per callee variable.
        inst: Vec<BtCode>,
        /// Argument expressions.
        args: Vec<GExp>,
    },
    /// Build a static closure.
    Lam {
        /// Parameter name (for readable residual code).
        param: Ident,
        /// Body, compiled against a frame of `captured.len() + 1` slots.
        body: Arc<GExp>,
        /// Slots of the enclosing frame to capture, in order.
        captured: Vec<u32>,
        /// Named functions reachable from the body (for §5 placement).
        free_fns: Arc<Vec<QualName>>,
        /// Site identity (for memoisation keys).
        lam_id: u32,
    },
    /// `mk_app`: unfold the closure when `S`, residual application when `D`.
    App(BtCode, Box<GExp>, Box<GExp>),
    /// Evaluate, push a slot, continue.
    Let(Box<GExp>, Box<GExp>),
    /// A binding-time coercion.
    Coerce(GCoerce, Box<GExp>),
}

impl GExp {
    /// Number of nodes (size metric for the genext-size experiments).
    pub fn size(&self) -> usize {
        match self {
            GExp::Nat(_) | GExp::Bool(_) | GExp::Nil | GExp::Var(_) => 1,
            GExp::Prim(_, _, args) | GExp::Call { args, .. } => {
                1 + args.iter().map(GExp::size).sum::<usize>()
            }
            GExp::If(_, c, t, e) => 1 + c.size() + t.size() + e.size(),
            GExp::Lam { body, .. } => 1 + body.size(),
            GExp::App(_, f, a) => 1 + f.size() + a.size(),
            GExp::Let(e, b) => 1 + e.size() + b.size(),
            GExp::Coerce(_, e) => 1 + e.size(),
        }
    }
}

/// The generating extension of one named function (the paper's
/// `mk_f` + `mk_f_body` pair, §4.2 Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct GenFn {
    /// The function's qualified name.
    pub name: QualName,
    /// Original parameter names (used to name residual formals).
    pub params: Vec<Ident>,
    /// The binding-time signature (mask width, unfold decision, shapes).
    pub sig: BtSignature,
    /// The compiled body.
    pub body: Arc<GExp>,
}

/// The generating extension of one module — what the `.gx` file holds.
#[derive(Debug, Clone, PartialEq)]
pub struct GenModule {
    /// The module's name.
    pub name: ModName,
    /// Its direct imports (needed for placement).
    pub imports: Vec<ModName>,
    /// Generating extensions of its definitions.
    pub fns: Vec<GenFn>,
}

impl GenModule {
    /// Serialises to the `.gx` file format (JSON).
    ///
    /// # Errors
    ///
    /// Never fails for well-formed modules; the `Result` is kept for
    /// genext-file API stability.
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_compact())
    }

    /// Reads a `.gx` file back.
    ///
    /// # Errors
    ///
    /// Returns an error if `s` is not a valid genext file.
    pub fn from_json(s: &str) -> Result<GenModule, JsonError> {
        GenModule::from_json_str(s)
    }
}

impl ToJson for BtCode {
    fn to_json_value(&self) -> Json {
        if self.forced {
            Json::str("D")
        } else {
            Json::Num(self.bits)
        }
    }
}

impl FromJson for BtCode {
    fn from_json_value(j: &Json) -> Result<BtCode, JsonError> {
        if let Ok(s) = j.as_str() {
            return match s {
                "D" => Ok(BtCode::d()),
                other => Err(JsonError(format!("unknown binding-time code `{other}`"))),
            };
        }
        Ok(BtCode { forced: false, bits: j.as_u128()? })
    }
}

impl ToJson for GCoerce {
    fn to_json_value(&self) -> Json {
        match self {
            GCoerce::Id => Json::str("id"),
            GCoerce::Base { from, to } => {
                Json::obj([("base", Json::Arr(vec![from.to_json_value(), to.to_json_value()]))])
            }
            GCoerce::Fun { from, to } => {
                Json::obj([("fun", Json::Arr(vec![from.to_json_value(), to.to_json_value()]))])
            }
            // `elem_identity` is derived, so it is not stored.
            GCoerce::List { from, to, elem, .. } => Json::obj([(
                "list",
                Json::Arr(vec![from.to_json_value(), to.to_json_value(), elem.to_json_value()]),
            )]),
        }
    }
}

impl FromJson for GCoerce {
    fn from_json_value(j: &Json) -> Result<GCoerce, JsonError> {
        if let Ok(s) = j.as_str() {
            return match s {
                "id" => Ok(GCoerce::Id),
                other => Err(JsonError(format!("unknown coercion `{other}`"))),
            };
        }
        let pair = |v: &Json| -> Result<(BtCode, BtCode), JsonError> {
            let parts = v.as_arr()?;
            if parts.len() != 2 {
                return Err(JsonError("coercion expects [from, to]".into()));
            }
            Ok((BtCode::from_json_value(&parts[0])?, BtCode::from_json_value(&parts[1])?))
        };
        match j.as_obj()? {
            [(k, v)] if k == "base" => {
                let (from, to) = pair(v)?;
                Ok(GCoerce::Base { from, to })
            }
            [(k, v)] if k == "fun" => {
                let (from, to) = pair(v)?;
                Ok(GCoerce::Fun { from, to })
            }
            [(k, v)] if k == "list" => {
                let parts = v.as_arr()?;
                if parts.len() != 3 {
                    return Err(JsonError("`list` coercion expects [from, to, elem]".into()));
                }
                let elem = GCoerce::from_json_value(&parts[2])?;
                let elem_identity = matches!(elem, GCoerce::Id);
                Ok(GCoerce::List {
                    from: BtCode::from_json_value(&parts[0])?,
                    to: BtCode::from_json_value(&parts[1])?,
                    elem: Box::new(elem),
                    elem_identity,
                })
            }
            _ => Err(JsonError("malformed coercion".into())),
        }
    }
}

impl ToJson for GExp {
    fn to_json_value(&self) -> Json {
        match self {
            GExp::Nat(n) => Json::obj([("nat", Json::Num(u128::from(*n)))]),
            GExp::Bool(b) => Json::Bool(*b),
            GExp::Nil => Json::str("nil"),
            GExp::Var(slot) => Json::obj([("var", Json::Num(u128::from(*slot)))]),
            GExp::Prim(op, bt, args) => Json::obj([(
                "prim",
                Json::Arr(vec![op.to_json_value(), bt.to_json_value(), args.to_json_value()]),
            )]),
            GExp::If(bt, c, t, e) => Json::obj([(
                "if",
                Json::Arr(vec![
                    bt.to_json_value(),
                    c.to_json_value(),
                    t.to_json_value(),
                    e.to_json_value(),
                ]),
            )]),
            GExp::Call { target, inst, args } => Json::obj([(
                "call",
                Json::Arr(vec![target.to_json_value(), inst.to_json_value(), args.to_json_value()]),
            )]),
            GExp::Lam { param, body, captured, free_fns, lam_id } => Json::obj([(
                "lam",
                Json::Arr(vec![
                    param.to_json_value(),
                    body.to_json_value(),
                    Json::Arr(captured.iter().map(|s| Json::Num(u128::from(*s))).collect()),
                    free_fns.to_json_value(),
                    Json::Num(u128::from(*lam_id)),
                ]),
            )]),
            GExp::App(bt, f, a) => Json::obj([(
                "app",
                Json::Arr(vec![bt.to_json_value(), f.to_json_value(), a.to_json_value()]),
            )]),
            GExp::Let(e, b) => {
                Json::obj([("let", Json::Arr(vec![e.to_json_value(), b.to_json_value()]))])
            }
            GExp::Coerce(spec, e) => {
                Json::obj([("coerce", Json::Arr(vec![spec.to_json_value(), e.to_json_value()]))])
            }
        }
    }
}

impl FromJson for GExp {
    fn from_json_value(j: &Json) -> Result<GExp, JsonError> {
        if let Ok(b) = j.as_bool() {
            return Ok(GExp::Bool(b));
        }
        if let Ok(s) = j.as_str() {
            return match s {
                "nil" => Ok(GExp::Nil),
                other => Err(JsonError(format!("unknown expression `{other}`"))),
            };
        }
        let arity = |v: &Json, n: usize, what: &str| -> Result<Vec<Json>, JsonError> {
            let parts = v.as_arr()?;
            if parts.len() != n {
                return Err(JsonError(format!("`{what}` expects {n} fields")));
            }
            Ok(parts.to_vec())
        };
        match j.as_obj()? {
            [(k, v)] if k == "nat" => Ok(GExp::Nat(v.as_u64()?)),
            [(k, v)] if k == "var" => Ok(GExp::Var(v.as_u32()?)),
            [(k, v)] if k == "prim" => {
                let p = arity(v, 3, "prim")?;
                Ok(GExp::Prim(
                    PrimOp::from_json_value(&p[0])?,
                    BtCode::from_json_value(&p[1])?,
                    Vec::from_json_value(&p[2])?,
                ))
            }
            [(k, v)] if k == "if" => {
                let p = arity(v, 4, "if")?;
                Ok(GExp::If(
                    BtCode::from_json_value(&p[0])?,
                    Box::new(GExp::from_json_value(&p[1])?),
                    Box::new(GExp::from_json_value(&p[2])?),
                    Box::new(GExp::from_json_value(&p[3])?),
                ))
            }
            [(k, v)] if k == "call" => {
                let p = arity(v, 3, "call")?;
                Ok(GExp::Call {
                    target: QualName::from_json_value(&p[0])?,
                    inst: Vec::from_json_value(&p[1])?,
                    args: Vec::from_json_value(&p[2])?,
                })
            }
            [(k, v)] if k == "lam" => {
                let p = arity(v, 5, "lam")?;
                let mut captured = Vec::new();
                for s in p[2].as_arr()? {
                    captured.push(s.as_u32()?);
                }
                Ok(GExp::Lam {
                    param: Ident::from_json_value(&p[0])?,
                    body: Arc::new(GExp::from_json_value(&p[1])?),
                    captured,
                    free_fns: Arc::new(Vec::from_json_value(&p[3])?),
                    lam_id: p[4].as_u32()?,
                })
            }
            [(k, v)] if k == "app" => {
                let p = arity(v, 3, "app")?;
                Ok(GExp::App(
                    BtCode::from_json_value(&p[0])?,
                    Box::new(GExp::from_json_value(&p[1])?),
                    Box::new(GExp::from_json_value(&p[2])?),
                ))
            }
            [(k, v)] if k == "let" => {
                let p = arity(v, 2, "let")?;
                Ok(GExp::Let(
                    Box::new(GExp::from_json_value(&p[0])?),
                    Box::new(GExp::from_json_value(&p[1])?),
                ))
            }
            [(k, v)] if k == "coerce" => {
                let p = arity(v, 2, "coerce")?;
                Ok(GExp::Coerce(
                    GCoerce::from_json_value(&p[0])?,
                    Box::new(GExp::from_json_value(&p[1])?),
                ))
            }
            _ => Err(JsonError("malformed genext expression".into())),
        }
    }
}

impl ToJson for GenFn {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json_value()),
            ("params", self.params.to_json_value()),
            ("sig", self.sig.to_json_value()),
            ("body", self.body.to_json_value()),
        ])
    }
}

impl FromJson for GenFn {
    fn from_json_value(j: &Json) -> Result<GenFn, JsonError> {
        Ok(GenFn {
            name: QualName::from_json_value(j.get("name")?)?,
            params: Vec::from_json_value(j.get("params")?)?,
            sig: BtSignature::from_json_value(j.get("sig")?)?,
            body: Arc::new(GExp::from_json_value(j.get("body")?)?),
        })
    }
}

impl ToJson for GenModule {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json_value()),
            ("imports", self.imports.to_json_value()),
            ("fns", self.fns.to_json_value()),
        ])
    }
}

impl FromJson for GenModule {
    fn from_json_value(j: &Json) -> Result<GenModule, JsonError> {
        Ok(GenModule {
            name: ModName::from_json_value(j.get("name")?)?,
            imports: Vec::from_json_value(j.get("imports")?)?,
            fns: Vec::from_json_value(j.get("fns")?)?,
        })
    }
}

/// One function handed to the linker: either already decoded, or still
/// the compact JSON slice it occupies inside a seekable `.gx` body
/// (format v2), to be decoded only if the engine ever looks it up.
#[derive(Debug)]
pub enum FnUnit {
    /// Decoded and ready to specialise.
    Ready(GenFn),
    /// Still encoded; the linker indexes it by name without parsing.
    Encoded {
        /// The function's qualified name (from the `.gx` offset table).
        name: QualName,
        /// The compact JSON encoding of the [`GenFn`].
        encoded: Box<str>,
    },
}

impl FnUnit {
    /// The function's name, available without decoding.
    pub fn name(&self) -> QualName {
        match self {
            FnUnit::Ready(f) => f.name,
            FnUnit::Encoded { name, .. } => *name,
        }
    }
}

/// A module's linker-facing skeleton: name, imports, and functions that
/// may still be encoded. [`GenProgram::link_units`] consumes these;
/// `From<GenModule>` gives the fully-decoded form.
#[derive(Debug)]
pub struct LinkUnit {
    /// The module's name.
    pub name: ModName,
    /// Its direct imports (needed for placement).
    pub imports: Vec<ModName>,
    /// Its functions, decoded or lazily encoded.
    pub fns: Vec<FnUnit>,
}

impl From<GenModule> for LinkUnit {
    fn from(m: GenModule) -> LinkUnit {
        LinkUnit {
            name: m.name,
            imports: m.imports,
            fns: m.fns.into_iter().map(FnUnit::Ready).collect(),
        }
    }
}

#[derive(Debug)]
enum FnSlot {
    Ready(GenFn),
    Lazy { encoded: Box<str>, cell: OnceLock<Option<GenFn>> },
}

/// A linked program: generating extensions of all modules, ready to run.
///
/// Linking needs no source code — only `.gx` modules — reproducing the
/// paper's point that library sources stay private. Functions linked
/// from seekable (v2) `.gx` files stay encoded until first lookup, so a
/// session pays decode cost only for the definitions it actually uses;
/// [`GenProgram::lazy_decoded_bytes`] reports how much was decoded.
#[derive(Debug)]
pub struct GenProgram {
    modules: Vec<Vec<FnSlot>>,
    index: HashMap<QualName, (usize, usize)>,
    graph: ModGraph,
    lazy_decoded: AtomicU64,
}

impl GenProgram {
    /// Links generating extensions of modules into a runnable program.
    ///
    /// # Errors
    ///
    /// [`SpecError::DuplicateModule`] for clashing module names, or a
    /// cyclic/missing-import error surfaced as
    /// [`SpecError::TypeConfusion`] (cannot happen for modules produced
    /// by the cogen from a resolved program).
    pub fn link(modules: Vec<GenModule>) -> Result<GenProgram, SpecError> {
        GenProgram::link_units(modules.into_iter().map(LinkUnit::from).collect())
    }

    /// Links modules whose functions may still be encoded (loaded from
    /// seekable `.gx` files). Indexing uses only the names from the
    /// offset table; no function body is parsed here.
    ///
    /// # Errors
    ///
    /// Same contract as [`GenProgram::link`].
    pub fn link_units(units: Vec<LinkUnit>) -> Result<GenProgram, SpecError> {
        let mut index = HashMap::new();
        for (mi, u) in units.iter().enumerate() {
            for (fi, f) in u.fns.iter().enumerate() {
                if index.insert(f.name(), (mi, fi)).is_some() {
                    return Err(SpecError::DuplicateModule(u.name));
                }
            }
        }
        // Rebuild the import graph from the module skeletons.
        let skeleton = Program::new(
            units
                .iter()
                .map(|u| Module::new(u.name, u.imports.clone(), vec![]))
                .collect(),
        );
        let graph = ModGraph::new(&skeleton).map_err(|e| SpecError::TypeConfusion(e.to_string()))?;
        let modules = units
            .into_iter()
            .map(|u| {
                u.fns
                    .into_iter()
                    .map(|f| match f {
                        FnUnit::Ready(g) => FnSlot::Ready(g),
                        FnUnit::Encoded { encoded, .. } => {
                            FnSlot::Lazy { encoded, cell: OnceLock::new() }
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(GenProgram { modules, index, graph, lazy_decoded: AtomicU64::new(0) })
    }

    /// Looks up a function's generating extension, decoding it on first
    /// use if it was linked lazily. A lazily-linked function that fails
    /// to decode behaves as absent — this cannot happen for artefacts
    /// that passed the `.gx` checksum, whose offset table and body were
    /// written together.
    pub fn function(&self, q: &QualName) -> Option<&GenFn> {
        let (mi, fi) = *self.index.get(q)?;
        match &self.modules[mi][fi] {
            FnSlot::Ready(f) => Some(f),
            FnSlot::Lazy { encoded, cell } => cell
                .get_or_init(|| {
                    self.lazy_decoded.fetch_add(encoded.len() as u64, Ordering::Relaxed);
                    GenFn::from_json_str(encoded).ok()
                })
                .as_ref(),
        }
    }

    /// Number of linked modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// The (source) module import graph, used by placement.
    pub fn graph(&self) -> &ModGraph {
        &self.graph
    }

    /// Total number of linked functions.
    pub fn fn_count(&self) -> usize {
        self.index.len()
    }

    /// Bytes of function payload decoded lazily since linking — the
    /// in-memory counterpart of the `io.gx_bytes_decoded` counter.
    pub fn lazy_decoded_bytes(&self) -> u64 {
        self.lazy_decoded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btcode_evaluates_with_one_and() {
        let t = BtTerm::lub_of([0, 2]);
        let c = BtCode::compile(&t);
        assert!(!c.is_dynamic(BtMask(0)));
        assert!(c.is_dynamic(BtMask(0b100)));
        assert!(c.is_dynamic(BtMask(0b001)));
        assert!(!c.is_dynamic(BtMask(0b010)));
        assert!(BtCode::d().is_dynamic(BtMask(0)));
        assert!(!BtCode::s().is_dynamic(BtMask(u128::MAX)));
    }

    #[test]
    fn gcoerce_compiles_identities() {
        assert_eq!(GCoerce::compile(&CoerceSpec::Id), GCoerce::Id);
        let spec = CoerceSpec::List {
            from: BtTerm::var(0),
            to: BtTerm::var(1),
            elem: Box::new(CoerceSpec::Id),
        };
        match GCoerce::compile(&spec) {
            GCoerce::List { elem_identity, .. } => assert!(elem_identity),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gexp_size_counts_nodes() {
        let e = GExp::Prim(
            PrimOp::Add,
            BtCode::s(),
            vec![GExp::Var(0), GExp::Coerce(GCoerce::Id, Box::new(GExp::Nat(1)))],
        );
        assert_eq!(e.size(), 4);
    }

    fn tiny_module() -> GenModule {
        GenModule {
            name: ModName::new("M"),
            imports: vec![],
            fns: vec![GenFn {
                name: QualName::new("M", "id"),
                params: vec![Ident::new("x")],
                sig: BtSignature {
                    vars: 1,
                    constraints: vec![],
                    forced_d: vec![],
                    params: vec![mspec_bta::SigShape::Var(BtTerm::var(0))],
                    ret: mspec_bta::SigShape::Var(BtTerm::var(0)),
                    unfold: BtTerm::s(),
                },
                body: Arc::new(GExp::Var(0)),
            }],
        }
    }

    #[test]
    fn genmodule_json_roundtrip() {
        let m = tiny_module();
        let js = m.to_json().unwrap();
        let back = GenModule::from_json(&js).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn link_and_lookup() {
        let p = GenProgram::link(vec![tiny_module()]).unwrap();
        assert!(p.function(&QualName::new("M", "id")).is_some());
        assert!(p.function(&QualName::new("M", "nope")).is_none());
        assert_eq!(p.fn_count(), 1);
        assert_eq!(p.module_count(), 1);
    }

    #[test]
    fn link_units_decodes_lazily_and_counts_bytes() {
        let m = tiny_module();
        let encoded: Box<str> = m.fns[0].to_json_compact().into();
        let encoded_len = encoded.len() as u64;
        let unit = LinkUnit {
            name: m.name,
            imports: vec![],
            fns: vec![FnUnit::Encoded { name: m.fns[0].name, encoded }],
        };
        let p = GenProgram::link_units(vec![unit]).unwrap();
        // Linking alone decodes nothing.
        assert_eq!(p.lazy_decoded_bytes(), 0);
        let q = QualName::new("M", "id");
        let f = p.function(&q).unwrap();
        assert_eq!(f.name, q);
        assert_eq!(p.lazy_decoded_bytes(), encoded_len);
        // A second lookup reuses the decoded function: no double count.
        assert!(p.function(&q).is_some());
        assert_eq!(p.lazy_decoded_bytes(), encoded_len);
    }

    #[test]
    fn link_units_rejects_duplicates_without_decoding() {
        let m = tiny_module();
        let enc: Box<str> = m.fns[0].to_json_compact().into();
        let mk = |enc: Box<str>| LinkUnit {
            name: m.name,
            imports: vec![],
            fns: vec![FnUnit::Encoded { name: m.fns[0].name, encoded: enc }],
        };
        assert!(matches!(
            GenProgram::link_units(vec![mk(enc.clone()), mk(enc)]),
            Err(SpecError::DuplicateModule(_))
        ));
    }

    #[test]
    fn link_rejects_duplicate_functions() {
        let m1 = tiny_module();
        let m2 = tiny_module();
        assert!(matches!(
            GenProgram::link(vec![m1, m2]),
            Err(SpecError::DuplicateModule(_))
        ));
    }
}

//! Qualified binding-time schemes, masks and interface files.
//!
//! A named function's binding-time behaviour is summarised by a
//! [`BtSignature`] — the paper's qualified binding-time type, e.g.
//! `∀t,u. {t ≤ u} ⇒ t → u → t⊔u` for `power` — plus the *unfold
//! annotation* on the definition's `=` sign (the lub of the binding times
//! of the conditionals in the body). The signature is everything a
//! *caller* needs, so the per-module [`BtInterface`] file contains
//! exactly these, and importing modules are analysed without the source.

use crate::shape::SigShape;
use crate::term::{Bt, BtTerm, BtVarId};
use mspec_lang::{FromJson, Ident, Json, JsonError, ToJson};
use std::collections::BTreeMap;
use std::fmt;

/// A concrete assignment of a signature's binding-time variables:
/// bit `i` set ⇔ `t_i = D`. Signatures are limited to 128 variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BtMask(pub u128);

impl BtMask {
    /// The all-static mask.
    pub fn all_static() -> BtMask {
        BtMask(0)
    }

    /// The all-dynamic mask for `vars` variables.
    pub fn all_dynamic(vars: u32) -> BtMask {
        if vars == 0 {
            BtMask(0)
        } else {
            BtMask(u128::MAX >> (128 - vars))
        }
    }

    /// The binding time of variable `v`.
    pub fn get(self, v: BtVarId) -> Bt {
        if self.0 >> v & 1 == 1 {
            Bt::D
        } else {
            Bt::S
        }
    }

    /// Returns a mask with `v` set to `D`.
    #[must_use]
    pub fn set_dynamic(self, v: BtVarId) -> BtMask {
        BtMask(self.0 | 1 << v)
    }

    /// Evaluates a term under this mask.
    pub fn eval(self, term: &BtTerm) -> Bt {
        term.eval(|v| self.get(v))
    }

    /// Renders the mask for `vars` variables, e.g. `{S,D}`.
    pub fn render(self, vars: u32) -> String {
        let mut s = String::from("{");
        for v in 0..vars {
            if v > 0 {
                s.push(',');
            }
            s.push_str(&self.get(v).to_string());
        }
        s.push('}');
        s
    }
}

/// The qualified binding-time scheme of one named function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtSignature {
    /// Number of signature variables (`t0 … t{vars-1}`).
    pub vars: u32,
    /// Qualifications `lhs ≤ rhs` between signature variables.
    pub constraints: Vec<(BtVarId, BtVarId)>,
    /// Signature variables forced dynamic (`D ≤ t`), e.g. the parameter
    /// of a function whose result is its argument and which was forced
    /// residual.
    pub forced_d: Vec<BtVarId>,
    /// Binding-time shapes of the parameters. Every term in these shapes
    /// is a single signature variable.
    pub params: Vec<SigShape>,
    /// Binding-time shape of the result; terms are lubs over signature
    /// variables (symbolic least solutions).
    pub ret: SigShape,
    /// The unfold annotation on the `=` sign: the function may be
    /// unfolded iff this evaluates to `S` (§4.1: the lub of the binding
    /// times of the conditionals in the body).
    pub unfold: BtTerm,
}

impl BtSignature {
    /// Completes a requested assignment to the least mask that satisfies
    /// all constraints (requested `D`s are kept; constraints may force
    /// more variables to `D`, never fewer).
    pub fn complete_mask(&self, requested: BtMask) -> BtMask {
        let mut mask = requested;
        for &v in &self.forced_d {
            mask = mask.set_dynamic(v);
        }
        loop {
            let mut changed = false;
            for &(lo, hi) in &self.constraints {
                if mask.get(lo) == Bt::D && mask.get(hi) == Bt::S {
                    mask = mask.set_dynamic(hi);
                    changed = true;
                }
            }
            if !changed {
                return mask;
            }
        }
    }

    /// `true` if the mask satisfies every constraint as-is.
    pub fn satisfies(&self, mask: BtMask) -> bool {
        self.constraints
            .iter()
            .all(|&(lo, hi)| mask.get(lo) <= mask.get(hi))
            && self.forced_d.iter().all(|&v| mask.get(v) == Bt::D)
    }

    /// Whether a call under `mask` should be unfolded.
    pub fn unfoldable_under(&self, mask: BtMask) -> bool {
        mask.eval(&self.unfold) == Bt::S
    }
}

impl ToJson for BtSignature {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("vars", Json::Num(u128::from(self.vars))),
            (
                "constraints",
                Json::Arr(
                    self.constraints
                        .iter()
                        .map(|(lo, hi)| {
                            Json::Arr(vec![Json::Num(u128::from(*lo)), Json::Num(u128::from(*hi))])
                        })
                        .collect(),
                ),
            ),
            (
                "forced_d",
                Json::Arr(self.forced_d.iter().map(|v| Json::Num(u128::from(*v))).collect()),
            ),
            ("params", self.params.to_json_value()),
            ("ret", self.ret.to_json_value()),
            ("unfold", self.unfold.to_json_value()),
        ])
    }
}

impl FromJson for BtSignature {
    fn from_json_value(j: &Json) -> Result<BtSignature, JsonError> {
        let mut constraints = Vec::new();
        for c in j.get("constraints")?.as_arr()? {
            let pair = c.as_arr()?;
            if pair.len() != 2 {
                return Err(JsonError("constraint expects [lo, hi]".into()));
            }
            constraints.push((pair[0].as_u32()?, pair[1].as_u32()?));
        }
        let mut forced_d = Vec::new();
        for v in j.get("forced_d")?.as_arr()? {
            forced_d.push(v.as_u32()?);
        }
        Ok(BtSignature {
            vars: j.get("vars")?.as_u32()?,
            constraints,
            forced_d,
            params: Vec::from_json_value(j.get("params")?)?,
            ret: SigShape::from_json_value(j.get("ret")?)?,
            unfold: BtTerm::from_json_value(j.get("unfold")?)?,
        })
    }
}

impl fmt::Display for BtSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vars > 0 {
            write!(f, "forall")?;
            for v in 0..self.vars {
                write!(f, " t{v}")?;
            }
            write!(f, ". ")?;
        }
        if !self.constraints.is_empty() || !self.forced_d.is_empty() {
            write!(f, "{{")?;
            let mut first = true;
            for (lo, hi) in &self.constraints {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "t{lo} <= t{hi}")?;
            }
            for v in &self.forced_d {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "D <= t{v}")?;
            }
            write!(f, "}} => ")?;
        }
        for p in &self.params {
            write!(f, "{p} -> ")?;
        }
        write!(f, "{} [unfold: {}]", self.ret, self.unfold)
    }
}

/// The binding-time interface of one module: a signature per exported
/// function. Serialised to `.bti` files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BtInterface {
    sigs: BTreeMap<Ident, BtSignature>,
}

impl BtInterface {
    /// An empty interface.
    pub fn new() -> BtInterface {
        BtInterface::default()
    }

    /// Records a function's signature.
    pub fn insert(&mut self, name: Ident, sig: BtSignature) {
        self.sigs.insert(name, sig);
    }

    /// Looks up a function's signature.
    pub fn get(&self, name: &Ident) -> Option<&BtSignature> {
        self.sigs.get(name)
    }

    /// Iterates deterministically over `(name, signature)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &BtSignature)> {
        self.sigs.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Serialises to the on-disk `.bti` format (JSON).
    ///
    /// # Errors
    ///
    /// Never fails for well-formed interfaces; the `Result` is kept for
    /// interface-file API stability.
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_pretty())
    }

    /// Reads back an interface written by [`BtInterface::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error if `s` is not a valid interface file.
    pub fn from_json(s: &str) -> Result<BtInterface, JsonError> {
        BtInterface::from_json_str(s)
    }
}

impl ToJson for BtInterface {
    fn to_json_value(&self) -> Json {
        Json::Obj(
            self.sigs
                .iter()
                .map(|(name, sig)| (name.as_str().to_owned(), sig.to_json_value()))
                .collect(),
        )
    }
}

impl FromJson for BtInterface {
    fn from_json_value(j: &Json) -> Result<BtInterface, JsonError> {
        let mut sigs = BTreeMap::new();
        for (name, v) in j.as_obj()? {
            sigs.insert(Ident::new(name), BtSignature::from_json_value(v)?);
        }
        Ok(BtInterface { sigs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power_sig() -> BtSignature {
        // forall t0 t1. Base(t0) -> Base(t1) -> Base(t0|t1) [unfold: t0]
        BtSignature {
            vars: 2,
            constraints: vec![],
            forced_d: vec![],
            params: vec![
                SigShape::Base(BtTerm::var(0)),
                SigShape::Base(BtTerm::var(1)),
            ],
            ret: SigShape::Base(BtTerm::lub_of([0, 1])),
            unfold: BtTerm::var(0),
        }
    }

    #[test]
    fn mask_get_set() {
        let m = BtMask::all_static().set_dynamic(1);
        assert_eq!(m.get(0), Bt::S);
        assert_eq!(m.get(1), Bt::D);
        assert_eq!(m.render(2), "{S,D}");
    }

    #[test]
    fn all_dynamic_mask() {
        let m = BtMask::all_dynamic(3);
        assert_eq!(m.render(3), "{D,D,D}");
        assert_eq!(BtMask::all_dynamic(0), BtMask::all_static());
    }

    #[test]
    fn mask_eval_terms() {
        let m = BtMask::all_static().set_dynamic(2);
        assert_eq!(m.eval(&BtTerm::var(2)), Bt::D);
        assert_eq!(m.eval(&BtTerm::var(0)), Bt::S);
        assert_eq!(m.eval(&BtTerm::lub_of([0, 2])), Bt::D);
        assert_eq!(m.eval(&BtTerm::s()), Bt::S);
        assert_eq!(m.eval(&BtTerm::d()), Bt::D);
    }

    #[test]
    fn unfold_decision_matches_paper_power() {
        let sig = power_sig();
        // power {S,D}: n static — unfold.
        assert!(sig.unfoldable_under(BtMask::all_static().set_dynamic(1)));
        // power {D,S}: n dynamic — residualise.
        assert!(!sig.unfoldable_under(BtMask::all_static().set_dynamic(0)));
    }

    #[test]
    fn complete_mask_propagates_constraints() {
        let sig = BtSignature {
            vars: 3,
            constraints: vec![(0, 1), (1, 2)],
            forced_d: vec![],
            params: vec![],
            ret: SigShape::Base(BtTerm::s()),
            unfold: BtTerm::s(),
        };
        let m = sig.complete_mask(BtMask::all_static().set_dynamic(0));
        assert_eq!(m.render(3), "{D,D,D}");
        assert!(sig.satisfies(m));
        assert!(!sig.satisfies(BtMask::all_static().set_dynamic(0)));
        // all-static satisfies trivially and is already complete.
        assert_eq!(sig.complete_mask(BtMask::all_static()), BtMask::all_static());
    }

    #[test]
    fn signature_display() {
        assert_eq!(
            power_sig().to_string(),
            "forall t0 t1. Base(t0) -> Base(t1) -> Base(t0 | t1) [unfold: t0]"
        );
        let with_constraint = BtSignature { constraints: vec![(0, 1)], ..power_sig() };
        assert!(with_constraint.to_string().contains("{t0 <= t1} =>"));
    }

    #[test]
    fn interface_roundtrip_through_json() {
        let mut i = BtInterface::new();
        i.insert(Ident::new("power"), power_sig());
        let js = i.to_json().unwrap();
        let back = BtInterface::from_json(&js).unwrap();
        assert_eq!(i, back);
        assert_eq!(back.len(), 1);
        assert!(back.get(&Ident::new("power")).is_some());
        assert!(back.get(&Ident::new("nope")).is_none());
    }
}

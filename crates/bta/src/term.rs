//! The binding-time lattice and symbolic lub terms.
//!
//! Binding times form the two-point lattice `S < D` (§4.1, Fig. 2). In a
//! module analysed in isolation the binding times of most positions are
//! unknown, so annotations are *terms*: the least upper bound of a set of
//! the function's signature variables, or the constant `D`. (`S` is the
//! lub of the empty set.)

use mspec_lang::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeSet;
use std::fmt;

/// A concrete binding time: static or dynamic, with `S < D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bt {
    /// Static: known at specialisation time.
    S,
    /// Dynamic: known only at run time.
    D,
}

impl Bt {
    /// Least upper bound.
    pub fn lub(self, other: Bt) -> Bt {
        if self == Bt::D || other == Bt::D {
            Bt::D
        } else {
            Bt::S
        }
    }

    /// `true` for [`Bt::D`].
    pub fn is_dynamic(self) -> bool {
        self == Bt::D
    }
}

impl fmt::Display for Bt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bt::S => write!(f, "S"),
            Bt::D => write!(f, "D"),
        }
    }
}

/// Index of a signature binding-time variable (`t0`, `t1`, …) within one
/// function's qualified binding-time scheme.
pub type BtVarId = u32;

/// A symbolic binding time: `D`, or the lub of a set of signature
/// variables (empty set = `S`).
///
/// `D ⊔ anything = D`, so a term containing `D` is just `D` — the
/// representation keeps that normal form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BtTerm {
    forced_d: bool,
    vars: BTreeSet<BtVarId>,
}

impl BtTerm {
    /// The constant `S` (lub of nothing).
    pub fn s() -> BtTerm {
        BtTerm { forced_d: false, vars: BTreeSet::new() }
    }

    /// The constant `D`.
    pub fn d() -> BtTerm {
        BtTerm { forced_d: true, vars: BTreeSet::new() }
    }

    /// A single signature variable.
    pub fn var(v: BtVarId) -> BtTerm {
        BtTerm { forced_d: false, vars: [v].into() }
    }

    /// The lub of a set of variables.
    pub fn lub_of(vars: impl IntoIterator<Item = BtVarId>) -> BtTerm {
        BtTerm { forced_d: false, vars: vars.into_iter().collect() }
    }

    /// Least upper bound of two terms.
    pub fn lub(&self, other: &BtTerm) -> BtTerm {
        if self.forced_d || other.forced_d {
            BtTerm::d()
        } else {
            BtTerm {
                forced_d: false,
                vars: self.vars.union(&other.vars).copied().collect(),
            }
        }
    }

    /// `true` if the term is the constant `S`.
    pub fn is_s(&self) -> bool {
        !self.forced_d && self.vars.is_empty()
    }

    /// `true` if the term is the constant `D`.
    pub fn is_d(&self) -> bool {
        self.forced_d
    }

    /// The signature variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = BtVarId> + '_ {
        self.vars.iter().copied()
    }

    /// Evaluates the term under an assignment of the signature variables.
    pub fn eval(&self, assignment: impl Fn(BtVarId) -> Bt) -> Bt {
        if self.forced_d {
            return Bt::D;
        }
        for v in &self.vars {
            if assignment(*v) == Bt::D {
                return Bt::D;
            }
        }
        Bt::S
    }

    /// The variables as a bitmask (bit `i` set ⇔ `t_i` occurs), together
    /// with the forced-`D` flag — the compiled form used by generating
    /// extensions, where evaluating an annotation is one AND.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is ≥ 128; [`crate::sig::BtMask`] is 128
    /// bits wide and the analysis rejects wider signatures first.
    pub fn bits(&self) -> (bool, u128) {
        let mut bits = 0u128;
        for v in &self.vars {
            assert!(*v < 128, "binding-time signature too wide");
            bits |= 1u128 << v;
        }
        (self.forced_d, bits)
    }

    /// Rewrites the term by substituting each variable with a term
    /// (used when instantiating a callee signature at a call site).
    pub fn subst(&self, f: impl Fn(BtVarId) -> BtTerm) -> BtTerm {
        if self.forced_d {
            return BtTerm::d();
        }
        let mut out = BtTerm::s();
        for v in &self.vars {
            out = out.lub(&f(*v));
        }
        out
    }
}

impl ToJson for BtTerm {
    fn to_json_value(&self) -> Json {
        if self.forced_d {
            Json::str("D")
        } else {
            Json::Arr(self.vars.iter().map(|v| Json::Num(u128::from(*v))).collect())
        }
    }
}

impl FromJson for BtTerm {
    fn from_json_value(j: &Json) -> Result<BtTerm, JsonError> {
        if let Ok(s) = j.as_str() {
            return match s {
                "D" => Ok(BtTerm::d()),
                other => Err(JsonError(format!("unknown binding-time constant `{other}`"))),
            };
        }
        let mut vars = BTreeSet::new();
        for v in j.as_arr()? {
            vars.insert(v.as_u32()?);
        }
        Ok(BtTerm { forced_d: false, vars })
    }
}

impl fmt::Display for BtTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.forced_d {
            return write!(f, "D");
        }
        if self.vars.is_empty() {
            return write!(f, "S");
        }
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "t{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order() {
        assert_eq!(Bt::S.lub(Bt::S), Bt::S);
        assert_eq!(Bt::S.lub(Bt::D), Bt::D);
        assert_eq!(Bt::D.lub(Bt::S), Bt::D);
        assert_eq!(Bt::D.lub(Bt::D), Bt::D);
        assert!(Bt::S < Bt::D);
    }

    #[test]
    fn term_normal_form_for_d() {
        let t = BtTerm::d().lub(&BtTerm::var(3));
        assert!(t.is_d());
        assert_eq!(t.vars().count(), 0);
    }

    #[test]
    fn lub_unions_variables() {
        let t = BtTerm::var(0).lub(&BtTerm::var(2)).lub(&BtTerm::var(0));
        assert_eq!(t.vars().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!t.is_s());
        assert!(!t.is_d());
    }

    #[test]
    fn s_is_identity() {
        let t = BtTerm::var(1);
        assert_eq!(t.lub(&BtTerm::s()), t);
        assert_eq!(BtTerm::s().lub(&t), t);
        assert!(BtTerm::s().is_s());
    }

    #[test]
    fn eval_against_assignment() {
        let t = BtTerm::lub_of([0, 2]);
        assert_eq!(t.eval(|_| Bt::S), Bt::S);
        assert_eq!(t.eval(|v| if v == 2 { Bt::D } else { Bt::S }), Bt::D);
        assert_eq!(t.eval(|v| if v == 1 { Bt::D } else { Bt::S }), Bt::S);
        assert_eq!(BtTerm::d().eval(|_| Bt::S), Bt::D);
        assert_eq!(BtTerm::s().eval(|_| Bt::D), Bt::S);
    }

    #[test]
    fn bits_compile_the_var_set() {
        let (d, bits) = BtTerm::lub_of([0, 3]).bits();
        assert!(!d);
        assert_eq!(bits, 0b1001);
        let (d2, bits2) = BtTerm::d().bits();
        assert!(d2);
        assert_eq!(bits2, 0);
    }

    #[test]
    fn subst_instantiates() {
        let t = BtTerm::lub_of([0, 1]);
        // t0 ↦ D  =>  whole term D.
        assert!(t.subst(|v| if v == 0 { BtTerm::d() } else { BtTerm::var(v) }).is_d());
        // t0 ↦ t5, t1 ↦ t6 | t7.
        let r = t.subst(|v| if v == 0 { BtTerm::var(5) } else { BtTerm::lub_of([6, 7]) });
        assert_eq!(r.vars().collect::<Vec<_>>(), vec![5, 6, 7]);
        // substituting into S leaves S.
        assert!(BtTerm::s().subst(|_| BtTerm::d()).is_s());
    }

    #[test]
    fn display_forms() {
        assert_eq!(BtTerm::s().to_string(), "S");
        assert_eq!(BtTerm::d().to_string(), "D");
        assert_eq!(BtTerm::var(1).to_string(), "t1");
        assert_eq!(BtTerm::lub_of([0, 1]).to_string(), "t0 | t1");
    }

    #[test]
    fn json_roundtrip() {
        for t in [BtTerm::lub_of([1, 4]), BtTerm::s(), BtTerm::d()] {
            let js = t.to_json_compact();
            assert_eq!(BtTerm::from_json_str(&js).unwrap(), t);
        }
    }
}

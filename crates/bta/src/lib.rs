//! Polymorphic (symbolic) binding-time analysis.
//!
//! This crate implements the paper's §4.1: a binding-time analysis in the
//! style of Henglein & Mossin and Dussart, Henglein & Mossin, factorised
//! into a *property-independent* part that runs once per module — without
//! knowing how the module will be used — and a *property-dependent* part
//! that is deferred all the way to specialisation time (where it amounts
//! to evaluating small lub terms against a bitmask).
//!
//! The pieces:
//!
//! * [`term`] — the binding-time lattice `S < D`, binding-time variables
//!   and lub terms over a function's signature variables (`t ⊔ u`),
//! * [`shape`] — binding-time *types* mirroring the underlying
//!   Hindley–Milner structure (base / list / function / polymorphic
//!   position), in the serialisable signature form,
//! * [`sig`] — qualified binding-time schemes
//!   (`∀t,u. {t ≤ u} ⇒ t → u → t⊔u`), binding-time masks, and the
//!   per-module binding-time [interface](sig::BtInterface) files,
//! * [`solver`] — the constraint machinery: annotation nodes with
//!   union-find, `≤` edges, shape unification and coercion generation,
//! * [`analyse`] — the per-module analysis producing an annotated module
//!   ([`ann`]) and its interface, given only the interfaces of imports,
//! * [`ann`] — the annotated syntax of Figure 2, with explicit coercions
//!   and symbolic annotations, plus a paper-style pretty-printer,
//! * [`division`] — specialisation-time binding-time divisions and their
//!   completion to least-fixpoint masks.
//!
//! # Example
//!
//! ```
//! use mspec_lang::parser::parse_program;
//! use mspec_lang::resolve::resolve;
//! use mspec_bta::analyse::analyse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rp = resolve(parse_program(
//!     "module P where\npower n x = if n == 1 then x else x * power (n - 1) x\n",
//! )?)?;
//! let ann = analyse_program(&rp)?;
//! let sig = ann.signature(&mspec_lang::QualName::new("P", "power")).unwrap();
//! // ∀t0,t1. t0 → t1 → t0⊔t1, unfoldable iff t0 (the binding time of n) is S.
//! assert_eq!(sig.vars, 2);
//! assert_eq!(sig.unfold.to_string(), "t0");
//! assert_eq!(sig.ret.to_string(), "Base(t0 | t1)");
//! # Ok(())
//! # }
//! ```

pub mod analyse;
pub mod ann;
pub mod division;
pub mod error;
pub mod shape;
pub mod sig;
pub mod solver;
pub mod term;

pub use ann::{AnnDef, AnnExpr, AnnModule, AnnProgram, CoerceSpec};
pub use division::Division;
pub use error::BtaError;
pub use shape::SigShape;
pub use sig::{BtInterface, BtMask, BtSignature};
pub use term::{Bt, BtTerm, BtVarId};

//! Errors raised by the binding-time analysis.

use mspec_lang::{Ident, ModName, QualName};
use std::error::Error;
use std::fmt;

/// An error found during binding-time analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BtaError {
    /// Two binding-time shapes with incompatible structure were related.
    /// For programs that pass Hindley–Milner type checking this cannot
    /// happen; it is reported (rather than panicking) so the analysis is
    /// safe to run on unchecked programs too.
    ShapeMismatch {
        /// Where the mismatch occurred (module.function).
        context: String,
    },
    /// Shape unification would build an infinite shape (ill-typed input).
    Occurs {
        /// Where the failure occurred.
        context: String,
    },
    /// A function signature needs more than 128 binding-time variables.
    TooManyVars {
        /// The offending function(s).
        context: String,
        /// How many variables were needed.
        count: usize,
    },
    /// A call to a function whose binding-time interface is unavailable.
    MissingSignature(QualName),
    /// A forced-residual override names a function the module does not
    /// define.
    UnknownOverride {
        /// The module being analysed.
        module: ModName,
        /// The name that matched no definition.
        name: Ident,
    },
    /// An internal invariant failed (a bug in the analysis).
    Internal(String),
}

impl fmt::Display for BtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtaError::ShapeMismatch { context } => {
                write!(f, "binding-time shape mismatch in {context} (is the program well-typed?)")
            }
            BtaError::Occurs { context } => {
                write!(f, "infinite binding-time shape in {context} (is the program well-typed?)")
            }
            BtaError::TooManyVars { context, count } => write!(
                f,
                "binding-time signature of {context} needs {count} variables; the limit is 128"
            ),
            BtaError::MissingSignature(q) => {
                write!(f, "no binding-time signature available for {q}")
            }
            BtaError::UnknownOverride { module, name } => {
                write!(f, "forced-residual override `{name}` matches no definition in {module}")
            }
            BtaError::Internal(msg) => write!(f, "internal binding-time analysis error: {msg}"),
        }
    }
}

impl Error for BtaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = BtaError::ShapeMismatch { context: "A.f".into() };
        assert!(e.to_string().contains("A.f"));
    }

    #[test]
    fn implements_error() {
        fn takes<E: Error>(_: E) {}
        takes(BtaError::Internal("x".into()));
    }
}

//! The binding-time constraint solver.
//!
//! Annotation positions are *nodes*; the analysis relates them with
//! `lo ≤ hi` edges (a value may be coerced from `S` up to `D`, never
//! down) and merges them when two positions must be equal. Shapes are
//! built over nodes and related by [`Solver::unify_shapes`] (equality)
//! and [`Solver::coerce_shapes`] (subsumption, inserting edges).
//!
//! After a function (or SCC of functions) is analysed, the *symbolic
//! least solution* of every node is the lub of the signature variables
//! that reach it along edges (plus `D` if a forced node reaches it) —
//! the Henglein–Mossin factorisation the paper relies on: this is
//! computed once per module, and evaluating it later is trivial.

use crate::error::BtaError;
use crate::term::BtTerm;
use std::collections::VecDeque;

/// An annotation node (a binding-time position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

/// A shape in the solver arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeId(u32);

/// The resolved structure of a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeView {
    /// A base (Nat/Bool) position.
    Base(NodeId),
    /// A list: element shape and spine node.
    List(ShapeId, NodeId),
    /// A function: argument, arrow node, result.
    Fun(ShapeId, NodeId, ShapeId),
    /// An unexpanded polymorphic position with its summary node.
    SVar(NodeId),
}

#[derive(Debug, Clone, Copy)]
enum ShapeRepr {
    Base(NodeId),
    List(ShapeId, NodeId),
    Fun(ShapeId, NodeId, ShapeId),
    SVar(NodeId),
    Link(ShapeId),
}

/// The constraint store.
#[derive(Debug, Default)]
pub struct Solver {
    parent: Vec<u32>,
    forced_d: Vec<bool>,
    edges: Vec<(NodeId, NodeId)>,
    shapes: Vec<ShapeRepr>,
    /// Coercions between two still-polymorphic positions, deferred until
    /// one of them acquires structure (see [`Solver::settle`]).
    pending: Vec<(ShapeId, ShapeId)>,
    context: String,
}

impl Solver {
    /// Creates an empty solver; `context` labels errors.
    pub fn new(context: impl Into<String>) -> Solver {
        Solver { context: context.into(), ..Solver::default() }
    }

    /// Updates the error-label context.
    pub fn set_context(&mut self, context: impl Into<String>) {
        self.context = context.into();
    }

    // ----- nodes -------------------------------------------------------

    /// Allocates a fresh node (initially unconstrained, i.e. `S` in the
    /// least solution).
    pub fn fresh_node(&mut self) -> NodeId {
        let id = NodeId(self.parent.len() as u32);
        self.parent.push(id.0);
        self.forced_d.push(false);
        id
    }

    /// Forces a node to `D`.
    pub fn force_d(&mut self, n: NodeId) {
        let r = self.find(n);
        self.forced_d[r.0 as usize] = true;
    }

    /// Adds the constraint `lo ≤ hi`.
    pub fn edge(&mut self, lo: NodeId, hi: NodeId) {
        self.edges.push((lo, hi));
    }

    /// Representative of a node's equivalence class.
    pub fn find(&mut self, n: NodeId) -> NodeId {
        let mut r = n.0;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        // Path compression.
        let mut cur = n.0;
        while self.parent[cur as usize] != r {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = r;
            cur = next;
        }
        NodeId(r)
    }

    /// Merges two nodes (equality constraint).
    pub fn merge_nodes(&mut self, a: NodeId, b: NodeId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let forced = self.forced_d[ra.0 as usize] || self.forced_d[rb.0 as usize];
            self.parent[ra.0 as usize] = rb.0;
            self.forced_d[rb.0 as usize] = forced;
        }
    }

    /// Whether the node is forced `D` (directly).
    pub fn is_forced_d(&mut self, n: NodeId) -> bool {
        let r = self.find(n);
        self.forced_d[r.0 as usize]
    }

    // ----- shapes ------------------------------------------------------

    fn push_shape(&mut self, repr: ShapeRepr) -> ShapeId {
        let id = ShapeId(self.shapes.len() as u32);
        self.shapes.push(repr);
        id
    }

    /// A fresh polymorphic shape with a fresh summary node.
    pub fn fresh_svar(&mut self) -> ShapeId {
        let n = self.fresh_node();
        self.push_shape(ShapeRepr::SVar(n))
    }

    /// A polymorphic shape over an existing node (used when instantiating
    /// an imported signature).
    pub fn svar_with(&mut self, n: NodeId) -> ShapeId {
        self.push_shape(ShapeRepr::SVar(n))
    }

    /// A base shape over a fresh node.
    pub fn fresh_base(&mut self) -> ShapeId {
        let n = self.fresh_node();
        self.base_with(n)
    }

    /// A base shape over an existing node.
    pub fn base_with(&mut self, n: NodeId) -> ShapeId {
        self.push_shape(ShapeRepr::Base(n))
    }

    /// A list shape; adds the well-formedness edge `spine ≤ top(elem)`.
    pub fn list_with(&mut self, elem: ShapeId, spine: NodeId) -> ShapeId {
        let et = self.top(elem);
        self.edge(spine, et);
        self.push_shape(ShapeRepr::List(elem, spine))
    }

    /// A function shape; adds well-formedness edges
    /// `arrow ≤ top(arg)` and `arrow ≤ top(result)`.
    pub fn fun_with(&mut self, arg: ShapeId, arrow: NodeId, res: ShapeId) -> ShapeId {
        let at = self.top(arg);
        let rt = self.top(res);
        self.edge(arrow, at);
        self.edge(arrow, rt);
        self.push_shape(ShapeRepr::Fun(arg, arrow, res))
    }

    /// Resolves a shape through links.
    pub fn resolve(&self, s: ShapeId) -> ShapeId {
        let mut cur = s;
        loop {
            match self.shapes[cur.0 as usize] {
                ShapeRepr::Link(next) => cur = next,
                _ => return cur,
            }
        }
    }

    /// The resolved structure of a shape.
    pub fn view(&self, s: ShapeId) -> ShapeView {
        match self.shapes[self.resolve(s).0 as usize] {
            ShapeRepr::Base(n) => ShapeView::Base(n),
            ShapeRepr::List(e, n) => ShapeView::List(e, n),
            ShapeRepr::Fun(a, n, r) => ShapeView::Fun(a, n, r),
            ShapeRepr::SVar(n) => ShapeView::SVar(n),
            ShapeRepr::Link(_) => unreachable!("resolved"),
        }
    }

    /// The top-level node of a shape.
    pub fn top(&mut self, s: ShapeId) -> NodeId {
        match self.view(s) {
            ShapeView::Base(n) | ShapeView::SVar(n) => n,
            ShapeView::List(_, n) => n,
            ShapeView::Fun(_, n, _) => n,
        }
    }

    /// Pre-order traversal of all node positions in a shape.
    pub fn shape_nodes(&mut self, s: ShapeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_nodes(s, &mut out);
        out
    }

    fn collect_nodes(&mut self, s: ShapeId, out: &mut Vec<NodeId>) {
        match self.view(s) {
            ShapeView::Base(n) | ShapeView::SVar(n) => out.push(n),
            ShapeView::List(e, n) => {
                out.push(n);
                self.collect_nodes(e, out);
            }
            ShapeView::Fun(a, n, r) => {
                out.push(n);
                self.collect_nodes(a, out);
                self.collect_nodes(r, out);
            }
        }
    }

    fn contains_shape(&self, haystack: ShapeId, needle: ShapeId) -> bool {
        let needle = self.resolve(needle);
        let haystack = self.resolve(haystack);
        if haystack == needle {
            return true;
        }
        match self.shapes[haystack.0 as usize] {
            ShapeRepr::Base(_) | ShapeRepr::SVar(_) => false,
            ShapeRepr::List(e, _) => self.contains_shape(e, needle),
            ShapeRepr::Fun(a, _, r) => {
                self.contains_shape(a, needle) || self.contains_shape(r, needle)
            }
            ShapeRepr::Link(_) => unreachable!("resolved"),
        }
    }

    fn mismatch(&self) -> BtaError {
        BtaError::ShapeMismatch { context: self.context.clone() }
    }

    fn link(&mut self, from: ShapeId, to: ShapeId) {
        let from = self.resolve(from);
        let to = self.resolve(to);
        if from != to {
            self.shapes[from.0 as usize] = ShapeRepr::Link(to);
        }
    }

    /// Equates two shapes (all corresponding nodes merged).
    ///
    /// # Errors
    ///
    /// [`BtaError::ShapeMismatch`] on structural clash and
    /// [`BtaError::Occurs`] on infinite shapes.
    pub fn unify_shapes(&mut self, a: ShapeId, b: ShapeId) -> Result<(), BtaError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        if a == b {
            return Ok(());
        }
        match (self.view(a), self.view(b)) {
            (ShapeView::SVar(n), _) => {
                if self.contains_shape(b, a) {
                    return Err(BtaError::Occurs { context: self.context.clone() });
                }
                let tb = self.top(b);
                self.merge_nodes(n, tb);
                self.link(a, b);
                Ok(())
            }
            (_, ShapeView::SVar(n)) => {
                if self.contains_shape(a, b) {
                    return Err(BtaError::Occurs { context: self.context.clone() });
                }
                let ta = self.top(a);
                self.merge_nodes(n, ta);
                self.link(b, a);
                Ok(())
            }
            (ShapeView::Base(n1), ShapeView::Base(n2)) => {
                self.merge_nodes(n1, n2);
                Ok(())
            }
            (ShapeView::List(e1, s1), ShapeView::List(e2, s2)) => {
                self.merge_nodes(s1, s2);
                self.unify_shapes(e1, e2)
            }
            (ShapeView::Fun(a1, b1, r1), ShapeView::Fun(a2, b2, r2)) => {
                self.merge_nodes(b1, b2);
                self.unify_shapes(a1, a2)?;
                self.unify_shapes(r1, r2)
            }
            _ => Err(self.mismatch()),
        }
    }

    /// Subsumption: a value of shape `from` flows to a position of shape
    /// `to`, inserting `≤` edges (and a run-time coercion, recorded by
    /// the caller).
    ///
    /// Rules:
    ///
    /// * base and list positions are covariant;
    /// * for function shapes the argument and result shapes are *unified*
    ///   and only the arrow may rise (`S` closure to `D` code via
    ///   eta-expansion) — the conservative rule discussed in `DESIGN.md`;
    /// * two polymorphic positions get a `≤` edge between their summary
    ///   nodes, and the pair is deferred so that if either side later
    ///   acquires structure the coercion is replayed structurally
    ///   ([`Solver::settle`]);
    /// * a structured value flowing *into* a polymorphic position also
    ///   gets "boxing" edges from every node inside it to the summary —
    ///   a value whose inner parts are dynamic forces the whole
    ///   polymorphic position dynamic, which is what makes summarising a
    ///   subtree by one binding time sound (the paper's §4.2 boxing
    ///   analogy).
    ///
    /// # Errors
    ///
    /// [`BtaError::ShapeMismatch`] / [`BtaError::Occurs`] as for
    /// [`Solver::unify_shapes`].
    pub fn coerce_shapes(&mut self, from: ShapeId, to: ShapeId) -> Result<(), BtaError> {
        let from = self.resolve(from);
        let to = self.resolve(to);
        if from == to {
            return Ok(());
        }
        match (self.view(from), self.view(to)) {
            (ShapeView::SVar(n1), ShapeView::SVar(n2)) => {
                self.edge(n1, n2);
                self.pending.push((from, to));
                Ok(())
            }
            (ShapeView::SVar(n), other) => {
                if self.contains_shape(to, from) {
                    return Err(BtaError::Occurs { context: self.context.clone() });
                }
                let expanded = self.expand_like(n, other);
                self.link(from, expanded);
                self.coerce_shapes(expanded, to)
            }
            (other, ShapeView::SVar(n)) => {
                if self.contains_shape(from, to) {
                    return Err(BtaError::Occurs { context: self.context.clone() });
                }
                // Boxing: everything inside the value is dominated by the
                // polymorphic summary node.
                for m in self.shape_nodes(from) {
                    self.edge(m, n);
                }
                let expanded = self.expand_like(n, other);
                self.link(to, expanded);
                self.coerce_shapes(from, expanded)
            }
            (ShapeView::Base(n1), ShapeView::Base(n2)) => {
                self.edge(n1, n2);
                Ok(())
            }
            (ShapeView::List(e1, s1), ShapeView::List(e2, s2)) => {
                self.edge(s1, s2);
                self.coerce_shapes(e1, e2)
            }
            (ShapeView::Fun(a1, b1, r1), ShapeView::Fun(a2, b2, r2)) => {
                self.edge(b1, b2);
                self.unify_shapes(a1, a2)?;
                self.unify_shapes(r1, r2)
            }
            _ => Err(self.mismatch()),
        }
    }

    /// Replays deferred polymorphic-to-polymorphic coercions whose sides
    /// have since acquired structure. Call once per analysed SCC, after
    /// all constraints are generated and before extracting solutions.
    ///
    /// # Errors
    ///
    /// Same as [`Solver::coerce_shapes`].
    pub fn settle(&mut self) -> Result<(), BtaError> {
        loop {
            let pending = std::mem::take(&mut self.pending);
            let mut still = Vec::new();
            let mut progress = false;
            for (f, t) in pending {
                let both_svars = matches!(self.view(f), ShapeView::SVar(_))
                    && matches!(self.view(t), ShapeView::SVar(_));
                if both_svars || self.resolve(f) == self.resolve(t) {
                    still.push((f, t));
                } else {
                    self.coerce_shapes(f, t)?;
                    progress = true;
                }
            }
            self.pending.extend(still);
            if !progress {
                return Ok(());
            }
        }
    }

    /// Builds a fresh shape with the same constructor as `like`, using
    /// `n` as its top node.
    fn expand_like(&mut self, n: NodeId, like: ShapeView) -> ShapeId {
        match like {
            ShapeView::Base(_) => self.base_with(n),
            ShapeView::SVar(_) => unreachable!("svar handled by caller"),
            ShapeView::List(..) => {
                let elem = self.fresh_svar();
                self.list_with(elem, n)
            }
            ShapeView::Fun(..) => {
                let arg = self.fresh_svar();
                let res = self.fresh_svar();
                self.fun_with(arg, n, res)
            }
        }
    }

    // ----- least solutions --------------------------------------------

    /// Computes the symbolic least solution of every node with respect to
    /// the given signature roots: `solution(n)` is the lub of the
    /// signature variables whose roots reach `find(n)`, plus `D` if a
    /// forced node reaches it.
    ///
    /// `sig_roots` must already be root representatives and deduplicated;
    /// variable `i` of the resulting terms refers to `sig_roots[i]`.
    pub fn least_solutions(&mut self, sig_roots: &[NodeId]) -> LeastSolutions {
        let n = self.parent.len();
        // Adjacency over roots.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let edges = self.edges.clone();
        for (lo, hi) in edges {
            let lo = self.find(lo).0 as usize;
            let hi = self.find(hi).0;
            if lo as u32 != hi {
                adj[lo].push(hi);
            }
        }
        let mut reach: Vec<u128> = vec![0; n];
        let mut forced: Vec<bool> = vec![false; n];

        // Seed forced-D nodes.
        let mut queue = VecDeque::new();
        for (i, is_forced) in forced.iter_mut().enumerate() {
            if self.parent[i] == i as u32 && self.forced_d[i] {
                *is_forced = true;
                queue.push_back(i as u32);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &adj[i as usize] {
                if !forced[j as usize] {
                    forced[j as usize] = true;
                    queue.push_back(j);
                }
            }
        }

        // Propagate each signature variable.
        for (idx, root) in sig_roots.iter().enumerate() {
            let bit = 1u128 << idx;
            let r = self.find(*root).0;
            let mut queue = VecDeque::new();
            if reach[r as usize] & bit == 0 {
                reach[r as usize] |= bit;
                queue.push_back(r);
            }
            while let Some(i) = queue.pop_front() {
                for &j in &adj[i as usize] {
                    if reach[j as usize] & bit == 0 {
                        reach[j as usize] |= bit;
                        queue.push_back(j);
                    }
                }
            }
        }

        LeastSolutions { reach, forced }
    }
}

/// Symbolic least solutions computed by [`Solver::least_solutions`].
#[derive(Debug)]
pub struct LeastSolutions {
    reach: Vec<u128>,
    forced: Vec<bool>,
}

impl LeastSolutions {
    /// The least solution of a node as a term over the signature
    /// variables supplied to [`Solver::least_solutions`].
    pub fn term(&self, solver: &mut Solver, n: NodeId) -> BtTerm {
        let r = solver.find(n).0 as usize;
        if self.forced[r] {
            return BtTerm::d();
        }
        let mut vars = Vec::new();
        let bits = self.reach[r];
        for i in 0..128u32 {
            if bits >> i & 1 == 1 {
                vars.push(i);
            }
        }
        BtTerm::lub_of(vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Bt;

    fn term_of(s: &mut Solver, ls: &LeastSolutions, n: NodeId) -> String {
        ls.term(s, n).to_string()
    }

    #[test]
    fn least_solution_is_reachable_sig_vars() {
        let mut s = Solver::new("test");
        let a = s.fresh_node(); // sig var 0
        let b = s.fresh_node(); // sig var 1
        let x = s.fresh_node();
        let y = s.fresh_node();
        s.edge(a, x);
        s.edge(b, x);
        s.edge(x, y);
        let ls = s.least_solutions(&[a, b]);
        assert_eq!(term_of(&mut s, &ls, a), "t0");
        assert_eq!(term_of(&mut s, &ls, x), "t0 | t1");
        assert_eq!(term_of(&mut s, &ls, y), "t0 | t1");
    }

    #[test]
    fn unconstrained_node_is_static() {
        let mut s = Solver::new("test");
        let a = s.fresh_node();
        let free = s.fresh_node();
        let ls = s.least_solutions(&[a]);
        assert_eq!(term_of(&mut s, &ls, free), "S");
    }

    #[test]
    fn forced_d_propagates() {
        let mut s = Solver::new("test");
        let a = s.fresh_node();
        let x = s.fresh_node();
        s.force_d(a);
        s.edge(a, x);
        let ls = s.least_solutions(&[]);
        assert_eq!(term_of(&mut s, &ls, x), "D");
    }

    #[test]
    fn merged_nodes_share_solutions() {
        let mut s = Solver::new("test");
        let a = s.fresh_node();
        let x = s.fresh_node();
        let y = s.fresh_node();
        s.edge(a, x);
        s.merge_nodes(x, y);
        let ls = s.least_solutions(&[a]);
        assert_eq!(term_of(&mut s, &ls, y), "t0");
    }

    #[test]
    fn merge_preserves_forced_d() {
        let mut s = Solver::new("test");
        let a = s.fresh_node();
        let b = s.fresh_node();
        s.force_d(a);
        s.merge_nodes(a, b);
        assert!(s.is_forced_d(b));
    }

    #[test]
    fn unify_base_merges_nodes() {
        let mut s = Solver::new("test");
        let x = s.fresh_base();
        let y = s.fresh_base();
        s.unify_shapes(x, y).unwrap();
        let tx = s.top(x);
        let ty = s.top(y);
        assert_eq!(s.find(tx), s.find(ty));
    }

    #[test]
    fn unify_svar_with_list_links() {
        let mut s = Solver::new("test");
        let sv = s.fresh_svar();
        let elem = s.fresh_base();
        let spine = s.fresh_node();
        let l = s.list_with(elem, spine);
        s.unify_shapes(sv, l).unwrap();
        assert!(matches!(s.view(sv), ShapeView::List(..)));
        let top_sv = s.top(sv);
        assert_eq!(s.find(top_sv), s.find(spine));
    }

    #[test]
    fn unify_structural_mismatch_errors() {
        let mut s = Solver::new("ctx");
        let b = s.fresh_base();
        let elem = s.fresh_base();
        let spine = s.fresh_node();
        let l = s.list_with(elem, spine);
        let e = s.unify_shapes(b, l).unwrap_err();
        assert!(matches!(e, BtaError::ShapeMismatch { .. }));
        assert!(e.to_string().contains("ctx"));
    }

    #[test]
    fn occurs_check_on_infinite_shape() {
        let mut s = Solver::new("test");
        let sv = s.fresh_svar();
        let spine = s.fresh_node();
        let l = s.list_with(sv, spine);
        assert!(matches!(s.unify_shapes(sv, l), Err(BtaError::Occurs { .. })));
    }

    #[test]
    fn coerce_base_adds_edge_not_merge() {
        let mut s = Solver::new("test");
        let x = s.fresh_base();
        let y = s.fresh_base();
        s.coerce_shapes(x, y).unwrap();
        let tx = s.top(x);
        let ty = s.top(y);
        assert_ne!(s.find(tx), s.find(ty));
        // x ≤ y: forcing... make x a sig var; y should pick it up.
        let ls = s.least_solutions(&[tx]);
        assert_eq!(term_of(&mut s, &ls, ty), "t0");
        let ls_rev = s.least_solutions(&[ty]);
        // but x does NOT see y.
        assert_eq!(term_of(&mut s, &ls_rev, tx), "S");
    }

    #[test]
    fn coerce_expands_svar_to_match() {
        let mut s = Solver::new("test");
        let sv = s.fresh_svar();
        let elem = s.fresh_base();
        let spine = s.fresh_node();
        let l = s.list_with(elem, spine);
        // svar flows into list position: svar becomes a list.
        s.coerce_shapes(sv, l).unwrap();
        assert!(matches!(s.view(sv), ShapeView::List(..)));
    }

    #[test]
    fn coerce_fun_unifies_parts_and_raises_arrow() {
        let mut s = Solver::new("test");
        let a1 = s.fresh_base();
        let r1 = s.fresh_base();
        let b1 = s.fresh_node();
        let f1 = s.fun_with(a1, b1, r1);
        let a2 = s.fresh_base();
        let r2 = s.fresh_base();
        let b2 = s.fresh_node();
        let f2 = s.fun_with(a2, b2, r2);
        s.coerce_shapes(f1, f2).unwrap();
        // args and results merged; arrows related by edge only.
        let ta1 = s.top(a1);
        let ta2 = s.top(a2);
        assert_eq!(s.find(ta1), s.find(ta2));
        assert_ne!(s.find(b1), s.find(b2));
        let ls = s.least_solutions(&[b1]);
        assert_eq!(term_of(&mut s, &ls, b2), "t0");
    }

    #[test]
    fn wft_edges_force_components_of_dynamic_lists() {
        let mut s = Solver::new("test");
        let elem = s.fresh_base();
        let spine = s.fresh_node();
        let _l = s.list_with(elem, spine);
        s.force_d(spine);
        let ls = s.least_solutions(&[]);
        let te = s.top(elem);
        assert_eq!(ls.term(&mut s, te), BtTerm::d());
    }

    #[test]
    fn wft_edges_force_components_of_dynamic_funs() {
        let mut s = Solver::new("test");
        let arg = s.fresh_base();
        let res = s.fresh_base();
        let arrow = s.fresh_node();
        let _f = s.fun_with(arg, arrow, res);
        let ls = s.least_solutions(&[arrow]);
        let ta = s.top(arg);
        let tr = s.top(res);
        // arg and result tops inherit the arrow variable.
        assert_eq!(term_of(&mut s, &ls, ta), "t0");
        assert_eq!(term_of(&mut s, &ls, tr), "t0");
        // so a D arrow evaluates components to D.
        let t = ls.term(&mut s, ta);
        assert_eq!(t.eval(|_| Bt::D), Bt::D);
    }

    #[test]
    fn shape_nodes_preorder() {
        let mut s = Solver::new("test");
        let arg = s.fresh_base();
        let res = s.fresh_base();
        let arrow = s.fresh_node();
        let f = s.fun_with(arg, arrow, res);
        let nodes = s.shape_nodes(f);
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0], arrow);
    }
}

//! The module-at-a-time binding-time analysis (§4.1).
//!
//! [`analyse_module`] processes one module given only the binding-time
//! [interfaces](crate::sig::BtInterface) of its imports, and produces an
//! [`AnnModule`]: every definition annotated with symbolic binding times
//! over its own signature variables, plus the interface to write out for
//! downstream modules. [`analyse_program`] simply runs modules in
//! dependency order, exactly like a build system would.
//!
//! Within a module, definitions are processed in strongly connected
//! components of the local call graph. Calls *within* an SCC are
//! monomorphic (the instantiation is the identity, as in the paper's
//! `power {t u} … power {t u} (n-1) x`); calls to earlier SCCs and to
//! imported functions are polyvariant (fresh instantiation per call
//! site).

use crate::ann::{AnnDef, AnnExpr, AnnModule, AnnProgram, CoerceSpec};
use crate::error::BtaError;
use crate::shape::SigShape;
use crate::sig::{BtInterface, BtSignature};
use crate::solver::{LeastSolutions, NodeId, ShapeId, ShapeView, Solver};
use crate::term::BtTerm;
use mspec_lang::ast::{Expr, Ident, ModName, Module, PrimOp, QualName};
use mspec_lang::resolve::ResolvedProgram;
use std::collections::{BTreeMap, BTreeSet};

/// Analyses a whole program, module by module in dependency order.
///
/// # Errors
///
/// Any [`BtaError`] found in any module.
pub fn analyse_program(rp: &ResolvedProgram) -> Result<AnnProgram, BtaError> {
    analyse_program_with(rp, &BTreeSet::new())
}

/// Like [`analyse_program`], but forcing the named functions to be
/// residualised (never unfolded) — the paper's "annotated non-unfoldable
/// by hand" (§5).
///
/// # Errors
///
/// Any [`BtaError`]; in particular [`BtaError::UnknownOverride`] if a
/// forced name does not exist.
pub fn analyse_program_with(
    rp: &ResolvedProgram,
    force_residual: &BTreeSet<QualName>,
) -> Result<AnnProgram, BtaError> {
    let mut interfaces: BTreeMap<ModName, BtInterface> = BTreeMap::new();
    let mut modules = Vec::new();
    for mod_name in rp.graph().topo_order() {
        let module = rp
            .program()
            .module(mod_name.as_str())
            .expect("topo order lists only program modules");
        let forced: BTreeSet<Ident> = force_residual
            .iter()
            .filter(|q| q.module == *mod_name)
            .map(|q| q.name)
            .collect();
        let ann = analyse_module_with(module, &interfaces, &forced)?;
        interfaces.insert(*mod_name, ann.interface.clone());
        modules.push(ann);
    }
    // Any override naming a function in no module?
    for q in force_residual {
        if rp.def(q).is_none() {
            return Err(BtaError::UnknownOverride {
                module: q.module,
                name: q.name,
            });
        }
    }
    Ok(AnnProgram { modules })
}

/// Analyses one module from the interfaces of its imports (the
/// separate-analysis entry point: no import sources needed).
///
/// # Errors
///
/// Any [`BtaError`] found in the module.
pub fn analyse_module(
    module: &Module,
    imports: &BTreeMap<ModName, BtInterface>,
) -> Result<AnnModule, BtaError> {
    analyse_module_with(module, imports, &BTreeSet::new())
}

/// Like [`analyse_module`], with forced-residual overrides for functions
/// defined in this module.
///
/// # Errors
///
/// Any [`BtaError`]; [`BtaError::UnknownOverride`] if an override matches
/// no definition.
pub fn analyse_module_with(
    module: &Module,
    imports: &BTreeMap<ModName, BtInterface>,
    force_residual: &BTreeSet<Ident>,
) -> Result<AnnModule, BtaError> {
    for name in force_residual {
        if module.def(name.as_str()).is_none() {
            return Err(BtaError::UnknownOverride {
                module: module.name,
                name: *name,
            });
        }
    }
    let mut done: BTreeMap<Ident, BtSignature> = BTreeMap::new();
    let mut defs: Vec<(usize, AnnDef)> = Vec::new();
    for scc in local_sccs(module) {
        let anns = analyse_scc(module, &scc, imports, &mut done, force_residual)?;
        defs.extend(scc.iter().copied().zip(anns));
    }
    defs.sort_by_key(|(i, _)| *i);
    let mut interface = BtInterface::new();
    for (name, sig) in &done {
        interface.insert(*name, sig.clone());
    }
    Ok(AnnModule {
        name: module.name,
        imports: module.imports.clone(),
        defs: defs.into_iter().map(|(_, d)| d).collect(),
        interface,
    })
}

/// [`analyse_module_with`] under a telemetry span (`bta`, detail = the
/// module name), counting definitions analysed and signatures solved.
///
/// # Errors
///
/// As [`analyse_module_with`].
pub fn analyse_module_with_traced(
    module: &Module,
    imports: &BTreeMap<ModName, BtInterface>,
    force_residual: &BTreeSet<Ident>,
    rec: &mspec_telemetry::Recorder,
) -> Result<AnnModule, BtaError> {
    let _span = rec.span_with("bta", module.name.as_str());
    let ann = analyse_module_with(module, imports, force_residual)?;
    rec.count("bta.defs_analysed", ann.defs.len() as u64);
    rec.count("bta.signatures", ann.interface.iter().count() as u64);
    Ok(ann)
}

/// Strongly connected components of the module-local call graph, callees
/// first.
fn local_sccs(module: &Module) -> Vec<Vec<usize>> {
    let n = module.defs.len();
    let index_of: BTreeMap<&Ident, usize> =
        module.defs.iter().enumerate().map(|(i, d)| (&d.name, i)).collect();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, d) in module.defs.iter().enumerate() {
        for q in d.body.called_functions() {
            if q.module == module.name {
                if let Some(&j) = index_of.get(&q.name) {
                    if !edges[i].contains(&j) {
                        edges[i].push(j);
                    }
                }
            }
        }
    }
    tarjan(n, &edges)
}

fn tarjan(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct St<'e> {
        edges: &'e [Vec<usize>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        counter: u32,
        out: Vec<Vec<usize>>,
    }
    fn go(v: usize, st: &mut St<'_>) {
        st.index[v] = Some(st.counter);
        st.low[v] = st.counter;
        st.counter += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in &st.edges[v] {
            match st.index[w] {
                None => {
                    go(w, st);
                    st.low[v] = st.low[v].min(st.low[w]);
                }
                Some(wi) if st.on_stack[w] => st.low[v] = st.low[v].min(wi),
                _ => {}
            }
        }
        if Some(st.low[v]) == st.index[v] {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().expect("tarjan stack");
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let mut st = St {
        edges,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        counter: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            go(v, &mut st);
        }
    }
    st.out
}

/// A body expression annotated with solver nodes; converted to
/// [`AnnExpr`] once the least solutions are known.
enum PreExpr {
    Nat(u64),
    Bool(bool),
    Nil,
    Var(Ident),
    Prim(PrimOp, NodeId, Vec<PreExpr>),
    If(NodeId, Box<PreExpr>, Box<PreExpr>, Box<PreExpr>),
    Call { target: QualName, inst: CallInst, args: Vec<PreExpr> },
    Lam(Ident, Box<PreExpr>),
    App(NodeId, Box<PreExpr>, Box<PreExpr>),
    Let(Ident, Box<PreExpr>, Box<PreExpr>),
    Coerce(ShapeId, ShapeId, Box<PreExpr>),
}

enum CallInst {
    /// Fresh instantiation: one caller node per callee signature variable.
    External(Vec<NodeId>),
    /// Monomorphic call within the current SCC: identity instantiation.
    Recursive,
}

struct MemberSig {
    params: Vec<ShapeId>,
    ret: ShapeId,
    unfold: NodeId,
}

struct SccCx<'a> {
    solver: Solver,
    module: &'a Module,
    imports: &'a BTreeMap<ModName, BtInterface>,
    done: &'a BTreeMap<Ident, BtSignature>,
    members: BTreeMap<Ident, MemberSig>,
    current_unfold: NodeId,
}

fn analyse_scc(
    module: &Module,
    scc: &[usize],
    imports: &BTreeMap<ModName, BtInterface>,
    done: &mut BTreeMap<Ident, BtSignature>,
    force_residual: &BTreeSet<Ident>,
) -> Result<Vec<AnnDef>, BtaError> {
    let mut solver = Solver::new(format!("module {}", module.name));
    let placeholder = solver.fresh_node();
    let mut cx = SccCx {
        solver,
        module,
        imports,
        done,
        members: BTreeMap::new(),
        current_unfold: placeholder,
    };

    // Declare every member of the SCC first (for recursive references).
    for &i in scc {
        let d = &module.defs[i];
        let params = d.params.iter().map(|_| cx.solver.fresh_svar()).collect();
        let ret = cx.solver.fresh_svar();
        let unfold = cx.solver.fresh_node();
        cx.members.insert(d.name, MemberSig { params, ret, unfold });
    }

    // Infer each member's body.
    let mut pre_bodies = Vec::new();
    for &i in scc {
        let d = &module.defs[i];
        cx.solver.set_context(format!("{}.{}", module.name, d.name));
        let member = &cx.members[&d.name];
        cx.current_unfold = member.unfold;
        let (ret, unfold) = (member.ret, member.unfold);
        let mut env: Vec<(Ident, ShapeId)> =
            d.params.iter().cloned().zip(member.params.iter().copied()).collect();
        let (pre, shape) = cx.infer(&d.body, &mut env)?;
        let pre = cx.coerce_into(pre, shape, ret)?;
        // A residualised call's result is code: unfold ≤ top(ret).
        let ret_top = cx.solver.top(ret);
        cx.solver.edge(unfold, ret_top);
        if force_residual.contains(&d.name) {
            cx.solver.force_d(unfold);
        }
        pre_bodies.push(pre);
    }
    cx.solver.settle()?;

    // Signature variables: the nodes of all parameter shapes, in order.
    let mut roots: Vec<NodeId> = Vec::new();
    for &i in scc {
        let d = &module.defs[i];
        let param_shapes: Vec<ShapeId> = cx.members[&d.name].params.clone();
        for p in param_shapes {
            for n in cx.solver.shape_nodes(p) {
                let r = cx.solver.find(n);
                if !roots.contains(&r) {
                    roots.push(r);
                }
            }
        }
    }
    if roots.len() > 128 {
        let names: Vec<String> =
            scc.iter().map(|&i| format!("{}.{}", module.name, module.defs[i].name)).collect();
        return Err(BtaError::TooManyVars { context: names.join(", "), count: roots.len() });
    }
    let ls = cx.solver.least_solutions(&roots);

    // Constraints between signature variables: i ≤ j iff var i occurs in
    // the least solution of root j. Forced-D roots get a D qualification.
    // The raw relation is a transitive closure; export its transitive
    // reduction so interfaces stay compact (the Dussart–Henglein–Mossin
    // simplification step).
    let mut reach: Vec<u128> = vec![0; roots.len()];
    let mut forced = Vec::new();
    for (j, rj) in roots.iter().enumerate() {
        let t = ls.term(&mut cx.solver, *rj);
        if t.is_d() {
            forced.push(j as u32);
            continue;
        }
        for v in t.vars() {
            if v as usize != j {
                reach[j] |= 1u128 << v;
            }
        }
    }
    // The relation may contain equivalences (i ≤ j ≤ i); a witness for
    // dropping an edge must be *strictly* between its endpoints, or the
    // two edges of a cycle would justify dropping each other.
    let equiv = |a: usize, b: usize| reach[a] >> b & 1 == 1 && reach[b] >> a & 1 == 1;
    let mut constraints = Vec::new();
    for j in 0..roots.len() {
        for i in 0..roots.len() {
            if reach[j] >> i & 1 == 0 {
                continue;
            }
            let implied = (0..roots.len()).any(|k| {
                k != i
                    && k != j
                    && !equiv(k, i)
                    && !equiv(k, j)
                    && reach[j] >> k & 1 == 1
                    && reach[k] >> i & 1 == 1
            });
            if !implied {
                constraints.push((i as u32, j as u32));
            }
        }
    }

    // Build each member's signature and annotated definition.
    let index_of: BTreeMap<NodeId, u32> =
        roots.iter().enumerate().map(|(i, r)| (*r, i as u32)).collect();
    let mut out = Vec::new();
    for (k, &i) in scc.iter().enumerate() {
        let d = &module.defs[i];
        let member = &cx.members[&d.name];
        let (params_shapes, ret_shape, unfold_node) =
            (member.params.clone(), member.ret, member.unfold);
        let params = params_shapes
            .iter()
            .map(|p| shape_to_sig(&mut cx.solver, &ls, *p, Some(&index_of)))
            .collect::<Result<Vec<_>, _>>()?;
        let ret = shape_to_sig(&mut cx.solver, &ls, ret_shape, None)?;
        let unfold = ls.term(&mut cx.solver, unfold_node);
        let sig = BtSignature {
            vars: roots.len() as u32,
            constraints: constraints.clone(),
            forced_d: forced.clone(),
            params,
            ret,
            unfold,
        };
        let body = finalize(&mut cx.solver, &ls, &pre_bodies[k], sig.vars)?;
        out.push(AnnDef { name: d.name, params: d.params.clone(), sig, body });
    }
    for def in &out {
        done.insert(def.name, def.sig.clone());
    }
    Ok(out)
}

/// Converts a solver shape to its serialisable signature form.
///
/// With `param_index` set, every node must be a signature root and is
/// rendered as its own variable (the defining occurrence); otherwise the
/// node's symbolic least solution is used.
fn shape_to_sig(
    solver: &mut Solver,
    ls: &LeastSolutions,
    shape: ShapeId,
    param_index: Option<&BTreeMap<NodeId, u32>>,
) -> Result<SigShape, BtaError> {
    let term = |solver: &mut Solver, n: NodeId| -> Result<BtTerm, BtaError> {
        match param_index {
            Some(idx) => {
                let r = solver.find(n);
                let v = idx.get(&r).ok_or_else(|| {
                    BtaError::Internal("parameter node is not a signature root".into())
                })?;
                Ok(BtTerm::var(*v))
            }
            None => Ok(ls.term(solver, n)),
        }
    };
    match solver.view(shape) {
        ShapeView::Base(n) => Ok(SigShape::Base(term(solver, n)?)),
        ShapeView::SVar(n) => Ok(SigShape::Var(term(solver, n)?)),
        ShapeView::List(e, n) => {
            let t = term(solver, n)?;
            Ok(SigShape::List(Box::new(shape_to_sig(solver, ls, e, param_index)?), t))
        }
        ShapeView::Fun(a, n, r) => {
            let t = term(solver, n)?;
            Ok(SigShape::Fun(
                Box::new(shape_to_sig(solver, ls, a, param_index)?),
                t,
                Box::new(shape_to_sig(solver, ls, r, param_index)?),
            ))
        }
    }
}

/// Builds the run-time coercion between two (structurally equal) shapes.
fn coercion_spec(
    solver: &mut Solver,
    ls: &LeastSolutions,
    from: ShapeId,
    to: ShapeId,
) -> Result<CoerceSpec, BtaError> {
    if solver.resolve(from) == solver.resolve(to) {
        return Ok(CoerceSpec::Id);
    }
    match (solver.view(from), solver.view(to)) {
        (
            ShapeView::Base(n1) | ShapeView::SVar(n1),
            ShapeView::Base(n2) | ShapeView::SVar(n2),
        ) => {
            if solver.find(n1) == solver.find(n2) {
                Ok(CoerceSpec::Id)
            } else {
                Ok(CoerceSpec::Base { from: ls.term(solver, n1), to: ls.term(solver, n2) })
            }
        }
        (ShapeView::List(e1, s1), ShapeView::List(e2, s2)) => {
            let elem = coercion_spec(solver, ls, e1, e2)?;
            if solver.find(s1) == solver.find(s2) && elem.is_identity() {
                Ok(CoerceSpec::Id)
            } else {
                Ok(CoerceSpec::List {
                    from: ls.term(solver, s1),
                    to: ls.term(solver, s2),
                    elem: Box::new(elem),
                })
            }
        }
        (ShapeView::Fun(_, b1, _), ShapeView::Fun(_, b2, _)) => {
            if solver.find(b1) == solver.find(b2) {
                Ok(CoerceSpec::Id)
            } else {
                Ok(CoerceSpec::Fun { from: ls.term(solver, b1), to: ls.term(solver, b2) })
            }
        }
        _ => Err(BtaError::Internal(
            "coercion between structurally different shapes survived solving".into(),
        )),
    }
}

fn finalize(
    solver: &mut Solver,
    ls: &LeastSolutions,
    pre: &PreExpr,
    vars: u32,
) -> Result<AnnExpr, BtaError> {
    Ok(match pre {
        PreExpr::Nat(n) => AnnExpr::Nat(*n),
        PreExpr::Bool(b) => AnnExpr::Bool(*b),
        PreExpr::Nil => AnnExpr::Nil,
        PreExpr::Var(x) => AnnExpr::Var(*x),
        PreExpr::Prim(op, n, args) => AnnExpr::Prim(
            *op,
            ls.term(solver, *n),
            args.iter().map(|a| finalize(solver, ls, a, vars)).collect::<Result<_, _>>()?,
        ),
        PreExpr::If(n, c, t, e) => AnnExpr::If(
            ls.term(solver, *n),
            Box::new(finalize(solver, ls, c, vars)?),
            Box::new(finalize(solver, ls, t, vars)?),
            Box::new(finalize(solver, ls, e, vars)?),
        ),
        PreExpr::Call { target, inst, args } => {
            let inst_terms = match inst {
                CallInst::External(nodes) => {
                    nodes.iter().map(|n| ls.term(solver, *n)).collect()
                }
                CallInst::Recursive => (0..vars).map(BtTerm::var).collect(),
            };
            AnnExpr::Call {
                target: *target,
                inst: inst_terms,
                args: args
                    .iter()
                    .map(|a| finalize(solver, ls, a, vars))
                    .collect::<Result<_, _>>()?,
            }
        }
        PreExpr::Lam(x, b) => AnnExpr::Lam(*x, Box::new(finalize(solver, ls, b, vars)?)),
        PreExpr::App(n, f, a) => AnnExpr::App(
            ls.term(solver, *n),
            Box::new(finalize(solver, ls, f, vars)?),
            Box::new(finalize(solver, ls, a, vars)?),
        ),
        PreExpr::Let(x, e, b) => AnnExpr::Let(
            *x,
            Box::new(finalize(solver, ls, e, vars)?),
            Box::new(finalize(solver, ls, b, vars)?),
        ),
        PreExpr::Coerce(from, to, e) => {
            let spec = coercion_spec(solver, ls, *from, *to)?;
            finalize(solver, ls, e, vars)?.coerced(spec)
        }
    })
}

impl SccCx<'_> {
    fn coerce_into(
        &mut self,
        pre: PreExpr,
        shape: ShapeId,
        target: ShapeId,
    ) -> Result<PreExpr, BtaError> {
        self.solver.coerce_shapes(shape, target)?;
        Ok(PreExpr::Coerce(shape, target, Box::new(pre)))
    }

    fn infer(
        &mut self,
        e: &Expr,
        env: &mut Vec<(Ident, ShapeId)>,
    ) -> Result<(PreExpr, ShapeId), BtaError> {
        match e {
            Expr::Nat(n) => Ok((PreExpr::Nat(*n), self.solver.fresh_base())),
            Expr::Bool(b) => Ok((PreExpr::Bool(*b), self.solver.fresh_base())),
            Expr::Nil => {
                let elem = self.solver.fresh_svar();
                let spine = self.solver.fresh_node();
                Ok((PreExpr::Nil, self.solver.list_with(elem, spine)))
            }
            Expr::Var(x) => {
                let shape = env
                    .iter()
                    .rev()
                    .find(|(n, _)| n == x)
                    .map(|(_, s)| *s)
                    .ok_or_else(|| {
                        BtaError::Internal(format!("unbound variable `{x}` (unresolved program?)"))
                    })?;
                Ok((PreExpr::Var(*x), shape))
            }
            Expr::Prim(op, args) => self.infer_prim(*op, args, env),
            Expr::If(c, t, f) => {
                let (cp, cs) = self.infer(c, env)?;
                let tc = self.solver.fresh_node();
                let ctarget = self.solver.base_with(tc);
                let cp = self.coerce_into(cp, cs, ctarget)?;
                self.solver.edge(tc, self.current_unfold);

                let (tp, ts) = self.infer(t, env)?;
                let (fp, fs) = self.infer(f, env)?;
                let rho = self.solver.fresh_svar();
                let tp = self.coerce_into(tp, ts, rho)?;
                let fp = self.coerce_into(fp, fs, rho)?;
                // A residual conditional yields code.
                let rho_top = self.solver.top(rho);
                self.solver.edge(tc, rho_top);
                Ok((PreExpr::If(tc, Box::new(cp), Box::new(tp), Box::new(fp)), rho))
            }
            Expr::Call(target, args) => {
                let q = target.qualified();
                if q.module == self.module.name && self.members.contains_key(&q.name) {
                    // Monomorphic (same SCC): share the member's shapes.
                    let (params, ret) = {
                        let m = &self.members[&q.name];
                        (m.params.clone(), m.ret)
                    };
                    let mut coerced_args = Vec::with_capacity(args.len());
                    for (a, p) in args.iter().zip(params) {
                        let (ap, ashape) = self.infer(a, env)?;
                        coerced_args.push(self.coerce_into(ap, ashape, p)?);
                    }
                    Ok((
                        PreExpr::Call {
                            target: q,
                            inst: CallInst::Recursive,
                            args: coerced_args,
                        },
                        ret,
                    ))
                } else {
                    let sig = self.lookup_signature(&q)?.clone();
                    let inst: Vec<NodeId> =
                        (0..sig.vars).map(|_| self.solver.fresh_node()).collect();
                    for &(lo, hi) in &sig.constraints {
                        self.solver.edge(inst[lo as usize], inst[hi as usize]);
                    }
                    for &v in &sig.forced_d {
                        self.solver.force_d(inst[v as usize]);
                    }
                    let mut coerced_args = Vec::with_capacity(args.len());
                    for (a, pshape) in args.iter().zip(&sig.params) {
                        let ptarget = self.instantiate(pshape, &inst);
                        let (ap, ashape) = self.infer(a, env)?;
                        coerced_args.push(self.coerce_into(ap, ashape, ptarget)?);
                    }
                    let ret = self.instantiate(&sig.ret, &inst);
                    Ok((
                        PreExpr::Call {
                            target: q,
                            inst: CallInst::External(inst),
                            args: coerced_args,
                        },
                        ret,
                    ))
                }
            }
            Expr::Lam(x, body) => {
                let px = self.solver.fresh_svar();
                let arrow = self.solver.fresh_node();
                env.push((*x, px));
                let (bp, bs) = self.infer(body, env)?;
                env.pop();
                let shape = self.solver.fun_with(px, arrow, bs);
                Ok((PreExpr::Lam(*x, Box::new(bp)), shape))
            }
            Expr::App(f, a) => {
                let (fp, fs) = self.infer(f, env)?;
                let parg = self.solver.fresh_svar();
                let arrow = self.solver.fresh_node();
                let pres = self.solver.fresh_svar();
                let ftarget = self.solver.fun_with(parg, arrow, pres);
                let fp = self.coerce_into(fp, fs, ftarget)?;
                let (ap, ashape) = self.infer(a, env)?;
                let ap = self.coerce_into(ap, ashape, parg)?;
                Ok((PreExpr::App(arrow, Box::new(fp), Box::new(ap)), pres))
            }
            Expr::Let(x, rhs, body) => {
                let (rp, rs) = self.infer(rhs, env)?;
                env.push((*x, rs));
                let (bp, bs) = self.infer(body, env)?;
                env.pop();
                Ok((PreExpr::Let(*x, Box::new(rp), Box::new(bp)), bs))
            }
        }
    }

    fn infer_prim(
        &mut self,
        op: PrimOp,
        args: &[Expr],
        env: &mut Vec<(Ident, ShapeId)>,
    ) -> Result<(PreExpr, ShapeId), BtaError> {
        use PrimOp::*;
        match op {
            Add | Sub | Mul | Div | Eq | Lt | Leq | And | Or | Not => {
                // Both operands coerced up to the operation's binding
                // time (the paper's `x ×^{t⊔u} [u ⇒ t⊔u]x`).
                let r = self.solver.fresh_node();
                let target = self.solver.base_with(r);
                let mut coerced = Vec::with_capacity(args.len());
                for a in args {
                    let (ap, ashape) = self.infer(a, env)?;
                    coerced.push(self.coerce_into(ap, ashape, target)?);
                }
                Ok((PreExpr::Prim(op, r, coerced), target))
            }
            Cons => {
                let elem = self.solver.fresh_svar();
                let spine = self.solver.fresh_node();
                let result = self.solver.list_with(elem, spine);
                let (hp, hs) = self.infer(&args[0], env)?;
                let hp = self.coerce_into(hp, hs, elem)?;
                let (tp, ts) = self.infer(&args[1], env)?;
                let tp = self.coerce_into(tp, ts, result)?;
                Ok((PreExpr::Prim(op, spine, vec![hp, tp]), result))
            }
            Head | Tail | Null => {
                let elem = self.solver.fresh_svar();
                let spine = self.solver.fresh_node();
                let ltarget = self.solver.list_with(elem, spine);
                let (ap, ashape) = self.infer(&args[0], env)?;
                let ap = self.coerce_into(ap, ashape, ltarget)?;
                let result = match op {
                    Head => elem,
                    Tail => ltarget,
                    Null => self.solver.base_with(spine),
                    _ => unreachable!(),
                };
                Ok((PreExpr::Prim(op, spine, vec![ap]), result))
            }
        }
    }

    fn lookup_signature(&self, q: &QualName) -> Result<&BtSignature, BtaError> {
        if q.module == self.module.name {
            if let Some(sig) = self.done.get(&q.name) {
                return Ok(sig);
            }
        } else if let Some(iface) = self.imports.get(&q.module) {
            if let Some(sig) = iface.get(&q.name) {
                return Ok(sig);
            }
        }
        Err(BtaError::MissingSignature(*q))
    }

    /// Builds a solver shape from a signature shape under an
    /// instantiation of the signature variables.
    fn instantiate(&mut self, shape: &SigShape, inst: &[NodeId]) -> ShapeId {
        let node = |cx: &mut SccCx<'_>, t: &BtTerm| -> NodeId {
            if t.is_d() {
                let n = cx.solver.fresh_node();
                cx.solver.force_d(n);
                return n;
            }
            let vars: Vec<_> = t.vars().collect();
            if vars.len() == 1 {
                return inst[vars[0] as usize];
            }
            let n = cx.solver.fresh_node();
            for v in vars {
                cx.solver.edge(inst[v as usize], n);
            }
            n
        };
        match shape {
            SigShape::Base(t) => {
                let n = node(self, t);
                self.solver.base_with(n)
            }
            SigShape::Var(t) => {
                let n = node(self, t);
                self.solver.svar_with(n)
            }
            SigShape::List(e, t) => {
                let elem = self.instantiate(e, inst);
                let n = node(self, t);
                self.solver.list_with(elem, n)
            }
            SigShape::Fun(a, t, r) => {
                let arg = self.instantiate(a, inst);
                let res = self.instantiate(r, inst);
                let n = node(self, t);
                self.solver.fun_with(arg, n, res)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::BtMask;
    use crate::term::Bt;
    use mspec_lang::parser::parse_program;
    use mspec_lang::resolve::resolve;

    fn analyse(src: &str) -> AnnProgram {
        let rp = resolve(parse_program(src).unwrap()).unwrap();
        analyse_program(&rp).unwrap()
    }

    const POWER: &str =
        "module P where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

    #[test]
    fn power_signature_matches_paper() {
        let ann = analyse(POWER);
        let sig = ann.signature(&QualName::new("P", "power")).unwrap();
        // ∀t,u. t → u → t⊔u, unfold: t (the binding time of n).
        assert_eq!(sig.vars, 2);
        assert!(sig.constraints.is_empty(), "{sig}");
        assert!(sig.forced_d.is_empty(), "{sig}");
        assert_eq!(sig.params[0].top().to_string(), "t0");
        assert_eq!(sig.params[1].top().to_string(), "t1");
        assert_eq!(sig.ret.top().to_string(), "t0 | t1");
        assert_eq!(sig.unfold.to_string(), "t0");
    }

    #[test]
    fn power_unfold_decision() {
        let ann = analyse(POWER);
        let sig = ann.signature(&QualName::new("P", "power")).unwrap();
        // {S,D}: unfold; {D,S}: residualise (paper §2/§4.1).
        assert!(sig.unfoldable_under(BtMask::all_static().set_dynamic(1)));
        assert!(!sig.unfoldable_under(BtMask::all_static().set_dynamic(0)));
    }

    #[test]
    fn power_annotation_shape() {
        let ann = analyse(POWER);
        let def = ann.def(&QualName::new("P", "power")).unwrap();
        let rendered = def.to_string();
        // The multiplication happens at t0⊔t1; the conditional at t0.
        assert!(rendered.contains("if^{t0}"), "{rendered}");
        assert!(rendered.contains("*^{t0 | t1}"), "{rendered}");
        assert!(rendered.contains("power{t0, t1}"), "{rendered}");
        assert!(rendered.contains("=^{t0}"), "{rendered}");
    }

    #[test]
    fn forced_residual_override() {
        let rp = resolve(parse_program(POWER).unwrap()).unwrap();
        let forced: BTreeSet<QualName> = [QualName::new("P", "power")].into();
        let ann = analyse_program_with(&rp, &forced).unwrap();
        let sig = ann.signature(&QualName::new("P", "power")).unwrap();
        assert!(sig.unfold.is_d(), "{sig}");
        // Result is code under every mask now.
        assert_eq!(BtMask::all_static().eval(sig.ret.top()), Bt::D);
    }

    #[test]
    fn unknown_override_is_an_error() {
        let rp = resolve(parse_program(POWER).unwrap()).unwrap();
        let forced: BTreeSet<QualName> = [QualName::new("P", "ghost")].into();
        assert!(matches!(
            analyse_program_with(&rp, &forced),
            Err(BtaError::UnknownOverride { .. })
        ));
    }

    #[test]
    fn constant_function_is_fully_static() {
        let ann = analyse("module M where\nc = 1 + 2\n");
        let sig = ann.signature(&QualName::new("M", "c")).unwrap();
        assert_eq!(sig.vars, 0);
        assert!(sig.unfold.is_s());
        assert!(sig.ret.top().is_s());
    }

    #[test]
    fn twice_has_arrow_variable() {
        let ann = analyse("module T where\ntwice f x = f @ (f @ x)\n");
        let sig = ann.signature(&QualName::new("T", "twice")).unwrap();
        // f's shape is a function; its arrow binding time decides
        // unfolding of the applications; twice itself has no conditional
        // so it is always unfoldable.
        assert!(sig.unfold.is_s(), "{sig}");
        assert!(matches!(sig.params[0], SigShape::Fun(..)), "{sig}");
    }

    #[test]
    fn map_signature_is_usable_with_dynamic_list() {
        let ann = analyse(
            "module A where\nmap f xs = if null xs then [] else f @ (head xs) : map f (tail xs)\n",
        );
        let sig = ann.signature(&QualName::new("A", "map")).unwrap();
        // Unfolding is governed by the spine of xs (the null test).
        let spine_var = match &sig.params[1] {
            SigShape::List(_, t) => t.clone(),
            other => panic!("xs should be a list shape, got {other}"),
        };
        assert_eq!(sig.unfold, spine_var);
        // A dynamic spine means the conditional is dynamic: residualise.
        let mut mask = BtMask::all_static();
        for v in spine_var.vars() {
            mask = mask.set_dynamic(v);
        }
        let mask = sig.complete_mask(mask);
        assert!(!sig.unfoldable_under(mask));
        // With a fully static list, map unfolds.
        assert!(sig.unfoldable_under(sig.complete_mask(BtMask::all_static())));
    }

    #[test]
    fn interfaces_allow_separate_analysis() {
        let src = "module Lib where\n\
                   inc x = x + 1\n\
                   module App where\n\
                   import Lib\n\
                   f y = inc y\n";
        let rp = resolve(parse_program(src).unwrap()).unwrap();
        let whole = analyse_program(&rp).unwrap();

        let lib = rp.program().module("Lib").unwrap();
        let lib_ann = analyse_module(lib, &BTreeMap::new()).unwrap();
        // Round-trip the interface through its file format.
        let json = lib_ann.interface.to_json().unwrap();
        let lib_iface = BtInterface::from_json(&json).unwrap();
        let mut imports = BTreeMap::new();
        imports.insert(ModName::new("Lib"), lib_iface);
        let app = rp.program().module("App").unwrap();
        let app_ann = analyse_module(app, &imports).unwrap();

        assert_eq!(
            whole.signature(&QualName::new("App", "f")).unwrap(),
            app_ann.interface.get(&Ident::new("f")).unwrap()
        );
    }

    #[test]
    fn missing_interface_reports_missing_signature() {
        let src = "module App where\nimport Lib\nf y = Lib.inc y\n";
        // Parse only the App module; resolution would fail, so build the
        // module directly and analyse with an empty import map.
        let module = mspec_lang::parser::parse_module(src).unwrap();
        // Resolve calls by hand: mark the call as already qualified.
        let err = analyse_module(&module, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, BtaError::MissingSignature(_)), "{err:?}");
    }

    #[test]
    fn mutual_recursion_shares_signature_variables() {
        let ann = analyse(
            "module M where\n\
             even n = if n == 0 then true else odd (n - 1)\n\
             odd n = if n == 0 then false else even (n - 1)\n",
        );
        let se = ann.signature(&QualName::new("M", "even")).unwrap();
        let so = ann.signature(&QualName::new("M", "odd")).unwrap();
        assert_eq!(se.vars, so.vars);
        assert_eq!(se.vars, 2); // one parameter node each, shared pool
        // Both conditionals depend on their own n; the unfold terms are
        // per-function but range over the shared variables.
        assert!(!se.unfold.is_s());
        assert!(!so.unfold.is_s());
    }

    #[test]
    fn call_instantiation_propagates_dynamism() {
        let ann = analyse(
            "module A where\n\
             inc x = x + 1\n\
             module B where\n\
             import A\n\
             g y = inc (inc y)\n",
        );
        let sig = ann.signature(&QualName::new("B", "g")).unwrap();
        assert_eq!(sig.ret.top().to_string(), "t0");
        let def = ann.def(&QualName::new("B", "g")).unwrap();
        let shown = def.to_string();
        assert!(shown.contains("inc{t0}"), "{shown}");
    }

    #[test]
    fn lambda_coerced_into_dynamic_context_gets_fun_coercion() {
        // apply's f parameter is applied, and h passes a lambda whose
        // result depends on h's dynamic-capable parameter.
        let ann = analyse(
            "module M where\n\
             apply f x = f @ x\n\
             h y = apply (\\v -> v + y) y\n",
        );
        let sig = ann.signature(&QualName::new("M", "h")).unwrap();
        assert_eq!(sig.vars, 1);
        assert_eq!(sig.ret.top().to_string(), "t0");
    }

    #[test]
    fn paper_map_example_annotations() {
        let rp = resolve(mspec_lang::builder::paper_map_program()).unwrap();
        let ann = analyse_program(&rp).unwrap();
        // h z zs = map (\x -> g x + z) zs
        let sig = ann.signature(&QualName::new("B", "h")).unwrap();
        assert_eq!(sig.params.len(), 2);
        // With both z and zs dynamic, h's result must be dynamic code.
        let mask = sig.complete_mask(BtMask::all_dynamic(sig.vars));
        assert_eq!(mask.eval(sig.ret.top()), Bt::D);
    }

    #[test]
    fn too_many_variables_is_reported() {
        // 130 parameters → more than 128 signature variables.
        let params: Vec<String> = (0..130).map(|i| format!("p{i}")).collect();
        let src = format!("module M where\nbig {} = 1\n", params.join(" "));
        let rp = resolve(parse_program(&src).unwrap()).unwrap();
        let err = analyse_program(&rp).unwrap_err();
        assert!(matches!(err, BtaError::TooManyVars { .. }), "{err:?}");
    }

    #[test]
    fn exported_constraints_are_transitively_reduced() {
        // f's three parameters are chained: a flows into b flows into c.
        let ann = analyse(
            "module M where\nchain a b c = if a == b && b == c then c else c + 1\n",
        );
        let sig = ann.signature(&QualName::new("M", "chain")).unwrap();
        // Whatever the exact relation, no exported constraint may be
        // implied by two others.
        for &(i, j) in &sig.constraints {
            let implied = sig.constraints.iter().any(|&(a, k)| {
                a == i
                    && k != j
                    && sig.constraints.contains(&(k, j))
            });
            assert!(!implied, "redundant constraint t{i} <= t{j} in {sig}");
        }
        // And completion still forces the whole chain from the bottom.
        let m = sig.complete_mask(BtMask::all_static().set_dynamic(0));
        assert!(sig.satisfies(m));
    }

    #[test]
    fn cyclic_constraints_keep_their_incoming_edges() {
        // Regression: with t2 == t3 (an equivalence from if-branch
        // coercions) and t4 <= t2, the naive transitive reduction dropped
        // t4's edge entirely because each direction of the cycle
        // "implied" the other.
        let ann = analyse("module M where\nap fs x = if null fs then x else (head fs) @ x\n");
        let sig = ann.signature(&QualName::new("M", "ap")).unwrap();
        let closure: std::collections::BTreeSet<(u32, u32)> = {
            // transitive closure of the exported constraints
            let mut edges: std::collections::BTreeSet<(u32, u32)> =
                sig.constraints.iter().copied().collect();
            loop {
                let mut grew = false;
                let snapshot: Vec<(u32, u32)> = edges.iter().copied().collect();
                for &(a, b) in &snapshot {
                    for &(c, d) in &snapshot {
                        if b == c && edges.insert((a, d)) {
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            edges
        };
        // x (t4) must still constrain the closure argument (t2).
        assert!(closure.contains(&(4, 2)), "{sig}");
    }
}

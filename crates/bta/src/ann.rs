//! Annotated programs (the paper's Figure 2).
//!
//! Every operation carries a symbolic binding time (a [`BtTerm`] over the
//! enclosing function's signature variables) that decides — once the
//! signature variables get concrete values at specialisation time —
//! whether the operation is performed or residualised. Calls carry the
//! *instantiation* of the callee's signature variables; coercions are
//! explicit.

use crate::sig::BtSignature;
use crate::term::BtTerm;
use mspec_lang::ast::{Ident, ModName, PrimOp, QualName};
use std::fmt;

/// How to coerce a value from one binding-time shape into another.
///
/// Both shapes always have the same underlying structure; only the
/// annotations differ, and only upwards (`S` to `D`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoerceSpec {
    /// No coercion needed.
    Id,
    /// A base value: lift to code when `from` is `S` and `to` is `D`.
    Base {
        /// Binding time of the value.
        from: BtTerm,
        /// Binding time required by the context.
        to: BtTerm,
    },
    /// A list: possibly lift the spine, and coerce each element.
    List {
        /// Spine binding time of the value.
        from: BtTerm,
        /// Spine binding time required.
        to: BtTerm,
        /// Element coercion (applied when the spine stays static).
        elem: Box<CoerceSpec>,
    },
    /// A function: eta-expand a static closure into residual code when
    /// the arrow rises from `S` to `D`; inner shapes are identical by
    /// construction.
    Fun {
        /// Arrow binding time of the value.
        from: BtTerm,
        /// Arrow binding time required.
        to: BtTerm,
    },
    /// A polymorphic position; identical on both sides by construction,
    /// so operationally the identity (kept separate from [`CoerceSpec::Id`]
    /// only for display).
    Var {
        /// The (shared) binding time.
        at: BtTerm,
    },
}

impl CoerceSpec {
    /// `true` if the coercion can never do anything.
    pub fn is_identity(&self) -> bool {
        match self {
            CoerceSpec::Id | CoerceSpec::Var { .. } => true,
            CoerceSpec::Base { from, to } | CoerceSpec::Fun { from, to } => from == to,
            CoerceSpec::List { from, to, elem } => from == to && elem.is_identity(),
        }
    }
}

impl fmt::Display for CoerceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoerceSpec::Id => write!(f, "id"),
            CoerceSpec::Var { at } => write!(f, "id@{at}"),
            CoerceSpec::Base { from, to } => write!(f, "{from}=>{to}"),
            CoerceSpec::Fun { from, to } => write!(f, "fun:{from}=>{to}"),
            CoerceSpec::List { from, to, elem } => write!(f, "list:{from}=>{to}[{elem}]"),
        }
    }
}

/// An annotated expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnExpr {
    /// A natural literal (always static; coercions lift it).
    Nat(u64),
    /// A boolean literal.
    Bool(bool),
    /// The empty list (static spine).
    Nil,
    /// A variable.
    Var(Ident),
    /// A primitive with its operation binding time: performed when the
    /// term evaluates `S`, residualised when `D`.
    Prim(PrimOp, BtTerm, Vec<AnnExpr>),
    /// A conditional with the binding time of its test.
    If(BtTerm, Box<AnnExpr>, Box<AnnExpr>, Box<AnnExpr>),
    /// A call of a named function. `inst` gives, for each signature
    /// variable of the callee, its value as a term over the *caller's*
    /// signature variables.
    Call {
        /// The callee.
        target: QualName,
        /// Signature instantiation.
        inst: Vec<BtTerm>,
        /// Argument expressions (already coerced to the instantiated
        /// parameter shapes).
        args: Vec<AnnExpr>,
    },
    /// An anonymous function (always a static closure; coercions
    /// eta-expand it).
    Lam(Ident, Box<AnnExpr>),
    /// Application of an anonymous function, with the arrow binding time
    /// (unfold the closure when `S`, residualise when `D`).
    App(BtTerm, Box<AnnExpr>, Box<AnnExpr>),
    /// A let binding (always unfolded).
    Let(Ident, Box<AnnExpr>, Box<AnnExpr>),
    /// An explicit binding-time coercion.
    Coerce(CoerceSpec, Box<AnnExpr>),
}

impl AnnExpr {
    /// Wraps `self` in a coercion unless it is the identity.
    pub fn coerced(self, spec: CoerceSpec) -> AnnExpr {
        if spec.is_identity() {
            self
        } else {
            AnnExpr::Coerce(spec, Box::new(self))
        }
    }

    /// Number of nodes (size metric).
    pub fn size(&self) -> usize {
        match self {
            AnnExpr::Nat(_) | AnnExpr::Bool(_) | AnnExpr::Nil | AnnExpr::Var(_) => 1,
            AnnExpr::Prim(_, _, args) => 1 + args.iter().map(AnnExpr::size).sum::<usize>(),
            AnnExpr::If(_, c, t, e) => 1 + c.size() + t.size() + e.size(),
            AnnExpr::Call { args, .. } => 1 + args.iter().map(AnnExpr::size).sum::<usize>(),
            AnnExpr::Lam(_, b) => 1 + b.size(),
            AnnExpr::App(_, f, a) => 1 + f.size() + a.size(),
            AnnExpr::Let(_, e, b) => 1 + e.size() + b.size(),
            AnnExpr::Coerce(_, e) => 1 + e.size(),
        }
    }
}

impl fmt::Display for AnnExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnExpr::Nat(n) => write!(f, "{n}"),
            AnnExpr::Bool(b) => write!(f, "{b}"),
            AnnExpr::Nil => write!(f, "[]"),
            AnnExpr::Var(x) => write!(f, "{x}"),
            AnnExpr::Prim(op, t, args) => {
                if op.is_infix() {
                    write!(f, "({} {}^{{{t}}} {})", args[0], op.symbol(), args[1])
                } else {
                    write!(f, "({}^{{{t}}} {})", op.symbol(), args[0])
                }
            }
            AnnExpr::If(t, c, th, el) => {
                write!(f, "if^{{{t}}} {c} then {th} else {el}")
            }
            AnnExpr::Call { target, inst, args } => {
                write!(f, "{}{{", target.name)?;
                for (i, t) in inst.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")?;
                for a in args {
                    write!(f, " ({a})")?;
                }
                Ok(())
            }
            AnnExpr::Lam(x, b) => write!(f, "\\{x} -> {b}"),
            AnnExpr::App(t, g, a) => write!(f, "({g} @^{{{t}}} {a})"),
            AnnExpr::Let(x, e, b) => write!(f, "let {x} = {e} in {b}"),
            AnnExpr::Coerce(spec, e) => write!(f, "[{spec}]({e})"),
        }
    }
}

/// An annotated definition: the paper's `f {t…} x… =^{u} body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnDef {
    /// Function name.
    pub name: Ident,
    /// Parameter names.
    pub params: Vec<Ident>,
    /// The qualified binding-time scheme (also exported in the module's
    /// interface).
    pub sig: BtSignature,
    /// The annotated body.
    pub body: AnnExpr,
}

impl fmt::Display for AnnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.name)?;
        for v in 0..self.sig.vars {
            if v > 0 {
                write!(f, " ")?;
            }
            write!(f, "t{v}")?;
        }
        write!(f, "}}")?;
        for p in &self.params {
            write!(f, " {p}")?;
        }
        write!(f, " =^{{{}}} {}", self.sig.unfold, self.body)
    }
}

/// An annotated module plus its exported binding-time interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnModule {
    /// Module name.
    pub name: ModName,
    /// Direct imports.
    pub imports: Vec<ModName>,
    /// Annotated definitions, in source order.
    pub defs: Vec<AnnDef>,
    /// The interface to write to the `.bti` file.
    pub interface: crate::sig::BtInterface,
}

impl AnnModule {
    /// Looks up an annotated definition.
    pub fn def(&self, name: &str) -> Option<&AnnDef> {
        self.defs.iter().find(|d| d.name.as_str() == name)
    }
}

impl fmt::Display for AnnModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} where", self.name)?;
        for i in &self.imports {
            writeln!(f, "import {i}")?;
        }
        for d in &self.defs {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// A fully annotated program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnnProgram {
    /// Annotated modules, in dependency order.
    pub modules: Vec<AnnModule>,
}

impl AnnProgram {
    /// Looks up a module.
    pub fn module(&self, name: &str) -> Option<&AnnModule> {
        self.modules.iter().find(|m| m.name.as_str() == name)
    }

    /// Looks up an annotated definition.
    pub fn def(&self, q: &QualName) -> Option<&AnnDef> {
        self.module(q.module.as_str())?.def(q.name.as_str())
    }

    /// Looks up a function's binding-time signature.
    pub fn signature(&self, q: &QualName) -> Option<&BtSignature> {
        self.def(q).map(|d| &d.sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coerced_skips_identities() {
        let e = AnnExpr::Nat(1);
        assert_eq!(e.clone().coerced(CoerceSpec::Id), AnnExpr::Nat(1));
        let same = CoerceSpec::Base { from: BtTerm::var(0), to: BtTerm::var(0) };
        assert_eq!(e.clone().coerced(same), AnnExpr::Nat(1));
        let lift = CoerceSpec::Base { from: BtTerm::s(), to: BtTerm::var(0) };
        assert!(matches!(e.coerced(lift), AnnExpr::Coerce(..)));
    }

    #[test]
    fn identity_detection_in_lists() {
        let id = CoerceSpec::List {
            from: BtTerm::var(1),
            to: BtTerm::var(1),
            elem: Box::new(CoerceSpec::Id),
        };
        assert!(id.is_identity());
        let lifting_elems = CoerceSpec::List {
            from: BtTerm::var(1),
            to: BtTerm::var(1),
            elem: Box::new(CoerceSpec::Base { from: BtTerm::s(), to: BtTerm::d() }),
        };
        assert!(!lifting_elems.is_identity());
    }

    #[test]
    fn display_is_paper_like() {
        // x *^{t0|t1} power{t0, t1} (..) (..)
        let e = AnnExpr::Prim(
            PrimOp::Mul,
            BtTerm::lub_of([0, 1]),
            vec![
                AnnExpr::Var(Ident::new("x")),
                AnnExpr::Call {
                    target: QualName::new("P", "power"),
                    inst: vec![BtTerm::var(0), BtTerm::var(1)],
                    args: vec![AnnExpr::Var(Ident::new("n")), AnnExpr::Var(Ident::new("x"))],
                },
            ],
        );
        let s = e.to_string();
        assert!(s.contains("*^{t0 | t1}"), "{s}");
        assert!(s.contains("power{t0, t1}"), "{s}");
    }

    #[test]
    fn size_counts_coercions() {
        let e = AnnExpr::Coerce(
            CoerceSpec::Base { from: BtTerm::s(), to: BtTerm::d() },
            Box::new(AnnExpr::Nat(1)),
        );
        assert_eq!(e.size(), 2);
    }
}

//! Binding-time types ("shapes") in serialisable signature form.
//!
//! A binding-time type mirrors the underlying Hindley–Milner type: base
//! positions carry a single binding time, lists carry a spine binding
//! time plus an element shape, functions carry an arrow binding time plus
//! argument/result shapes, and positions whose underlying type is a type
//! variable are summarised by a single binding time ([`SigShape::Var`]).
//!
//! Well-formedness (§4.1): a dynamic arrow/spine forces every binding
//! time beneath it to be dynamic. The analysis maintains this with
//! `top ≤ component` constraints; [`SigShape::well_formed_under`] checks
//! it for concrete assignments.

use crate::term::{Bt, BtTerm, BtVarId};
use mspec_lang::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A binding-time type over a function's signature variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SigShape {
    /// A base (Nat/Bool) position.
    Base(BtTerm),
    /// A list: element shape and spine binding time.
    List(Box<SigShape>, BtTerm),
    /// A function: argument shape, arrow binding time, result shape.
    Fun(Box<SigShape>, BtTerm, Box<SigShape>),
    /// A position whose underlying type is polymorphic, summarised by a
    /// single binding time.
    Var(BtTerm),
}

impl SigShape {
    /// The top-level binding time of the shape.
    pub fn top(&self) -> &BtTerm {
        match self {
            SigShape::Base(t) | SigShape::Var(t) => t,
            SigShape::List(_, t) => t,
            SigShape::Fun(_, t, _) => t,
        }
    }

    /// All terms in the shape, pre-order (top first).
    pub fn terms(&self) -> Vec<&BtTerm> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a BtTerm>) {
        match self {
            SigShape::Base(t) | SigShape::Var(t) => out.push(t),
            SigShape::List(e, t) => {
                out.push(t);
                e.collect_terms(out);
            }
            SigShape::Fun(a, t, r) => {
                out.push(t);
                a.collect_terms(out);
                r.collect_terms(out);
            }
        }
    }

    /// Rewrites every term with `f` (signature instantiation).
    pub fn subst(&self, f: &impl Fn(BtVarId) -> BtTerm) -> SigShape {
        match self {
            SigShape::Base(t) => SigShape::Base(t.subst(f)),
            SigShape::Var(t) => SigShape::Var(t.subst(f)),
            SigShape::List(e, t) => SigShape::List(Box::new(e.subst(f)), t.subst(f)),
            SigShape::Fun(a, t, r) => {
                SigShape::Fun(Box::new(a.subst(f)), t.subst(f), Box::new(r.subst(f)))
            }
        }
    }

    /// `true` if every position evaluates to `D` under the assignment.
    pub fn all_dynamic_under(&self, assignment: &impl Fn(BtVarId) -> Bt) -> bool {
        self.terms().iter().all(|t| t.eval(assignment) == Bt::D)
    }

    /// Checks well-formedness under a concrete assignment: wherever the
    /// top of a sub-shape is `D`, everything beneath it is `D`.
    pub fn well_formed_under(&self, assignment: &impl Fn(BtVarId) -> Bt) -> bool {
        match self {
            SigShape::Base(_) | SigShape::Var(_) => true,
            SigShape::List(e, t) => {
                (t.eval(assignment) == Bt::S || e.all_dynamic_under(assignment))
                    && e.well_formed_under(assignment)
            }
            SigShape::Fun(a, t, r) => {
                (t.eval(assignment) == Bt::S
                    || (a.all_dynamic_under(assignment) && r.all_dynamic_under(assignment)))
                    && a.well_formed_under(assignment)
                    && r.well_formed_under(assignment)
            }
        }
    }
}

impl ToJson for SigShape {
    fn to_json_value(&self) -> Json {
        match self {
            SigShape::Base(t) => Json::obj([("base", t.to_json_value())]),
            SigShape::Var(t) => Json::obj([("bt", t.to_json_value())]),
            SigShape::List(e, t) => {
                Json::obj([("list", Json::Arr(vec![e.to_json_value(), t.to_json_value()]))])
            }
            SigShape::Fun(a, t, r) => Json::obj([(
                "fun",
                Json::Arr(vec![a.to_json_value(), t.to_json_value(), r.to_json_value()]),
            )]),
        }
    }
}

impl FromJson for SigShape {
    fn from_json_value(j: &Json) -> Result<SigShape, JsonError> {
        match j.as_obj()? {
            [(k, v)] if k == "base" => Ok(SigShape::Base(BtTerm::from_json_value(v)?)),
            [(k, v)] if k == "bt" => Ok(SigShape::Var(BtTerm::from_json_value(v)?)),
            [(k, v)] if k == "list" => {
                let parts = v.as_arr()?;
                if parts.len() != 2 {
                    return Err(JsonError("`list` expects [elem, spine]".into()));
                }
                Ok(SigShape::List(
                    Box::new(SigShape::from_json_value(&parts[0])?),
                    BtTerm::from_json_value(&parts[1])?,
                ))
            }
            [(k, v)] if k == "fun" => {
                let parts = v.as_arr()?;
                if parts.len() != 3 {
                    return Err(JsonError("`fun` expects [arg, arrow, ret]".into()));
                }
                Ok(SigShape::Fun(
                    Box::new(SigShape::from_json_value(&parts[0])?),
                    BtTerm::from_json_value(&parts[1])?,
                    Box::new(SigShape::from_json_value(&parts[2])?),
                ))
            }
            _ => Err(JsonError("malformed binding-time shape".into())),
        }
    }
}

impl fmt::Display for SigShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigShape::Base(t) => write!(f, "Base({t})"),
            SigShape::Var(t) => write!(f, "{t}"),
            SigShape::List(e, t) => write!(f, "[{e}]^{t}"),
            SigShape::Fun(a, t, r) => write!(f, "({a} ->^{t} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fun_shape() -> SigShape {
        // (t0 ->^t1 t2)
        SigShape::Fun(
            Box::new(SigShape::Var(BtTerm::var(0))),
            BtTerm::var(1),
            Box::new(SigShape::Var(BtTerm::var(2))),
        )
    }

    #[test]
    fn top_of_each_constructor() {
        assert_eq!(SigShape::Base(BtTerm::d()).top(), &BtTerm::d());
        assert_eq!(fun_shape().top(), &BtTerm::var(1));
        let l = SigShape::List(Box::new(SigShape::Base(BtTerm::var(0))), BtTerm::var(1));
        assert_eq!(l.top(), &BtTerm::var(1));
    }

    #[test]
    fn terms_preorder() {
        let terms: Vec<String> = fun_shape().terms().iter().map(|t| t.to_string()).collect();
        assert_eq!(terms, vec!["t1", "t0", "t2"]);
    }

    #[test]
    fn subst_rewrites_throughout() {
        let s = fun_shape().subst(&|v| if v == 1 { BtTerm::d() } else { BtTerm::var(v + 10) });
        match s {
            SigShape::Fun(a, t, r) => {
                assert!(t.is_d());
                assert_eq!(*a, SigShape::Var(BtTerm::var(10)));
                assert_eq!(*r, SigShape::Var(BtTerm::var(12)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn well_formedness_dynamic_arrow_needs_dynamic_parts() {
        let s = fun_shape();
        // t1 = D but t0 = S: ill-formed.
        let bad = |v: BtVarId| if v == 1 { Bt::D } else { Bt::S };
        assert!(!s.well_formed_under(&bad));
        // everything D: fine.
        assert!(s.well_formed_under(&|_| Bt::D));
        // arrow S: fine regardless.
        assert!(s.well_formed_under(&|_| Bt::S));
        let mixed = |v: BtVarId| if v == 1 { Bt::S } else { Bt::D };
        assert!(s.well_formed_under(&mixed));
    }

    #[test]
    fn well_formedness_dynamic_spine_needs_dynamic_elements() {
        let l = SigShape::List(Box::new(SigShape::Base(BtTerm::var(0))), BtTerm::var(1));
        let bad = |v: BtVarId| if v == 1 { Bt::D } else { Bt::S };
        assert!(!l.well_formed_under(&bad));
        // static spine with dynamic elements is the partially static case
        // and IS well-formed.
        let ps = |v: BtVarId| if v == 0 { Bt::D } else { Bt::S };
        assert!(l.well_formed_under(&ps));
    }

    #[test]
    fn all_dynamic_check() {
        let s = fun_shape();
        assert!(s.all_dynamic_under(&|_| Bt::D));
        assert!(!s.all_dynamic_under(&|v| if v == 0 { Bt::S } else { Bt::D }));
    }

    #[test]
    fn display_shapes() {
        assert_eq!(fun_shape().to_string(), "(t0 ->^t1 t2)");
        let l = SigShape::List(Box::new(SigShape::Base(BtTerm::s())), BtTerm::d());
        assert_eq!(l.to_string(), "[Base(S)]^D");
    }

    #[test]
    fn json_roundtrip() {
        let s = fun_shape();
        let js = s.to_json_compact();
        assert_eq!(SigShape::from_json_str(&js).unwrap(), s);
    }
}

//! Specialisation-time binding-time divisions.
//!
//! A *division* classifies each parameter of the entry function as static
//! or dynamic. [`Division::mask_for`] turns it into a concrete assignment
//! of the function's signature variables and completes it to the least
//! assignment satisfying the signature's qualifications (so a `D`
//! argument may force related variables to `D`, never the reverse).

use crate::error::BtaError;
use crate::shape::SigShape;
use crate::sig::{BtMask, BtSignature};
use std::fmt;

/// The binding time requested for one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamBt {
    /// The whole argument is known at specialisation time.
    Static,
    /// The whole argument is unknown until run time.
    Dynamic,
    /// For list parameters: the spine is known but the elements are not
    /// (a partially static list).
    StaticSpine,
}

/// A division: one [`ParamBt`] per parameter of the entry function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Division(pub Vec<ParamBt>);

impl Division {
    /// A division from `'S'`/`'D'` characters, e.g. `Division::parse("SD")`.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `S`, `D` or `P` (partially
    /// static). Intended for tests and examples; build the vector
    /// directly for anything else.
    pub fn parse(s: &str) -> Division {
        Division(
            s.chars()
                .map(|c| match c {
                    'S' => ParamBt::Static,
                    'D' => ParamBt::Dynamic,
                    'P' => ParamBt::StaticSpine,
                    other => panic!("bad division character `{other}` (use S, D or P)"),
                })
                .collect(),
        )
    }

    /// Number of parameters covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the division covers no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Computes the signature-variable mask this division induces on
    /// `sig`: dynamic parameters force every variable of their shape,
    /// partially static lists force only the element shape, and the
    /// result is completed against the signature's qualifications.
    ///
    /// # Errors
    ///
    /// [`BtaError::Internal`] if the division length does not match the
    /// signature's parameter count.
    pub fn mask_for(&self, sig: &BtSignature) -> Result<BtMask, BtaError> {
        if self.0.len() != sig.params.len() {
            return Err(BtaError::Internal(format!(
                "division covers {} parameters but the function has {}",
                self.0.len(),
                sig.params.len()
            )));
        }
        let mut mask = BtMask::all_static();
        for (pbt, shape) in self.0.iter().zip(&sig.params) {
            match pbt {
                ParamBt::Static => {}
                ParamBt::Dynamic => {
                    for term in shape.terms() {
                        for v in term.vars() {
                            mask = mask.set_dynamic(v);
                        }
                    }
                }
                ParamBt::StaticSpine => match shape {
                    SigShape::List(elem, _) => {
                        for term in elem.terms() {
                            for v in term.vars() {
                                mask = mask.set_dynamic(v);
                            }
                        }
                    }
                    // A parameter whose shape stayed polymorphic (it only
                    // flows into polymorphic positions) has one summary
                    // binding time: the spine cannot be separated from
                    // the elements, so the whole argument goes dynamic
                    // (the boxing rule, conservative but sound).
                    SigShape::Var(term) => {
                        for v in term.vars() {
                            mask = mask.set_dynamic(v);
                        }
                    }
                    other => {
                        return Err(BtaError::Internal(format!(
                            "StaticSpine division on non-list parameter shape {other}"
                        )))
                    }
                },
            }
        }
        Ok(sig.complete_mask(mask))
    }
}

impl fmt::Display for Division {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.0 {
            match p {
                ParamBt::Static => write!(f, "S")?,
                ParamBt::Dynamic => write!(f, "D")?,
                ParamBt::StaticSpine => write!(f, "P")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BtTerm;

    fn sig2() -> BtSignature {
        BtSignature {
            vars: 2,
            constraints: vec![],
            forced_d: vec![],
            params: vec![SigShape::Base(BtTerm::var(0)), SigShape::Base(BtTerm::var(1))],
            ret: SigShape::Base(BtTerm::lub_of([0, 1])),
            unfold: BtTerm::var(0),
        }
    }

    #[test]
    fn parse_and_display() {
        let d = Division::parse("SDP");
        assert_eq!(d.to_string(), "SDP");
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad division")]
    fn parse_rejects_garbage() {
        Division::parse("SX");
    }

    #[test]
    fn mask_marks_dynamic_params() {
        let m = Division::parse("SD").mask_for(&sig2()).unwrap();
        assert_eq!(m.render(2), "{S,D}");
        let m2 = Division::parse("DS").mask_for(&sig2()).unwrap();
        assert_eq!(m2.render(2), "{D,S}");
    }

    #[test]
    fn mask_respects_constraints() {
        let sig = BtSignature { constraints: vec![(0, 1)], ..sig2() };
        let m = Division::parse("DS").mask_for(&sig).unwrap();
        // t0 ≤ t1 forces the second variable dynamic too.
        assert_eq!(m.render(2), "{D,D}");
    }

    #[test]
    fn wrong_arity_is_an_error() {
        assert!(Division::parse("S").mask_for(&sig2()).is_err());
    }

    #[test]
    fn static_spine_touches_only_elements() {
        let sig = BtSignature {
            vars: 2,
            constraints: vec![],
            forced_d: vec![],
            params: vec![SigShape::List(
                Box::new(SigShape::Base(BtTerm::var(0))),
                BtTerm::var(1),
            )],
            ret: SigShape::Base(BtTerm::var(0)),
            unfold: BtTerm::s(),
        };
        let m = Division::parse("P").mask_for(&sig).unwrap();
        assert_eq!(m.render(2), "{D,S}");
        let err = Division::parse("P").mask_for(&sig2());
        assert!(err.is_err());
    }
}

//! Properties of inferred binding-time signatures on random well-typed
//! programs:
//!
//! * every completed mask satisfies the signature's qualifications,
//! * parameter and result shapes are *well-formed* under every completed
//!   mask (a dynamic arrow/spine forces everything beneath it dynamic —
//!   the §4.1 invariant the engine relies on),
//! * the unfold annotation never exceeds the result's top binding time
//!   (a residualised call really does produce code).

use mspec_bta::analyse::analyse_program;
use mspec_bta::{Bt, BtMask};
use mspec_lang::resolve::resolve;
use mspec_testkit::random::{random_program, GenConfig};
use mspec_testkit::TestRng;

fn check_seed(seed: u64, mask_bits: u128) {
    let g = random_program(&GenConfig { seed, ..GenConfig::default() });
    let resolved = resolve(g.program.clone()).unwrap();
    let ann = match analyse_program(&resolved) {
        Ok(a) => a,
        Err(e) => panic!("seed {seed}: analysis failed: {e}"),
    };
    for module in &ann.modules {
        for def in &module.defs {
            let sig = &def.sig;
            // Random request, completed against the qualifications.
            let requested = BtMask(mask_bits & (BtMask::all_dynamic(sig.vars.max(1)).0));
            let mask = sig.complete_mask(requested);
            assert!(
                sig.satisfies(mask),
                "seed {seed}: completed mask violates constraints of {}: {sig}",
                def.name
            );
            let assign = |v| mask.get(v);
            for (i, p) in sig.params.iter().enumerate() {
                assert!(
                    p.well_formed_under(&assign),
                    "seed {seed}: param {i} of {} ill-formed under {}: {sig}",
                    def.name,
                    mask.render(sig.vars)
                );
            }
            assert!(
                sig.ret.well_formed_under(&assign),
                "seed {seed}: result of {} ill-formed under {}: {sig}",
                def.name,
                mask.render(sig.vars)
            );
            // unfold ≤ top(ret): a residualised call's result is code.
            if mask.eval(&sig.unfold) == Bt::D {
                assert_eq!(
                    mask.eval(sig.ret.top()),
                    Bt::D,
                    "seed {seed}: {} residualises but its result is not dynamic: {sig}",
                    def.name
                );
            }
        }
    }
}

#[test]
fn signatures_are_internally_consistent() {
    let mut rng = TestRng::seed_from_u64(0x516);
    for _ in 0..96 {
        let seed = rng.gen_range(0..10_000u64);
        let mask = u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64());
        check_seed(seed, mask);
    }
}

#[test]
fn signature_sweep() {
    for seed in 0..60 {
        check_seed(seed, seed as u128 * 0x9E37_79B9_7F4A_7C15);
    }
}

//! The canonical per-module build report, shared by `core::parbuild`
//! (staged in-memory builds, where a failure is a typed
//! `ModuleBuildError`) and `cogen::build` (incremental artefact builds,
//! where modules can additionally be up to date on disk). Both crates
//! re-export an alias of [`BuildReport`] instantiated at their own
//! error type.

use mspec_lang::ModName;
use std::fmt;
use std::path::PathBuf;

/// What happened to one module during a build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleOutcome<E> {
    /// Built fresh (or the on-disk artefact was rebuilt).
    Built,
    /// On-disk artefacts were current; nothing was rewritten.
    UpToDate,
    /// The module's own stages failed.
    Failed(E),
    /// Never attempted because `import` did not build.
    Skipped { import: ModName },
}

/// Aggregated outcome of a multi-module build, in completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport<E> {
    pub outcomes: Vec<(ModName, ModuleOutcome<E>)>,
    /// The artefact directory, for builds that write one.
    pub out_dir: Option<PathBuf>,
}

// Derived `Default` would demand `E: Default`.
impl<E> Default for BuildReport<E> {
    fn default() -> Self {
        BuildReport { outcomes: Vec::new(), out_dir: None }
    }
}

impl<E> BuildReport<E> {
    pub fn push(&mut self, module: ModName, outcome: ModuleOutcome<E>) {
        self.outcomes.push((module, outcome));
    }

    /// Modules built fresh, in completion order.
    pub fn built(&self) -> Vec<ModName> {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ModuleOutcome::Built))
            .map(|(m, _)| *m)
            .collect()
    }

    /// Count of modules built fresh (cogen: artefacts rewritten).
    pub fn rebuilt(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| matches!(o, ModuleOutcome::Built)).count()
    }

    /// Count of modules whose artefacts were already current.
    pub fn up_to_date(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| matches!(o, ModuleOutcome::UpToDate)).count()
    }

    /// Failed modules with their causes, in completion order.
    pub fn failed(&self) -> Vec<(ModName, &E)> {
        self.outcomes
            .iter()
            .filter_map(|(m, o)| match o {
                ModuleOutcome::Failed(e) => Some((*m, e)),
                _ => None,
            })
            .collect()
    }

    /// `(module, failed import)` pairs for modules never attempted.
    pub fn skipped(&self) -> Vec<(ModName, ModName)> {
        self.outcomes
            .iter()
            .filter_map(|(m, o)| match o {
                ModuleOutcome::Skipped { import } => Some((*m, *import)),
                _ => None,
            })
            .collect()
    }

    /// The outcome recorded for `module`, if any.
    pub fn outcome(&self, module: &str) -> Option<&ModuleOutcome<E>> {
        self.outcomes.iter().find(|(m, _)| m.as_str() == module).map(|(_, o)| o)
    }

    /// `true` iff every module built (fresh or up to date).
    pub fn is_clean(&self) -> bool {
        self.outcomes
            .iter()
            .all(|(_, o)| matches!(o, ModuleOutcome::Built | ModuleOutcome::UpToDate))
    }
}

impl<E: fmt::Display> fmt::Display for BuildReport<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let failed = self.failed();
        let skipped = self.skipped();
        write!(
            f,
            "staged build: {} failed, {} skipped, {} built",
            failed.len(),
            skipped.len(),
            self.rebuilt() + self.up_to_date()
        )?;
        for (m, e) in &failed {
            write!(f, "; {m}: {e}")?;
        }
        for (m, dep) in &skipped {
            write!(f, "; {m}: skipped (import {dep} did not build)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_display() {
        let mut r: BuildReport<String> = BuildReport::default();
        r.push(ModName::new("A"), ModuleOutcome::Built);
        r.push(ModName::new("B"), ModuleOutcome::Failed("type error".to_string()));
        r.push(ModName::new("C"), ModuleOutcome::UpToDate);
        r.push(ModName::new("D"), ModuleOutcome::Skipped { import: ModName::new("B") });
        assert_eq!(r.rebuilt(), 1);
        assert_eq!(r.up_to_date(), 1);
        assert_eq!(r.built().len(), 1);
        assert_eq!(r.failed().len(), 1);
        assert_eq!(r.skipped(), vec![(ModName::new("D"), ModName::new("B"))]);
        assert!(!r.is_clean());
        let text = r.to_string();
        assert!(text.contains("1 failed, 1 skipped, 2 built"), "{text}");
        assert!(text.contains("B: type error"), "{text}");
        assert!(text.contains("D: skipped (import B did not build)"), "{text}");
    }

    #[test]
    fn clean_report() {
        let mut r: BuildReport<String> = BuildReport::default();
        r.push(ModName::new("A"), ModuleOutcome::Built);
        assert!(r.is_clean());
        assert_eq!(r.outcome("A"), Some(&ModuleOutcome::Built));
        assert_eq!(r.outcome("Z"), None);
    }
}

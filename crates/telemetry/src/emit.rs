//! Emitters: flat JSONL event log, Chrome `trace_event` JSON, and a
//! human-readable summary.

use crate::event::EventKind;
use crate::Snapshot;
use mspec_lang::{Json, JsonError};

impl Snapshot {
    /// The flat JSONL log: one compact JSON object per line — every
    /// event in order, then one `counter` line per counter and one
    /// `hist` line per histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json().write_compact());
            out.push('\n');
        }
        for (name, value) in &self.counters {
            let line = Json::obj([
                ("ev", Json::str("counter")),
                ("name", Json::str(name.clone())),
                ("value", Json::Num(u128::from(*value))),
            ]);
            out.push_str(&line.write_compact());
            out.push('\n');
        }
        for (name, buckets) in &self.hists {
            let line = Json::obj([
                ("ev", Json::str("hist")),
                ("name", Json::str(name.clone())),
                (
                    "buckets",
                    Json::Arr(
                        buckets
                            .iter()
                            .map(|(b, n)| {
                                Json::Arr(vec![
                                    Json::Num(u128::from(*b)),
                                    Json::Num(u128::from(*n)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            out.push_str(&line.write_compact());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL log produced by [`Snapshot::to_jsonl`] back into
    /// a snapshot (used by `mspec explain` and the validators).
    pub fn parse_jsonl(text: &str) -> Result<Snapshot, JsonError> {
        let mut snap = Snapshot::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let j = Json::parse(line)
                .map_err(|e| JsonError(format!("line {}: {}", lineno + 1, e.0)))?;
            let ev = j.get("ev")?.as_str()?;
            match ev {
                "counter" => {
                    snap.counters.push((
                        j.get("name")?.as_str()?.to_string(),
                        j.get("value")?.as_u64()?,
                    ));
                }
                "hist" => {
                    let mut buckets = Vec::new();
                    for pair in j.get("buckets")?.as_arr()? {
                        let pair = pair.as_arr()?;
                        if pair.len() != 2 {
                            return Err(JsonError("hist bucket expects [bucket, count]".into()));
                        }
                        buckets.push((pair[0].as_u32()?, pair[1].as_u64()?));
                    }
                    snap.hists.push((j.get("name")?.as_str()?.to_string(), buckets));
                }
                _ => {
                    let parsed = crate::Event::from_json(&j)
                        .map_err(|e| JsonError(format!("line {}: {}", lineno + 1, e.0)))?;
                    snap.events.push(parsed);
                }
            }
        }
        Ok(snap)
    }

    /// A Chrome `trace_event` document (`{"traceEvents": [...]}`) that
    /// loads in `about://tracing` / Perfetto. Spans become `B`/`E`
    /// pairs, instants and spec decisions become thread-scoped `i`
    /// events, counters become one final `C` sample. Timestamps are
    /// integer microseconds (the hand-rolled JSON layer is
    /// integer-only; ns precision is kept in the JSONL log).
    pub fn to_chrome(&self) -> Json {
        let us = |ts_ns: u64| Json::Num(u128::from(ts_ns / 1_000));
        let mut entries = Vec::new();
        let base = |name: &str, ph: &str, ts_ns: u64, tid: u64| {
            vec![
                ("name".to_string(), Json::str(name)),
                ("ph".to_string(), Json::str(ph)),
                ("ts".to_string(), us(ts_ns)),
                ("pid".to_string(), Json::Num(1)),
                ("tid".to_string(), Json::Num(u128::from(tid))),
            ]
        };
        let mut last_ts = 0;
        for ev in &self.events {
            last_ts = ev.ts_ns;
            match &ev.kind {
                EventKind::SpanBegin { id, parent, name, detail } => {
                    let mut e = base(name, "B", ev.ts_ns, ev.tid);
                    e.push((
                        "args".to_string(),
                        Json::obj([
                            ("span", Json::Num(u128::from(*id))),
                            ("parent", Json::Num(u128::from(*parent))),
                            ("detail", Json::str(detail.clone())),
                        ]),
                    ));
                    entries.push(Json::Obj(e));
                }
                EventKind::SpanEnd { name, .. } => {
                    entries.push(Json::Obj(base(name, "E", ev.ts_ns, ev.tid)));
                }
                EventKind::Instant { name, detail } => {
                    let mut e = base(name, "i", ev.ts_ns, ev.tid);
                    e.push(("s".to_string(), Json::str("t")));
                    e.push(("args".to_string(), Json::obj([("detail", Json::str(detail.clone()))])));
                    entries.push(Json::Obj(e));
                }
                EventKind::Spec(s) => {
                    let name = format!("spec {} {}", s.decision.as_str(), s.target);
                    let mut e = base(&name, "i", ev.ts_ns, ev.tid);
                    e.push(("s".to_string(), Json::str("t")));
                    e.push(("args".to_string(), s_args(s)));
                    entries.push(Json::Obj(e));
                }
            }
        }
        for (name, value) in &self.counters {
            let mut e = base(name, "C", last_ts, 0);
            e.push((
                "args".to_string(),
                Json::obj([("value", Json::Num(u128::from(*value)))]),
            ));
            entries.push(Json::Obj(e));
        }
        Json::obj([("traceEvents", Json::Arr(entries))])
    }

    /// A short human summary: event counts, counters and histograms.
    pub fn summary(&self) -> String {
        let mut spans = 0usize;
        let mut instants = 0usize;
        let mut specs = 0usize;
        for ev in &self.events {
            match &ev.kind {
                EventKind::SpanBegin { .. } => spans += 1,
                EventKind::Instant { .. } => instants += 1,
                EventKind::Spec(_) => specs += 1,
                EventKind::SpanEnd { .. } => {}
            }
        }
        let threads = self.events.iter().map(|e| e.tid).max().map_or(0, |t| t + 1);
        let mut out = format!(
            "telemetry: {} events ({spans} spans, {instants} instants, {specs} spec decisions) on {threads} thread(s)\n",
            self.events.len()
        );
        for (name, value) in &self.counters {
            out.push_str(&format!("  counter {name} = {value}\n"));
        }
        for (name, buckets) in &self.hists {
            let total: u64 = buckets.iter().map(|(_, n)| n).sum();
            let max_bucket = buckets.iter().map(|(b, _)| *b).max().unwrap_or(0);
            out.push_str(&format!(
                "  hist    {name}: {total} obs, max bucket 2^{max_bucket}\n"
            ));
        }
        out
    }
}

fn s_args(s: &crate::SpecEvent) -> Json {
    Json::obj([
        ("seq", Json::Num(u128::from(s.seq))),
        ("mask", Json::str(s.mask.clone())),
        ("residual", Json::str(s.residual.clone())),
        ("witness", Json::str(s.witness.clone())),
        ("parent", Json::str(s.parent.clone())),
        ("pending", Json::Num(u128::from(s.pending))),
        ("fuel_left", Json::Num(u128::from(s.fuel_left))),
        ("specs_left", Json::Num(u128::from(s.specs_left))),
    ])
}

#[cfg(test)]
mod tests {
    use crate::{Recorder, Snapshot, SpecEvent};

    fn sample() -> Snapshot {
        let rec = Recorder::enabled();
        {
            let _s = rec.span_with("build", "2 modules");
            rec.instant("placed", "Spec");
            rec.spec(SpecEvent::request("Power.power", "{S,D}"));
            rec.count("steps", 42);
            rec.observe("pending", 3);
        }
        rec.snapshot()
    }

    #[test]
    fn jsonl_roundtrips() {
        let snap = sample();
        let text = snap.to_jsonl();
        let parsed = Snapshot::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.events, snap.events);
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.hists, snap.hists);
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let snap = sample();
        let doc = snap.to_chrome();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // span B + instant + spec instant + span E + 1 counter.
        assert_eq!(events.len(), 5);
        for e in events {
            e.get("name").unwrap().as_str().unwrap();
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(["B", "E", "i", "C"].contains(&ph), "bad phase {ph}");
            e.get("ts").unwrap().as_u64().unwrap();
            e.get("pid").unwrap().as_u64().unwrap();
            e.get("tid").unwrap().as_u64().unwrap();
        }
    }

    #[test]
    fn summary_mentions_counts() {
        let text = sample().summary();
        assert!(text.contains("1 spans"), "{text}");
        assert!(text.contains("1 spec decisions"), "{text}");
        assert!(text.contains("counter steps = 42"), "{text}");
    }
}

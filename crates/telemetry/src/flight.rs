//! The crash flight recorder: an always-on bounded ring of the last N
//! request-lifecycle events.
//!
//! The daemon's `--trace` recorder is opt-in and unbounded; the flight
//! ring is the opposite — always on, fixed memory, and cheap enough to
//! leave enabled in production (a slot claim is one `fetch_add`; the
//! per-slot write is an uncontended `Mutex` store, contended only when
//! the ring wraps onto a slot another thread is still writing). When a
//! worker panics or hits an internal error, the ring's contents become
//! the postmortem: the last N admissions, completions, sheds and
//! errors across *all* requests, dumped oldest-first.

use mspec_lang::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One flight-ring record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Milliseconds since the ring was created.
    pub ts_ms: u64,
    /// Request id (0 when the event is not request-scoped).
    pub req: u64,
    /// Connection id (0 when not request-scoped).
    pub conn: u64,
    /// Event kind, e.g. `admit`, `shed`, `done`, `error`, `panic`.
    pub kind: &'static str,
    /// Free-form context, kept short by callers.
    pub detail: String,
}

impl FlightEntry {
    /// One compact JSON object (one line of a crash dump).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ts_ms", Json::Num(u128::from(self.ts_ms))),
            ("req", Json::Num(u128::from(self.req))),
            ("conn", Json::Num(u128::from(self.conn))),
            ("kind", Json::str(self.kind)),
            ("detail", Json::str(self.detail.as_str())),
        ])
    }
}

/// A fixed-capacity ring of [`FlightEntry`] records. Writers claim a
/// slot index with one atomic `fetch_add` (no lock on the claim path),
/// then store the entry under that slot's own mutex; the ring never
/// allocates after construction beyond each entry's detail string.
pub struct FlightRing {
    start: Instant,
    head: AtomicU64,
    slots: Vec<Mutex<Option<FlightEntry>>>,
}

impl FlightRing {
    /// A ring holding the last `capacity` records (at least 1).
    pub fn new(capacity: usize) -> FlightRing {
        FlightRing {
            start: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Records one event, overwriting the oldest when full.
    pub fn record(&self, req: u64, conn: u64, kind: &'static str, detail: String) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let ts_ms = self.start.elapsed().as_millis() as u64;
        let idx = (seq % self.slots.len() as u64) as usize;
        if let Ok(mut slot) = self.slots[idx].lock() {
            *slot = Some(FlightEntry { ts_ms, req, conn, kind, detail });
        }
    }

    /// Total records ever written (≥ the ring's current occupancy).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The ring's current contents, oldest-first.
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let head = self.head.load(Ordering::Relaxed);
        let n = self.slots.len() as u64;
        let oldest = head.saturating_sub(n);
        (oldest..head)
            .filter_map(|seq| {
                let idx = (seq % n) as usize;
                self.slots[idx].lock().ok().and_then(|s| s.clone())
            })
            .collect()
    }

    /// The ring rendered as JSONL, oldest-first (the body of a crash
    /// dump, after the caller's header line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.to_json().write_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_last_n_entries_oldest_first() {
        let ring = FlightRing::new(3);
        for i in 0..5u64 {
            ring.record(i, 1, "admit", format!("job {i}"));
        }
        let entries = ring.snapshot();
        assert_eq!(ring.recorded(), 5);
        let reqs: Vec<u64> = entries.iter().map(|e| e.req).collect();
        assert_eq!(reqs, vec![2, 3, 4], "ring keeps the newest 3, oldest first");
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        let ring = std::sync::Arc::new(FlightRing::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        ring.record(t * 1000 + i, t, "done", String::new());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 400);
        let snap = ring.snapshot();
        assert!(snap.len() <= 8);
        assert!(!snap.is_empty());
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let ring = FlightRing::new(2);
        ring.record(7, 3, "panic", "worker 1".to_string());
        let text = ring.to_jsonl();
        let j = Json::parse(text.trim()).unwrap();
        assert_eq!(j.get("req").unwrap().as_u64().unwrap(), 7);
        assert_eq!(j.get("kind").unwrap().as_str().unwrap(), "panic");
    }
}

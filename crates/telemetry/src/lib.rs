//! Observability for the mspec pipeline: spans, typed events, counters
//! and log2 histograms behind a cheap [`Recorder`] handle.
//!
//! The recorder is the *only* coupling point: every crate that records
//! takes a `Recorder` (or a `&Recorder`) and calls [`Recorder::span`],
//! [`Recorder::instant`], [`Recorder::spec`], [`Recorder::count`] or
//! [`Recorder::observe`]. A disabled recorder — the default — is a
//! `None` behind the handle, so every recording call is a branch on an
//! `Option` and nothing else: no clock read, no allocation, no lock.
//!
//! Recording is designed for *determinism*: span ids, spec-event
//! sequence numbers and thread ids are assigned from monotone counters,
//! so two sequential runs of the same workload differ only in their
//! timestamps (which [`mspec_testkit`'s scrubber] zeroes for
//! byte-comparison tests).
//!
//! Emitters live in [`emit`] (Chrome `trace_event` JSON + flat JSONL),
//! the schema checker in [`validate`], the provenance replayer in
//! [`explain`], the unified stats formatter in [`stats`], and the
//! canonical build report shared by `core::parbuild` and `cogen` in
//! [`report`].

pub mod emit;
pub mod event;
pub mod explain;
pub mod flame;
pub mod flight;
pub mod metrics;
pub mod report;
pub mod stats;
pub mod validate;

pub use event::{Decision, Event, EventKind, SpecEvent};
pub use explain::{explain, explain_req};
pub use flame::collapsed_stacks;
pub use flight::{FlightEntry, FlightRing};
pub use metrics::{Exposition, RateWindow};
pub use report::{BuildReport, ModuleOutcome};
pub use stats::SpecSummary;
pub use validate::{validate, ValidateReport};

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// A cheap, clonable handle to a recording session. `Recorder::default()`
/// (= [`Recorder::disabled`]) records nothing at near-zero cost; a
/// handle from [`Recorder::enabled`] appends to a shared in-memory
/// buffer that is drained once at the end via [`Recorder::snapshot`].
/// The request scope a [`Recorder`] handle stamps onto every event it
/// records. Lives on the *handle*, outside the shared buffer: scoping a
/// recorder to a request is a clone, and handles for different requests
/// append to the same session concurrently.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct RequestCtx {
    req: u64,
    conn: u64,
}

/// A cheap, clonable handle to a recording session (see module docs).
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    ctx: RequestCtx,
}

struct Inner {
    start: Instant,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    events: Mutex<Vec<Event>>,
    /// Maps OS thread ids to small sequential tids (0, 1, 2, …) plus
    /// the per-thread open-span stack used for span parenting.
    threads: Mutex<HashMap<ThreadId, ThreadState>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

struct ThreadState {
    tid: u64,
    span_stack: Vec<u64>,
}

impl Recorder {
    /// The no-op recorder: every call is a branch on `None`.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// A live recorder; clone the handle freely across threads.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                next_span: AtomicU64::new(0),
                next_seq: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
                threads: Mutex::new(HashMap::new()),
                counters: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
            })),
            ctx: RequestCtx::default(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the *same* session whose events are stamped with
    /// `req`/`conn`. Everything downstream of the clone — engine spans,
    /// spec-decision events, VM instants — carries the scope with no
    /// further plumbing, because spans and engines hold `Recorder`
    /// clones. Ids of 0 mean "unscoped" and are omitted from the JSONL.
    pub fn with_request(&self, req: u64, conn: u64) -> Recorder {
        Recorder { inner: self.inner.clone(), ctx: RequestCtx { req, conn } }
    }

    /// The request id this handle is scoped to (0 = unscoped).
    pub fn request_id(&self) -> u64 {
        self.ctx.req
    }

    /// The connection id this handle is scoped to (0 = unscoped).
    pub fn connection_id(&self) -> u64 {
        self.ctx.conn
    }

    fn now_ns(inner: &Inner) -> u64 {
        // u64 nanoseconds overflow after ~584 years of recording.
        inner.start.elapsed().as_nanos() as u64
    }

    /// Current thread's small tid, registering the thread on first use.
    fn with_thread<T>(inner: &Inner, f: impl FnOnce(&mut ThreadState) -> T) -> T {
        let mut threads = inner.threads.lock().unwrap_or_else(|e| e.into_inner());
        let next = threads.len() as u64;
        let state = threads
            .entry(std::thread::current().id())
            .or_insert(ThreadState { tid: next, span_stack: Vec::new() });
        f(state)
    }

    fn push_event(&self, inner: &Inner, tid: u64, kind: EventKind) {
        let ev = Event {
            ts_ns: Self::now_ns(inner),
            tid,
            req: self.ctx.req,
            conn: self.ctx.conn,
            kind,
        };
        inner.events.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    }

    /// Opens a span; it ends when the returned guard drops. Spans nest
    /// per thread: a span opened while another is live on the same
    /// thread records it as its parent.
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, "")
    }

    /// [`Recorder::span`] with a free-form detail string (only
    /// evaluated by callers when the recorder is enabled — pass `""`
    /// and use [`Span::is_recording`] to gate expensive formatting).
    pub fn span_with(&self, name: &str, detail: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { rec: Recorder::disabled(), id: 0, name: String::new() };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        let (tid, parent) = Self::with_thread(inner, |t| {
            let parent = t.span_stack.last().copied().unwrap_or(0);
            t.span_stack.push(id);
            (t.tid, parent)
        });
        self.push_event(
            inner,
            tid,
            EventKind::SpanBegin {
                id,
                parent,
                name: name.to_string(),
                detail: detail.to_string(),
            },
        );
        Span { rec: self.clone(), id, name: name.to_string() }
    }

    fn end_span(&self, id: u64, name: &str) {
        let Some(inner) = &self.inner else { return };
        let tid = Self::with_thread(inner, |t| {
            if let Some(pos) = t.span_stack.iter().rposition(|&s| s == id) {
                t.span_stack.remove(pos);
            }
            t.tid
        });
        self.push_event(inner, tid, EventKind::SpanEnd { id, name: name.to_string() });
    }

    /// Records a point-in-time event.
    pub fn instant(&self, name: &str, detail: &str) {
        let Some(inner) = &self.inner else { return };
        let tid = Self::with_thread(inner, |t| t.tid);
        self.push_event(
            inner,
            tid,
            EventKind::Instant { name: name.to_string(), detail: detail.to_string() },
        );
    }

    /// Records one specialisation-decision event, assigning it the next
    /// sequence number (returned, so callers can link parent requests).
    pub fn spec(&self, mut ev: SpecEvent) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let seq = inner.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        ev.seq = seq;
        let tid = Self::with_thread(inner, |t| t.tid);
        self.push_event(inner, tid, EventKind::Spec(Box::new(ev)));
        seq
    }

    /// Adds `n` to the named monotone counter.
    pub fn count(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let counter = {
            let mut counters = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(counters.entry(name.to_string()).or_default())
        };
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the named counter to at least `n` (for peaks exported as
    /// counters, e.g. the VM's max stack depth).
    pub fn count_max(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let counter = {
            let mut counters = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(counters.entry(name.to_string()).or_default())
        };
        counter.fetch_max(n, Ordering::Relaxed);
    }

    /// Records one observation in the named log2-bucket histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let hist = {
            let mut hists = inner.hists.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(hists.entry(name.to_string()).or_default())
        };
        hist.observe(value);
    }

    /// Drains the recording into an inspectable snapshot. The recorder
    /// stays usable (events recorded after the snapshot accumulate
    /// afresh); counters and histograms are copied, not reset.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        let events =
            std::mem::take(&mut *inner.events.lock().unwrap_or_else(|e| e.into_inner()));
        let counters = inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let hists = inner
            .hists
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.nonzero_buckets()))
            .collect();
        Snapshot { events, counters, hists }
    }
}

/// RAII span guard from [`Recorder::span`]; the span ends when this
/// drops. On a disabled recorder the guard is inert.
pub struct Span {
    rec: Recorder,
    id: u64,
    name: String,
}

impl Span {
    /// The span's id (0 on a disabled recorder).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `false` on a disabled recorder — gate expensive detail
    /// formatting on this.
    pub fn is_recording(&self) -> bool {
        self.rec.is_enabled()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.rec.is_enabled() {
            let name = std::mem::take(&mut self.name);
            self.rec.end_span(self.id, &name);
        }
    }
}

/// A 65-bucket log2 histogram: an observation `v` lands in bucket
/// `64 - v.leading_zeros()` (so bucket 0 holds only `v = 0`, bucket
/// `k > 0` holds `2^(k-1) ≤ v < 2^k`).
pub struct LogHistogram {
    buckets: [AtomicU64; 65],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LogHistogram {
    pub fn observe(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// `(bucket_index, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Estimated `q`-quantile (see [`quantile_from_buckets`]); `None`
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.nonzero_buckets(), q)
    }
}

/// Estimates the `q`-quantile of a log2-bucketed distribution (the
/// `(bucket_index, count)` pairs of [`LogHistogram::nonzero_buckets`]).
///
/// The rank-`r` sample (`r = ceil(q·total)`, clamped to `1..=total`) is
/// located in its bucket and interpolated linearly across the bucket's
/// value range `[2^(k-1), 2^k)`; bucket 0 holds only the value 0. The
/// estimate is therefore exact at bucket boundaries (a single
/// observation of `2^k` reports `2^k`) and never leaves the rank
/// sample's bucket. `None` iff the distribution is empty.
pub fn quantile_from_buckets(buckets: &[(u32, u64)], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for &(bucket, n) in buckets {
        if rank <= seen + n {
            if bucket == 0 {
                return Some(0);
            }
            let lo = 1u64 << (bucket - 1);
            let hi = if bucket >= 64 { u64::MAX } else { (1u64 << bucket) - 1 };
            let into = rank - seen - 1;
            return Some(lo + ((hi - lo) as u128 * into as u128 / n as u128) as u64);
        }
        seen += n;
    }
    None
}

/// Everything one recording session produced: the ordered event list
/// plus final counter and histogram values.
#[derive(Default)]
pub struct Snapshot {
    pub events: Vec<Event>,
    pub counters: Vec<(String, u64)>,
    pub hists: Vec<(String, Vec<(u32, u64)>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        {
            let _s = rec.span("build");
            rec.instant("tick", "");
            rec.count("n", 3);
            rec.observe("h", 7);
            rec.spec(SpecEvent::request("M.f", "{S}"));
        }
        let snap = rec.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span_with("inner", "detail");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 4);
        let EventKind::SpanBegin { id: outer_id, parent: 0, .. } = &snap.events[0].kind
        else {
            panic!("expected outer begin")
        };
        let EventKind::SpanBegin { parent, detail, .. } = &snap.events[1].kind else {
            panic!("expected inner begin")
        };
        assert_eq!(parent, outer_id);
        assert_eq!(detail, "detail");
        // Guards drop in reverse declaration order: inner ends first.
        assert!(matches!(&snap.events[2].kind, EventKind::SpanEnd { .. }));
        assert!(matches!(&snap.events[3].kind, EventKind::SpanEnd { id, .. } if id == outer_id));
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::enabled();
        rec.count("steps", 2);
        rec.count("steps", 3);
        rec.count_max("peak", 7);
        rec.count_max("peak", 4);
        rec.observe("pending", 0);
        rec.observe("pending", 1);
        rec.observe("pending", 5);
        let snap = rec.snapshot();
        assert_eq!(
            snap.counters,
            vec![("peak".to_string(), 7), ("steps".to_string(), 5)]
        );
        // 0 → bucket 0, 1 → bucket 1, 5 → bucket 3 (4 ≤ 5 < 8).
        assert_eq!(snap.hists, vec![("pending".to_string(), vec![(0, 1), (1, 1), (3, 1)])]);
    }

    #[test]
    fn spec_events_get_sequential_seqs() {
        let rec = Recorder::enabled();
        let a = rec.spec(SpecEvent::request("M.f", "{S,D}"));
        let b = rec.spec(SpecEvent::request("M.g", "{D}"));
        assert_eq!((a, b), (1, 2));
        let snap = rec.snapshot();
        let seqs: Vec<u64> = snap
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Spec(s) => Some(s.seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn threads_get_small_sequential_tids() {
        let rec = Recorder::enabled();
        rec.instant("main", "");
        let rec2 = rec.clone();
        std::thread::spawn(move || rec2.instant("worker", "")).join().unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.events[0].tid, 0);
        assert_eq!(snap.events[1].tid, 1);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = LogHistogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
        assert_eq!(quantile_from_buckets(&[], 0.5), None);
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample_at_every_q() {
        // Bucket boundaries are exact: one observation of 2^k reports
        // 2^k, including the extremes of the q range (rank clamps to
        // 1..=total, so q=0 and q=1 both pick the only sample).
        for v in [0u64, 1, 2, 1024, 1 << 40] {
            let h = LogHistogram::default();
            h.observe(v);
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), Some(v), "v={v} q={q}");
            }
        }
    }

    #[test]
    fn quantile_interpolates_within_a_bucket_and_never_leaves_it() {
        // Ten samples in bucket 11 (1024 ≤ v < 2048): the p0/p100
        // estimates pin to the bucket's ends and every other quantile
        // interpolates monotonically between them.
        let h = LogHistogram::default();
        for _ in 0..10 {
            h.observe(1500);
        }
        assert_eq!(h.quantile(0.0), Some(1024));
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!(p50 < p99 && p99 <= p100, "{p50} {p99} {p100}");
        assert!((1024..2048).contains(&p50));
        assert!((1024..2048).contains(&p100));
    }

    #[test]
    fn quantile_walks_buckets_by_rank() {
        // 90 samples at 1 and 10 at ~64k: p50 sits in the low bucket,
        // p99 in the high one; the u64::MAX bucket caps cleanly.
        let h = LogHistogram::default();
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..10 {
            h.observe(60_000);
        }
        assert_eq!(h.quantile(0.5), Some(1));
        let p99 = h.quantile(0.99).unwrap();
        assert!((32_768..65_536).contains(&p99), "{p99}");
        assert_eq!(h.count(), 100);

        // The top bucket (2^63 ≤ v) interpolates from its low edge
        // without overflowing.
        let top = LogHistogram::default();
        top.observe(u64::MAX);
        assert_eq!(top.quantile(0.99), Some(1u64 << 63));
    }
}

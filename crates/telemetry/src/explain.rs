//! `mspec explain <fn>`: replay a JSONL event log and print the
//! provenance tree of every residual version of a function — which
//! request chain produced it, why it wasn't unfolded, whether the
//! budget generalised it, and how often the memo served it afterwards.

use crate::event::{Decision, EventKind, SpecEvent};
use crate::Snapshot;
use std::fmt::Write as _;

/// Explains every residual version of `query` from a parsed snapshot.
/// `query` matches a source function (`power` or `Power.power`) or a
/// residual name (`power_1` or `Spec.power_1`). Returns `None` when no
/// spec event mentions it.
pub fn explain(snap: &Snapshot, query: &str) -> Option<String> {
    explain_req(snap, query, None)
}

/// [`explain`] restricted to one request's event stream: only spec
/// events whose `req` tag matches are replayed, so a multi-client
/// daemon trace answers exactly as that request's single-request batch
/// trace would. `None` as the request keeps every event.
pub fn explain_req(snap: &Snapshot, query: &str, req: Option<u64>) -> Option<String> {
    let specs: Vec<&SpecEvent> = snap
        .events
        .iter()
        .filter(|e| req.is_none_or(|r| e.req == r))
        .filter_map(|e| match &e.kind {
            EventKind::Spec(s) => Some(s.as_ref()),
            _ => None,
        })
        .collect();

    // The creation event of each residual: the first Entry /
    // Residualise / Generalise naming it.
    let creation = |residual: &str| {
        specs.iter().copied().find(|s| {
            s.residual == residual
                && matches!(
                    s.decision,
                    Decision::Entry | Decision::Residualise | Decision::Generalise
                )
        })
    };

    let matches_query = |name: &str| {
        name == query || name.rsplit('.').next() == Some(query)
    };

    // Every residual version of the queried function (by target or by
    // residual name), in creation order.
    let mut versions: Vec<&SpecEvent> = specs
        .iter()
        .copied()
        .filter(|s| {
            !s.residual.is_empty()
                && matches!(
                    s.decision,
                    Decision::Entry | Decision::Residualise | Decision::Generalise
                )
                && (matches_query(&s.target) || matches_query(&s.residual))
        })
        .collect();
    versions.sort_by_key(|s| s.seq);
    versions.dedup_by_key(|s| s.residual.clone());

    // Unfold-only functions still deserve an answer.
    let unfolds: Vec<&SpecEvent> = specs
        .iter()
        .copied()
        .filter(|s| s.decision == Decision::Unfold && matches_query(&s.target))
        .collect();

    if versions.is_empty() && unfolds.is_empty() {
        return None;
    }

    let mut out = String::new();
    if versions.is_empty() {
        let s = unfolds[0];
        let _ = writeln!(
            out,
            "{}: no residual versions — unfolded {} time(s) ({})",
            s.target,
            unfolds.len(),
            s.witness
        );
        return Some(out);
    }

    let target = &versions[0].target;
    let _ = writeln!(out, "{}: {} residual version(s)", target, versions.len());
    for v in &versions {
        let hits = specs
            .iter()
            .filter(|s| s.decision == Decision::MemoHit && s.residual == v.residual)
            .count();
        let _ = writeln!(out, "\n  {}  [{} under {}]", v.residual, v.decision.as_str(), v.mask);
        if !v.witness.is_empty() {
            let _ = writeln!(out, "    why: {}", v.witness);
        }
        let _ = writeln!(
            out,
            "    memo: {}, served {hits} later hit(s); pending {} at decision; fuel left {}, spec slots left {}",
            if v.probe { "probed (miss)" } else { "not probed" },
            v.pending,
            v.fuel_left,
            v.specs_left
        );
        // Walk the request chain back to the entry.
        let mut chain: Vec<String> = Vec::new();
        let mut cur = v.parent.clone();
        while !cur.is_empty() && chain.len() < 64 {
            chain.push(cur.clone());
            if chain.iter().filter(|c| **c == cur).count() > 1 {
                break; // recursive residual: stop after showing the cycle once
            }
            cur = creation(&cur).map(|c| c.parent.clone()).unwrap_or_default();
        }
        if chain.is_empty() {
            let _ = writeln!(out, "    requested from: <session entry>");
        } else {
            let _ = writeln!(out, "    requested from: {} <- <session entry>", chain.join(" <- "));
        }
    }
    if !unfolds.is_empty() {
        let _ = writeln!(
            out,
            "\n  (also unfolded {} time(s) at static call sites)",
            unfolds.len()
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, SpecEvent};

    fn ev(
        target: &str,
        decision: Decision,
        residual: &str,
        parent: &str,
        witness: &str,
    ) -> SpecEvent {
        let mut e = SpecEvent::request(target, "{D,S}");
        e.decision = decision;
        e.residual = residual.to_string();
        e.parent = parent.to_string();
        e.witness = witness.to_string();
        e.probe = decision != Decision::Entry;
        e
    }

    fn sample() -> Snapshot {
        let rec = Recorder::enabled();
        rec.spec(ev("Power.power", Decision::Entry, "Spec.power_1", "", ""));
        rec.spec(ev(
            "Power.power",
            Decision::Residualise,
            "Spec.power_2",
            "Spec.power_1",
            "unfold term t0 = D under {D,S}",
        ));
        rec.spec(ev("Power.power", Decision::MemoHit, "Spec.power_2", "Spec.power_2", ""));
        rec.snapshot()
    }

    #[test]
    fn explains_residual_chain() {
        let text = explain(&sample(), "power").unwrap();
        assert!(text.contains("2 residual version(s)"), "{text}");
        assert!(text.contains("Spec.power_2"), "{text}");
        assert!(text.contains("unfold term t0 = D under {D,S}"), "{text}");
        assert!(text.contains("requested from: Spec.power_1 <- <session entry>"), "{text}");
        assert!(text.contains("served 1 later hit(s)"), "{text}");
    }

    #[test]
    fn query_by_residual_name_works() {
        let text = explain(&sample(), "Spec.power_2").unwrap();
        assert!(text.contains("Spec.power_2"), "{text}");
    }

    #[test]
    fn unknown_function_returns_none() {
        assert!(explain(&sample(), "nope").is_none());
    }

    #[test]
    fn request_filter_replays_one_stream() {
        // Two interleaved request streams in one session: the filtered
        // replay of request 1 must match a session that only ran it.
        let tagged = {
            let rec = Recorder::enabled();
            let r1 = rec.with_request(1, 10);
            let r2 = rec.with_request(2, 10);
            r1.spec(ev("Power.power", Decision::Entry, "Spec.power_1", "", ""));
            r2.spec(ev("Loop.count", Decision::Entry, "Spec.count_1", "", ""));
            r1.spec(ev(
                "Power.power",
                Decision::Residualise,
                "Spec.power_2",
                "Spec.power_1",
                "unfold term t0 = D under {D,S}",
            ));
            rec.snapshot()
        };
        let only = explain_req(&tagged, "power", Some(1)).unwrap();
        assert!(only.contains("2 residual version(s)"), "{only}");
        assert!(explain_req(&tagged, "count", Some(1)).is_none());
        assert!(explain_req(&tagged, "count", Some(2)).is_some());
    }

    #[test]
    fn unfold_only_function_is_reported() {
        let rec = Recorder::enabled();
        rec.spec(ev("Lib.sq", Decision::Unfold, "", "Spec.main_1", "unfold term = S under {S}"));
        let text = explain(&rec.snapshot(), "sq").unwrap();
        assert!(text.contains("no residual versions"), "{text}");
        assert!(text.contains("unfolded 1 time(s)"), "{text}");
    }
}

//! Event-schema checker for emitted trace files (`mspec trace-check`).
//!
//! Accepts either emitter's output and auto-detects which it is:
//! a Chrome `trace_event` document (one JSON object with a
//! `traceEvents` array) or a flat JSONL event log. Checks structural
//! well-formedness — parseability, known event kinds, required fields,
//! span begin/end balance per thread — and returns a small census.

use crate::event::EventKind;
use crate::Snapshot;
use mspec_lang::Json;
use std::collections::HashMap;
use std::fmt;

/// What a valid trace contained.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ValidateReport {
    pub format: &'static str,
    pub events: usize,
    pub spans: usize,
    pub spec_events: usize,
    pub counters: usize,
    pub hists: usize,
    pub threads: usize,
}

impl fmt::Display for ValidateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trace OK: {} events ({} spans, {} spec decisions), {} counters, {} histograms, {} thread(s)",
            self.format, self.events, self.spans, self.spec_events, self.counters,
            self.hists, self.threads
        )
    }
}

/// Validates a trace file's text. Returns the census on success and a
/// line-anchored message on the first structural problem.
pub fn validate(text: &str) -> Result<ValidateReport, String> {
    let trimmed = text.trim_start();
    if looks_like_chrome(trimmed) {
        validate_chrome(text)
    } else if trimmed.starts_with('#') {
        // A Prometheus-style exposition always opens with a `# HELP` or
        // `# TYPE` header; JSON never starts with `#`.
        validate_metrics(text)
    } else {
        validate_jsonl(text)
    }
}

fn validate_metrics(text: &str) -> Result<ValidateReport, String> {
    let report = crate::metrics::check_exposition(text)?;
    Ok(ValidateReport {
        format: "metrics",
        events: report.samples,
        counters: report.families,
        ..ValidateReport::default()
    })
}

/// A Chrome document is a single JSON object whose first key is
/// `traceEvents`; anything else is treated as a JSONL log. Sniffing the
/// first key (rather than line count) keeps one-line JSONL logs and
/// pretty-printed Chrome documents both detected correctly.
fn looks_like_chrome(trimmed: &str) -> bool {
    trimmed.starts_with('{')
        && trimmed[1..].trim_start().starts_with("\"traceEvents\"")
}

fn validate_jsonl(text: &str) -> Result<ValidateReport, String> {
    let snap = Snapshot::parse_jsonl(text).map_err(|e| e.0)?;
    let mut report = ValidateReport { format: "jsonl", ..ValidateReport::default() };
    report.events = snap.events.len();
    report.counters = snap.counters.len();
    report.hists = snap.hists.len();
    let mut open: HashMap<u64, Vec<(u64, String)>> = HashMap::new();
    let mut tids: Vec<u64> = Vec::new();
    let mut last_ts = 0u64;
    for (i, ev) in snap.events.iter().enumerate() {
        if ev.ts_ns < last_ts {
            return Err(format!(
                "event {}: timestamp {} goes backwards (previous {})",
                i + 1,
                ev.ts_ns,
                last_ts
            ));
        }
        last_ts = ev.ts_ns;
        if !tids.contains(&ev.tid) {
            tids.push(ev.tid);
        }
        match &ev.kind {
            EventKind::SpanBegin { id, name, .. } => {
                report.spans += 1;
                open.entry(ev.tid).or_default().push((*id, name.clone()));
            }
            EventKind::SpanEnd { id, name } => {
                let stack = open.entry(ev.tid).or_default();
                let Some(pos) = stack.iter().rposition(|(sid, _)| sid == id) else {
                    return Err(format!(
                        "event {}: span end id={id} ({name}) without a matching begin on tid {}",
                        i + 1,
                        ev.tid
                    ));
                };
                let (_, open_name) = stack.remove(pos);
                if &open_name != name {
                    return Err(format!(
                        "event {}: span id={id} ends as {name:?} but began as {open_name:?}",
                        i + 1
                    ));
                }
            }
            EventKind::Instant { .. } => {}
            EventKind::Spec(s) => {
                report.spec_events += 1;
                if s.target.is_empty() {
                    return Err(format!("event {}: spec event with empty target", i + 1));
                }
                if s.seq == 0 {
                    return Err(format!("event {}: spec event with seq 0", i + 1));
                }
            }
        }
    }
    for (tid, stack) in &open {
        if let Some((id, name)) = stack.last() {
            return Err(format!(
                "span id={id} ({name}) on tid {tid} never ends"
            ));
        }
    }
    report.threads = tids.len();
    Ok(report)
}

fn validate_chrome(text: &str) -> Result<ValidateReport, String> {
    let doc = Json::parse(text).map_err(|e| e.0)?;
    let events = doc
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .map_err(|e| format!("not a trace_event document: {}", e.0))?;
    let mut report = ValidateReport { format: "chrome", ..ValidateReport::default() };
    report.events = events.len();
    let mut depth: HashMap<u64, i64> = HashMap::new();
    let mut tids: Vec<u64> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| {
            e.get(k).map_err(|err| format!("traceEvents[{i}]: {}", err.0))
        };
        let name = field("name")?.as_str().map_err(|err| err.0)?;
        let ph = field("ph")?.as_str().map_err(|err| err.0)?;
        field("ts")?.as_u64().map_err(|err| err.0)?;
        field("pid")?.as_u64().map_err(|err| err.0)?;
        let tid = field("tid")?.as_u64().map_err(|err| err.0)?;
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        match ph {
            "B" => {
                report.spans += 1;
                *depth.entry(tid).or_insert(0) += 1;
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!(
                        "traceEvents[{i}]: E ({name}) without a matching B on tid {tid}"
                    ));
                }
            }
            "i" => {
                if name.starts_with("spec ") {
                    report.spec_events += 1;
                }
            }
            "C" => report.counters += 1,
            other => {
                return Err(format!("traceEvents[{i}]: unknown phase {other:?}"));
            }
        }
    }
    for (tid, d) in &depth {
        if *d != 0 {
            return Err(format!("{d} span(s) never end on tid {tid}"));
        }
    }
    report.threads = tids.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, SpecEvent};

    fn sample() -> Snapshot {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("build");
            let mut ev = SpecEvent::request("Power.power", "{S,D}");
            ev.decision = crate::Decision::Residualise;
            ev.residual = "Spec.power_1".to_string();
            rec.spec(ev);
            rec.count("steps", 9);
        }
        rec.snapshot()
    }

    #[test]
    fn valid_jsonl_passes() {
        let r = validate(&sample().to_jsonl()).unwrap();
        assert_eq!(r.format, "jsonl");
        assert_eq!(r.spans, 1);
        assert_eq!(r.spec_events, 1);
        assert_eq!(r.counters, 1);
    }

    #[test]
    fn valid_chrome_passes() {
        let r = validate(&sample().to_chrome().write_pretty()).unwrap();
        assert_eq!(r.format, "chrome");
        assert_eq!(r.spans, 1);
        assert_eq!(r.spec_events, 1);
    }

    #[test]
    fn unbalanced_span_is_rejected() {
        let log = r#"{"ev":"b","ts":1,"tid":0,"id":1,"parent":0,"name":"x","detail":""}"#;
        let err = validate(log).unwrap_err();
        assert!(err.contains("never ends"), "{err}");
    }

    #[test]
    fn metrics_exposition_is_sniffed_and_checked() {
        let text = "# HELP up 1 when serving\n# TYPE up gauge\nup 1\n";
        let r = validate(text).unwrap();
        assert_eq!(r.format, "metrics");
        assert_eq!(r.events, 1);
        assert_eq!(r.counters, 1);
        assert!(validate("# TYPE x counter\nx notanumber\n").is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(validate("not json at all").is_err());
        assert!(validate(r#"{"ev":"zap","ts":1,"tid":0}"#).is_err());
    }

    #[test]
    fn mismatched_end_name_is_rejected() {
        let log = concat!(
            r#"{"ev":"b","ts":1,"tid":0,"id":1,"parent":0,"name":"x","detail":""}"#,
            "\n",
            r#"{"ev":"e","ts":2,"tid":0,"id":1,"name":"y"}"#,
        );
        let err = validate(log).unwrap_err();
        assert!(err.contains("began as"), "{err}");
    }
}

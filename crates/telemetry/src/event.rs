//! The typed event schema and its JSONL encoding.
//!
//! Every event is one JSON object on one line, discriminated by the
//! `"ev"` field:
//!
//! | `"ev"`    | meaning                 | extra fields |
//! |-----------|-------------------------|--------------|
//! | `b`       | span begin              | `id`, `parent`, `name`, `detail` |
//! | `e`       | span end                | `id`, `name` |
//! | `i`       | instant                 | `name`, `detail` |
//! | `spec`    | specialisation decision | see [`SpecEvent`] |
//! | `counter` | final counter value     | `name`, `value` (no `ts`/`tid`) |
//! | `hist`    | final histogram         | `name`, `buckets` (no `ts`/`tid`) |
//!
//! `counter` and `hist` lines trail the event stream — they are the
//! snapshot's final values, not timed samples.

use mspec_lang::{Json, JsonError};

/// One timed record: nanoseconds since the recorder started, the small
/// sequential id of the recording thread, the request scope the
/// recording handle carried (0 = unscoped, omitted from the JSON so
/// batch traces are unchanged), and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub ts_ns: u64,
    pub tid: u64,
    /// Request id the recording [`crate::Recorder`] handle was scoped
    /// to (see [`crate::Recorder::with_request`]); 0 = unscoped.
    pub req: u64,
    /// Connection id of the request's origin; 0 = unscoped.
    pub conn: u64,
    pub kind: EventKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    SpanBegin { id: u64, parent: u64, name: String, detail: String },
    SpanEnd { id: u64, name: String },
    Instant { name: String, detail: String },
    Spec(Box<SpecEvent>),
}

/// Why one specialisation request was decided the way it was — the
/// paper's `mk_resid` choice points, one event per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The session's entry request (always residualised).
    Entry,
    /// Unfolded: the unfold annotation evaluated to `S` under the mask.
    Unfold,
    /// The memo table already held this specialisation.
    MemoHit,
    /// A new residual definition was scheduled.
    Residualise,
    /// The budget fallback demoted the call to an all-dynamic residual.
    Generalise,
}

impl Decision {
    pub fn as_str(self) -> &'static str {
        match self {
            Decision::Entry => "entry",
            Decision::Unfold => "unfold",
            Decision::MemoHit => "memo-hit",
            Decision::Residualise => "residualise",
            Decision::Generalise => "generalise",
        }
    }

    pub fn parse(s: &str) -> Result<Decision, JsonError> {
        match s {
            "entry" => Ok(Decision::Entry),
            "unfold" => Ok(Decision::Unfold),
            "memo-hit" => Ok(Decision::MemoHit),
            "residualise" => Ok(Decision::Residualise),
            "generalise" => Ok(Decision::Generalise),
            other => Err(JsonError(format!("unknown decision {other:?}"))),
        }
    }
}

/// One specialisation request, with full provenance: what was asked
/// (`target` under `mask`), how the memo responded, what was decided
/// and *why* (`witness` carries the dynamic-conditional evidence for
/// residualisation), which residual definition the request arose inside
/// (`parent`), and how much budget was left.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecEvent {
    /// Monotone per-session sequence number (assigned by the recorder).
    pub seq: u64,
    /// The source function requested, e.g. `Power.power`.
    pub target: String,
    /// The completed binding-time mask, e.g. `{S,D}`.
    pub mask: String,
    /// Hash of the static-argument skeleton (0 when not computed, e.g.
    /// for unfolds).
    pub skeleton_hash: u64,
    /// Whether the memo table was probed for this request.
    pub probe: bool,
    pub decision: Decision,
    /// The residual definition satisfying the request (empty for
    /// unfolds, where the body is inlined instead).
    pub residual: String,
    /// Human-readable evidence for the decision, e.g.
    /// `unfold term t0 = D under {D,S}` for a residualisation.
    pub witness: String,
    /// The residual definition under construction when this request was
    /// made (empty for the entry request).
    pub parent: String,
    /// Depth of the construction chain at request time.
    pub chain_depth: u64,
    /// Pending-list length after this request was handled.
    pub pending: u64,
    /// Remaining step fuel.
    pub fuel_left: u64,
    /// Remaining specialisation slots under `max_specialisations`.
    pub specs_left: u64,
}

impl SpecEvent {
    /// A blank request event for `target` under `mask`; callers fill in
    /// the decision fields before recording.
    pub fn request(target: impl Into<String>, mask: impl Into<String>) -> SpecEvent {
        SpecEvent {
            seq: 0,
            target: target.into(),
            mask: mask.into(),
            skeleton_hash: 0,
            probe: false,
            decision: Decision::Entry,
            residual: String::new(),
            witness: String::new(),
            parent: String::new(),
            chain_depth: 0,
            pending: 0,
            fuel_left: 0,
            specs_left: 0,
        }
    }
}

impl Event {
    /// One compact JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("ev".to_string(), Json::str(self.kind.tag())),
            ("ts".to_string(), Json::Num(u128::from(self.ts_ns))),
            ("tid".to_string(), Json::Num(u128::from(self.tid))),
        ];
        // Request scope only when present: unscoped (batch) traces stay
        // byte-identical to the pre-request-tracing format.
        if self.req != 0 {
            fields.push(("req".to_string(), Json::Num(u128::from(self.req))));
        }
        if self.conn != 0 {
            fields.push(("conn".to_string(), Json::Num(u128::from(self.conn))));
        }
        match &self.kind {
            EventKind::SpanBegin { id, parent, name, detail } => {
                fields.push(("id".to_string(), Json::Num(u128::from(*id))));
                fields.push(("parent".to_string(), Json::Num(u128::from(*parent))));
                fields.push(("name".to_string(), Json::str(name.clone())));
                fields.push(("detail".to_string(), Json::str(detail.clone())));
            }
            EventKind::SpanEnd { id, name } => {
                fields.push(("id".to_string(), Json::Num(u128::from(*id))));
                fields.push(("name".to_string(), Json::str(name.clone())));
            }
            EventKind::Instant { name, detail } => {
                fields.push(("name".to_string(), Json::str(name.clone())));
                fields.push(("detail".to_string(), Json::str(detail.clone())));
            }
            EventKind::Spec(s) => {
                fields.push(("seq".to_string(), Json::Num(u128::from(s.seq))));
                fields.push(("target".to_string(), Json::str(s.target.clone())));
                fields.push(("mask".to_string(), Json::str(s.mask.clone())));
                fields.push(("skel".to_string(), Json::Num(u128::from(s.skeleton_hash))));
                fields.push(("probe".to_string(), Json::Bool(s.probe)));
                fields.push(("decision".to_string(), Json::str(s.decision.as_str())));
                fields.push(("residual".to_string(), Json::str(s.residual.clone())));
                fields.push(("witness".to_string(), Json::str(s.witness.clone())));
                fields.push(("parent".to_string(), Json::str(s.parent.clone())));
                fields.push(("chain".to_string(), Json::Num(u128::from(s.chain_depth))));
                fields.push(("pending".to_string(), Json::Num(u128::from(s.pending))));
                fields.push(("fuel_left".to_string(), Json::Num(u128::from(s.fuel_left))));
                fields.push(("specs_left".to_string(), Json::Num(u128::from(s.specs_left))));
            }
        }
        Json::Obj(fields)
    }

    /// Parses one JSONL event object (rejects `counter`/`hist` lines —
    /// those are snapshot trailers, not events).
    pub fn from_json(j: &Json) -> Result<Event, JsonError> {
        let ev = j.get("ev")?.as_str()?;
        let ts_ns = j.get("ts")?.as_u64()?;
        let tid = j.get("tid")?.as_u64()?;
        let req = match j.get("req") {
            Ok(v) => v.as_u64()?,
            Err(_) => 0,
        };
        let conn = match j.get("conn") {
            Ok(v) => v.as_u64()?,
            Err(_) => 0,
        };
        let kind = match ev {
            "b" => EventKind::SpanBegin {
                id: j.get("id")?.as_u64()?,
                parent: j.get("parent")?.as_u64()?,
                name: j.get("name")?.as_str()?.to_string(),
                detail: j.get("detail")?.as_str()?.to_string(),
            },
            "e" => EventKind::SpanEnd {
                id: j.get("id")?.as_u64()?,
                name: j.get("name")?.as_str()?.to_string(),
            },
            "i" => EventKind::Instant {
                name: j.get("name")?.as_str()?.to_string(),
                detail: j.get("detail")?.as_str()?.to_string(),
            },
            "spec" => EventKind::Spec(Box::new(SpecEvent {
                seq: j.get("seq")?.as_u64()?,
                target: j.get("target")?.as_str()?.to_string(),
                mask: j.get("mask")?.as_str()?.to_string(),
                skeleton_hash: j.get("skel")?.as_u64()?,
                probe: j.get("probe")?.as_bool()?,
                decision: Decision::parse(j.get("decision")?.as_str()?)?,
                residual: j.get("residual")?.as_str()?.to_string(),
                witness: j.get("witness")?.as_str()?.to_string(),
                parent: j.get("parent")?.as_str()?.to_string(),
                chain_depth: j.get("chain")?.as_u64()?,
                pending: j.get("pending")?.as_u64()?,
                fuel_left: j.get("fuel_left")?.as_u64()?,
                specs_left: j.get("specs_left")?.as_u64()?,
            })),
            other => return Err(JsonError(format!("unknown event kind {other:?}"))),
        };
        Ok(Event { ts_ns, tid, req, conn, kind })
    }
}

impl EventKind {
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SpanBegin { .. } => "b",
            EventKind::SpanEnd { .. } => "e",
            EventKind::Instant { .. } => "i",
            EventKind::Spec(_) => "spec",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let mut spec = SpecEvent::request("Power.power", "{S,D}");
        spec.seq = 7;
        spec.skeleton_hash = 0xdead_beef;
        spec.probe = true;
        spec.decision = Decision::Residualise;
        spec.residual = "Spec.power_1".to_string();
        spec.witness = "unfold term t0 = D under {D,S}".to_string();
        spec.parent = "Spec.main_1".to_string();
        spec.chain_depth = 2;
        spec.pending = 3;
        spec.fuel_left = 100;
        spec.specs_left = 50;
        let events = vec![
            Event {
                ts_ns: 10,
                tid: 0,
                req: 0,
                conn: 0,
                kind: EventKind::SpanBegin {
                    id: 1,
                    parent: 0,
                    name: "build".to_string(),
                    detail: "4 modules".to_string(),
                },
            },
            Event {
                ts_ns: 11,
                tid: 1,
                req: 9,
                conn: 2,
                kind: EventKind::Instant { name: "tick".to_string(), detail: String::new() },
            },
            Event { ts_ns: 12, tid: 0, req: 3, conn: 1, kind: EventKind::Spec(Box::new(spec)) },
            Event {
                ts_ns: 13,
                tid: 0,
                req: 0,
                conn: 0,
                kind: EventKind::SpanEnd { id: 1, name: "build".to_string() },
            },
        ];
        for ev in &events {
            let j = Json::parse(&ev.to_json().write_compact()).unwrap();
            assert_eq!(&Event::from_json(&j).unwrap(), ev);
        }
    }

    #[test]
    fn unscoped_events_omit_req_and_conn_fields() {
        let ev = Event {
            ts_ns: 1,
            tid: 0,
            req: 0,
            conn: 0,
            kind: EventKind::Instant { name: "tick".to_string(), detail: String::new() },
        };
        let text = ev.to_json().write_compact();
        assert!(!text.contains("req"), "{text}");
        assert!(!text.contains("conn"), "{text}");
        let tagged = Event { req: 5, conn: 2, ..ev };
        let text = tagged.to_json().write_compact();
        assert!(text.contains("\"req\":5"), "{text}");
        assert!(text.contains("\"conn\":2"), "{text}");
    }

    #[test]
    fn unknown_event_kind_is_rejected() {
        let j = Json::parse(r#"{"ev":"zap","ts":1,"tid":0}"#).unwrap();
        assert!(Event::from_json(&j).is_err());
    }
}

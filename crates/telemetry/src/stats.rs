//! The one human stats formatter for specialisation sessions, shared by
//! the CLI's `spec`, `link-spec` and `mix` paths (previously three
//! hand-rolled blocks, one of which printed the budget-generalisation
//! count twice in two formats).

use std::fmt;

/// Session-level specialisation statistics in presentation form. Both
/// the genext engine's `SpecStats` and mix's `MixStats` convert into
/// this; fields the producer does not track stay zero and are elided
/// from the output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecSummary {
    /// The residual entry point, e.g. `Spec.power_1`.
    pub entry: String,
    pub specialisations: u64,
    pub memo_probes: u64,
    pub memo_hits: u64,
    pub unfolds: u64,
    pub steps: u64,
    pub peak_pending: u64,
    pub residual_nodes: u64,
    /// Calls the budget fallback demoted to dynamic residual calls.
    pub generalised: u64,
}

impl fmt::Display for SpecSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "-- entry {}: {} specialisations, {} unfolds, {} memo hits",
            self.entry, self.specialisations, self.unfolds, self.memo_hits
        )?;
        if self.memo_probes > 0 {
            write!(f, " (of {} probes)", self.memo_probes)?;
        }
        if self.steps > 0 {
            write!(f, ", {} steps", self.steps)?;
        }
        if self.residual_nodes > 0 {
            write!(f, ", {} residual nodes", self.residual_nodes)?;
        }
        if self.peak_pending > 0 {
            write!(f, ", peak pending {}", self.peak_pending)?;
        }
        if self.generalised > 0 {
            // The single budget line (this used to be printed twice).
            write!(
                f,
                "\n-- budget hit: {} call(s) generalised to dynamic residual calls",
                self.generalised
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elides_untracked_fields() {
        let s = SpecSummary {
            entry: "Spec.power_1".to_string(),
            specialisations: 3,
            memo_hits: 1,
            unfolds: 2,
            ..SpecSummary::default()
        };
        let text = s.to_string();
        assert_eq!(text, "-- entry Spec.power_1: 3 specialisations, 2 unfolds, 1 memo hits");
    }

    #[test]
    fn budget_line_appears_exactly_once() {
        let s = SpecSummary {
            entry: "Spec.f_1".to_string(),
            specialisations: 5,
            memo_probes: 4,
            memo_hits: 2,
            steps: 100,
            generalised: 3,
            ..SpecSummary::default()
        };
        let text = s.to_string();
        assert_eq!(text.matches("generalised").count(), 1, "{text}");
        assert!(text.contains("(of 4 probes)"), "{text}");
        assert!(text.contains("budget hit: 3 call(s)"), "{text}");
    }
}

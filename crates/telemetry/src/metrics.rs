//! Windowed rate aggregation and Prometheus-style text exposition.
//!
//! The recorder's counters are monotone totals and its histograms are
//! log2 buckets; an operator watching a daemon needs *rates* (req/s,
//! shed/s, hit rate over the last few seconds) and *quantiles* (p50 /
//! p90 / p99 latency). [`RateWindow`] turns increments into a sliding
//! window of per-slot counts, and [`Exposition`] renders counters,
//! gauges and histogram summaries as the plain `name{label} value` text
//! format Prometheus-family scrapers understand.
//!
//! Time is *injected*: every [`RateWindow`] method takes `now_ms`
//! (milliseconds on any monotone clock, e.g. since daemon start). That
//! keeps the arithmetic deterministic and makes fake-clock tests
//! trivial — there is no hidden `Instant::now()` anywhere in this
//! module.

use crate::quantile_from_buckets;

/// A sliding window of event counts: `slots` ring slots, each
/// `slot_ms` wide. Recording advances the ring, zeroing any slots the
/// clock skipped over, so a burst followed by silence decays to zero
/// within one window span.
#[derive(Debug, Clone)]
pub struct RateWindow {
    slot_ms: u64,
    counts: Vec<u64>,
    /// Absolute index (`now_ms / slot_ms`) of the slot currently being
    /// filled; `counts[cur % slots]` is that slot's count.
    cur: u64,
}

impl RateWindow {
    /// A window of `slots` ring slots, each `slot_ms` milliseconds wide
    /// (both clamped to at least 1).
    pub fn new(slots: usize, slot_ms: u64) -> RateWindow {
        RateWindow { slot_ms: slot_ms.max(1), counts: vec![0; slots.max(1)], cur: 0 }
    }

    /// The window's total span in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.slot_ms * self.counts.len() as u64
    }

    fn advance(&mut self, now_ms: u64) {
        let slot = now_ms / self.slot_ms;
        if slot <= self.cur {
            return; // same slot, or a clock that went backwards: keep counting here
        }
        let n = self.counts.len() as u64;
        if slot - self.cur >= n {
            self.counts.iter_mut().for_each(|c| *c = 0);
        } else {
            for k in self.cur + 1..=slot {
                self.counts[(k % n) as usize] = 0;
            }
        }
        self.cur = slot;
    }

    /// Adds `n` events at time `now_ms`.
    pub fn record(&mut self, now_ms: u64, n: u64) {
        self.advance(now_ms);
        let idx = (self.cur % self.counts.len() as u64) as usize;
        self.counts[idx] = self.counts[idx].saturating_add(n);
    }

    /// Total events inside the window as of `now_ms`.
    pub fn total(&mut self, now_ms: u64) -> u64 {
        self.advance(now_ms);
        self.counts.iter().sum()
    }

    /// Events per second over the window as of `now_ms`, in
    /// milli-events (so 1500 means 1.5 events/s — integer arithmetic
    /// keeps the exposition deterministic).
    pub fn rate_milli_per_sec(&mut self, now_ms: u64) -> u64 {
        let total = self.total(now_ms);
        total.saturating_mul(1_000_000) / self.window_ms()
    }
}

/// Formats a milli-scaled integer as a fixed three-decimal number
/// (`1500` → `"1.500"`), the float-free way every exposition value is
/// printed.
pub fn milli(v: u64) -> String {
    format!("{}.{:03}", v / 1000, v % 1000)
}

/// A Prometheus-style text exposition under construction: `# TYPE`
/// headers, `name value` samples, and `{quantile="…"}` summaries
/// estimated from log2 histogram buckets.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// A monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "counter", help);
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// An instantaneous gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "gauge", help);
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// A gauge holding a milli-scaled fixed-point value (rates, ratios).
    pub fn gauge_milli(&mut self, name: &str, help: &str, value_milli: u64) {
        self.header(name, "gauge", help);
        self.out.push_str(&format!("{name} {}\n", milli(value_milli)));
    }

    /// A summary (p50/p90/p99 + `_count`) estimated from log2 buckets.
    /// An empty histogram renders only the `_count 0` line.
    pub fn summary(&mut self, name: &str, help: &str, buckets: &[(u32, u64)]) {
        self.header(name, "summary", help);
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            if let Some(v) = quantile_from_buckets(buckets, q) {
                self.out.push_str(&format!("{name}{{quantile=\"{label}\"}} {v}\n"));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        self.out.push_str(&format!("{name}_count {count}\n"));
    }

    /// The finished exposition text.
    pub fn render(self) -> String {
        self.out
    }
}

/// What [`check_exposition`] verified about an exposition document.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ExpositionReport {
    /// `name value` sample lines.
    pub samples: usize,
    /// Distinct metric families (`# TYPE` headers).
    pub families: usize,
}

/// Schema-checks a Prometheus-style exposition: every sample line must
/// be `name[{labels}] value` with a numeric value, every sample must
/// belong to a family declared by a preceding `# TYPE` header, and
/// `# TYPE` kinds must be known.
///
/// # Errors
///
/// A one-line description of the first malformed line.
pub fn check_exposition(text: &str) -> Result<ExpositionReport, String> {
    let mut report = ExpositionReport::default();
    let mut families: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {n}: # TYPE without a name"))?;
            let kind = parts.next().ok_or(format!("line {n}: # TYPE without a kind"))?;
            if !["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind) {
                return Err(format!("line {n}: unknown metric type `{kind}`"));
            }
            families.push(name.to_string());
            report.families += 1;
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {n}: sample line without a value: `{line}`"))?;
        let name = name_part.split('{').next().unwrap_or(name_part);
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {n}: bad metric name `{name}`"));
        }
        if value.parse::<f64>().is_err() {
            return Err(format!("line {n}: non-numeric value `{value}`"));
        }
        let fam =
            name.strip_suffix("_count").or_else(|| name.strip_suffix("_sum")).unwrap_or(name);
        if !families.iter().any(|f| f == fam || f == name) {
            return Err(format!("line {n}: sample `{name}` has no preceding # TYPE header"));
        }
        report.samples += 1;
    }
    if report.samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_under_a_fake_clock() {
        // 4 slots × 250ms = a 1s window.
        let mut w = RateWindow::new(4, 250);
        w.record(0, 10);
        w.record(100, 10);
        assert_eq!(w.total(100), 20);
        assert_eq!(w.rate_milli_per_sec(100), 20_000, "20 events over a 1s window");
        // 600ms later the events still sit inside the window…
        assert_eq!(w.total(700), 20);
        // …and a full window of silence decays the rate to zero.
        assert_eq!(w.total(1800), 0);
        assert_eq!(w.rate_milli_per_sec(1800), 0);
    }

    #[test]
    fn window_slides_slot_by_slot() {
        let mut w = RateWindow::new(2, 100);
        w.record(0, 4); // slot 0
        w.record(150, 6); // slot 1
        assert_eq!(w.total(150), 10);
        // Slot 2 evicts slot 0's 4 events, keeps slot 1's 6.
        assert_eq!(w.total(250), 6);
        // Slot 3 evicts slot 1 as well.
        assert_eq!(w.total(350), 0);
    }

    #[test]
    fn clock_going_backwards_is_tolerated() {
        let mut w = RateWindow::new(4, 100);
        w.record(500, 1);
        w.record(100, 1); // late event: counted in the current slot
        assert_eq!(w.total(500), 2);
    }

    #[test]
    fn exposition_renders_and_checks() {
        let mut exp = Exposition::new();
        exp.counter("serve_requests_total", "Requests accepted", 42);
        exp.gauge("serve_queue_depth", "Jobs queued", 3);
        exp.gauge_milli("serve_req_rate", "Requests per second", 1500);
        exp.summary("serve_latency_us", "Request latency", &[(4, 10), (5, 10)]);
        let text = exp.render();
        assert!(text.contains("# TYPE serve_requests_total counter\n"), "{text}");
        assert!(text.contains("serve_req_rate 1.500\n"), "{text}");
        assert!(text.contains("serve_latency_us{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("serve_latency_us_count 20\n"), "{text}");
        let report = check_exposition(&text).unwrap();
        assert_eq!(report.families, 4);
        assert!(report.samples >= 7, "{report:?}");
    }

    #[test]
    fn check_rejects_malformed_expositions() {
        assert!(check_exposition("").is_err());
        assert!(check_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(check_exposition("orphan 1\n").is_err());
        assert!(check_exposition("# TYPE x wibble\nx 1\n").is_err());
        // _count samples resolve to their summary family.
        assert!(check_exposition("# TYPE lat summary\nlat_count 0\n").is_ok());
    }

    #[test]
    fn milli_formats_three_decimals() {
        assert_eq!(milli(0), "0.000");
        assert_eq!(milli(1500), "1.500");
        assert_eq!(milli(12), "0.012");
    }
}

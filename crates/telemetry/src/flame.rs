//! Collapsed-stack (flamegraph) rendering of span trees.
//!
//! A JSONL trace's `b`/`e` events form per-thread span trees; this
//! module folds them into the `frame;frame;frame value` text format
//! that `flamegraph.pl`, speedscope and friends consume directly. The
//! value is *self time in microseconds*: each span's duration minus the
//! time covered by its children, so the flamegraph's widths add up
//! instead of double-counting nested work.

use crate::{EventKind, Snapshot};
use std::collections::BTreeMap;

struct OpenSpan {
    id: u64,
    name: String,
    start_ns: u64,
    child_ns: u64,
}

/// Folds `snap`'s span events into collapsed-stack lines, one per
/// distinct stack, sorted lexicographically (deterministic given the
/// event stream). `req` filters to one request's events (an event is
/// kept iff its `req` field matches); `None` keeps everything.
///
/// Unbalanced spans are tolerated: an end without a begin is ignored,
/// and spans still open when the stream ends contribute the time up to
/// the last event seen on their thread.
pub fn collapsed_stacks(snap: &Snapshot, req: Option<u64>) -> String {
    // Per-(tid) open-span stacks, replayed in event order.
    let mut stacks: BTreeMap<u64, Vec<OpenSpan>> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();

    let close = |stack: &mut Vec<OpenSpan>, upto: usize, end_ns: u64,
                     folded: &mut BTreeMap<String, u64>| {
        while stack.len() > upto {
            let done = match stack.pop() {
                Some(s) => s,
                None => break,
            };
            let total = end_ns.saturating_sub(done.start_ns);
            let self_ns = total.saturating_sub(done.child_ns);
            let mut path: Vec<&str> = stack.iter().map(|s| s.name.as_str()).collect();
            path.push(&done.name);
            *folded.entry(path.join(";")).or_insert(0) += self_ns / 1_000;
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += total;
            }
        }
    };

    for ev in &snap.events {
        if let Some(r) = req {
            if ev.req != r {
                continue;
            }
        }
        last_ts.insert(ev.tid, ev.ts_ns);
        let stack = stacks.entry(ev.tid).or_default();
        match &ev.kind {
            EventKind::SpanBegin { id, name, .. } => {
                stack.push(OpenSpan {
                    id: *id,
                    name: name.clone(),
                    start_ns: ev.ts_ns,
                    child_ns: 0,
                });
            }
            EventKind::SpanEnd { id, .. } => {
                if let Some(pos) = stack.iter().rposition(|s| s.id == *id) {
                    close(stack, pos, ev.ts_ns, &mut folded);
                }
            }
            EventKind::Instant { .. } | EventKind::Spec(_) => {}
        }
    }
    // Spans left open (e.g. a trace cut mid-request) are closed at the
    // thread's last timestamp so their time is not silently dropped.
    for (tid, mut stack) in stacks {
        let end = last_ts.get(&tid).copied().unwrap_or(0);
        close(&mut stack, 0, end, &mut folded);
    }

    let mut out = String::new();
    for (path, us) in folded {
        out.push_str(&format!("{path} {us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn ev(ts_us: u64, req: u64, kind: EventKind) -> Event {
        Event { ts_ns: ts_us * 1_000, tid: 0, req, conn: 0, kind }
    }

    fn begin(id: u64, parent: u64, name: &str) -> EventKind {
        EventKind::SpanBegin {
            id,
            parent,
            name: name.to_string(),
            detail: String::new(),
        }
    }

    fn end(id: u64, name: &str) -> EventKind {
        EventKind::SpanEnd { id, name: name.to_string() }
    }

    #[test]
    fn nested_spans_fold_with_self_time() {
        let snap = Snapshot {
            events: vec![
                ev(0, 0, begin(1, 0, "specialise")),
                ev(10, 0, begin(2, 1, "link")),
                ev(40, 0, end(2, "link")),
                ev(100, 0, end(1, "specialise")),
            ],
            ..Snapshot::default()
        };
        let text = collapsed_stacks(&snap, None);
        assert_eq!(text, "specialise 70\nspecialise;link 30\n");
    }

    #[test]
    fn request_filter_selects_one_stream() {
        let snap = Snapshot {
            events: vec![
                ev(0, 7, begin(1, 0, "a")),
                ev(5, 8, begin(2, 0, "b")),
                ev(20, 8, end(2, "b")),
                ev(30, 7, end(1, "a")),
            ],
            ..Snapshot::default()
        };
        assert_eq!(collapsed_stacks(&snap, Some(7)), "a 30\n");
        assert_eq!(collapsed_stacks(&snap, Some(8)), "b 15\n");
        let all = collapsed_stacks(&snap, None);
        // Unfiltered, b nests inside a on the same thread.
        assert_eq!(all, "a 15\na;b 15\n");
    }

    #[test]
    fn unclosed_spans_are_attributed_to_the_last_timestamp() {
        let snap = Snapshot {
            events: vec![ev(0, 0, begin(1, 0, "hung")), ev(50, 0, EventKind::Instant {
                name: "tick".to_string(),
                detail: String::new(),
            })],
            ..Snapshot::default()
        };
        assert_eq!(collapsed_stacks(&snap, None), "hung 50\n");
    }
}

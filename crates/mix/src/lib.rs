//! Baseline specialisers the paper compares against.
//!
//! * [`mix`] — **monolithic mix**: the "today's specialisers" baseline
//!   (§1, §4). Every specialisation session takes the *whole program
//!   source*, parses it, resolves it, type checks it and binding-time
//!   analyses it, then specialises by interpreting the annotated syntax
//!   tree with name-keyed environments — i.e. it pays, per session,
//!   everything the generating-extension approach paid once, and its
//!   inner loop re-inspects source structure that a genext has compiled
//!   away. The residual program comes out as one monolithic module.
//!   A *monovariant* mode merges all binding-time uses of a function
//!   into one (the §4.1 ablation).
//! * [`similix`] — **Similix-style extern handling** (§1): imported
//!   functions are treated like primitives — fully reduced when all
//!   arguments are static, otherwise left as residual calls to the
//!   *unspecialised* originals, which are copied verbatim into the
//!   output. This shows what is lost without module-sensitive
//!   specialisation.

pub mod error;
pub mod mix;
pub mod similix;

pub use error::MixError;
pub use mix::{
    mix_specialise, mix_specialise_program, mix_specialise_program_traced, mix_specialise_traced,
    MixOptions, MixOutcome, MixPhases, MixStats,
};
pub use similix::{similix_specialise, SimilixOutcome};

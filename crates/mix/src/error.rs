//! Errors from the baseline specialisers.

use mspec_bta::BtaError;
use mspec_genext::SpecError;
use mspec_lang::eval::EvalError;
use mspec_lang::LangError;
use mspec_types::TypeError;
use std::error::Error;
use std::fmt;

/// Any error raised by a baseline specialisation session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixError {
    /// Parse/resolution failure (mix re-reads source every session).
    Lang(LangError),
    /// Type checking failure.
    Type(TypeError),
    /// Binding-time analysis failure.
    Bta(BtaError),
    /// Specialisation failure (shares the engine's error vocabulary).
    Spec(SpecError),
    /// Run-time failure while executing a residual program.
    Eval(EvalError),
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixError::Lang(e) => write!(f, "{e}"),
            MixError::Type(e) => write!(f, "{e}"),
            MixError::Bta(e) => write!(f, "{e}"),
            MixError::Spec(e) => write!(f, "{e}"),
            MixError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl Error for MixError {}

impl From<LangError> for MixError {
    fn from(e: LangError) -> Self {
        MixError::Lang(e)
    }
}

impl From<TypeError> for MixError {
    fn from(e: TypeError) -> Self {
        MixError::Type(e)
    }
}

impl From<BtaError> for MixError {
    fn from(e: BtaError) -> Self {
        MixError::Bta(e)
    }
}

impl From<SpecError> for MixError {
    fn from(e: SpecError) -> Self {
        MixError::Spec(e)
    }
}

impl From<EvalError> for MixError {
    fn from(e: EvalError) -> Self {
        MixError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let e: MixError = SpecError::BudgetExhausted {
            resource: mspec_genext::budget::BudgetResource::Steps,
            witness: mspec_lang::QualName::new("M", "loop"),
            skeleton_hash: 0,
            chain: vec![],
        }
        .into();
        assert!(e.to_string().contains("fuel"));
        fn takes<E: Error>(_: E) {}
        takes(e);
    }
}

//! Similix-style treatment of imported functions (§1).
//!
//! "Calls to functions defined in another module are regarded as
//! primitive calls … Calls to such functions are either fully reduced,
//! when all arguments are available at specialisation time, or otherwise
//! left unchanged. Thus such functions are never specialised."
//!
//! [`similix_specialise`] runs the mix interpreter in exactly that mode:
//! within the entry function's module specialisation proceeds normally,
//! but every cross-module call either computes (all-static arguments) or
//! survives as a residual call to the *unspecialised original*, whose
//! definition (and everything it reaches) is copied verbatim into the
//! residual program. Comparing the result against the module-sensitive
//! residual is ablation E7.

use crate::error::MixError;
use crate::mix::{MixInterp, MixOptions, MixStats};
use mspec_bta::analyse::analyse_program;
use mspec_genext::{ResidualProgram, SpecArg};
use mspec_lang::ast::{Program, QualName};
use mspec_lang::parser::parse_program;
use mspec_lang::resolve::resolve;
use mspec_types::infer_program;

/// The result of a Similix-extern session.
#[derive(Debug, Clone)]
pub struct SimilixOutcome {
    /// The residual program: a `Spec` module plus verbatim copies of the
    /// library functions that were left unspecialised.
    pub residual: ResidualProgram,
    /// Session counters.
    pub stats: MixStats,
    /// How many distinct imported functions were left as extern residual
    /// calls.
    pub extern_calls: usize,
}

/// Runs a Similix-extern specialisation session from source.
///
/// # Errors
///
/// Any stage's error.
pub fn similix_specialise(
    src: &str,
    module: &str,
    function: &str,
    args: Vec<SpecArg>,
    options: MixOptions,
) -> Result<SimilixOutcome, MixError> {
    similix_specialise_program(parse_program(src)?, module, function, args, options)
}

/// As [`similix_specialise`] from a parsed program.
///
/// # Errors
///
/// Any stage's error.
pub fn similix_specialise_program(
    program: Program,
    module: &str,
    function: &str,
    args: Vec<SpecArg>,
    options: MixOptions,
) -> Result<SimilixOutcome, MixError> {
    let resolved = resolve(program)?;
    let _types = infer_program(&resolved)?;
    let ann = analyse_program(&resolved)?;
    let entry = QualName::new(module, function);
    let mut interp = MixInterp::new(&ann, &resolved, options, true);
    let outcome = interp.specialise(&entry, args)?;
    let extern_calls = interp.extern_needed.len();
    Ok(SimilixOutcome { residual: outcome.residual, stats: outcome.stats, extern_calls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::eval::{Evaluator, Value};

    const TWO_MODULES: &str = "module Power where\n\
        power n x = if n == 1 then x else x * power (n - 1) x\n\
        module Main where\n\
        import Power\n\
        main y = power 3 y + power y 2\n";

    fn run_residual(outcome: &SimilixOutcome, args: Vec<Value>) -> Value {
        let rp = resolve(outcome.residual.program.clone()).unwrap();
        let mut ev = Evaluator::new(&rp);
        ev.call(&outcome.residual.entry, args).unwrap()
    }

    #[test]
    fn extern_calls_are_left_unspecialised() {
        let out = similix_specialise(
            TWO_MODULES,
            "Main",
            "main",
            vec![SpecArg::Dynamic],
            MixOptions::default(),
        )
        .unwrap();
        // power 3 y has a dynamic argument → residual extern call;
        // power y 2 likewise. Both collapse to calls of the ORIGINAL
        // power, which is copied verbatim.
        assert!(out.extern_calls >= 1);
        let src = mspec_lang::pretty::pretty_program(&out.residual.program);
        assert!(src.contains("module Power"), "{src}");
        // No specialisation of power happened: no x * (x * x).
        assert!(!src.contains("x * (x * x)"), "{src}");
        assert_eq!(run_residual(&out, vec![Value::nat(2)]), Value::nat(8 + 4));
    }

    #[test]
    fn fully_static_extern_calls_are_reduced() {
        let src = "module Lib where\n\
                   sq x = x * x\n\
                   module Main where\n\
                   import Lib\n\
                   main y = sq 5 + y\n";
        let out = similix_specialise(
            src,
            "Main",
            "main",
            vec![SpecArg::Dynamic],
            MixOptions::default(),
        )
        .unwrap();
        // sq 5 was computed away entirely.
        assert_eq!(out.extern_calls, 0);
        let text = mspec_lang::pretty::pretty_program(&out.residual.program);
        assert!(text.contains("25"), "{text}");
        assert_eq!(run_residual(&out, vec![Value::nat(1)]), Value::nat(26));
    }

    #[test]
    fn intra_module_specialisation_still_happens() {
        let src = "module Main where\n\
                   power n x = if n == 1 then x else x * power (n - 1) x\n\
                   main y = power 3 y\n";
        let out = similix_specialise(
            src,
            "Main",
            "main",
            vec![SpecArg::Dynamic],
            MixOptions::default(),
        )
        .unwrap();
        // power is local, so it unfolds to x * (x * x).
        let text = mspec_lang::pretty::pretty_program(&out.residual.program);
        assert!(text.contains("y * (y * y)"), "{text}");
        assert_eq!(out.extern_calls, 0);
        assert_eq!(run_residual(&out, vec![Value::nat(3)]), Value::nat(27));
    }
}

//! The monolithic interpretive specialiser.
//!
//! A [`mix_specialise`] session re-does everything from scratch — parse,
//! resolve, type check, binding-time analyse — and then specialises by
//! *interpreting* the annotated program: environments are name-keyed
//! maps, binding times are evaluated by walking symbolic terms, and the
//! whole program (libraries included) must be in hand as source. The
//! output is one monolithic residual module. This is the cost model the
//! paper's generating extensions are measured against.

use crate::error::MixError;
use mspec_bta::analyse::analyse_program;
use mspec_bta::division::{Division, ParamBt};
use mspec_bta::{AnnDef, AnnExpr, AnnProgram, BtMask, CoerceSpec, SigShape};
use mspec_genext::budget::{BudgetResource, Fuel, SpecBudget};
use mspec_genext::emit::assemble;
use mspec_genext::{ResidualProgram, SpecArg, SpecError};
use mspec_lang::ast::{CallName, Def, Expr, Ident, ModName, PrimOp, Program, QualName};
use mspec_lang::eval::Value;
use mspec_lang::parser::parse_program;
use mspec_lang::resolve::{resolve, ResolvedProgram};
use mspec_lang::vm::Runner;
use mspec_telemetry::{Decision, Recorder, SpecEvent};
use mspec_types::infer_program;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

/// Options for a mix session.
#[derive(Debug, Clone, Copy)]
pub struct MixOptions {
    /// `true` (default): polyvariant binding times — a function may be
    /// specialised at several different masks. `false`: monovariant —
    /// all uses of a function are merged into one mask first (§4.1's
    /// "rather unrealistic" baseline).
    pub polyvariant: bool,
    /// Resource limits, shared with the genext engine ([`SpecBudget`]).
    /// Mix enforces step fuel, the specialisation-count cap and the
    /// pending cap; exhaustion is always a structured error (the
    /// baseline has no generalising fallback — that is an engine
    /// feature).
    pub budget: SpecBudget,
}

impl Default for MixOptions {
    fn default() -> MixOptions {
        MixOptions { polyvariant: true, budget: SpecBudget::default() }
    }
}

/// Counters from a mix session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixStats {
    /// Residual definitions constructed.
    pub specialisations: usize,
    /// Memoisation hits.
    pub memo_hits: usize,
    /// Calls unfolded.
    pub unfolds: usize,
    /// Interpretation steps.
    pub steps: u64,
}

impl MixStats {
    /// These counters as the shared CLI summary (mix has no memo-probe
    /// or generalisation accounting; those fields stay zero).
    pub fn summary(&self, entry: impl Into<String>) -> mspec_telemetry::SpecSummary {
        mspec_telemetry::SpecSummary {
            entry: entry.into(),
            specialisations: self.specialisations as u64,
            memo_hits: self.memo_hits as u64,
            unfolds: self.unfolds as u64,
            steps: self.steps,
            ..mspec_telemetry::SpecSummary::default()
        }
    }
}

/// Where a mix session spent its time — the per-session overhead the
/// generating-extension approach pays only once per module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixPhases {
    /// Parsing, in nanoseconds.
    pub parse_ns: u64,
    /// Resolution + type checking.
    pub check_ns: u64,
    /// Whole-program binding-time analysis.
    pub bta_ns: u64,
    /// The specialisation proper.
    pub spec_ns: u64,
}

/// The result of a mix session.
#[derive(Debug, Clone)]
pub struct MixOutcome {
    /// The (monolithic) residual program.
    pub residual: ResidualProgram,
    /// Session counters.
    pub stats: MixStats,
    /// Phase timings of this session.
    pub phases: MixPhases,
}

impl MixOutcome {
    /// Runs the residual program on the dynamic inputs under the given
    /// execution engine (the same [`Runner`] selection as
    /// `Specialised::run_with`, so mix-baseline and genext residuals are
    /// measured on equal footing).
    ///
    /// # Errors
    ///
    /// Resolution errors (never for mix-produced programs) or run-time
    /// evaluation errors.
    pub fn run_with(
        &self,
        runner: Runner,
        dynamic_args: Vec<Value>,
    ) -> Result<Value, MixError> {
        let rp = resolve(self.residual.program.clone())?;
        runner
            .run(&rp, &self.residual.entry, dynamic_args, mspec_lang::eval::DEFAULT_FUEL)
            .map_err(MixError::from)
    }
}

/// A full mix session from source text: parse + resolve + typecheck +
/// whole-program BTA + interpretive specialisation.
///
/// # Errors
///
/// Any stage's error.
pub fn mix_specialise(
    src: &str,
    module: &str,
    function: &str,
    args: Vec<SpecArg>,
    options: MixOptions,
) -> Result<MixOutcome, MixError> {
    mix_specialise_traced(src, module, function, args, options, &Recorder::disabled())
}

/// [`mix_specialise`] with telemetry: a span per phase (`mix-parse`,
/// `mix-check`, `mix-bta`, `mix-spec`) and one decision event per
/// specialisation request, mirroring the genext engine's events so the
/// two cost models can be compared trace-to-trace.
///
/// # Errors
///
/// Any stage's error.
pub fn mix_specialise_traced(
    src: &str,
    module: &str,
    function: &str,
    args: Vec<SpecArg>,
    options: MixOptions,
    rec: &Recorder,
) -> Result<MixOutcome, MixError> {
    let t0 = std::time::Instant::now();
    let program = {
        let _span = rec.span("mix-parse");
        parse_program(src)?
    };
    let parse_ns = t0.elapsed().as_nanos() as u64;
    let mut outcome =
        mix_specialise_program_traced(program, module, function, args, options, rec)?;
    outcome.phases.parse_ns = parse_ns;
    Ok(outcome)
}

/// As [`mix_specialise`] but starting from an already-parsed program
/// (still re-resolves, re-typechecks and re-analyses — that is the
/// point of the baseline).
///
/// # Errors
///
/// Any stage's error.
pub fn mix_specialise_program(
    program: Program,
    module: &str,
    function: &str,
    args: Vec<SpecArg>,
    options: MixOptions,
) -> Result<MixOutcome, MixError> {
    mix_specialise_program_traced(program, module, function, args, options, &Recorder::disabled())
}

/// As [`mix_specialise_traced`] but starting from an already-parsed
/// program.
///
/// # Errors
///
/// Any stage's error.
pub fn mix_specialise_program_traced(
    program: Program,
    module: &str,
    function: &str,
    args: Vec<SpecArg>,
    options: MixOptions,
    rec: &Recorder,
) -> Result<MixOutcome, MixError> {
    let t0 = std::time::Instant::now();
    let resolved = {
        let _span = rec.span("mix-check");
        let resolved = resolve(program)?;
        let _types = infer_program(&resolved)?;
        resolved
    };
    let check_ns = t0.elapsed().as_nanos() as u64;
    let t1 = std::time::Instant::now();
    let ann = {
        let _span = rec.span("mix-bta");
        analyse_program(&resolved)?
    };
    let bta_ns = t1.elapsed().as_nanos() as u64;
    let entry = QualName::new(module, function);
    let t2 = std::time::Instant::now();
    let _span = if rec.is_enabled() {
        rec.span_with("mix-spec", &format!("{module}.{function}"))
    } else {
        rec.span("mix-spec")
    };
    let mut interp = MixInterp::new(&ann, &resolved, options, false).with_recorder(rec.clone());
    let mut outcome = interp.specialise(&entry, args)?;
    outcome.phases = MixPhases {
        parse_ns: 0,
        check_ns,
        bta_ns,
        spec_ns: t2.elapsed().as_nanos() as u64,
    };
    Ok(outcome)
}

// ---------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------

/// A mix-side partial value (interpretive twin of the engine's `PVal`).
#[derive(Debug, Clone)]
pub(crate) enum MVal {
    Nat(u64),
    Bool(bool),
    Nil,
    Cons(Rc<MVal>, Rc<MVal>),
    Clo(Rc<MClo>),
    Code(Expr),
}

#[derive(Debug)]
pub(crate) struct MClo {
    param: Ident,
    body: Rc<AnnExpr>,
    env: BTreeMap<Ident, MVal>,
    mask: BtMask,
    home: ModName,
    site: usize,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MKey {
    Nat(u64),
    Bool(bool),
    Nil,
    Cons(Box<MKey>, Box<MKey>),
    Clo { site: usize, mask: u128, env: Vec<MKey> },
    Hole,
}

fn msplit(v: &MVal, leaves: &mut Vec<Expr>) -> MKey {
    match v {
        MVal::Nat(n) => MKey::Nat(*n),
        MVal::Bool(b) => MKey::Bool(*b),
        MVal::Nil => MKey::Nil,
        MVal::Cons(h, t) => {
            let hk = msplit(h, leaves);
            let tk = msplit(t, leaves);
            MKey::Cons(Box::new(hk), Box::new(tk))
        }
        MVal::Clo(c) => MKey::Clo {
            site: c.site,
            mask: c.mask.0,
            env: c.env.values().map(|e| msplit(e, leaves)).collect(),
        },
        MVal::Code(e) => {
            leaves.push(e.clone());
            MKey::Hole
        }
    }
}

fn mrebuild(v: &MVal, names: &[Ident], next: &mut usize) -> MVal {
    match v {
        MVal::Nat(_) | MVal::Bool(_) | MVal::Nil => v.clone(),
        MVal::Cons(h, t) => {
            let h2 = mrebuild(h, names, next);
            let t2 = mrebuild(t, names, next);
            MVal::Cons(Rc::new(h2), Rc::new(t2))
        }
        MVal::Clo(c) => {
            let env = c
                .env
                .iter()
                .map(|(k, e)| (*k, mrebuild(e, names, next)))
                .collect();
            MVal::Clo(Rc::new(MClo {
                param: c.param,
                body: Rc::clone(&c.body),
                env,
                mask: c.mask,
                home: c.home,
                site: c.site,
            }))
        }
        MVal::Code(_) => {
            let name = names[*next];
            *next += 1;
            MVal::Code(Expr::Var(name))
        }
    }
}

fn fully_static(v: &MVal) -> bool {
    match v {
        MVal::Nat(_) | MVal::Bool(_) | MVal::Nil => true,
        MVal::Cons(h, t) => fully_static(h) && fully_static(t),
        MVal::Clo(c) => c.env.values().all(fully_static),
        MVal::Code(_) => false,
    }
}

fn to_value(v: &MVal) -> Option<Value> {
    match v {
        MVal::Nat(n) => Some(Value::Nat(*n)),
        MVal::Bool(b) => Some(Value::Bool(*b)),
        MVal::Nil => Some(Value::Nil),
        MVal::Cons(h, t) => Some(Value::Cons(Rc::new(to_value(h)?), Rc::new(to_value(t)?))),
        MVal::Clo(_) | MVal::Code(_) => None,
    }
}

fn from_value(v: &Value) -> Option<MVal> {
    match v {
        Value::Nat(n) => Some(MVal::Nat(*n)),
        Value::Bool(b) => Some(MVal::Bool(*b)),
        Value::Nil => Some(MVal::Nil),
        Value::Cons(h, t) => {
            Some(MVal::Cons(Rc::new(from_value(h)?), Rc::new(from_value(t)?)))
        }
        Value::Closure(_) => None,
    }
}

// ---------------------------------------------------------------------
// The interpreter
// ---------------------------------------------------------------------

struct MPending {
    target: QualName,
    mask: BtMask,
    env: BTreeMap<Ident, MVal>,
    resid_name: Ident,
    formals: Vec<Ident>,
}

pub(crate) struct MixInterp<'a> {
    resolved: &'a ResolvedProgram,
    index: BTreeMap<QualName, &'a AnnDef>,
    bodies: BTreeMap<QualName, Rc<AnnExpr>>,
    options: MixOptions,
    extern_mode: bool,
    fuel: Fuel,
    /// Stack of specialisation/unfold requests currently being served
    /// (for [`SpecError::BudgetExhausted`] diagnostics).
    chain: Vec<QualName>,
    stats: MixStats,
    memo: HashMap<(QualName, u128, Vec<MKey>), Ident>,
    pending: VecDeque<MPending>,
    counters: BTreeMap<QualName, u32>,
    gensym: u64,
    defs_out: Vec<Def>,
    mono_masks: HashMap<QualName, BtMask>,
    pub(crate) extern_needed: Vec<QualName>,
    out_module: ModName,
    recorder: Recorder,
    /// Residual names currently under construction, innermost last —
    /// the parent attributed to decision events (same scheme as the
    /// genext engine's `resid_stack`).
    resid_stack: Vec<Ident>,
}

impl<'a> MixInterp<'a> {
    pub(crate) fn new(
        ann: &'a AnnProgram,
        resolved: &'a ResolvedProgram,
        options: MixOptions,
        extern_mode: bool,
    ) -> MixInterp<'a> {
        let mut index = BTreeMap::new();
        let mut bodies = BTreeMap::new();
        for m in &ann.modules {
            for d in &m.defs {
                let q = QualName { module: m.name, name: d.name };
                index.insert(q, d);
                bodies.insert(q, Rc::new(d.body.clone()));
            }
        }
        let _ = ann; // the index borrows the same data
        MixInterp {
            resolved,
            index,
            bodies,
            options,
            extern_mode,
            fuel: Fuel::new(options.budget.steps),
            chain: Vec::new(),
            stats: MixStats::default(),
            memo: HashMap::new(),
            pending: VecDeque::new(),
            counters: BTreeMap::new(),
            gensym: 0,
            defs_out: Vec::new(),
            mono_masks: HashMap::new(),
            extern_needed: Vec::new(),
            out_module: ModName::new("Spec"),
            recorder: Recorder::disabled(),
            resid_stack: Vec::new(),
        }
    }

    /// Attaches a telemetry recorder (decision events only; stats and
    /// step accounting are unchanged).
    pub(crate) fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Emits one decision event; a no-op (no formatting, no allocation)
    /// when the recorder is disabled.
    #[allow(clippy::too_many_arguments)]
    fn record_decision(
        &self,
        decision: Decision,
        target: &QualName,
        mask: BtMask,
        vars: u32,
        skeleton_hash: u64,
        probe: bool,
        residual: Option<&Ident>,
        witness: String,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let mut ev = SpecEvent::request(target.to_string(), mask.render(vars));
        ev.decision = decision;
        ev.skeleton_hash = skeleton_hash;
        ev.probe = probe;
        ev.residual = residual
            .map(|r| format!("{}.{r}", self.out_module))
            .unwrap_or_default();
        ev.witness = witness;
        ev.parent = self
            .resid_stack
            .last()
            .map(|r| format!("{}.{r}", self.out_module))
            .unwrap_or_default();
        ev.chain_depth = self.chain.len() as u64;
        ev.pending = self.pending.len() as u64;
        ev.fuel_left = self.fuel.remaining();
        ev.specs_left =
            self.options.budget.max_specialisations.saturating_sub(self.memo.len()) as u64;
        self.recorder.spec(ev);
    }

    /// Exports session counters onto the recorder (once, at session end).
    fn flush_counters(&self) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.recorder.count("mix.specialisations", self.stats.specialisations as u64);
        self.recorder.count("mix.memo_hits", self.stats.memo_hits as u64);
        self.recorder.count("mix.unfolds", self.stats.unfolds as u64);
        self.recorder.count("mix.steps", self.stats.steps);
    }

    pub(crate) fn specialise(
        &mut self,
        entry: &QualName,
        args: Vec<SpecArg>,
    ) -> Result<MixOutcome, MixError> {
        let def = *self
            .index
            .get(entry)
            .ok_or(MixError::Spec(SpecError::UnknownEntry(*entry)))?;
        if def.params.len() != args.len() {
            return Err(MixError::Spec(SpecError::EntryArity {
                entry: *entry,
                expected: def.params.len(),
                found: args.len(),
            }));
        }
        let division = Division(
            args.iter()
                .map(|a| match a {
                    SpecArg::Static(_) => ParamBt::Static,
                    SpecArg::Dynamic => ParamBt::Dynamic,
                    SpecArg::StaticSpine(_) => ParamBt::StaticSpine,
                })
                .collect(),
        );
        let mask = division.mask_for(&def.sig)?;
        if !self.options.polyvariant {
            self.compute_mono_masks(entry, mask);
        }
        let mask = if self.options.polyvariant {
            mask
        } else {
            self.mono_masks.get(entry).copied().unwrap_or(mask)
        };

        let mut vals = Vec::with_capacity(args.len());
        for (a, p) in args.iter().zip(&def.params) {
            vals.push(match a {
                SpecArg::Static(v) => from_value(v).ok_or_else(|| {
                    MixError::Spec(SpecError::TypeConfusion(
                        "closure inputs are not supported".into(),
                    ))
                })?,
                SpecArg::Dynamic => MVal::Code(Expr::Var(*p)),
                SpecArg::StaticSpine(n) => {
                    let mut list = MVal::Nil;
                    for i in (0..*n).rev() {
                        list = MVal::Cons(
                            Rc::new(MVal::Code(Expr::Var(Ident::new(format!("{p}{i}"))))),
                            Rc::new(list),
                        );
                    }
                    list
                }
            });
        }
        // Under a merged monovariant mask, some requested-static inputs
        // may have to be treated dynamically; lift them.
        let vals = if self.options.polyvariant {
            vals
        } else {
            let shapes = def.sig.params.clone();
            vals.into_iter()
                .zip(shapes)
                .map(|(v, shape)| self.lift_to_shape(v, &shape, mask))
                .collect::<Result<Vec<_>, _>>()?
        };

        let mut leaves = Vec::new();
        let keys: Vec<MKey> = vals.iter().map(|v| msplit(v, &mut leaves)).collect();
        let formals: Vec<Ident> = leaves
            .iter()
            .enumerate()
            .map(|(i, l)| match l {
                Expr::Var(x) => *x,
                _ => Ident::new(format!("d{i}")),
            })
            .collect();
        let skel = if self.recorder.is_enabled() { mkey_hash(&keys) } else { 0 };
        self.memo
            .insert((*entry, mask.0, keys), entry.name);
        self.record_decision(
            Decision::Entry,
            entry,
            mask,
            def.sig.vars,
            skel,
            false,
            Some(&entry.name),
            String::new(),
        );
        let mut next = 0;
        let env: BTreeMap<Ident, MVal> = def
            .params
            .iter()
            .cloned()
            .zip(vals.iter().map(|v| mrebuild(v, &formals, &mut next)))
            .collect();
        let spec = MPending {
            target: *entry,
            mask,
            env,
            resid_name: entry.name,
            formals,
        };
        self.construct(spec)?;
        while let Some(spec) = self.pending.pop_front() {
            self.construct(spec)?;
        }
        self.flush_counters();

        let residual = self.assemble(entry)?;
        Ok(MixOutcome { residual, stats: self.stats, phases: MixPhases::default() })
    }

    fn assemble(&mut self, entry: &QualName) -> Result<ResidualProgram, MixError> {
        let mut modules: BTreeMap<ModName, Vec<Def>> = BTreeMap::new();
        modules.insert(self.out_module, std::mem::take(&mut self.defs_out));
        // Similix extern mode: copy the original definitions reachable
        // from extern calls, verbatim, in their original modules.
        if self.extern_mode && !self.extern_needed.is_empty() {
            let mut todo: Vec<QualName> = self.extern_needed.clone();
            let mut seen: Vec<QualName> = Vec::new();
            while let Some(q) = todo.pop() {
                if seen.contains(&q) {
                    continue;
                }
                seen.push(q);
                if let Some(d) = self.resolved.def(&q) {
                    modules.entry(q.module).or_default().push(d.clone());
                    for callee in d.body.called_functions() {
                        todo.push(callee);
                    }
                }
            }
        }
        let entry_resid = QualName { module: self.out_module, name: entry.name };
        Ok(assemble(modules, entry_resid)?)
    }

    fn compute_mono_masks(&mut self, entry: &QualName, entry_mask: BtMask) {
        let mut todo = vec![*entry];
        self.mono_masks.insert(*entry, entry_mask);
        while let Some(q) = todo.pop() {
            let mask = self.mono_masks[&q];
            let Some(def) = self.index.get(&q) else { continue };
            let mut sites = Vec::new();
            collect_calls(&def.body, &mut sites);
            for (target, inst) in sites {
                let mut callee_mask = BtMask::all_static();
                for (i, term) in inst.iter().enumerate() {
                    if mask.eval(term).is_dynamic() {
                        callee_mask = callee_mask.set_dynamic(i as u32);
                    }
                }
                if let Some(callee) = self.index.get(&target) {
                    callee_mask = callee.sig.complete_mask(callee_mask);
                }
                let merged = match self.mono_masks.get(&target) {
                    Some(old) => BtMask(old.0 | callee_mask.0),
                    None => callee_mask,
                };
                let merged = match self.index.get(&target) {
                    Some(callee) => callee.sig.complete_mask(merged),
                    None => merged,
                };
                if self.mono_masks.get(&target) != Some(&merged) {
                    self.mono_masks.insert(target, merged);
                    todo.push(target);
                }
            }
        }
    }

    fn construct(&mut self, spec: MPending) -> Result<(), MixError> {
        let body = Rc::clone(&self.bodies[&spec.target]);
        let home = spec.target.module;
        let mut env = spec.env;
        self.chain.push(spec.target);
        self.resid_stack.push(spec.resid_name);
        let result = self.eval(&body, &mut env, spec.mask, &home)?;
        let body_expr = self.lift(result)?;
        self.stats.specialisations += 1;
        self.defs_out.push(Def::new(spec.resid_name, spec.formals, body_expr));
        self.resid_stack.pop();
        self.chain.pop();
        Ok(())
    }

    /// Spends one unit of step fuel: a budget of `n` admits exactly `n`
    /// steps and errors exactly once, on step `n + 1`.
    fn step(&mut self) -> Result<(), MixError> {
        self.stats.steps += 1;
        if !self.fuel.spend() {
            return Err(self.budget_error(BudgetResource::Steps, None));
        }
        Ok(())
    }

    fn budget_error(&self, resource: BudgetResource, at: Option<(QualName, u64)>) -> MixError {
        let (witness, skeleton_hash) = at
            .or_else(|| self.chain.last().map(|q| (*q, 0)))
            .unwrap_or((QualName::new("?", "?"), 0));
        const CHAIN_LIMIT: usize = 16;
        let start = self.chain.len().saturating_sub(CHAIN_LIMIT);
        MixError::Spec(SpecError::BudgetExhausted {
            resource,
            witness,
            skeleton_hash,
            chain: self.chain[start..].to_vec(),
        })
    }

    fn fresh(&mut self, base: &str) -> Ident {
        self.gensym += 1;
        Ident::new(format!("{base}'{}", self.gensym))
    }

    fn eval(
        &mut self,
        e: &AnnExpr,
        env: &mut BTreeMap<Ident, MVal>,
        mask: BtMask,
        home: &ModName,
    ) -> Result<MVal, MixError> {
        self.step()?;
        match e {
            AnnExpr::Nat(n) => Ok(MVal::Nat(*n)),
            AnnExpr::Bool(b) => Ok(MVal::Bool(*b)),
            AnnExpr::Nil => Ok(MVal::Nil),
            AnnExpr::Var(x) => env.get(x).cloned().ok_or_else(|| {
                MixError::Spec(SpecError::TypeConfusion(format!("unbound `{x}` in mix")))
            }),
            AnnExpr::Prim(op, t, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, mask, home)?);
                }
                if mask.eval(t).is_dynamic() {
                    let mut lifted = Vec::with_capacity(vals.len());
                    for v in vals {
                        lifted.push(self.lift(v)?);
                    }
                    Ok(MVal::Code(Expr::Prim(*op, lifted)))
                } else {
                    mix_static_prim(*op, &vals)
                }
            }
            AnnExpr::If(t, c, th, el) => {
                let cv = self.eval(c, env, mask, home)?;
                if mask.eval(t).is_dynamic() {
                    let tv = self.eval(th, env, mask, home)?;
                    let ev = self.eval(el, env, mask, home)?;
                    Ok(MVal::Code(Expr::If(
                        Box::new(self.lift(cv)?),
                        Box::new(self.lift(tv)?),
                        Box::new(self.lift(ev)?),
                    )))
                } else {
                    match cv {
                        MVal::Bool(true) => self.eval(th, env, mask, home),
                        MVal::Bool(false) => self.eval(el, env, mask, home),
                        other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
                            "static conditional on {other:?}"
                        )))),
                    }
                }
            }
            AnnExpr::Call { target, inst, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, mask, home)?);
                }
                let mut callee_mask = BtMask::all_static();
                for (i, term) in inst.iter().enumerate() {
                    if mask.eval(term).is_dynamic() {
                        callee_mask = callee_mask.set_dynamic(i as u32);
                    }
                }
                self.call(target, callee_mask, vals, home)
            }
            AnnExpr::Lam(x, b) => Ok(MVal::Clo(Rc::new(MClo {
                param: *x,
                body: Rc::new((**b).clone()),
                env: env.clone(),
                mask,
                home: *home,
                site: (&**b) as *const AnnExpr as usize,
            }))),
            AnnExpr::App(t, f, a) => {
                let fv = self.eval(f, env, mask, home)?;
                let av = self.eval(a, env, mask, home)?;
                if mask.eval(t).is_dynamic() {
                    Ok(MVal::Code(Expr::App(
                        Box::new(self.lift(fv)?),
                        Box::new(self.lift(av)?),
                    )))
                } else {
                    match fv {
                        MVal::Clo(c) => self.apply(&c, av),
                        other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
                            "static application of {other:?}"
                        )))),
                    }
                }
            }
            AnnExpr::Let(x, rhs, b) => {
                let v = self.eval(rhs, env, mask, home)?;
                let shadowed = env.insert(*x, v);
                let r = self.eval(b, env, mask, home);
                match shadowed {
                    Some(old) => {
                        env.insert(*x, old);
                    }
                    None => {
                        env.remove(x);
                    }
                }
                r
            }
            AnnExpr::Coerce(spec, inner) => {
                let v = self.eval(inner, env, mask, home)?;
                self.coerce(spec, v, mask)
            }
        }
    }

    fn apply(&mut self, c: &MClo, arg: MVal) -> Result<MVal, MixError> {
        let mut env = c.env.clone();
        env.insert(c.param, arg);
        let body = Rc::clone(&c.body);
        let home = c.home;
        self.eval(&body, &mut env, c.mask, &home)
    }

    fn call(
        &mut self,
        target: &QualName,
        derived_mask: BtMask,
        args: Vec<MVal>,
        home: &ModName,
    ) -> Result<MVal, MixError> {
        // Similix extern handling: a call into another module is a
        // primitive — fully reduce or leave residual, never specialise.
        if self.extern_mode && target.module != *home {
            if args.iter().all(fully_static) && args.iter().all(|a| to_value(a).is_some()) {
                let values: Vec<Value> = args.iter().map(|a| to_value(a).unwrap()).collect();
                let mut ev = mspec_lang::eval::Evaluator::new(self.resolved);
                let out = ev.call(target, values).map_err(|e| {
                    MixError::Spec(SpecError::TypeConfusion(format!(
                        "extern reduction of {target} failed: {e}"
                    )))
                })?;
                return from_value(&out).ok_or_else(|| {
                    MixError::Spec(SpecError::TypeConfusion(
                        "extern call returned a function".into(),
                    ))
                });
            }
            if !self.extern_needed.contains(target) {
                self.extern_needed.push(*target);
            }
            let mut lifted = Vec::with_capacity(args.len());
            for a in args {
                lifted.push(self.lift(a)?);
            }
            return Ok(MVal::Code(Expr::Call(CallName::from(*target), lifted)));
        }

        let def = *self
            .index
            .get(target)
            .ok_or(MixError::Spec(SpecError::UnknownFunction(*target)))?;
        let (mask, args) = if self.options.polyvariant {
            (derived_mask, args)
        } else {
            let mask = self.mono_masks.get(target).copied().unwrap_or(derived_mask);
            let shapes = def.sig.params.clone();
            let args = args
                .into_iter()
                .zip(shapes)
                .map(|(v, shape)| self.lift_to_shape(v, &shape, mask))
                .collect::<Result<Vec<_>, _>>()?;
            (mask, args)
        };

        if def.sig.unfoldable_under(mask) {
            self.stats.unfolds += 1;
            if self.recorder.is_enabled() {
                self.record_decision(
                    Decision::Unfold,
                    target,
                    mask,
                    def.sig.vars,
                    0,
                    false,
                    None,
                    format!(
                        "unfold term {} = S under {}",
                        def.sig.unfold,
                        mask.render(def.sig.vars)
                    ),
                );
            }
            let body = Rc::clone(&self.bodies[target]);
            let mut env: BTreeMap<Ident, MVal> =
                def.params.iter().cloned().zip(args).collect();
            let home = target.module;
            self.chain.push(*target);
            let r = self.eval(&body, &mut env, mask, &home)?;
            self.chain.pop();
            return Ok(r);
        }

        let mut leaves = Vec::new();
        let mut keys = Vec::with_capacity(args.len());
        let mut names: Vec<Ident> = Vec::new();
        for (arg, p) in args.iter().zip(&def.params) {
            let before = leaves.len();
            keys.push(msplit(arg, &mut leaves));
            let count = leaves.len() - before;
            for j in 0..count {
                names.push(if count == 1 {
                    *p
                } else {
                    Ident::new(format!("{p}_{j}"))
                });
            }
        }
        let memo_key = (*target, mask.0, keys);
        if let Some(name) = self.memo.get(&memo_key).copied() {
            self.stats.memo_hits += 1;
            if self.recorder.is_enabled() {
                self.record_decision(
                    Decision::MemoHit,
                    target,
                    mask,
                    def.sig.vars,
                    mkey_hash(&memo_key.2),
                    true,
                    Some(&name),
                    String::new(),
                );
            }
            return Ok(MVal::Code(Expr::Call(
                CallName::resolved(self.out_module.as_str(), name.as_str()),
                leaves,
            )));
        }
        if self.memo.len() >= self.options.budget.max_specialisations {
            let hash = mkey_hash(&memo_key.2);
            return Err(
                self.budget_error(BudgetResource::Specialisations, Some((*target, hash)))
            );
        }
        if self.pending.len() >= self.options.budget.max_pending {
            let hash = mkey_hash(&memo_key.2);
            return Err(self.budget_error(BudgetResource::Pending, Some((*target, hash))));
        }
        let counter = self.counters.entry(*target).or_insert(0);
        *counter += 1;
        let resid_name = Ident::new(format!("{}_{}", target.name, counter));
        let skel = if self.recorder.is_enabled() { mkey_hash(&memo_key.2) } else { 0 };
        self.memo.insert(memo_key, resid_name);
        if self.recorder.is_enabled() {
            self.record_decision(
                Decision::Residualise,
                target,
                mask,
                def.sig.vars,
                skel,
                true,
                Some(&resid_name),
                format!(
                    "unfold term {} = D under {}",
                    def.sig.unfold,
                    mask.render(def.sig.vars)
                ),
            );
        }
        let formals = dedupe(names);
        let mut next = 0;
        let env: BTreeMap<Ident, MVal> = def
            .params
            .iter()
            .cloned()
            .zip(args.iter().map(|a| mrebuild(a, &formals, &mut next)))
            .collect();
        self.pending.push_back(MPending {
            target: *target,
            mask,
            env,
            resid_name,
            formals,
        });
        self.recorder.observe("mix.pending_depth", self.pending.len() as u64);
        Ok(MVal::Code(Expr::Call(
            CallName::resolved(self.out_module.as_str(), resid_name.as_str()),
            leaves,
        )))
    }

    fn coerce(&mut self, spec: &CoerceSpec, v: MVal, mask: BtMask) -> Result<MVal, MixError> {
        match spec {
            CoerceSpec::Id | CoerceSpec::Var { .. } => Ok(v),
            CoerceSpec::Base { from, to } | CoerceSpec::Fun { from, to } => {
                if !mask.eval(from).is_dynamic() && mask.eval(to).is_dynamic() {
                    Ok(MVal::Code(self.lift(v)?))
                } else {
                    Ok(v)
                }
            }
            CoerceSpec::List { from, to, elem } => {
                if mask.eval(from).is_dynamic() {
                    Ok(v)
                } else if mask.eval(to).is_dynamic() {
                    Ok(MVal::Code(self.lift(v)?))
                } else {
                    self.coerce_spine(elem, v, mask)
                }
            }
        }
    }

    fn coerce_spine(
        &mut self,
        elem: &CoerceSpec,
        v: MVal,
        mask: BtMask,
    ) -> Result<MVal, MixError> {
        match v {
            MVal::Nil => Ok(MVal::Nil),
            MVal::Cons(h, t) => {
                let h2 = self.coerce(elem, (*h).clone(), mask)?;
                let t2 = self.coerce_spine(elem, (*t).clone(), mask)?;
                Ok(MVal::Cons(Rc::new(h2), Rc::new(t2)))
            }
            other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
                "spine coercion of {other:?}"
            )))),
        }
    }

    /// Lifts a value so that it matches `shape` under `mask` (needed in
    /// monovariant mode, where the merged mask can be more dynamic than
    /// the value).
    fn lift_to_shape(
        &mut self,
        v: MVal,
        shape: &SigShape,
        mask: BtMask,
    ) -> Result<MVal, MixError> {
        let top_dynamic = mask.eval(shape.top()).is_dynamic();
        match (top_dynamic, &v) {
            (false, _) => match (shape, v) {
                (SigShape::List(elem, _), MVal::Cons(h, t)) => {
                    let h2 = self.lift_to_shape((*h).clone(), elem, mask)?;
                    let t2 =
                        self.lift_to_shape(MVal::clone(&t), &SigShape::List(elem.clone(), shape.top().clone()), mask)?;
                    Ok(MVal::Cons(Rc::new(h2), Rc::new(t2)))
                }
                (_, v) => Ok(v),
            },
            (true, MVal::Code(_)) => Ok(v),
            (true, _) => Ok(MVal::Code(self.lift(v)?)),
        }
    }

    fn lift(&mut self, v: MVal) -> Result<Expr, MixError> {
        match v {
            MVal::Code(e) => Ok(e),
            MVal::Nat(n) => Ok(Expr::Nat(n)),
            MVal::Bool(b) => Ok(Expr::Bool(b)),
            MVal::Nil => Ok(Expr::Nil),
            MVal::Cons(h, t) => {
                let h2 = self.lift((*h).clone())?;
                let t2 = self.lift((*t).clone())?;
                Ok(Expr::Prim(PrimOp::Cons, vec![h2, t2]))
            }
            MVal::Clo(c) => {
                let x = self.fresh(c.param.as_str());
                let body = self.apply(&c, MVal::Code(Expr::Var(x)))?;
                let body = self.lift(body)?;
                Ok(Expr::Lam(x, Box::new(body)))
            }
        }
    }
}

/// Structural hash of a split skeleton (for budget diagnostics; mix has
/// no incremental skeleton hashing like the engine's `split_hashed`).
fn mkey_hash(keys: &[MKey]) -> u64 {
    use std::hash::{Hash as _, Hasher as _};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    keys.hash(&mut h);
    h.finish()
}

fn dedupe(names: Vec<Ident>) -> Vec<Ident> {
    let mut seen: Vec<Ident> = Vec::new();
    let mut out = Vec::with_capacity(names.len());
    for n in names {
        if !seen.contains(&n) {
            seen.push(n);
            out.push(n);
            continue;
        }
        let mut k = 2;
        loop {
            let cand = Ident::new(format!("{n}'{k}"));
            if !seen.contains(&cand) {
                seen.push(cand);
                out.push(cand);
                break;
            }
            k += 1;
        }
    }
    out
}

/// Collects every call site (target, instantiation) in an annotated
/// expression, including under lambdas.
fn collect_calls(e: &AnnExpr, out: &mut Vec<(QualName, Vec<mspec_bta::BtTerm>)>) {
    match e {
        AnnExpr::Nat(_) | AnnExpr::Bool(_) | AnnExpr::Nil | AnnExpr::Var(_) => {}
        AnnExpr::Prim(_, _, args) => args.iter().for_each(|a| collect_calls(a, out)),
        AnnExpr::Call { target, inst, args } => {
            out.push((*target, inst.clone()));
            args.iter().for_each(|a| collect_calls(a, out));
        }
        AnnExpr::If(_, c, t, f) => {
            collect_calls(c, out);
            collect_calls(t, out);
            collect_calls(f, out);
        }
        AnnExpr::Lam(_, b) => collect_calls(b, out),
        AnnExpr::App(_, f, a) => {
            collect_calls(f, out);
            collect_calls(a, out);
        }
        AnnExpr::Let(_, rhs, b) => {
            collect_calls(rhs, out);
            collect_calls(b, out);
        }
        AnnExpr::Coerce(_, inner) => collect_calls(inner, out),
    }
}

fn mix_static_prim(op: PrimOp, vals: &[MVal]) -> Result<MVal, MixError> {
    use PrimOp::*;
    let nat = |v: &MVal| match v {
        MVal::Nat(n) => Ok(*n),
        other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
            "static {} on {other:?}",
            op.symbol()
        )))),
    };
    let boolean = |v: &MVal| match v {
        MVal::Bool(b) => Ok(*b),
        other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
            "static {} on {other:?}",
            op.symbol()
        )))),
    };
    match op {
        Add => Ok(MVal::Nat(nat(&vals[0])?.wrapping_add(nat(&vals[1])?))),
        Sub => Ok(MVal::Nat(nat(&vals[0])?.saturating_sub(nat(&vals[1])?))),
        Mul => Ok(MVal::Nat(nat(&vals[0])?.wrapping_mul(nat(&vals[1])?))),
        Div => {
            let n0 = nat(&vals[0])?;
            match n0.checked_div(nat(&vals[1])?) {
                Some(q) => Ok(MVal::Nat(q)),
                None => Err(MixError::Spec(SpecError::DivByZero)),
            }
        }
        Eq => Ok(MVal::Bool(nat(&vals[0])? == nat(&vals[1])?)),
        Lt => Ok(MVal::Bool(nat(&vals[0])? < nat(&vals[1])?)),
        Leq => Ok(MVal::Bool(nat(&vals[0])? <= nat(&vals[1])?)),
        And => Ok(MVal::Bool(boolean(&vals[0])? && boolean(&vals[1])?)),
        Or => Ok(MVal::Bool(boolean(&vals[0])? || boolean(&vals[1])?)),
        Not => Ok(MVal::Bool(!boolean(&vals[0])?)),
        Cons => Ok(MVal::Cons(Rc::new(vals[0].clone()), Rc::new(vals[1].clone()))),
        Head => match &vals[0] {
            MVal::Cons(h, _) => Ok((**h).clone()),
            MVal::Nil => Err(MixError::Spec(SpecError::EmptyList("head"))),
            other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
                "static head of {other:?}"
            )))),
        },
        Tail => match &vals[0] {
            MVal::Cons(_, t) => Ok((**t).clone()),
            MVal::Nil => Err(MixError::Spec(SpecError::EmptyList("tail"))),
            other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
                "static tail of {other:?}"
            )))),
        },
        Null => match &vals[0] {
            MVal::Nil => Ok(MVal::Bool(true)),
            MVal::Cons(..) => Ok(MVal::Bool(false)),
            other => Err(MixError::Spec(SpecError::TypeConfusion(format!(
                "static null of {other:?}"
            )))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_lang::eval::Evaluator;

    const POWER: &str =
        "module Power where\npower n x = if n == 1 then x else x * power (n - 1) x\n";

    fn run_residual(outcome: &MixOutcome, args: Vec<Value>) -> Value {
        let rp = resolve(outcome.residual.program.clone()).unwrap();
        let mut ev = Evaluator::new(&rp);
        ev.call(&outcome.residual.entry, args).unwrap()
    }

    #[test]
    fn mix_power_static_exponent() {
        let out = mix_specialise(
            POWER,
            "Power",
            "power",
            vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic],
            MixOptions::default(),
        )
        .unwrap();
        assert_eq!(run_residual(&out, vec![Value::nat(2)]), Value::nat(8));
        // Monolithic: a single residual module.
        assert_eq!(out.residual.program.modules.len(), 1);
        assert_eq!(out.residual.program.modules[0].name.as_str(), "Spec");
    }

    #[test]
    fn mix_power_dynamic_exponent() {
        let out = mix_specialise(
            POWER,
            "Power",
            "power",
            vec![SpecArg::Dynamic, SpecArg::Static(Value::nat(2))],
            MixOptions::default(),
        )
        .unwrap();
        assert_eq!(run_residual(&out, vec![Value::nat(8)]), Value::nat(256));
    }

    #[test]
    fn polyvariant_creates_two_variants() {
        // One function used at two different binding times.
        let src = "module M where\n\
                   f a b = if a == 0 then b else a + b\n\
                   main x y = f 1 x + f y 2\n";
        let out = mix_specialise(
            src,
            "M",
            "main",
            vec![SpecArg::Dynamic, SpecArg::Dynamic],
            MixOptions::default(),
        )
        .unwrap();
        assert_eq!(
            run_residual(&out, vec![Value::nat(10), Value::nat(0)]),
            Value::nat(13)
        );
    }

    #[test]
    fn monovariant_merges_and_stays_correct() {
        let src = "module M where\n\
                   f a b = if a == 0 then b else a + b\n\
                   main x y = f 1 x + f y 2\n";
        let out = mix_specialise(
            src,
            "M",
            "main",
            vec![SpecArg::Dynamic, SpecArg::Dynamic],
            MixOptions { polyvariant: false, ..MixOptions::default() },
        )
        .unwrap();
        assert_eq!(
            run_residual(&out, vec![Value::nat(10), Value::nat(0)]),
            Value::nat(13)
        );
        // Monovariant merging yields at most one variant of f.
        let defs = &out.residual.program.modules[0].defs;
        let f_variants = defs.iter().filter(|d| d.name.as_str().starts_with("f_")).count();
        assert!(f_variants <= 1, "{defs:?}");
    }

    #[test]
    fn mix_handles_higher_order_code() {
        let src = "module M where\n\
                   twice f x = f @ (f @ x)\n\
                   main y = twice (\\v -> v + 3) y\n";
        let out = mix_specialise(
            src,
            "M",
            "main",
            vec![SpecArg::Dynamic],
            MixOptions::default(),
        )
        .unwrap();
        assert_eq!(run_residual(&out, vec![Value::nat(1)]), Value::nat(7));
    }

    #[test]
    fn unknown_entry_is_reported() {
        let r = mix_specialise(POWER, "Power", "nope", vec![], MixOptions::default());
        assert!(matches!(r, Err(MixError::Spec(SpecError::UnknownEntry(_)))));
    }

    #[test]
    fn fuel_budget_admits_exactly_the_steps_taken() {
        let args = || vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic];
        let out =
            mix_specialise(POWER, "Power", "power", args(), MixOptions::default()).unwrap();
        let steps = out.stats.steps;
        // A budget of exactly the steps the session takes succeeds...
        let exact = mix_specialise(POWER, "Power", "power", args(), MixOptions {
            budget: SpecBudget::with_steps(steps),
            ..MixOptions::default()
        });
        assert!(exact.is_ok(), "budget == steps must suffice: {exact:?}");
        // ...while one unit less fails, naming the function that was
        // being specialised.
        let short = mix_specialise(POWER, "Power", "power", args(), MixOptions {
            budget: SpecBudget::with_steps(steps - 1),
            ..MixOptions::default()
        })
        .unwrap_err();
        match short {
            MixError::Spec(SpecError::BudgetExhausted {
                resource: BudgetResource::Steps,
                witness,
                chain,
                ..
            }) => {
                assert_eq!(witness.module.as_str(), "Power");
                assert!(!chain.is_empty());
            }
            other => panic!("expected a step-budget error, got {other:?}"),
        }
    }

    #[test]
    fn diverging_static_recursion_exhausts_fuel_cleanly() {
        // Unfolding hundreds of calls deep needs more stack than the
        // default debug test thread provides.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(diverging_static_recursion_body)
            .unwrap()
            .join()
            .unwrap();
    }

    fn diverging_static_recursion_body() {
        let src = "module M where\nloop n = loop (n + 1)\nmain x = loop 0 + x\n";
        let err = mix_specialise(src, "M", "main", vec![SpecArg::Dynamic], MixOptions {
            budget: SpecBudget::with_steps(5_000),
            ..MixOptions::default()
        })
        .unwrap_err();
        match err {
            MixError::Spec(SpecError::BudgetExhausted {
                resource: BudgetResource::Steps,
                witness,
                chain,
                ..
            }) => {
                assert_eq!(witness.name.as_str(), "loop");
                // The unfold chain shows the diverging cycle.
                assert!(chain.iter().filter(|q| q.name.as_str() == "loop").count() >= 2);
            }
            other => panic!("expected a step-budget error, got {other:?}"),
        }
    }
}

//! The `mspec` command-line driver.
//!
//! ```text
//! mspec check   FILE                      parse, resolve, typecheck
//! mspec analyse FILE [--force-residual M.f,...]
//!                                         print annotated defs + BT schemes
//! mspec cogen   FILE --out DIR            write .bti/.gx/GenM.txt per module
//! mspec spec    FILE --entry M.f --args DIVISION
//!               [--strategy bf|df] [--out DIR] [--force-residual M.f,...]
//!                                         specialise and print the residual
//! mspec mix     FILE --entry M.f --args DIVISION
//!                                         monolithic-mix baseline specialiser
//! mspec run     FILE --entry M.f --args VALUES
//!               [--runner tree|vm] [--vm-opt none|fuse]
//!                                         interpret the source program
//! mspec explain FN --log FILE [--req ID]  provenance of FN's residual
//!                                         versions from a --metrics log
//!                                         (--req: one request's stream)
//! mspec trace-check FILE                  validate a trace/metrics file
//! mspec trace flame FILE [--req ID]       fold a JSONL trace into
//!                                         collapsed stacks (flamegraph)
//! mspec cache gc --cache-dir DIR          prune the residual cache
//!               [--max-age-secs N] [--max-bytes N]
//! mspec top     --connect HOST:PORT       live daemon dashboard
//!               [--interval-ms N] [--once]
//! mspec serve   [--stdio | --port N]      specialisation-as-a-service daemon
//!               [--max-clients N] [--queue-depth N] [--deadline-ms N]
//!               [--client-fuel N] [--threads N] [--chaos] [--trace FILE]
//!               [--vm-opt none|fuse] [--memo-cap N] [--cache-dir DIR]
//!               [--cache-gc-bytes N] [--crash-dir DIR]
//! mspec client  ACTION [FILE]             talk to a daemon (ACTION: spec,
//!               (--connect HOST:PORT | --spawn)   run, health, stats, metrics,
//!               [--entry M.f --args DIV] [--deadline-ms N]  fault, shutdown)
//!               [--values VALS] [--run-fuel N]    (run: specialise then
//!               [--retries N] [--backoff-ms N]     execute the residual)
//! ```
//!
//! Every pipeline command additionally accepts `--trace FILE` (Chrome
//! `trace_event` JSON, loadable in Perfetto / `chrome://tracing`) and
//! `--metrics FILE` (flat JSONL event log, the input of `mspec
//! explain`); either flag enables the telemetry recorder for the run.
//!
//! `DIVISION` is a comma-separated list, one entry per parameter:
//! `S:<value>` (static, with the value), `D` (dynamic), `P:<n>`
//! (a list with static spine of length n, dynamic elements).
//! `VALUES` are comma-separated literals: naturals, `true`/`false`, or
//! `[v;v;…]` lists (semicolon-separated to avoid clashing with the
//! argument separator).

use mspec_core::telemetry::{self, Snapshot};
use mspec_core::{
    write_residual, BuildMode, EngineOptions, ModuleOutcome, OnExhaustion, Pipeline,
    PipelineError, Recorder, Runner, SpecBudget, Strategy, VmOpt,
};
use mspec_lang::eval::with_big_stack;
use mspec_lang::QualName;
use mspec_sched::{parse_threads, ThreadOrigin};
use mspec_serve::{parse_division, parse_values, ServeConfig, ServeKnob};
use std::collections::BTreeSet;
use std::num::NonZeroUsize;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    with_big_stack(move || match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mspec: {msg}");
            ExitCode::FAILURE
        }
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "check" => check(&args[1..]),
        "build" => build_cmd(&args[1..]),
        "link-spec" => link_spec(&args[1..]),
        "analyse" => analyse(&args[1..]),
        "cogen" => cogen(&args[1..]),
        "spec" => spec(&args[1..]),
        "mix" => mix_cmd(&args[1..]),
        "run" => run_program(&args[1..]),
        "explain" => explain_cmd(&args[1..]),
        "trace-check" => trace_check_cmd(&args[1..]),
        "trace" => trace_cmd(&args[1..]),
        "cache" => cache_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "client" => client_cmd(&args[1..]),
        "top" => top_cmd(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: mspec <check|analyse|cogen|spec|mix|run|build|link-spec|explain|trace-check|trace|cache|serve|client|top> FILE [options]\n\
     \n\
     check   FILE                          typecheck, print schemes\n\
     analyse FILE [--force-residual M.f,…] print BT schemes + annotations\n\
     cogen   FILE --out DIR                write .bti/.gx per module\n\
     spec    FILE --entry M.f --args DIV   specialise (DIV: S:<v>,D,P:<n>)\n\
             [--strategy bf|df] [--out DIR] [--force-residual M.f,…]\n\
             [--fuel N] [--max-spec N] [--on-exhaustion error|generalise]\n\
     mix     FILE --entry M.f --args DIV   monolithic-mix baseline specialiser\n\
     run     FILE --entry M.f --args VALS  run the source program\n\
             [--runner tree|vm] [--vm-opt none|fuse]\n\
     build   SRCDIR --out DIR              incremental cogen of a module tree\n\
     link-spec DIR --entry M.f --args DIV  specialise from .gx files (no source)\n\
     explain FN --log FILE [--req ID]      provenance of FN from a --metrics\n\
                                           log (--req: one request's stream)\n\
     trace-check FILE                      validate a --trace/--metrics/\n\
                                           metrics-exposition file\n\
     trace flame FILE [--req ID]           fold a JSONL trace into collapsed\n\
                                           stacks (flamegraph.pl/speedscope)\n\
     cache gc --cache-dir DIR              prune the residual cache by age\n\
             [--max-age-secs N] [--max-bytes N]   and/or size, oldest first\n\
     serve   [--stdio | --port N]          long-lived specialisation daemon\n\
             [--max-clients N] [--queue-depth N] [--deadline-ms N]\n\
             [--client-fuel N] [--threads N] [--chaos] [--trace FILE]\n\
             [--vm-opt none|fuse] [--memo-cap N] [--cache-dir DIR]\n\
             [--cache-gc-bytes N] [--crash-dir DIR]\n\
     client  ACTION [FILE]                 talk to a daemon; ACTION is one of\n\
             (--connect HOST:PORT|--spawn)  spec, run, health, stats, metrics,\n\
             [--entry M.f --args DIV]       fault, shutdown; run also takes\n\
             [--dir DIR] [--deadline-ms N]  [--values VALS] [--run-fuel N]\n\
             [--retries N] [--backoff-ms N] [--fuel N] [--max-spec N]\n\
     top     --connect HOST:PORT           live dashboard over the daemon's\n\
             [--interval-ms N] [--once]     health + metrics endpoints\n\
     \n\
     spec, mix, build and link-spec also accept --trace FILE (Chrome\n\
     trace_event JSON) and --metrics FILE (JSONL event log).\n\
     spec, link-spec and serve accept --cache-dir DIR (fallback: the\n\
     MSPEC_CACHE_DIR env var), a persistent residual cache: a warm run\n\
     with an unchanged program and request serves the stored residual\n\
     byte-identically with zero engine steps.\n\
     build, spec and link-spec accept --threads N (work-stealing worker\n\
     count; the MSPEC_THREADS env var is the fallback, then\n\
     available_parallelism). Residual output is byte-identical at every\n\
     thread count"
        .to_string()
}

struct Opts {
    file: String,
    entry: Option<(String, String)>,
    args: Option<String>,
    out: Option<String>,
    strategy: Strategy,
    force_residual: BTreeSet<QualName>,
    fuel: Option<u64>,
    max_spec: Option<usize>,
    on_exhaustion: OnExhaustion,
    runner: Runner,
    vm_opt: VmOpt,
    threads: Option<NonZeroUsize>,
    trace: Option<String>,
    metrics: Option<String>,
    log: Option<String>,
    cache_dir: Option<String>,
    /// Request-scoped trace id filter (`--req`, for `explain` and
    /// `trace flame` over daemon traces).
    req: Option<u64>,
}

impl Opts {
    /// Engine options assembled from the budget flags; unset flags keep
    /// the [`SpecBudget`] defaults.
    fn engine_options(&self) -> EngineOptions {
        let mut budget = SpecBudget::default();
        if let Some(steps) = self.fuel {
            budget.steps = steps;
        }
        if let Some(n) = self.max_spec {
            budget.max_specialisations = n;
        }
        EngineOptions {
            strategy: self.strategy,
            budget,
            on_exhaustion: self.on_exhaustion,
            ..EngineOptions::default()
        }
    }

    /// The run's worker count: the `--threads` flag wins, then the
    /// `MSPEC_THREADS` environment variable. `Ok(None)` means neither
    /// knob is set, and commands keep their default execution mode.
    /// Zero or garbage from either source is a structured
    /// [`PipelineError::Threads`], never a panic.
    fn requested_threads(&self) -> Result<Option<NonZeroUsize>, String> {
        if self.threads.is_some() {
            return Ok(self.threads);
        }
        match std::env::var("MSPEC_THREADS") {
            Ok(v) => parse_threads(&v, ThreadOrigin::Env)
                .map(Some)
                .map_err(|e| PipelineError::from(e).to_string()),
            Err(_) => Ok(None),
        }
    }

    /// The run's persistent residual cache: `--cache-dir`, then the
    /// `MSPEC_CACHE_DIR` environment variable; `Ok(None)` when neither
    /// is set.
    fn disk_cache(&self) -> Result<Option<mspec_cache::DiskCache>, String> {
        let dir = self
            .cache_dir
            .clone()
            .or_else(|| std::env::var(mspec_cache::CACHE_DIR_ENV).ok());
        let Some(dir) = dir else { return Ok(None) };
        mspec_cache::DiskCache::open(&dir)
            .map(Some)
            .map_err(|e| format!("cannot open cache dir {dir}: {e}"))
    }

    /// The run's recorder: enabled iff an output was requested, so
    /// untraced runs pay only a null-pointer check per telemetry call.
    fn recorder(&self) -> Recorder {
        if self.trace.is_some() || self.metrics.is_some() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Drains the recorder and writes the requested trace/metrics files,
    /// plus a one-paragraph summary on stderr.
    fn finish_telemetry(&self, rec: &Recorder) -> Result<(), String> {
        if !rec.is_enabled() {
            return Ok(());
        }
        let snap = rec.snapshot();
        if let Some(path) = &self.trace {
            std::fs::write(path, snap.to_chrome().write_compact())
                .map_err(|e| format!("cannot write trace {path}: {e}"))?;
            eprintln!("wrote trace {path}");
        }
        if let Some(path) = &self.metrics {
            std::fs::write(path, snap.to_jsonl())
                .map_err(|e| format!("cannot write metrics {path}: {e}"))?;
            eprintln!("wrote metrics {path}");
        }
        eprint!("{}", snap.summary());
        Ok(())
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        file: String::new(),
        entry: None,
        args: None,
        out: None,
        strategy: Strategy::BreadthFirst,
        force_residual: BTreeSet::new(),
        fuel: None,
        max_spec: None,
        on_exhaustion: OnExhaustion::default(),
        runner: Runner::default(),
        vm_opt: VmOpt::default(),
        threads: None,
        trace: None,
        metrics: None,
        log: None,
        cache_dir: None,
        req: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => {
                let v = it.next().ok_or("--entry needs M.f")?;
                let (m, f) = v
                    .split_once('.')
                    .ok_or_else(|| format!("entry `{v}` must be Module.function"))?;
                opts.entry = Some((m.to_string(), f.to_string()));
            }
            "--args" => {
                opts.args = Some(it.next().ok_or("--args needs a value")?.clone());
            }
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            "--strategy" => {
                opts.strategy = match it.next().map(String::as_str) {
                    Some("bf") => Strategy::BreadthFirst,
                    Some("df") => Strategy::DepthFirst,
                    other => return Err(format!("--strategy must be bf or df, got {other:?}")),
                };
            }
            "--fuel" => {
                let v = it.next().ok_or("--fuel needs a step count")?;
                opts.fuel =
                    Some(v.parse::<u64>().map_err(|_| format!("bad --fuel value `{v}`"))?);
            }
            "--max-spec" => {
                let v = it.next().ok_or("--max-spec needs a count")?;
                opts.max_spec =
                    Some(v.parse::<usize>().map_err(|_| format!("bad --max-spec value `{v}`"))?);
            }
            "--on-exhaustion" => {
                opts.on_exhaustion = match it.next().map(String::as_str) {
                    Some("error") => OnExhaustion::Error,
                    Some("generalise") => OnExhaustion::Generalise,
                    other => {
                        return Err(format!(
                            "--on-exhaustion must be error or generalise, got {other:?}"
                        ))
                    }
                };
            }
            "--runner" => {
                let v = it.next().ok_or("--runner needs tree or vm")?;
                opts.runner = Runner::parse(v)
                    .ok_or_else(|| format!("--runner must be tree or vm, got `{v}`"))?;
            }
            "--vm-opt" => {
                let v = it.next().ok_or("--vm-opt needs none or fuse")?;
                opts.vm_opt = VmOpt::parse(v)
                    .ok_or_else(|| format!("--vm-opt must be none or fuse, got `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a worker count")?;
                opts.threads = Some(
                    parse_threads(v, ThreadOrigin::Flag)
                        .map_err(|e| PipelineError::from(e).to_string())?,
                );
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a file")?.clone());
            }
            "--log" => {
                opts.log = Some(it.next().ok_or("--log needs a file")?.clone());
            }
            "--cache-dir" => {
                opts.cache_dir = Some(it.next().ok_or("--cache-dir needs a directory")?.clone());
            }
            "--req" => {
                let v = it.next().ok_or("--req needs a request trace id")?;
                // Daemon trace ids are fnv64 hashes printed in hex by
                // `trace-check`; accept decimal and 0x-prefixed hex.
                let parsed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse::<u64>(), |h| u64::from_str_radix(h, 16));
                opts.req = Some(parsed.map_err(|_| format!("bad --req value `{v}`"))?);
            }
            "--force-residual" => {
                let v = it.next().ok_or("--force-residual needs M.f[,M.g…]")?;
                for part in v.split(',') {
                    let (m, f) = part
                        .split_once('.')
                        .ok_or_else(|| format!("`{part}` must be Module.function"))?;
                    opts.force_residual.insert(QualName::new(m, f));
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => {
                if opts.file.is_empty() {
                    opts.file = other.to_string();
                } else {
                    return Err(format!("unexpected argument `{other}`"));
                }
            }
        }
    }
    if opts.file.is_empty() {
        return Err("missing FILE".to_string());
    }
    Ok(opts)
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn build_pipeline(opts: &Opts) -> Result<Pipeline, String> {
    build_pipeline_traced(opts, &Recorder::disabled())
}

fn build_pipeline_traced(opts: &Opts, rec: &Recorder) -> Result<Pipeline, String> {
    let src = read_source(&opts.file)?;
    let threads = opts.requested_threads()?;
    if rec.is_enabled() || threads.is_some() {
        let mode = match threads {
            Some(n) => BuildMode::Threads(n),
            None => BuildMode::Parallel,
        };
        let program = {
            let _span = rec.span("parse");
            mspec_lang::parser::parse_program(&src).map_err(|e| e.to_string())?
        };
        Pipeline::from_program_traced(program, &opts.force_residual, mode, rec)
            .map(|(p, _)| p)
            .map_err(|e| e.to_string())
    } else {
        Pipeline::from_source_with(&src, &opts.force_residual).map_err(|e| e.to_string())
    }
}

fn build_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let out = opts.out.as_deref().ok_or("build needs --out DIR")?;
    let mut bopts = mspec_cogen::build::BuildOptions {
        threads: opts.requested_threads()?,
        ..Default::default()
    };
    for q in &opts.force_residual {
        bopts
            .force_residual
            .entry(q.module)
            .or_default()
            .insert(q.name);
    }
    let rec = opts.recorder();
    let report = mspec_cogen::build::build_traced(&opts.file, out, &bopts, &rec)
        .map_err(|e| e.to_string())?;
    for (name, outcome) in &report.outcomes {
        println!(
            "{name}: {}",
            match outcome {
                ModuleOutcome::Built => "rebuilt",
                ModuleOutcome::UpToDate => "up to date",
                // cogen builds abort on the first error, so these two
                // never reach a printed report; keep them total anyway.
                ModuleOutcome::Failed(_) => "failed",
                ModuleOutcome::Skipped { .. } => "skipped",
            }
        );
    }
    println!("{} rebuilt, {} up to date", report.rebuilt(), report.up_to_date());
    opts.finish_telemetry(&rec)
}

fn link_spec(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let (m, f) = opts.entry.clone().ok_or("link-spec needs --entry M.f")?;
    let division = opts.args.clone().ok_or("link-spec needs --args DIVISION")?;
    let spec_args = parse_division(&division)?;
    let rec = opts.recorder();
    // Persistent residual cache. The key embeds the directory's current
    // `.bti` interface identity — recomputing it from disk *is* the
    // staleness check (the same `StaleInterface` identity the daemon's
    // memo uses), so a changed interface simply misses and re-links.
    let cache = opts.disk_cache()?;
    let key = cache.as_ref().map(|_| {
        mspec_cache::spec_key(
            &mspec_cache::dir_source_key(
                &opts.file,
                mspec_cache::dir_identity(&opts.file),
            ),
            &format!("{m}.{f}"),
            &division,
            opts.fuel,
            opts.max_spec,
            opts.on_exhaustion,
            opts.strategy,
        )
    });
    if opts.out.is_none() {
        if let (Some(c), Some(k)) = (&cache, &key) {
            if let Some(hit) = c.get(k) {
                println!("{}", hit.residual);
                eprintln!("{}", hit.stats.summary(hit.entry.clone()));
                eprintln!(
                    "cache hit: residual served from {} (0 engine steps this run)",
                    c.root().display()
                );
                return opts.finish_telemetry(&rec);
            }
        }
    }
    let linked =
        mspec_cogen::build::link_dir_traced(&opts.file, &rec).map_err(|e| e.to_string())?;
    let entry = QualName::new(m.as_str(), f.as_str());
    let (residual, stats) = match opts.requested_threads()? {
        Some(n) => {
            let (residual, out) = mspec_genext::specialise_threaded(
                &linked,
                &entry,
                spec_args,
                opts.engine_options(),
                n,
                rec.clone(),
            )
            .map_err(|e| e.to_string())?;
            (residual, out.stats)
        }
        None => {
            let mut engine =
                mspec_genext::Engine::with_recorder(&linked, opts.engine_options(), rec.clone());
            let residual = engine.specialise(&entry, spec_args).map_err(|e| e.to_string())?;
            let stats = *engine.stats();
            (residual, stats)
        }
    };
    // Bytes of `.gx` function payload decoded on demand during the
    // run; together with the load-time count in `link_dir_traced` this
    // is the seekable format's total decode cost.
    rec.count("io.gx_bytes_decoded", linked.lazy_decoded_bytes());
    let residual_text = mspec_lang::pretty::pretty_program(&residual.program);
    println!("{residual_text}");
    eprintln!("{}", stats.summary(residual.entry.to_string()));
    if let Some(dir) = &opts.out {
        let files = write_residual(dir, &residual).map_err(|e| e.to_string())?;
        for f in files {
            eprintln!("wrote {}", f.display());
        }
    }
    if let (Some(c), Some(k)) = (&cache, &key) {
        let entry = mspec_cache::CacheEntry {
            key: k.clone(),
            entry: residual.entry.to_string(),
            residual: residual_text,
            stats,
        };
        match c.put(&entry) {
            Ok(path) => eprintln!("cached residual at {}", path.display()),
            Err(e) => eprintln!("warning: could not store cache entry: {e}"),
        }
    }
    opts.finish_telemetry(&rec)
}

fn check(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let pipeline = build_pipeline(&opts)?;
    println!("ok: {} modules, {} functions", pipeline.resolved().program().modules.len(),
        pipeline.types().len());
    for (q, scheme) in pipeline.types().iter() {
        println!("  {q} : {scheme}");
    }
    Ok(())
}

fn analyse(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let pipeline = build_pipeline(&opts)?;
    for module in &pipeline.annotated().modules {
        println!("-- module {}", module.name);
        for def in &module.defs {
            println!("  {}.{} : {}", module.name, def.name, def.sig);
            println!("    {def}");
        }
    }
    Ok(())
}

fn cogen(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let dir = opts.out.as_deref().ok_or("cogen needs --out DIR")?;
    let src = read_source(&opts.file)?;
    let resolved = mspec_lang::resolve::resolve(
        mspec_lang::parser::parse_program(&src).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    for name in resolved.graph().topo_order() {
        let module = resolved.program().module(name.as_str()).unwrap();
        let forced: BTreeSet<mspec_lang::Ident> = opts
            .force_residual
            .iter()
            .filter(|q| q.module == *name)
            .map(|q| q.name)
            .collect();
        let out = mspec_cogen::files::cogen_module(module, dir, &forced)
            .map_err(|e| e.to_string())?;
        println!("cogen {name}: {} {} {}", out.bti.display(), out.gx.display(),
            out.gen_text.display());
    }
    Ok(())
}

fn spec(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let (m, f) = opts.entry.clone().ok_or("spec needs --entry M.f")?;
    let division = opts.args.clone().ok_or("spec needs --args DIVISION")?;
    let spec_args = parse_division(&division)?;
    let rec = opts.recorder();
    // Persistent residual cache, probed before the pipeline is even
    // built: a warm run skips parse, BTA, cogen *and* the engine.
    // `--force-residual` perturbs the residual without being part of
    // the shared key (the daemon has no such knob), and `--out` needs
    // the typed residual — both opt out.
    let cache = if opts.force_residual.is_empty() && opts.out.is_none() {
        opts.disk_cache()?
    } else {
        None
    };
    let key = match &cache {
        Some(_) => {
            let src = read_source(&opts.file)?;
            Some(mspec_cache::spec_key(
                &mspec_cache::inline_source_key(&src),
                &format!("{m}.{f}"),
                &division,
                opts.fuel,
                opts.max_spec,
                opts.on_exhaustion,
                opts.strategy,
            ))
        }
        None => None,
    };
    if let (Some(c), Some(k)) = (&cache, &key) {
        if let Some(hit) = c.get(k) {
            println!("{}", hit.residual);
            eprintln!("{}", hit.stats.summary(hit.entry.clone()));
            eprintln!(
                "cache hit: residual served from {} (0 engine steps this run)",
                c.root().display()
            );
            return opts.finish_telemetry(&rec);
        }
    }
    let pipeline = build_pipeline_traced(&opts, &rec)?;
    let spec = match opts.requested_threads()? {
        Some(n) => pipeline
            .specialise_threaded(&m, &f, spec_args, opts.engine_options(), n, &rec)
            .map_err(|e| e.to_string())?,
        None => pipeline
            .specialise_traced(&m, &f, spec_args, opts.engine_options(), &rec)
            .map_err(|e| e.to_string())?,
    };
    println!("{}", spec.source());
    eprintln!("{}", spec.stats.summary(spec.residual.entry.to_string()));
    eprint!("{}", spec.provenance_report());
    if let Some(dir) = &opts.out {
        let files = write_residual(dir, &spec.residual).map_err(|e| e.to_string())?;
        for f in files {
            eprintln!("wrote {}", f.display());
        }
    }
    if let (Some(c), Some(k)) = (&cache, &key) {
        let entry = mspec_cache::CacheEntry {
            key: k.clone(),
            entry: spec.residual.entry.to_string(),
            residual: spec.source().to_string(),
            stats: spec.stats,
        };
        match c.put(&entry) {
            Ok(path) => eprintln!("cached residual at {}", path.display()),
            Err(e) => eprintln!("warning: could not store cache entry: {e}"),
        }
    }
    opts.finish_telemetry(&rec)
}

fn mix_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let (m, f) = opts.entry.clone().ok_or("mix needs --entry M.f")?;
    let division = opts.args.clone().ok_or("mix needs --args DIVISION")?;
    let spec_args = parse_division(&division)?;
    let src = read_source(&opts.file)?;
    let rec = opts.recorder();
    let mix_opts =
        mspec_mix::MixOptions { budget: opts.engine_options().budget, ..Default::default() };
    let outcome = mspec_mix::mix_specialise_traced(&src, &m, &f, spec_args, mix_opts, &rec)
        .map_err(|e| e.to_string())?;
    println!("{}", mspec_lang::pretty::pretty_program(&outcome.residual.program));
    eprintln!("{}", outcome.stats.summary(outcome.residual.entry.to_string()));
    if let Some(dir) = &opts.out {
        let files = write_residual(dir, &outcome.residual).map_err(|e| e.to_string())?;
        for f in files {
            eprintln!("wrote {}", f.display());
        }
    }
    opts.finish_telemetry(&rec)
}

fn explain_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let log = opts
        .log
        .as_deref()
        .ok_or("explain needs --log FILE (a JSONL event log written by --metrics)")?;
    let text = read_source(log)?;
    let snap = Snapshot::parse_jsonl(&text).map_err(|e| format!("{log}: {e}"))?;
    match telemetry::explain_req(&snap, &opts.file, opts.req) {
        Some(report) => {
            println!("{report}");
            Ok(())
        }
        None => {
            let scope = opts.req.map_or(String::new(), |r| format!(" for request {r:#x}"));
            Err(format!("no specialisation events for `{}`{scope} in {log}", opts.file))
        }
    }
}

/// `mspec trace flame FILE [--req ID]`: fold a JSONL trace's span tree
/// into collapsed-stack lines (`frame;frame value`), the input format
/// of `flamegraph.pl` and speedscope. The value is self time in µs.
fn trace_cmd(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("trace needs a subcommand: flame".to_string());
    };
    if sub != "flame" {
        return Err(format!("trace: unknown subcommand `{sub}` (expected flame)"));
    }
    let opts = parse_opts(&args[1..])?;
    let text = read_source(&opts.file)?;
    let snap = Snapshot::parse_jsonl(&text).map_err(|e| format!("{}: {e}", opts.file))?;
    let folded = telemetry::collapsed_stacks(&snap, opts.req);
    if folded.is_empty() {
        let scope = opts.req.map_or(String::new(), |r| format!(" for request {r:#x}"));
        return Err(format!("no spans{scope} in {}", opts.file));
    }
    print!("{folded}");
    Ok(())
}

/// `mspec cache gc`: prune a persistent residual cache by age and/or
/// total size (oldest entries first). Safe against concurrent readers —
/// a pruned entry is a future cache miss, nothing more.
fn cache_cmd(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("cache needs a subcommand: gc".to_string());
    };
    if sub != "gc" {
        return Err(format!("cache: unknown subcommand `{sub}` (expected gc)"));
    }
    let mut dir: Option<String> = None;
    let mut max_age_secs: Option<u64> = None;
    let mut max_bytes: Option<u64> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => dir = Some(it.next().ok_or("--cache-dir needs a directory")?.clone()),
            "--max-age-secs" => {
                let v = it.next().ok_or("--max-age-secs needs a value")?;
                max_age_secs = Some(v.parse().map_err(|_| format!("bad --max-age-secs `{v}`"))?);
            }
            "--max-bytes" => {
                let v = it.next().ok_or("--max-bytes needs a value")?;
                max_bytes = Some(v.parse().map_err(|_| format!("bad --max-bytes `{v}`"))?);
            }
            other => return Err(format!("cache gc: unknown option `{other}`")),
        }
    }
    let dir = dir
        .or_else(|| std::env::var(mspec_cache::CACHE_DIR_ENV).ok())
        .ok_or("cache gc needs --cache-dir DIR (or MSPEC_CACHE_DIR)")?;
    let cache = mspec_cache::DiskCache::open(&dir)
        .map_err(|e| format!("cannot open cache dir {dir}: {e}"))?;
    let r = cache
        .gc(max_age_secs, max_bytes)
        .map_err(|e| format!("cache gc failed in {dir}: {e}"))?;
    println!(
        "{dir}: {} entr{} scanned, {} removed, {} bytes freed, {} bytes kept",
        r.scanned,
        if r.scanned == 1 { "y" } else { "ies" },
        r.removed,
        r.bytes_removed,
        r.bytes_after
    );
    Ok(())
}

fn trace_check_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let text = read_source(&opts.file)?;
    let report = telemetry::validate(&text).map_err(|e| format!("{}: {e}", opts.file))?;
    println!("{report}");
    Ok(())
}

fn run_program(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let (m, f) = opts.entry.clone().ok_or("run needs --entry M.f")?;
    let values = parse_values(opts.args.as_deref().unwrap_or(""))?;
    let pipeline = build_pipeline(&opts)?;
    let v = pipeline
        .run_source_opt(opts.runner, opts.vm_opt, &m, &f, values)
        .map_err(|e| e.to_string())?;
    println!("{v}");
    Ok(())
}

/// `mspec serve`: run the specialisation daemon over stdio or TCP.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut pinned: Vec<ServeKnob> = Vec::new();
    let mut stdio = false;
    let mut threads: Option<NonZeroUsize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let knob = match arg.as_str() {
            "--stdio" => {
                stdio = true;
                continue;
            }
            "--chaos" => {
                cfg.chaos = true;
                continue;
            }
            "--vm-opt" => {
                let v = it.next().ok_or("--vm-opt needs none or fuse")?;
                cfg.vm_opt = VmOpt::parse(v)
                    .ok_or_else(|| format!("--vm-opt must be none or fuse, got `{v}`"))?;
                continue;
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file path")?;
                cfg.trace_path = Some(v.clone());
                continue;
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a directory")?;
                cfg.cache_dir = Some(v.clone());
                continue;
            }
            "--crash-dir" => {
                let v = it.next().ok_or("--crash-dir needs a directory")?;
                cfg.crash_dir = Some(v.clone());
                continue;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = Some(parse_threads(v, ThreadOrigin::Flag).map_err(|e| e.to_string())?);
                continue;
            }
            "--port" => ServeKnob::Port,
            "--max-clients" => ServeKnob::MaxClients,
            "--queue-depth" => ServeKnob::QueueDepth,
            "--deadline-ms" => ServeKnob::DeadlineMs,
            "--client-fuel" => ServeKnob::ClientFuel,
            "--memo-cap" => ServeKnob::MemoCap,
            "--cache-gc-bytes" => ServeKnob::CacheGcBytes,
            other => return Err(format!("serve: unknown option `{other}`")),
        };
        let v = it.next().ok_or_else(|| format!("{} needs a value", knob.flag()))?;
        cfg.set_flag(knob, v).map_err(|e| e.to_string())?;
        pinned.push(knob);
    }
    cfg.apply_env(&pinned).map_err(|e| e.to_string())?;
    if cfg.cache_dir.is_none() {
        if let Ok(v) = std::env::var(mspec_cache::CACHE_DIR_ENV) {
            cfg.cache_dir = Some(v);
        }
    }
    // Validate the cache directory up front so a bad path is a startup
    // error, not a silently cold daemon.
    if let Some(dir) = &cfg.cache_dir {
        mspec_cache::DiskCache::open(dir)
            .map_err(|e| format!("serve: cannot open cache dir {dir}: {e}"))?;
    }
    match threads {
        Some(n) => cfg.workers = n.get(),
        None => {
            if let Ok(v) = std::env::var("MSPEC_THREADS") {
                cfg.workers = parse_threads(&v, ThreadOrigin::Env)
                    .map_err(|e| e.to_string())?
                    .get();
            }
        }
    }
    let rec = if cfg.trace_path.is_some() {
        telemetry::Recorder::enabled()
    } else {
        telemetry::Recorder::disabled()
    };
    let server = mspec_serve::Server::new(cfg.clone(), rec);
    if stdio {
        server.serve_stdio().map_err(|e| format!("serve: {e}"))
    } else {
        let handle = server.start_tcp().map_err(|e| format!("serve: {e}"))?;
        // Scripts read the bound port from stdout (important with --port 0).
        println!("mspecd listening on 127.0.0.1:{}", handle.port);
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        eprintln!(
            "mspecd: {} workers, queue depth {}, deadline {}ms, client fuel {}",
            cfg.workers, cfg.queue_depth, cfg.deadline_ms, cfg.client_fuel
        );
        handle.join();
        Ok(())
    }
}

/// `mspec client`: issue one request against a daemon, with retries.
fn client_cmd(args: &[String]) -> Result<(), String> {
    let mut action: Option<String> = None;
    let mut file: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut spawn = false;
    let mut chaos = false;
    let mut entry: Option<String> = None;
    let mut division = String::new();
    let mut values = String::new();
    let mut run_fuel: Option<u64> = None;
    let mut fuel: Option<u64> = None;
    let mut max_spec: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut policy = mspec_serve::RetryPolicy::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(it.next().ok_or("--connect needs HOST:PORT")?.clone()),
            "--spawn" => spawn = true,
            "--chaos" => chaos = true,
            "--entry" => entry = Some(it.next().ok_or("--entry needs M.f")?.clone()),
            "--args" => division = it.next().ok_or("--args needs a division")?.clone(),
            "--values" => values = it.next().ok_or("--values needs literals")?.clone(),
            "--run-fuel" => {
                let v = it.next().ok_or("--run-fuel needs a value")?;
                run_fuel = Some(v.parse().map_err(|_| format!("bad --run-fuel `{v}`"))?);
            }
            "--dir" => dir = Some(it.next().ok_or("--dir needs a directory")?.clone()),
            "--fuel" => {
                let v = it.next().ok_or("--fuel needs a value")?;
                fuel = Some(v.parse().map_err(|_| format!("bad --fuel `{v}`"))?);
            }
            "--max-spec" => {
                let v = it.next().ok_or("--max-spec needs a value")?;
                max_spec = Some(v.parse().map_err(|_| format!("bad --max-spec `{v}`"))?);
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                deadline_ms = Some(v.parse().map_err(|_| format!("bad --deadline-ms `{v}`"))?);
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                policy.max_attempts = v.parse().map_err(|_| format!("bad --retries `{v}`"))?;
            }
            "--backoff-ms" => {
                let v = it.next().ok_or("--backoff-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --backoff-ms `{v}`"))?;
                policy.base_backoff = std::time::Duration::from_millis(ms);
            }
            other if other.starts_with("--") => {
                return Err(format!("client: unknown option `{other}`"));
            }
            positional => {
                if action.is_none() {
                    action = Some(positional.to_string());
                } else if file.is_none() {
                    file = Some(positional.to_string());
                } else {
                    return Err(format!("client: unexpected argument `{positional}`"));
                }
            }
        }
    }
    let action =
        action.ok_or("client needs an ACTION: spec, run, health, stats, fault or shutdown")?;
    let mut client = if let Some(addr) = connect {
        mspec_serve::Client::tcp(addr)
    } else if spawn {
        let exe = std::env::current_exe().map_err(|e| format!("client: {e}"))?;
        let mut serve_args = vec!["serve".to_string(), "--stdio".to_string()];
        if chaos {
            serve_args.push("--chaos".to_string());
        }
        mspec_serve::Client::spawn(exe.display().to_string(), serve_args)
    } else {
        return Err("client needs --connect HOST:PORT or --spawn".into());
    }
    .with_policy(policy);
    let build_spec_request = |action: &str| -> Result<mspec_serve::SpecRequest, String> {
        let entry = entry
            .as_deref()
            .ok_or_else(|| format!("client {action} needs --entry M.f"))?;
        let mut req = match (&file, &dir) {
            (Some(f), None) => {
                mspec_serve::SpecRequest::inline(&read_source(f)?, entry, &division)
            }
            (None, Some(d)) => {
                let mut r = mspec_serve::SpecRequest::inline("", entry, &division);
                r.program = None;
                r.dir = Some(d.clone());
                r
            }
            (None, None) => return Err(format!("client {action} needs FILE or --dir DIR")),
            (Some(_), Some(_)) => {
                return Err(format!("client {action} takes FILE or --dir, not both"))
            }
        };
        req.fuel = fuel;
        req.max_spec = max_spec;
        req.deadline_ms = deadline_ms;
        Ok(req)
    };
    let kind = match action.as_str() {
        "spec" => mspec_serve::RequestKind::Spec(build_spec_request("spec")?),
        "run" => mspec_serve::RequestKind::Run(mspec_serve::RunRequest {
            spec: build_spec_request("run")?,
            values: values.clone(),
            run_fuel,
        }),
        "health" => mspec_serve::RequestKind::Health,
        "stats" => mspec_serve::RequestKind::Stats,
        "metrics" => mspec_serve::RequestKind::Metrics,
        "fault" => mspec_serve::RequestKind::Fault,
        "shutdown" => mspec_serve::RequestKind::Shutdown,
        other => return Err(format!("client: unknown action `{other}`")),
    };
    let reply = client
        .request(kind)
        .map_err(|e| format!("client: {e} (after {} attempt(s))", client.last_attempts))?;
    match reply.body {
        mspec_serve::ResponseBody::Spec {
            entry,
            residual,
            stats,
            memo_hit,
        } => {
            // Byte-identical to `mspec spec` output on stdout.
            println!("{residual}");
            let hit = if memo_hit { " [memo hit]" } else { "" };
            eprintln!("{}{hit}", stats.summary(entry.as_str()));
            Ok(())
        }
        mspec_serve::ResponseBody::Run { entry, value, memo_hit, compiled_hit, instructions } => {
            println!("{value}");
            let memo = if memo_hit { " [memo hit]" } else { "" };
            let warm = if compiled_hit { " [compiled hit]" } else { "" };
            eprintln!("{entry}: {instructions} vm instructions{memo}{warm}");
            Ok(())
        }
        mspec_serve::ResponseBody::Health { uptime_ms, counters } => {
            println!("uptime_ms = {uptime_ms}");
            for (k, v) in counters {
                println!("{k} = {v}");
            }
            Ok(())
        }
        mspec_serve::ResponseBody::Stats { counters } => {
            for (k, v) in counters {
                println!("{k} = {v}");
            }
            Ok(())
        }
        mspec_serve::ResponseBody::Metrics { text } => {
            // The raw exposition, scrapeable as-is.
            print!("{text}");
            Ok(())
        }
        mspec_serve::ResponseBody::Ok => {
            println!("ok");
            Ok(())
        }
        mspec_serve::ResponseBody::Error(info) => {
            let kind = if info.retryable { "retryable" } else { "terminal" };
            let msg = format!(
                "daemon error: {} ({kind}): {} (after {} attempt(s))",
                info.class.as_str(),
                info.message,
                client.last_attempts
            );
            if action == "fault" {
                // An injected fault answered with a typed error *is* the
                // expected outcome; report it and exit cleanly.
                eprintln!("{msg}");
                Ok(())
            } else {
                Err(msg)
            }
        }
    }
}

/// `mspec top`: a live TTY dashboard over the daemon's read-only
/// `metrics` endpoint. Each frame is one `metrics` round-trip —
/// answered inline by the daemon, so the view keeps refreshing while
/// the worker pool is saturated. `--once` prints a single frame and
/// exits (scriptable smoke check); otherwise the screen is cleared and
/// redrawn every `--interval-ms` (default 1000) until interrupted.
fn top_cmd(args: &[String]) -> Result<(), String> {
    let mut connect: Option<String> = None;
    let mut interval_ms: u64 = 1_000;
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(it.next().ok_or("--connect needs HOST:PORT")?.clone()),
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                interval_ms = v.parse().map_err(|_| format!("bad --interval-ms `{v}`"))?;
            }
            "--once" => once = true,
            other => return Err(format!("top: unknown option `{other}`")),
        }
    }
    let addr = connect.ok_or("top needs --connect HOST:PORT")?;
    let mut client = mspec_serve::Client::tcp(addr.clone());
    loop {
        let reply = client.metrics().map_err(|e| format!("top: {e}"))?;
        let mspec_serve::ResponseBody::Metrics { text } = reply.body else {
            return Err("top: daemon did not answer the metrics request".to_string());
        };
        let frame = render_top(&addr, &text);
        if once {
            print!("{frame}");
            return Ok(());
        }
        // ANSI clear + home, then the refreshed frame. Plain escape
        // codes keep this zero-dependency.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// One `mspec top` frame, rendered from a metrics exposition. Pure
/// text-in/text-out (unit-tested); unknown or missing samples render
/// as `-` so a newer/older daemon degrades gracefully.
fn render_top(addr: &str, metrics: &str) -> String {
    let mut samples = std::collections::BTreeMap::new();
    for line in metrics.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            samples.insert(name.to_string(), value.to_string());
        }
    }
    let get = |k: &str| samples.get(k).cloned().unwrap_or_else(|| "-".to_string());
    let uptime = samples
        .get("mspecd_uptime_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map_or_else(|| "-".to_string(), |ms| format!("{}.{:01}s", ms / 1000, (ms % 1000) / 100));
    let mut out = String::new();
    out.push_str(&format!("mspecd @ {addr}   up {uptime}\n\n"));
    out.push_str(&format!(
        "  req/s {:<8} shed/s {:<8} memo-hit {}\n",
        get("mspecd_req_rate"),
        get("mspecd_shed_rate"),
        get("mspecd_memo_hit_ratio"),
    ));
    out.push_str(&format!(
        "  requests {:<7} ok {:<7} errors {:<5} shed {:<5} panics {:<4} deadline {}\n",
        get("mspecd_requests_total"),
        get("mspecd_ok_total"),
        get("mspecd_errors_total"),
        get("mspecd_shed_total"),
        get("mspecd_panics_total"),
        get("mspecd_deadline_expired_total"),
    ));
    out.push_str(&format!(
        "  queue {:<4} in-flight {:<4} clients {}\n",
        get("mspecd_queue_depth"),
        get("mspecd_in_flight"),
        get("mspecd_clients"),
    ));
    out.push_str(&format!(
        "  latency-us p50 {:<8} p90 {:<8} p99 {:<8} (n={})\n",
        get("mspecd_latency_us{quantile=\"0.5\"}"),
        get("mspecd_latency_us{quantile=\"0.9\"}"),
        get("mspecd_latency_us{quantile=\"0.99\"}"),
        get("mspecd_latency_us_count"),
    ));
    out.push_str(&format!(
        "  cache: programs {} artefacts {} memo {} compiled {} evictions {}\n",
        get("mspecd_cache_programs"),
        get("mspecd_cache_artefacts"),
        get("mspecd_cache_memo"),
        get("mspecd_cache_compiled"),
        get("mspecd_cache_evictions_total"),
    ));
    out.push_str(&format!(
        "  disk: hits {} stores {}   flight events {}\n",
        get("mspecd_cache_disk_hits_total"),
        get("mspecd_cache_disk_stores_total"),
        get("mspecd_flight_recorded_total"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspec_core::SpecArg;
    use mspec_lang::eval::Value;
    use mspec_serve::parse_value;

    #[test]
    fn parses_values() {
        assert_eq!(parse_value("42").unwrap(), Value::nat(42));
        assert_eq!(parse_value("true").unwrap(), Value::bool_(true));
        assert_eq!(parse_value("[]").unwrap(), Value::Nil);
        assert_eq!(
            parse_value("[1;2;3]").unwrap(),
            Value::list(vec![Value::nat(1), Value::nat(2), Value::nat(3)])
        );
        assert_eq!(
            parse_value("[[1];[]]").unwrap(),
            Value::list(vec![Value::list(vec![Value::nat(1)]), Value::Nil])
        );
        assert!(parse_value("nope").is_err());
    }

    #[test]
    fn parses_divisions() {
        let d = parse_division("S:3,D,P:4").unwrap();
        assert_eq!(d.len(), 3);
        assert!(matches!(d[0], SpecArg::Static(Value::Nat(3))));
        assert!(matches!(d[1], SpecArg::Dynamic));
        assert!(matches!(d[2], SpecArg::StaticSpine(4)));
        assert!(parse_division("X").is_err());
        assert!(parse_division("").unwrap().is_empty());
    }

    #[test]
    fn parses_options() {
        let args: Vec<String> = [
            "prog.mspec",
            "--entry",
            "M.f",
            "--args",
            "S:1,D",
            "--strategy",
            "df",
            "--force-residual",
            "M.f,M.g",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_opts(&args).unwrap();
        assert_eq!(opts.file, "prog.mspec");
        assert_eq!(opts.entry, Some(("M".into(), "f".into())));
        assert!(matches!(opts.strategy, Strategy::DepthFirst));
        assert_eq!(opts.force_residual.len(), 2);
    }

    #[test]
    fn rejects_bad_options() {
        let args: Vec<String> = ["--bogus".to_string()].into();
        assert!(parse_opts(&args).is_err());
        assert!(parse_opts(&[]).is_err());
    }

    #[test]
    fn parses_budget_options() {
        let args: Vec<String> = [
            "prog.mspec",
            "--fuel",
            "5000",
            "--max-spec",
            "4",
            "--on-exhaustion",
            "generalise",
            "--runner",
            "tree",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_opts(&args).unwrap();
        assert_eq!(opts.fuel, Some(5000));
        assert_eq!(opts.max_spec, Some(4));
        assert!(matches!(opts.on_exhaustion, OnExhaustion::Generalise));
        assert!(matches!(opts.runner, Runner::Tree));
        let eo = opts.engine_options();
        assert_eq!(eo.budget.steps, 5000);
        assert_eq!(eo.budget.max_specialisations, 4);
        assert!(matches!(eo.on_exhaustion, OnExhaustion::Generalise));
    }

    #[test]
    fn budget_options_default_to_engine_defaults() {
        let args: Vec<String> = ["prog.mspec".to_string()].into();
        let opts = parse_opts(&args).unwrap();
        assert_eq!(opts.fuel, None);
        assert_eq!(opts.max_spec, None);
        assert!(matches!(opts.on_exhaustion, OnExhaustion::Error));
        assert!(matches!(opts.runner, Runner::Vm));
        let eo = opts.engine_options();
        let defaults = EngineOptions::default();
        assert_eq!(eo.budget.steps, defaults.budget.steps);
        assert_eq!(eo.budget.max_specialisations, defaults.budget.max_specialisations);
    }

    #[test]
    fn parses_threads_flag_and_rejects_zero() {
        let ok: Vec<String> =
            ["p.mspec", "--threads", "4"].iter().map(|s| s.to_string()).collect();
        let opts = parse_opts(&ok).unwrap();
        assert_eq!(opts.threads, NonZeroUsize::new(4));
        assert_eq!(opts.requested_threads().unwrap(), NonZeroUsize::new(4));

        let zero: Vec<String> =
            ["p.mspec", "--threads", "0"].iter().map(|s| s.to_string()).collect();
        let err = parse_opts(&zero).err().unwrap();
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("at least 1"), "{err}");

        let garbage: Vec<String> =
            ["p.mspec", "--threads", "many"].iter().map(|s| s.to_string()).collect();
        let err = parse_opts(&garbage).err().unwrap();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn parses_req_filter_in_decimal_and_hex() {
        let dec: Vec<String> =
            ["t.jsonl", "--req", "12345"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_opts(&dec).unwrap().req, Some(12345));
        let hex: Vec<String> =
            ["t.jsonl", "--req", "0xdeadbeef"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_opts(&hex).unwrap().req, Some(0xdead_beef));
        let bad: Vec<String> =
            ["t.jsonl", "--req", "nope"].iter().map(|s| s.to_string()).collect();
        assert!(parse_opts(&bad).is_err());
    }

    #[test]
    fn top_frame_renders_known_samples_and_degrades_on_missing_ones() {
        let metrics = "# HELP mspecd_uptime_ms x\n# TYPE mspecd_uptime_ms gauge\n\
                       mspecd_uptime_ms 12345\n\
                       # TYPE mspecd_requests_total counter\n\
                       mspecd_requests_total 42\n\
                       # TYPE mspecd_req_rate gauge\n\
                       mspecd_req_rate 4.200\n\
                       # TYPE mspecd_latency_us summary\n\
                       mspecd_latency_us{quantile=\"0.5\"} 210\n\
                       mspecd_latency_us_count 7\n";
        let frame = render_top("127.0.0.1:9", metrics);
        assert!(frame.contains("mspecd @ 127.0.0.1:9"), "{frame}");
        assert!(frame.contains("up 12.3s"), "{frame}");
        assert!(frame.contains("requests 42"), "{frame}");
        assert!(frame.contains("req/s 4.200"), "{frame}");
        assert!(frame.contains("p50 210"), "{frame}");
        assert!(frame.contains("(n=7)"), "{frame}");
        // Samples the daemon did not send render as "-", not a panic.
        assert!(frame.contains("p90 -"), "{frame}");
        assert!(frame.contains("queue -"), "{frame}");
    }

    #[test]
    fn rejects_bad_budget_values() {
        for bad in [
            vec!["p.mspec", "--fuel", "lots"],
            vec!["p.mspec", "--max-spec", "-1"],
            vec!["p.mspec", "--on-exhaustion", "panic"],
            vec!["p.mspec", "--runner", "jit"],
            vec!["p.mspec", "--fuel"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_opts(&args).is_err(), "expected error for {args:?}");
        }
    }
}

//! Module-sensitive program specialisation — the end-to-end pipeline.
//!
//! This crate is the front door of the reproduction of *Module-Sensitive
//! Program Specialisation* (Dussart, Heldal & Hughes, PLDI 1997). It
//! wires together the stages the paper describes:
//!
//! 1. parse and resolve the modular source program (`mspec-lang`),
//! 2. Hindley–Milner type checking (`mspec-types`),
//! 3. polymorphic, module-at-a-time binding-time analysis (`mspec-bta`),
//! 4. cogen: each module becomes its generating extension
//!    (`mspec-cogen`),
//! 5. link the generating extensions and run them on a specialisation
//!    request (`mspec-genext`), yielding a *residual program* split into
//!    modules derived from the source structure (§5).
//!
//! # Quick start
//!
//! ```
//! use mspec_core::{Pipeline, SpecArg};
//! use mspec_lang::eval::Value;
//!
//! # fn main() -> Result<(), mspec_core::PipelineError> {
//! let pipeline = Pipeline::from_source(
//!     "module Power where\n\
//!      power n x = if n == 1 then x else x * power (n - 1) x\n",
//! )?;
//! // Specialise power to n = 3 (static), x unknown (dynamic):
//! let spec = pipeline.specialise("Power", "power",
//!     vec![SpecArg::Static(Value::nat(3)), SpecArg::Dynamic])?;
//! // The residual program computes cubes:
//! assert_eq!(spec.run(vec![Value::nat(5)])?, Value::nat(125));
//! // …and its code is the paper's x * (x * x):
//! assert!(spec.source().contains("x * (x * x)"));
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod parbuild;
pub mod pipeline;

pub use error::PipelineError;
pub use mspec_bta::division::ParamBt;
pub use mspec_genext::{
    BudgetResource, CostModel, EngineOptions, OnExhaustion, SpecArg, SpecBudget, SpecStats,
    Strategy,
};
pub use parbuild::{module_levels, BuildMode, BuildReport, ModuleBuildError, StageTimes};
pub use mspec_lang::vm::{Runner, VmOpt};
pub use mspec_telemetry as telemetry;
pub use mspec_telemetry::{ModuleOutcome, Recorder};
pub use pipeline::{run_source, write_residual, ExecStatus, Pipeline, Specialised};
